"""Exception hierarchy for the circuit simulator."""


class SpiceError(Exception):
    """Base class for all circuit-simulator errors."""


class NetlistError(SpiceError):
    """A circuit is malformed (bad nodes, duplicate names, missing model)."""


class ParseError(SpiceError):
    """A Spice-format netlist file could not be parsed."""

    def __init__(self, message: str, line_no: int | None = None,
                 line: str | None = None):
        self.line_no = line_no
        self.line = line
        if line_no is not None:
            message = f"line {line_no}: {message}"
            if line is not None:
                message = f"{message}\n  >> {line}"
        super().__init__(message)


class AnalysisError(SpiceError):
    """An analysis was configured incorrectly or failed to run."""


class ConvergenceError(AnalysisError):
    """Newton-Raphson iteration failed to converge."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        self.iterations = iterations
        self.residual = residual
        super().__init__(message)


class SingularMatrixError(AnalysisError):
    """The MNA matrix is singular (floating node, loop of sources...)."""
