"""Exception hierarchy for the circuit simulator."""


class SpiceError(Exception):
    """Base class for all circuit-simulator errors."""


class NetlistError(SpiceError):
    """A circuit is malformed (bad nodes, duplicate names, missing model)."""


class NetlistLintError(NetlistError):
    """Static lint found error-severity defects (the pre-flight gate).

    Attributes:
        report: the :class:`~repro.spice.lint.report.LintReport` with
            every finding (rule ids, nodes, devices), when available.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class ParseError(SpiceError):
    """A Spice-format netlist file could not be parsed."""

    def __init__(self, message: str, line_no: int | None = None,
                 line: str | None = None):
        self.line_no = line_no
        self.line = line
        if line_no is not None:
            message = f"line {line_no}: {message}"
            if line is not None:
                message = f"{message}\n  >> {line}"
        super().__init__(message)


#: Conventional alias (matches the name most Spice tooling uses for its
#: parser exception).
SpiceParserError = ParseError


class AnalysisError(SpiceError):
    """An analysis was configured incorrectly or failed to run."""


class ConvergenceError(AnalysisError):
    """Newton-Raphson iteration failed to converge."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        self.iterations = iterations
        self.residual = residual
        super().__init__(message)


class SingularMatrixError(AnalysisError):
    """The MNA matrix is singular (floating node, loop of sources...)."""
