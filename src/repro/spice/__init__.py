"""Spice-class analog circuit simulator (the repo's ELDO substitute).

This package implements a small but complete Modified-Nodal-Analysis (MNA)
circuit simulator:

* a circuit/netlist data model (:mod:`repro.spice.netlist`) with subcircuit
  flattening,
* a Spice-format text parser (:mod:`repro.spice.parser`),
* device models (:mod:`repro.spice.devices`) including a level-1 MOSFET
  with body effect, channel-length modulation and a Meyer-style charge
  model,
* analyses (:mod:`repro.spice.analysis`): operating point, DC sweep, AC
  small-signal and transient, plus a resumable :class:`TransientStepper`
  used for mixed-signal co-simulation,
* a generic 0.18 um CMOS model library (:mod:`repro.spice.library`).

The public API re-exported here is the stable surface used by the rest of
the repository.
"""

from repro.spice.errors import (
    AnalysisError,
    ConvergenceError,
    NetlistError,
    NetlistLintError,
    ParseError,
    SingularMatrixError,
    SpiceError,
    SpiceParserError,
)
from repro.spice.netlist import Circuit, Subckt
from repro.spice.parser import parse_netlist, parse_value
from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    MosModel,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
    VSwitch,
)
from repro.spice.analysis import (
    AcResult,
    DcSweepResult,
    OpResult,
    TranResult,
    TransientStepper,
    ac_analysis,
    dc_sweep,
    operating_point,
    transient,
)
from repro.spice.library import generic_018
from repro.spice.lint import (
    LintFinding,
    LintReport,
    Severity,
    lint_circuit,
    lint_netlist,
    lint_subckt,
    preflight_check,
)

__all__ = [
    "AcResult",
    "AnalysisError",
    "Capacitor",
    "Circuit",
    "ConvergenceError",
    "CurrentSource",
    "DcSweepResult",
    "Diode",
    "Inductor",
    "LintFinding",
    "LintReport",
    "MosModel",
    "Mosfet",
    "NetlistError",
    "NetlistLintError",
    "OpResult",
    "ParseError",
    "Severity",
    "Resistor",
    "SingularMatrixError",
    "SpiceError",
    "SpiceParserError",
    "Subckt",
    "TranResult",
    "TransientStepper",
    "Vccs",
    "Vcvs",
    "VoltageSource",
    "VSwitch",
    "ac_analysis",
    "dc_sweep",
    "generic_018",
    "lint_circuit",
    "lint_netlist",
    "lint_subckt",
    "operating_point",
    "parse_netlist",
    "parse_value",
    "preflight_check",
    "transient",
]
