"""Linear controlled sources (Spice E and G elements)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.spice.devices.base import Device
from repro.spice.units import parse_value


@dataclass(frozen=True)
class _Controlled(Device):
    n1: str
    n2: str
    cn1: str
    cn2: str
    gain: float

    def __init__(self, name: str, n1: str, n2: str, cn1: str, cn2: str,
                 gain: float | str):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "n1", n1)
        object.__setattr__(self, "n2", n2)
        object.__setattr__(self, "cn1", cn1)
        object.__setattr__(self, "cn2", cn2)
        object.__setattr__(self, "gain", parse_value(gain))

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2, self.cn1, self.cn2)

    def renamed(self, name: str, node_map: dict[str, str]) -> "_Controlled":
        return type(self)(
            name,
            node_map.get(self.n1, self.n1),
            node_map.get(self.n2, self.n2),
            node_map.get(self.cn1, self.cn1),
            node_map.get(self.cn2, self.cn2),
            self.gain,
        )


class Vcvs(_Controlled):
    """Voltage-controlled voltage source (E element):
    ``v(n1,n2) = gain * v(cn1,cn2)``.  Adds one branch unknown."""


class Vccs(_Controlled):
    """Voltage-controlled current source (G element):
    current ``gain * v(cn1,cn2)`` flows from n1 to n2 through the source."""
