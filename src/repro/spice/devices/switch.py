"""Voltage-controlled switch with a smooth resistance transition.

The abrupt on/off switch of classic Spice is a notorious convergence trap;
like modern simulators we interpolate the conductance smoothly (log-space
tanh) between ``ron`` and ``roff`` as the control voltage crosses the
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.spice.devices.base import Device
from repro.spice.errors import NetlistError


@dataclass(frozen=True)
class SwitchModel:
    """Switch model: on/off resistance, threshold and transition width."""

    name: str
    ron: float = 1.0
    roff: float = 1e9
    vt: float = 0.5
    vh: float = 0.1  # half-width of the smooth transition

    def __post_init__(self):
        if self.ron <= 0 or self.roff <= 0:
            raise NetlistError(f"SwitchModel {self.name}: resistances must be > 0")
        if self.vh <= 0:
            raise NetlistError(f"SwitchModel {self.name}: vh must be > 0")


@dataclass(frozen=True)
class VSwitch(Device):
    """Voltage-controlled switch ``S<name> n1 n2 cn1 cn2 <model>``.

    Closed (resistance ``ron``) when ``v(cn1,cn2) > vt``.
    """

    n1: str
    n2: str
    cn1: str
    cn2: str
    model: str

    def __init__(self, name: str, n1: str, n2: str, cn1: str, cn2: str,
                 model: str | SwitchModel):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "n1", n1)
        object.__setattr__(self, "n2", n2)
        object.__setattr__(self, "cn1", cn1)
        object.__setattr__(self, "cn2", cn2)
        model_name = model.name if isinstance(model, SwitchModel) else model
        object.__setattr__(self, "model", model_name)

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2, self.cn1, self.cn2)

    def renamed(self, name: str, node_map: dict[str, str]) -> "VSwitch":
        return VSwitch(
            name,
            node_map.get(self.n1, self.n1),
            node_map.get(self.n2, self.n2),
            node_map.get(self.cn1, self.cn1),
            node_map.get(self.cn2, self.cn2),
            self.model,
        )


class SwitchGroup:
    """Vectorized switch evaluation.

    The conductance is ``g(vc) = exp(lerp(ln g_off, ln g_on, s(vc)))``
    where ``s`` is a smooth-step of the control voltage.  The branch is
    treated like a nonlinear resistor: current ``g(vc) * v12`` with
    Jacobian terms against both the through-voltage and the control
    voltage.
    """

    def __init__(self, devices: Sequence[VSwitch],
                 models: dict[str, SwitchModel],
                 node_index: dict[str, int]):
        self.devices = list(devices)
        self.count = len(self.devices)
        get = node_index.__getitem__
        self.n1 = np.array([get(d.n1) for d in self.devices], dtype=np.intp)
        self.n2 = np.array([get(d.n2) for d in self.devices], dtype=np.intp)
        self.c1 = np.array([get(d.cn1) for d in self.devices], dtype=np.intp)
        self.c2 = np.array([get(d.cn2) for d in self.devices], dtype=np.intp)

        def model_of(dev: VSwitch) -> SwitchModel:
            try:
                return models[dev.model]
            except KeyError:
                raise NetlistError(
                    f"{dev.name}: unknown switch model {dev.model!r}") from None

        mods = [model_of(d) for d in self.devices]
        self.ln_gon = np.log(np.array([1.0 / m.ron for m in mods]))
        self.ln_goff = np.log(np.array([1.0 / m.roff for m in mods]))
        self.vt = np.array([m.vt for m in mods])
        self.vh = np.array([m.vh for m in mods])

    def evaluate(self, v: np.ndarray):
        """Return ``(g, dg_dvc, v12)``: conductance, its control-voltage
        sensitivity and the through-voltage."""
        vc = v[self.c1] - v[self.c2]
        x = (vc - self.vt) / self.vh
        s = 0.5 * (1.0 + np.tanh(x))
        ds_dvc = 0.5 * (1.0 - np.tanh(x) ** 2) / self.vh
        ln_g = self.ln_goff + (self.ln_gon - self.ln_goff) * s
        g = np.exp(ln_g)
        dg_dvc = g * (self.ln_gon - self.ln_goff) * ds_dvc
        v12 = v[self.n1] - v[self.n2]
        return g, dg_dvc, v12
