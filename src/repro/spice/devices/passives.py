"""Linear passive devices: resistor, capacitor, inductor."""

from __future__ import annotations

from dataclasses import dataclass

from repro.spice.devices.base import TwoTerminal
from repro.spice.errors import NetlistError
from repro.spice.units import parse_value


def _positive(name: str, value: float | str, what: str) -> float:
    out = parse_value(value)
    if out <= 0.0:
        raise NetlistError(f"{name}: {what} must be positive, got {out}")
    return out


@dataclass(frozen=True)
class Resistor(TwoTerminal):
    """Ideal linear resistor.

    Args:
        value: resistance in ohms (Spice suffixes accepted, e.g. ``"10k"``).
    """

    value: float

    def __init__(self, name: str, n1: str, n2: str, value: float | str):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "n1", n1)
        object.__setattr__(self, "n2", n2)
        object.__setattr__(self, "value", _positive(name, value, "resistance"))

    @property
    def conductance(self) -> float:
        return 1.0 / self.value


@dataclass(frozen=True)
class Capacitor(TwoTerminal):
    """Ideal linear capacitor with optional initial voltage ``ic``."""

    value: float
    ic: float | None = None

    def __init__(self, name: str, n1: str, n2: str, value: float | str,
                 ic: float | None = None):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "n1", n1)
        object.__setattr__(self, "n2", n2)
        object.__setattr__(self, "value", _positive(name, value, "capacitance"))
        object.__setattr__(self, "ic", None if ic is None else float(ic))


@dataclass(frozen=True)
class Inductor(TwoTerminal):
    """Ideal linear inductor with optional initial current ``ic``.

    Contributes one MNA branch-current unknown.
    """

    value: float
    ic: float | None = None

    def __init__(self, name: str, n1: str, n2: str, value: float | str,
                 ic: float | None = None):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "n1", n1)
        object.__setattr__(self, "n2", n2)
        object.__setattr__(self, "value", _positive(name, value, "inductance"))
        object.__setattr__(self, "ic", None if ic is None else float(ic))
