"""Junction diode with exponential I-V and junction capacitance."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.spice.devices.base import TwoTerminal
from repro.spice.errors import NetlistError

VT_THERMAL = 0.025852  # thermal voltage at 300 K


@dataclass(frozen=True)
class DiodeModel:
    """Diode model card: saturation current, emission coefficient, series
    resistance (ignored in stamping; kept for completeness) and zero-bias
    junction capacitance."""

    name: str
    is_: float = 1e-14
    n: float = 1.0
    cj0: float = 0.0

    def __post_init__(self):
        if self.is_ <= 0:
            raise NetlistError(f"DiodeModel {self.name}: IS must be positive")
        if self.n <= 0:
            raise NetlistError(f"DiodeModel {self.name}: N must be positive")


@dataclass(frozen=True)
class Diode(TwoTerminal):
    """Diode instance; anode ``n1``, cathode ``n2``."""

    model: str = "d"

    def __init__(self, name: str, n1: str, n2: str, model: str | DiodeModel = "d"):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "n1", n1)
        object.__setattr__(self, "n2", n2)
        model_name = model.name if isinstance(model, DiodeModel) else model
        object.__setattr__(self, "model", model_name)


class DiodeGroup:
    """Vectorized diode evaluation with junction-voltage limiting."""

    #: Voltage above which the exponential is linearized to avoid overflow.
    V_EXPLODE = 0.9

    def __init__(self, devices: Sequence[Diode],
                 models: dict[str, DiodeModel],
                 node_index: dict[str, int]):
        self.devices = list(devices)
        self.count = len(self.devices)
        get = node_index.__getitem__
        self.na = np.array([get(d.n1) for d in self.devices], dtype=np.intp)
        self.nc = np.array([get(d.n2) for d in self.devices], dtype=np.intp)

        def model_of(dev: Diode) -> DiodeModel:
            try:
                return models[dev.model]
            except KeyError:
                raise NetlistError(
                    f"{dev.name}: unknown diode model {dev.model!r}") from None

        mods = [model_of(d) for d in self.devices]
        self.isat = np.array([m.is_ for m in mods])
        self.nvt = np.array([m.n for m in mods]) * VT_THERMAL
        self.cj0 = np.array([m.cj0 for m in mods])

    def evaluate(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(current, conductance)`` arrays at node voltages *v*.

        The exponential is continued linearly above :data:`V_EXPLODE` so
        Newton steps cannot overflow.
        """
        vd = v[self.na] - v[self.nc]
        vlim = self.V_EXPLODE
        clipped = np.minimum(vd, vlim)
        expo = np.exp(clipped / self.nvt)
        current = self.isat * (expo - 1.0)
        conductance = self.isat * expo / self.nvt
        above = vd > vlim
        if np.any(above):
            g_lim = (self.isat * np.exp(vlim / self.nvt) / self.nvt)[above]
            i_lim = (self.isat * (np.exp(vlim / self.nvt) - 1.0))[above]
            current[above] = i_lim + g_lim * (vd[above] - vlim)
            conductance[above] = g_lim
        return current, conductance
