"""Device descriptions for the circuit simulator.

Devices are lightweight declarative records; all numerical work happens in
:mod:`repro.spice.mna`, which compiles a :class:`repro.spice.netlist.Circuit`
into vectorized device groups.
"""

from repro.spice.devices.base import Device, TwoTerminal
from repro.spice.devices.passives import Capacitor, Inductor, Resistor
from repro.spice.devices.sources import (
    CurrentSource,
    Pulse,
    Pwl,
    Sin,
    VoltageSource,
    Waveform,
)
from repro.spice.devices.controlled import Vccs, Vcvs
from repro.spice.devices.mosfet import MosModel, Mosfet
from repro.spice.devices.diode import Diode, DiodeModel
from repro.spice.devices.switch import SwitchModel, VSwitch

__all__ = [
    "Capacitor",
    "CurrentSource",
    "Device",
    "Diode",
    "DiodeModel",
    "Inductor",
    "MosModel",
    "Mosfet",
    "Pulse",
    "Pwl",
    "Resistor",
    "Sin",
    "SwitchModel",
    "TwoTerminal",
    "Vccs",
    "Vcvs",
    "VoltageSource",
    "VSwitch",
    "Waveform",
]
