"""Base classes shared by all circuit devices."""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class Device:
    """A circuit element: a name plus the nodes it connects to.

    Devices are immutable descriptions.  Node names are strings; ``"0"``
    (or ``"gnd"``) is the global reference.  Subcircuit flattening renames
    nodes by prefixing the instance path, so a device may appear in a
    flattened circuit with nodes like ``"x1.out"``.
    """

    name: str

    @property
    def nodes(self) -> tuple[str, ...]:
        raise NotImplementedError

    def renamed(self, name: str, node_map: dict[str, str]) -> "Device":
        """Return a copy with a new name and remapped nodes (used when
        flattening subcircuit instances)."""
        raise NotImplementedError


@dataclass(frozen=True)
class TwoTerminal(Device):
    """A device with exactly two terminals ``n1`` (+) and ``n2`` (-)."""

    n1: str
    n2: str

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2)

    def renamed(self, name: str, node_map: dict[str, str]) -> "TwoTerminal":
        return replace(
            self,
            name=name,
            n1=node_map.get(self.n1, self.n1),
            n2=node_map.get(self.n2, self.n2),
        )
