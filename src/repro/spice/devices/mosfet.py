"""Level-1 (Shichman-Hodges) MOSFET model with vectorized evaluation.

The device description is :class:`Mosfet` + :class:`MosModel`.  The MNA
compiler packs all MOSFETs of a circuit into a :class:`MosGroup`, whose
arrays allow every transistor to be evaluated in a handful of numpy
operations per Newton iteration — this is what makes transistor-in-the-loop
co-simulation tractable in pure Python.

Model features:

* square-law triode/saturation with channel-length modulation applied in
  both regions (continuous at the triode/saturation boundary, as in
  Berkeley Spice level 1),
* body effect ``VT = VTO + GAMMA*(sqrt(PHI+VSB) - sqrt(PHI))`` with a
  floor on the square-root argument for robustness under forward body
  bias,
* automatic drain/source swap when ``VDS < 0`` (the device is symmetric),
* Meyer-style piecewise gate-capacitance model plus constant overlap and
  junction capacitances, used by AC analysis and by the transient
  companion models.

Known simplifications versus a production BSIM model (documented in
DESIGN.md): no subthreshold conduction (cutoff is abrupt, with the global
``gmin`` providing leakage), junction capacitances evaluated at zero bias,
Meyer capacitances are not charge-conserving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.spice.devices.base import Device
from repro.spice.errors import NetlistError
from repro.spice.units import parse_value

EPS_OX = 3.9 * 8.854187817e-12  # F/m, SiO2 permittivity


@dataclass(frozen=True)
class MosModel:
    """Level-1 MOSFET model card.

    Args:
        name: model name referenced by :class:`Mosfet` instances.
        mtype: ``"n"`` or ``"p"``.
        vto: zero-bias threshold voltage (positive for NMOS, negative
            for PMOS, as in Spice).
        kp: transconductance parameter ``u0*Cox`` in A/V^2.
        gamma: body-effect coefficient in V^0.5.
        phi: surface potential in V.
        lambd: channel-length modulation in 1/V.
        tox: gate-oxide thickness in m (sets the charge model's Cox).
        cgso/cgdo: gate-source/drain overlap capacitance per meter of
            width (F/m).
        cgbo: gate-bulk overlap capacitance per meter of length (F/m).
        cj: zero-bias junction capacitance per area (F/m^2).
        cjsw: zero-bias sidewall junction capacitance (F/m).
        ldiff: drawn source/drain diffusion length used to derive the
            default junction areas (m).
        ld: lateral diffusion; the effective length is ``L - 2*ld``.
    """

    name: str
    mtype: str = "n"
    vto: float = 0.5
    kp: float = 200e-6
    gamma: float = 0.45
    phi: float = 0.8
    lambd: float = 0.06
    tox: float = 4.1e-9
    cgso: float = 3.0e-10
    cgdo: float = 3.0e-10
    cgbo: float = 1.0e-10
    cj: float = 1.0e-3
    cjsw: float = 2.0e-10
    ldiff: float = 0.48e-6
    ld: float = 0.0

    def __post_init__(self):
        if self.mtype not in ("n", "p"):
            raise NetlistError(f"MosModel {self.name}: mtype must be 'n' or 'p'")
        if self.kp <= 0:
            raise NetlistError(f"MosModel {self.name}: kp must be positive")
        if self.phi <= 0:
            raise NetlistError(f"MosModel {self.name}: phi must be positive")
        if self.tox <= 0:
            raise NetlistError(f"MosModel {self.name}: tox must be positive")

    @property
    def sign(self) -> float:
        """+1 for NMOS, -1 for PMOS."""
        return 1.0 if self.mtype == "n" else -1.0

    @property
    def cox(self) -> float:
        """Gate capacitance per unit area (F/m^2)."""
        return EPS_OX / self.tox


@dataclass(frozen=True)
class Mosfet(Device):
    """MOSFET instance ``M<name> d g s b <model> w=... l=... m=...``."""

    d: str
    g: str
    s: str
    b: str
    model: str
    w: float
    l: float
    m: float = 1.0

    def __init__(self, name: str, d: str, g: str, s: str, b: str,
                 model: str | MosModel, w: float | str, l: float | str,
                 m: float = 1.0):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "d", d)
        object.__setattr__(self, "g", g)
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "b", b)
        model_name = model.name if isinstance(model, MosModel) else model
        object.__setattr__(self, "model", model_name)
        w_val = parse_value(w)
        l_val = parse_value(l)
        if w_val <= 0 or l_val <= 0:
            raise NetlistError(f"{name}: W and L must be positive")
        object.__setattr__(self, "w", w_val)
        object.__setattr__(self, "l", l_val)
        if m < 1:
            raise NetlistError(f"{name}: multiplicity m must be >= 1")
        object.__setattr__(self, "m", float(m))

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.d, self.g, self.s, self.b)

    def renamed(self, name: str, node_map: dict[str, str]) -> "Mosfet":
        return Mosfet(
            name,
            node_map.get(self.d, self.d),
            node_map.get(self.g, self.g),
            node_map.get(self.s, self.s),
            node_map.get(self.b, self.b),
            self.model,
            self.w,
            self.l,
            self.m,
        )


@dataclass
class MosEval:
    """Result of a vectorized large-signal evaluation.

    All quantities are expressed in the *effective* (possibly swapped)
    drain/source frame; ``d_eff``/``s_eff`` give the node indices to stamp
    against.  ``ids`` is the current flowing from ``d_eff`` to ``s_eff``
    for NMOS sign convention already applied (i.e. it is the physical
    terminal current into the effective drain).
    """

    ids: np.ndarray
    gm: np.ndarray
    gds: np.ndarray
    gmb: np.ndarray
    d_eff: np.ndarray
    s_eff: np.ndarray
    vgs: np.ndarray
    vds: np.ndarray
    region: np.ndarray  # 0 = cutoff, 1 = triode, 2 = saturation


class MosGroup:
    """All MOSFETs of a circuit packed into parameter arrays.

    Node indices follow the MNA convention where ground is mapped to a
    sentinel index (the compiler stamps into an oversized matrix and drops
    the ground row/column afterwards), so no masking is needed here.
    """

    def __init__(self, devices: Sequence[Mosfet],
                 models: dict[str, MosModel],
                 node_index: dict[str, int]):
        self.devices = list(devices)
        n = len(self.devices)
        self.count = n
        self.names = [dev.name for dev in self.devices]
        get = node_index.__getitem__
        self.nd = np.array([get(dev.d) for dev in self.devices], dtype=np.intp)
        self.ng = np.array([get(dev.g) for dev in self.devices], dtype=np.intp)
        self.ns = np.array([get(dev.s) for dev in self.devices], dtype=np.intp)
        self.nb = np.array([get(dev.b) for dev in self.devices], dtype=np.intp)

        def model_of(dev: Mosfet) -> MosModel:
            try:
                return models[dev.model]
            except KeyError:
                raise NetlistError(
                    f"{dev.name}: unknown MOS model {dev.model!r}") from None

        mods = [model_of(dev) for dev in self.devices]
        self.sign = np.array([mod.sign for mod in mods])
        leff = np.array([max(dev.l - 2 * mod.ld, 1e-9)
                         for dev, mod in zip(self.devices, mods)])
        width = np.array([dev.w * dev.m for dev in self.devices])
        self.beta = np.array([mod.kp for mod in mods]) * width / leff
        self.vto = np.array([mod.vto for mod in mods])
        self.gamma = np.array([mod.gamma for mod in mods])
        self.phi = np.array([mod.phi for mod in mods])
        self.lambd = np.array([mod.lambd for mod in mods])
        # Charge-model constants.
        cox_tot = np.array([mod.cox for mod in mods]) * width * leff
        self.cox_tot = cox_tot
        self.c_ov_gs = np.array([mod.cgso for mod in mods]) * width
        self.c_ov_gd = np.array([mod.cgdo for mod in mods]) * width
        self.c_ov_gb = np.array([mod.cgbo for mod in mods]) * leff
        area = width * np.array([mod.ldiff for mod in mods])
        perim = width + 2 * np.array([mod.ldiff for mod in mods])
        self.c_jxn = (np.array([mod.cj for mod in mods]) * area
                      + np.array([mod.cjsw for mod in mods]) * perim)

    def evaluate(self, v: np.ndarray) -> MosEval:
        """Vectorized large-signal evaluation at node-voltage vector *v*.

        *v* must include the sentinel ground entry (value 0) so that plain
        fancy indexing works for grounded terminals.
        """
        vd = v[self.nd]
        vg = v[self.ng]
        vs = v[self.ns]
        vb = v[self.nb]
        sign = self.sign

        # Work in the NMOS-equivalent frame.
        vds_raw = sign * (vd - vs)
        reversed_mode = vds_raw < 0.0
        d_eff = np.where(reversed_mode, self.ns, self.nd)
        s_eff = np.where(reversed_mode, self.nd, self.ns)
        vs_eff = np.where(reversed_mode, vd, vs)
        vd_eff = np.where(reversed_mode, vs, vd)

        vgs = sign * (vg - vs_eff)
        vds = sign * (vd_eff - vs_eff)
        vsb = sign * (vs_eff - vb)

        sqrt_arg = np.maximum(self.phi + vsb, 0.02 * self.phi)
        sqrt_term = np.sqrt(sqrt_arg)
        vt = sign * self.vto + self.gamma * (sqrt_term - np.sqrt(self.phi))
        dvt_dvsb = self.gamma / (2.0 * sqrt_term)

        vov = vgs - vt
        clm = 1.0 + self.lambd * vds

        cutoff = vov <= 0.0
        triode = (~cutoff) & (vds < vov)
        sat = (~cutoff) & (~triode)

        ids = np.zeros(self.count)
        gm = np.zeros(self.count)
        gds = np.zeros(self.count)

        beta = self.beta
        # Triode region.
        if np.any(triode):
            idx = triode
            ids_t = beta * (vov * vds - 0.5 * vds * vds) * clm
            gm_t = beta * vds * clm
            gds_t = (beta * (vov - vds) * clm
                     + beta * (vov * vds - 0.5 * vds * vds) * self.lambd)
            ids[idx] = ids_t[idx]
            gm[idx] = gm_t[idx]
            gds[idx] = gds_t[idx]
        # Saturation region.
        if np.any(sat):
            idx = sat
            ids_s = 0.5 * beta * vov * vov * clm
            gm_s = beta * vov * clm
            gds_s = 0.5 * beta * vov * vov * self.lambd
            ids[idx] = ids_s[idx]
            gm[idx] = gm_s[idx]
            gds[idx] = gds_s[idx]

        gmb = gm * dvt_dvsb

        region = np.where(cutoff, 0, np.where(triode, 1, 2))
        # Map back to physical current: in the NMOS frame ids flows from
        # effective drain to effective source; multiply by sign for PMOS.
        return MosEval(
            ids=sign * ids,
            gm=gm,
            gds=gds,
            gmb=gmb,
            d_eff=d_eff,
            s_eff=s_eff,
            vgs=vgs,
            vds=vds,
            region=region,
        )

    def capacitances(self, v: np.ndarray) -> dict[str, np.ndarray]:
        """Meyer gate capacitances + overlaps + zero-bias junctions.

        Returns arrays ``cgs, cgd, cgb, cbd, cbs`` (F), in the *physical*
        terminal frame (swap handled internally).
        """
        ev = self.evaluate(v)
        cgs_i = np.zeros(self.count)
        cgd_i = np.zeros(self.count)
        cgb_i = np.zeros(self.count)
        cox = self.cox_tot

        cutoff = ev.region == 0
        triode = ev.region == 1
        sat = ev.region == 2
        cgb_i[cutoff] = cox[cutoff]
        cgs_i[triode] = 0.5 * cox[triode]
        cgd_i[triode] = 0.5 * cox[triode]
        cgs_i[sat] = (2.0 / 3.0) * cox[sat]

        # Meyer "cgs"/"cgd" are referenced to the effective source/drain;
        # when the device is reversed, swap them back to physical terms.
        swapped = ev.d_eff != self.nd
        cgs = np.where(swapped, cgd_i, cgs_i) + self.c_ov_gs
        cgd = np.where(swapped, cgs_i, cgd_i) + self.c_ov_gd
        cgb = cgb_i + self.c_ov_gb
        cbd = self.c_jxn.copy()
        cbs = self.c_jxn.copy()
        return {"cgs": cgs, "cgd": cgd, "cgb": cgb, "cbd": cbd, "cbs": cbs}
