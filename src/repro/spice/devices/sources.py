"""Independent sources and their transient waveforms.

A source has a DC value, an AC magnitude/phase (for small-signal analysis)
and an optional transient :class:`Waveform`.  When a waveform is present it
defines the large-signal value at time *t*; otherwise the DC value is used.

Waveforms mirror the classic Spice ones (``PULSE``, ``SIN``, ``PWL``) and a
Python-callable escape hatch (:class:`Arbitrary`) used by the mixed-signal
co-simulation wrapper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.spice.devices.base import TwoTerminal
from repro.spice.errors import NetlistError
from repro.spice.units import parse_value


class Waveform:
    """Base class of transient source waveforms: a function of time."""

    def value(self, t: float) -> float:
        raise NotImplementedError

    def __call__(self, t: float) -> float:
        return self.value(t)


@dataclass(frozen=True)
class Pulse(Waveform):
    """Spice ``PULSE(v1 v2 td tr tf pw per)`` waveform."""

    v1: float
    v2: float
    td: float = 0.0
    tr: float = 1e-12
    tf: float = 1e-12
    pw: float = 1e-6
    per: float = math.inf

    def __post_init__(self):
        if self.tr < 0 or self.tf < 0 or self.pw < 0:
            raise NetlistError("PULSE: tr, tf and pw must be >= 0")
        if self.per <= 0:
            raise NetlistError("PULSE: period must be positive")

    def value(self, t: float) -> float:
        if t < self.td:
            return self.v1
        t = t - self.td
        if math.isfinite(self.per):
            t = math.fmod(t, self.per)
        tr = max(self.tr, 1e-15)
        tf = max(self.tf, 1e-15)
        if t < tr:
            return self.v1 + (self.v2 - self.v1) * t / tr
        t -= tr
        if t < self.pw:
            return self.v2
        t -= self.pw
        if t < tf:
            return self.v2 + (self.v1 - self.v2) * t / tf
        return self.v1


@dataclass(frozen=True)
class Sin(Waveform):
    """Spice ``SIN(vo va freq td theta)`` waveform."""

    vo: float
    va: float
    freq: float
    td: float = 0.0
    theta: float = 0.0

    def __post_init__(self):
        if self.freq <= 0:
            raise NetlistError("SIN: frequency must be positive")

    def value(self, t: float) -> float:
        if t < self.td:
            return self.vo
        dt = t - self.td
        return (self.vo
                + self.va * math.exp(-dt * self.theta)
                * math.sin(2.0 * math.pi * self.freq * dt))


@dataclass(frozen=True)
class Pwl(Waveform):
    """Piece-wise linear waveform from ``(t, v)`` breakpoints."""

    points: tuple[tuple[float, float], ...]

    def __init__(self, points: Sequence[tuple[float, float]]):
        pts = tuple((float(t), float(v)) for t, v in points)
        if len(pts) < 1:
            raise NetlistError("PWL: needs at least one point")
        times = [t for t, _ in pts]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise NetlistError("PWL: time points must be strictly increasing")
        object.__setattr__(self, "points", pts)
        object.__setattr__(self, "_times", np.array(times))
        object.__setattr__(self, "_values", np.array([v for _, v in pts]))

    def value(self, t: float) -> float:
        times, values = self._times, self._values
        if t <= times[0]:
            return float(values[0])
        if t >= times[-1]:
            return float(values[-1])
        return float(np.interp(t, times, values))


class Arbitrary(Waveform):
    """Waveform backed by an arbitrary Python callable ``f(t) -> value``."""

    def __init__(self, fn: Callable[[float], float]):
        self._fn = fn

    def value(self, t: float) -> float:
        return float(self._fn(t))


@dataclass(frozen=True)
class _Source(TwoTerminal):
    dc: float = 0.0
    ac_mag: float = 0.0
    ac_phase: float = 0.0
    wave: Waveform | None = None

    def __init__(self, name: str, n1: str, n2: str, dc: float | str = 0.0,
                 ac_mag: float | str = 0.0, ac_phase: float = 0.0,
                 wave: Waveform | None = None):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "n1", n1)
        object.__setattr__(self, "n2", n2)
        object.__setattr__(self, "dc", parse_value(dc))
        object.__setattr__(self, "ac_mag", parse_value(ac_mag))
        object.__setattr__(self, "ac_phase", float(ac_phase))
        object.__setattr__(self, "wave", wave)

    def value_at(self, t: float) -> float:
        """Large-signal value at time *t* (waveform if present, else DC)."""
        if self.wave is None:
            return self.dc
        return self.wave.value(t)

    @property
    def ac_complex(self) -> complex:
        """AC stimulus as a phasor."""
        return self.ac_mag * complex(
            math.cos(math.radians(self.ac_phase)),
            math.sin(math.radians(self.ac_phase)),
        )


class VoltageSource(_Source):
    """Independent voltage source (one MNA branch-current unknown).

    Positive terminal is ``n1``; the branch current flows n1 -> n2 inside
    the source (Spice convention: current *into* n1 is reported).
    """


class CurrentSource(_Source):
    """Independent current source; current flows from ``n1`` to ``n2``
    through the source (i.e. it pushes current out of ``n2``)."""
