"""Modified Nodal Analysis: compilation, stamping and Newton solution.

The compiler (:class:`MnaSystem`) turns a :class:`~repro.spice.netlist.Circuit`
into:

* a static linear matrix ``G0`` (resistors, controlled sources, source and
  inductor branch topology),
* packed linear-capacitor / inductor arrays for the dynamic part,
* vectorized nonlinear device groups (MOSFETs, diodes, switches).

Ground handling uses the sentinel trick: ground maps to an extra row and
column (index ``size``) of an oversized matrix, so stamping never needs
branching on grounded terminals; the solver simply drops the last
row/column.

The Newton loop (:meth:`MnaSystem.newton`) implements standard Spice
practice: companion linearization of each nonlinear device, per-entry
``reltol``/``vntol``/``abstol`` convergence checks, voltage-step damping,
and ``gmin``/source stepping as homotopy fallbacks (used by the operating
point analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.spice.devices.controlled import Vccs, Vcvs
from repro.spice.devices.diode import Diode, DiodeGroup, DiodeModel
from repro.spice.devices.mosfet import MosGroup, Mosfet, MosModel
from repro.spice.devices.passives import Capacitor, Inductor, Resistor
from repro.spice.devices.sources import CurrentSource, VoltageSource
from repro.spice.devices.switch import SwitchGroup, SwitchModel, VSwitch
from repro.spice.errors import (
    ConvergenceError,
    NetlistError,
    SingularMatrixError,
)
from repro.spice.netlist import Circuit


@dataclass
class StampTriples:
    """Sparse additions (rows, cols, vals) applied on top of ``G0``."""

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray


@dataclass
class RhsAdditions:
    """Sparse additions (rows, vals) applied on top of the source vector."""

    rows: np.ndarray
    vals: np.ndarray


class MnaSystem:
    """Compiled MNA representation of a circuit.

    Args:
        circuit: the circuit to compile.
        gmin: conductance added from every node to ground (leakage /
            convergence aid).
        reltol, vntol, abstol: Newton convergence tolerances (relative,
            node-voltage absolute, branch-current absolute).
    """

    def __init__(self, circuit: Circuit, gmin: float = 1e-12,
                 reltol: float = 1e-3, vntol: float = 1e-6,
                 abstol: float = 1e-9):
        # The historic shallow gate: a ground reference must exist.
        # Full structural verification (floating nodes, DC cuts, source
        # loops...) is the lint engine's job and runs in the cosim
        # pre-flight / CLI, not on every MNA compile - tests and
        # analyses legitimately build degenerate circuits on purpose.
        from repro.spice.lint import preflight_check

        preflight_check(circuit, rules=("SP-GND-001",))
        self.circuit = circuit
        self.gmin = float(gmin)
        self.reltol = float(reltol)
        self.vntol = float(vntol)
        self.abstol = float(abstol)

        self.nodes = circuit.node_names()
        self.n_nodes = len(self.nodes)

        self.vsources: list[VoltageSource] = circuit.devices_of(VoltageSource)
        self.vcvs: list[Vcvs] = circuit.devices_of(Vcvs)
        self.inductors: list[Inductor] = circuit.devices_of(Inductor)
        self.n_branch = (len(self.vsources) + len(self.vcvs)
                         + len(self.inductors))
        self.size = self.n_nodes + self.n_branch
        self.ground = self.size  # sentinel row/column

        self.node_index: dict[str, int] = {
            name: i for i, name in enumerate(self.nodes)}
        self.node_index["0"] = self.ground

        self.branch_index: dict[str, int] = {}
        row = self.n_nodes
        for dev in (*self.vsources, *self.vcvs, *self.inductors):
            self.branch_index[dev.name] = row
            row += 1

        self._compile_groups()
        self._compile_static()
        self._compile_dynamic()

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _node(self, name: str) -> int:
        return self.node_index[name]

    def _compile_groups(self) -> None:
        models = self.circuit.models
        mos_models = {k: m for k, m in models.items()
                      if isinstance(m, MosModel)}
        dio_models = {k: m for k, m in models.items()
                      if isinstance(m, DiodeModel)}
        sw_models = {k: m for k, m in models.items()
                     if isinstance(m, SwitchModel)}
        mosfets = self.circuit.devices_of(Mosfet)
        diodes = self.circuit.devices_of(Diode)
        switches = self.circuit.devices_of(VSwitch)
        self.mos_group = (MosGroup(mosfets, mos_models, self.node_index)
                          if mosfets else None)
        self.diode_group = (DiodeGroup(diodes, dio_models, self.node_index)
                            if diodes else None)
        self.switch_group = (SwitchGroup(switches, sw_models, self.node_index)
                             if switches else None)

    def _compile_static(self) -> None:
        """Static linear stamps: R, VCCS, and V-source/VCVS/L topology."""
        n = self.size + 1
        g0 = np.zeros((n, n))
        for res in self.circuit.devices_of(Resistor):
            a, b = self._node(res.n1), self._node(res.n2)
            g = res.conductance
            g0[a, a] += g
            g0[b, b] += g
            g0[a, b] -= g
            g0[b, a] -= g
        for src in self.circuit.devices_of(Vccs):
            a, b = self._node(src.n1), self._node(src.n2)
            c, d = self._node(src.cn1), self._node(src.cn2)
            g = src.gain
            g0[a, c] += g
            g0[a, d] -= g
            g0[b, c] -= g
            g0[b, d] += g
        for src in self.vsources:
            a, b = self._node(src.n1), self._node(src.n2)
            k = self.branch_index[src.name]
            g0[a, k] += 1.0
            g0[b, k] -= 1.0
            g0[k, a] += 1.0
            g0[k, b] -= 1.0
        for src in self.vcvs:
            a, b = self._node(src.n1), self._node(src.n2)
            c, d = self._node(src.cn1), self._node(src.cn2)
            k = self.branch_index[src.name]
            g0[a, k] += 1.0
            g0[b, k] -= 1.0
            g0[k, a] += 1.0
            g0[k, b] -= 1.0
            g0[k, c] -= src.gain
            g0[k, d] += src.gain
        for ind in self.inductors:
            a, b = self._node(ind.n1), self._node(ind.n2)
            k = self.branch_index[ind.name]
            g0[a, k] += 1.0
            g0[b, k] -= 1.0
            g0[k, a] += 1.0
            g0[k, b] -= 1.0
            # The L*di/dt term is added as a transient companion; in DC the
            # branch equation v1 - v2 = 0 correctly shorts the inductor.
        self.g_static = g0

    def _compile_dynamic(self) -> None:
        caps = self.circuit.devices_of(Capacitor)
        self.cap_n1 = np.array([self._node(c.n1) for c in caps], dtype=np.intp)
        self.cap_n2 = np.array([self._node(c.n2) for c in caps], dtype=np.intp)
        self.cap_val = np.array([c.value for c in caps])
        self.cap_ic = np.array(
            [c.ic if c.ic is not None else np.nan for c in caps])
        self.ind_val = np.array([i.value for i in self.inductors])
        self.ind_rows = np.array(
            [self.branch_index[i.name] for i in self.inductors], dtype=np.intp)

    # ------------------------------------------------------------------
    # assembly helpers
    # ------------------------------------------------------------------
    def full_vector(self, x: np.ndarray) -> np.ndarray:
        """Append the sentinel ground entry (0 V) to a solution vector."""
        return np.concatenate([x, [0.0]])

    def source_vector(self, t: float | None = None,
                      overrides: Mapping[str, float] | None = None,
                      scale: float = 1.0) -> np.ndarray:
        """RHS vector from independent sources.

        Args:
            t: evaluate transient waveforms at this time; ``None`` selects
                the DC value.
            overrides: per-source value overrides (used by co-simulation
                and source stepping), keyed by device name.
            scale: multiplies every independent source (source stepping).
        """
        b = np.zeros(self.size + 1)
        overrides = overrides or {}
        for src in self.vsources:
            k = self.branch_index[src.name]
            if src.name in overrides:
                value = overrides[src.name]
            elif t is None:
                value = src.dc
            else:
                value = src.value_at(t)
            b[k] += value * scale
        for src in self.circuit.devices_of(CurrentSource):
            a, c = self._node(src.n1), self._node(src.n2)
            if src.name in overrides:
                value = overrides[src.name]
            elif t is None:
                value = src.dc
            else:
                value = src.value_at(t)
            b[a] -= value * scale
            b[c] += value * scale
        return b

    def stamp_nonlinear(self, a_mat: np.ndarray, b: np.ndarray,
                        x_full: np.ndarray) -> None:
        """Companion-linearize all nonlinear groups at *x_full* and stamp
        them into matrix *a_mat* and RHS *b* (both oversized)."""
        if self.mos_group is not None:
            ev = self.mos_group.evaluate(x_full)
            d, s = ev.d_eff, ev.s_eff
            g_node, b_node = self.mos_group.ng, self.mos_group.nb
            gm, gds, gmb = ev.gm, ev.gds, ev.gmb
            gss = gm + gds + gmb
            rows = np.concatenate([d, d, d, d, s, s, s, s])
            cols = np.concatenate([d, g_node, b_node, s] * 2)
            vals = np.concatenate(
                [gds, gm, gmb, -gss, -gds, -gm, -gmb, gss])
            np.add.at(a_mat, (rows, cols), vals)
            i_lin = (gds * x_full[d] + gm * x_full[g_node]
                     + gmb * x_full[b_node] - gss * x_full[s])
            i_eq = ev.ids - i_lin
            np.add.at(b, d, -i_eq)
            np.add.at(b, s, i_eq)
        if self.diode_group is not None:
            grp = self.diode_group
            current, cond = grp.evaluate(x_full)
            na, nc = grp.na, grp.nc
            rows = np.concatenate([na, na, nc, nc])
            cols = np.concatenate([na, nc, na, nc])
            vals = np.concatenate([cond, -cond, -cond, cond])
            np.add.at(a_mat, (rows, cols), vals)
            i_eq = current - cond * (x_full[na] - x_full[nc])
            np.add.at(b, na, -i_eq)
            np.add.at(b, nc, i_eq)
        if self.switch_group is not None:
            grp = self.switch_group
            g, dg_dvc, v12 = grp.evaluate(x_full)
            n1, n2, c1, c2 = grp.n1, grp.n2, grp.c1, grp.c2
            rows = np.concatenate([n1, n1, n1, n1, n2, n2, n2, n2])
            cols = np.concatenate([n1, n2, c1, c2] * 2)
            gc = dg_dvc * v12
            vals = np.concatenate([g, -g, gc, -gc, -g, g, -gc, gc])
            np.add.at(a_mat, (rows, cols), vals)
            vc = x_full[c1] - x_full[c2]
            i0 = g * v12
            i_lin = g * v12 + gc * vc
            i_eq = i0 - i_lin
            np.add.at(b, n1, -i_eq)
            np.add.at(b, n2, i_eq)

    # ------------------------------------------------------------------
    # Newton solution
    # ------------------------------------------------------------------
    def _converged(self, x_new: np.ndarray, x_old: np.ndarray) -> bool:
        dx = np.abs(x_new - x_old)
        xmag = np.maximum(np.abs(x_new), np.abs(x_old))
        tol = np.empty(self.size)
        tol[: self.n_nodes] = self.vntol + self.reltol * xmag[: self.n_nodes]
        tol[self.n_nodes:] = self.abstol + self.reltol * xmag[self.n_nodes:]
        return bool(np.all(dx <= tol))

    def newton(self, x0: np.ndarray | None = None,
               t: float | None = None,
               overrides: Mapping[str, float] | None = None,
               extra_g: StampTriples | None = None,
               extra_b: RhsAdditions | None = None,
               gmin: float | None = None,
               source_scale: float = 1.0,
               max_iter: int = 100,
               damping: float = 2.0) -> np.ndarray:
        """Solve the (possibly nonlinear) MNA system by damped Newton.

        Args:
            x0: initial guess (size ``self.size``); zeros if omitted.
            t: waveform evaluation time (``None`` = DC values).
            overrides: independent-source value overrides.
            extra_g / extra_b: additional stamps (transient companions).
            gmin: overrides the instance ``gmin`` (gmin stepping).
            source_scale: multiplies independent sources (source stepping).
            max_iter: Newton iteration limit.
            damping: maximum per-iteration node-voltage change (V).

        Returns:
            The solution vector (node voltages then branch currents).

        Raises:
            ConvergenceError: Newton failed to converge.
            SingularMatrixError: structurally singular system.
        """
        x = np.zeros(self.size) if x0 is None else np.asarray(x0, float).copy()
        gmin_val = self.gmin if gmin is None else gmin
        b_src = self.source_vector(t=t, overrides=overrides,
                                   scale=source_scale)
        n = self.size
        is_linear = (self.mos_group is None and self.diode_group is None
                     and self.switch_group is None)
        diag = np.arange(self.n_nodes)

        for iteration in range(max_iter):
            a_mat = self.g_static.copy()
            b = b_src.copy()
            if extra_g is not None:
                np.add.at(a_mat, (extra_g.rows, extra_g.cols), extra_g.vals)
            if extra_b is not None:
                np.add.at(b, extra_b.rows, extra_b.vals)
            x_full = self.full_vector(x)
            self.stamp_nonlinear(a_mat, b, x_full)
            a_red = a_mat[:n, :n].copy()
            a_red[diag, diag] += gmin_val
            try:
                x_new = np.linalg.solve(a_red, b[:n])
            except np.linalg.LinAlgError as exc:
                raise SingularMatrixError(
                    f"singular MNA matrix for {self.circuit!r}: {exc}"
                ) from exc
            if not np.all(np.isfinite(x_new)):
                raise SingularMatrixError(
                    f"non-finite solution for {self.circuit!r} "
                    "(check for floating nodes)")
            if is_linear:
                return x_new
            dx = x_new - x
            dv = dx[: self.n_nodes]
            max_dv = np.max(np.abs(dv)) if self.n_nodes else 0.0
            if max_dv > damping:
                dx = dx * (damping / max_dv)
                x_new = x + dx
            if self._converged(x_new, x) and max_dv <= damping:
                return x_new
            x = x_new
        raise ConvergenceError(
            f"Newton did not converge in {max_iter} iterations "
            f"for {self.circuit!r}", iterations=max_iter)

    def solve_robust(self, x0: np.ndarray | None = None,
                     overrides: Mapping[str, float] | None = None,
                     t: float | None = None) -> np.ndarray:
        """Newton with gmin-stepping and source-stepping homotopy fallbacks
        (the standard Spice OP strategy)."""
        try:
            return self.newton(x0, t=t, overrides=overrides)
        except ConvergenceError:
            pass
        # gmin stepping: solve with a large gmin, then reduce it gradually.
        x = x0
        try:
            for gmin in np.logspace(-3, np.log10(max(self.gmin, 1e-13)), 12):
                x = self.newton(x, t=t, overrides=overrides, gmin=gmin)
            return self.newton(x, t=t, overrides=overrides)
        except ConvergenceError:
            pass
        # source stepping: ramp all independent sources from 0 to 100 %.
        x = None
        try:
            for scale in np.linspace(0.05, 1.0, 20):
                x = self.newton(x, t=t, overrides=overrides,
                                source_scale=scale)
            return x
        except ConvergenceError as exc:
            raise ConvergenceError(
                f"operating point failed for {self.circuit!r} even with "
                "gmin and source stepping") from exc

    # ------------------------------------------------------------------
    # small-signal matrices (for AC analysis)
    # ------------------------------------------------------------------
    def small_signal_matrices(self, x_op: np.ndarray
                              ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(G, C)`` linearized at the operating point *x_op*,
        both reduced to ``size x size`` (ground dropped)."""
        n = self.size
        a_mat = self.g_static.copy()
        b = np.zeros(self.size + 1)
        x_full = self.full_vector(x_op)
        self.stamp_nonlinear(a_mat, b, x_full)
        g_red = a_mat[:n, :n].copy()
        diag = np.arange(self.n_nodes)
        g_red[diag, diag] += self.gmin

        c_mat = np.zeros((n + 1, n + 1))
        self._stamp_caps(c_mat, self.cap_n1, self.cap_n2, self.cap_val)
        for pair_n1, pair_n2, vals in self._mos_cap_pairs(x_full):
            self._stamp_caps(c_mat, pair_n1, pair_n2, vals)
        # Inductor branches: v1 - v2 - jwL i = 0 -> C[k, k] = -L.
        if len(self.ind_rows):
            c_mat[self.ind_rows, self.ind_rows] -= self.ind_val
        return g_red, c_mat[:n, :n]

    @staticmethod
    def _stamp_caps(c_mat: np.ndarray, n1: np.ndarray, n2: np.ndarray,
                    vals: np.ndarray) -> None:
        if len(vals) == 0:
            return
        np.add.at(c_mat, (n1, n1), vals)
        np.add.at(c_mat, (n2, n2), vals)
        np.add.at(c_mat, (n1, n2), -vals)
        np.add.at(c_mat, (n2, n1), -vals)

    def _mos_cap_pairs(self, x_full: np.ndarray):
        """Yield ``(n1, n2, value)`` arrays for every MOSFET capacitance."""
        if self.mos_group is None:
            return
        grp = self.mos_group
        caps = grp.capacitances(x_full)
        yield grp.ng, grp.ns, caps["cgs"]
        yield grp.ng, grp.nd, caps["cgd"]
        yield grp.ng, grp.nb, caps["cgb"]
        yield grp.nb, grp.nd, caps["cbd"]
        yield grp.nb, grp.ns, caps["cbs"]

    def dynamic_caps(self, x_full: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All capacitances (linear + device) as ``(n1, n2, value)`` arrays,
        evaluated at *x_full*.  Used by the transient companion models."""
        n1_list = [self.cap_n1]
        n2_list = [self.cap_n2]
        val_list = [self.cap_val]
        for pair_n1, pair_n2, vals in self._mos_cap_pairs(x_full):
            n1_list.append(pair_n1)
            n2_list.append(pair_n2)
            val_list.append(vals)
        return (np.concatenate(n1_list), np.concatenate(n2_list),
                np.concatenate(val_list))

    # ------------------------------------------------------------------
    # result helpers
    # ------------------------------------------------------------------
    def voltage(self, x: np.ndarray, node: str) -> float:
        """Node voltage from a solution vector (ground returns 0)."""
        from repro.spice.netlist import normalize_node

        node = normalize_node(node)
        if node == "0":
            return 0.0
        try:
            return float(x[self.node_index[node]])
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def branch_current(self, x: np.ndarray, device: str) -> float:
        """Branch current of a voltage source / VCVS / inductor."""
        try:
            return float(x[self.branch_index[device.lower()]])
        except KeyError:
            raise NetlistError(
                f"{device!r} has no branch current (not a V source, "
                "VCVS or inductor)") from None
