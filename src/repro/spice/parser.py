"""Spice-format netlist parser.

Supports the subset of classic Spice syntax needed to describe the
circuits in this repository (and a bit more):

* elements: ``R C L V I E G M D S X``
* ``.model`` cards for ``nmos`` / ``pmos`` / ``d`` / ``sw``
* ``.subckt`` / ``.ends`` definitions (must precede their use; eagerly
  flattened at instantiation like Spice ``X`` expansion)
* ``.param`` with ``{...}`` arithmetic expressions in element values
* ``+`` continuation lines, ``*`` comment lines, ``;``/``$`` trailing
  comments, engineering suffixes (``k``, ``meg``, ``u`` ...)
* source transients: ``PULSE(...)``, ``SIN(...)``, ``PWL(...)``, plus
  ``DC`` and ``AC`` specifications.

The first non-blank line is the title (classic Spice convention) unless
``title_line=False``.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Iterator

from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    DiodeModel,
    Inductor,
    Mosfet,
    MosModel,
    Pulse,
    Pwl,
    Resistor,
    Sin,
    SwitchModel,
    Vccs,
    Vcvs,
    VoltageSource,
    VSwitch,
)
from repro.spice.errors import NetlistError, ParseError
from repro.spice.netlist import Circuit, Subckt
from repro.spice.units import parse_value

__all__ = ["parse_netlist", "parse_value"]

_EXPR_NAMES = {
    "pi": math.pi,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "log10": math.log10,
    "sin": math.sin,
    "cos": math.cos,
    "abs": abs,
    "min": min,
    "max": max,
    "pow": pow,
}

# Model parameters accepted but deliberately ignored (kept for
# compatibility with cards written for other simulators).
_IGNORED_MOS_PARAMS = {
    "level", "u0", "nsub", "tpg", "xj", "js", "is", "rd", "rs", "rsh",
    "nfs", "delta", "eta", "theta", "kappa", "vmax", "af", "kf", "fc",
    "mj", "mjsw", "pb",
}


def _strip_comment(line: str) -> str:
    for marker in (";", "$"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.rstrip()


def _logical_lines(text: str) -> Iterator[tuple[int, str]]:
    """Join ``+`` continuations; yield ``(first_line_no, logical_line)``."""
    pending: str | None = None
    pending_no = 0
    for no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if pending is None:
                raise ParseError("continuation line with nothing to continue",
                                 no, raw)
            pending += " " + stripped[1:]
            continue
        if pending is not None:
            yield pending_no, pending
        pending = stripped
        pending_no = no
    if pending is not None:
        yield pending_no, pending


def _tokenize(line: str) -> list[str]:
    """Split a logical line into tokens; ``{...}`` expressions and
    quoted expressions stay single tokens."""
    tokens: list[str] = []
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if ch.isspace() or ch == ",":
            i += 1
        elif ch == "{":
            j = line.find("}", i)
            if j < 0:
                raise ParseError(f"unterminated '{{' expression in {line!r}")
            tokens.append(line[i:j + 1])
            i = j + 1
        elif ch == "'":
            j = line.find("'", i + 1)
            if j < 0:
                raise ParseError(f"unterminated quoted expression in {line!r}")
            tokens.append("{" + line[i + 1:j] + "}")
            i = j + 1
        elif ch in "()=":
            tokens.append(ch)
            i += 1
        else:
            j = i
            while j < n and not line[j].isspace() and line[j] not in "(),='{":
                j += 1
            tokens.append(line[i:j])
            i = j
    return tokens


class _NetlistParser:
    def __init__(self, title_line: bool = True):
        self.title_line = title_line
        self.params: dict[str, float] = {}

    # -- value helpers -------------------------------------------------
    def value(self, token: str) -> float:
        """Evaluate a numeric token: plain number, suffixed number,
        parameter name, or ``{expression}``."""
        if token.startswith("{") and token.endswith("}"):
            return self.eval_expr(token[1:-1])
        try:
            return parse_value(token)
        except ValueError:
            key = token.lower()
            if key in self.params:
                return self.params[key]
            raise ParseError(f"cannot evaluate value {token!r}") from None

    def eval_expr(self, expr: str) -> float:
        names = dict(_EXPR_NAMES)
        names.update(self.params)
        # Replace engineering-suffixed literals (e.g. 10u) up front.
        def repl(match: re.Match) -> str:
            return repr(parse_value(match.group(0)))

        expr = re.sub(
            r"(?<![\w.])(\d+\.?\d*|\.\d+)(meg|mil|[tgkmunpfa])(?![\w])",
            repl, expr, flags=re.IGNORECASE)
        try:
            result = eval(expr, {"__builtins__": {}}, names)  # noqa: S307
        except Exception as exc:
            raise ParseError(f"bad expression {expr!r}: {exc}") from None
        return float(result)

    # -- main entry ----------------------------------------------------
    def parse(self, text: str) -> Circuit:
        title = ""
        if self.title_line:
            # Classic Spice: the first non-blank *raw* line is always
            # the title, whatever it looks like - even a ``*`` comment.
            # Deciding after comment-stripping would silently swallow
            # the first element of a netlist that opens with a comment.
            raw_lines = text.splitlines()
            for i, raw in enumerate(raw_lines):
                if raw.strip():
                    title = raw.strip()
                    # Blank (not delete) the line so error messages keep
                    # the original numbering.
                    raw_lines[i] = ""
                    text = "\n".join(raw_lines)
                    break
        lines = list(_logical_lines(text))
        circuit = Circuit(title)

        # First pass: collect .param so forward references work.
        for no, line in lines:
            tokens = _tokenize(line)
            if tokens and tokens[0].lower() == ".param":
                self._handle_param(tokens[1:], no, line)

        idx = 0
        while idx < len(lines):
            no, line = lines[idx]
            tokens = _tokenize(line)
            head = tokens[0].lower()
            if head == ".subckt":
                idx = self._parse_subckt(circuit, lines, idx)
                continue
            if head in (".param", ".end"):
                idx += 1
                continue
            if head == ".ends":
                raise ParseError(".ends without .subckt", no, line)
            if head == ".model":
                self._handle_model(circuit, tokens[1:], no, line)
            elif head.startswith("."):
                raise ParseError(f"unsupported directive {tokens[0]!r}",
                                 no, line)
            else:
                self._handle_element(circuit, tokens, no, line)
            idx += 1
        return circuit

    # -- directives ----------------------------------------------------
    def _handle_param(self, tokens: list[str], no: int, line: str) -> None:
        i = 0
        while i < len(tokens):
            if i + 2 >= len(tokens) or tokens[i + 1] != "=":
                raise ParseError(".param expects name=value pairs", no, line)
            name = tokens[i].lower()
            self.params[name] = self.value(tokens[i + 2])
            i += 3

    def _kv_pairs(self, tokens: list[str], no: int,
                  line: str) -> dict[str, float]:
        """Parse ``key = value`` pairs, skipping parentheses."""
        pairs: dict[str, float] = {}
        toks = [t for t in tokens if t not in ("(", ")")]
        i = 0
        while i < len(toks):
            if i + 2 >= len(toks) + 1 and toks[i + 1: i + 2] != ["="]:
                raise ParseError(f"expected key=value, got {toks[i:]!r}",
                                 no, line)
            if i + 2 >= len(toks) or toks[i + 1] != "=":
                raise ParseError(f"expected key=value, got {toks[i:]!r}",
                                 no, line)
            pairs[toks[i].lower()] = self.value(toks[i + 2])
            i += 3
        return pairs

    def _handle_model(self, circuit: Circuit, tokens: list[str],
                      no: int, line: str) -> None:
        if len(tokens) < 2:
            raise ParseError(".model needs a name and a type", no, line)
        name = tokens[0].lower()
        mtype = tokens[1].lower()
        pairs = self._kv_pairs(tokens[2:], no, line)
        if mtype in ("nmos", "pmos"):
            kwargs = {}
            for key, val in pairs.items():
                if key == "lambda":
                    kwargs["lambd"] = val
                elif key in ("vto", "kp", "gamma", "phi", "tox", "cgso",
                             "cgdo", "cgbo", "cj", "cjsw", "ld", "ldiff",
                             "lambd"):
                    kwargs[key] = val
                elif key in _IGNORED_MOS_PARAMS:
                    continue
                else:
                    raise ParseError(
                        f"unknown MOS model parameter {key!r}", no, line)
            circuit.add_model(MosModel(name=name, mtype=mtype[0], **kwargs))
        elif mtype == "d":
            kwargs = {}
            for key, val in pairs.items():
                if key == "is":
                    kwargs["is_"] = val
                elif key == "n":
                    kwargs["n"] = val
                elif key in ("cj0", "cjo"):
                    kwargs["cj0"] = val
                else:
                    raise ParseError(
                        f"unknown diode model parameter {key!r}", no, line)
            circuit.add_model(DiodeModel(name=name, **kwargs))
        elif mtype == "sw":
            kwargs = {}
            for key, val in pairs.items():
                if key in ("ron", "roff", "vt", "vh"):
                    kwargs[key] = val
                else:
                    raise ParseError(
                        f"unknown switch model parameter {key!r}", no, line)
            circuit.add_model(SwitchModel(name=name, **kwargs))
        else:
            raise ParseError(f"unsupported model type {mtype!r}", no, line)

    def _parse_subckt(self, circuit: Circuit,
                      lines: list[tuple[int, str]], start: int) -> int:
        no, line = lines[start]
        tokens = _tokenize(line)
        if len(tokens) < 3:
            raise ParseError(".subckt needs a name and ports", no, line)
        if "=" in tokens:
            raise ParseError("subckt parameters are not supported", no, line)
        name = tokens[1].lower()
        ports = tokens[2:]
        inner = Circuit(f"subckt {name}")
        inner.subckts = circuit.subckts  # visible earlier definitions
        idx = start + 1
        while idx < len(lines):
            no2, line2 = lines[idx]
            toks = _tokenize(line2)
            head = toks[0].lower()
            if head == ".ends":
                circuit.add_subckt(Subckt(name=name, ports=ports,
                                          circuit=inner))
                return idx + 1
            if head == ".subckt":
                raise ParseError("nested .subckt definitions are not "
                                 "supported", no2, line2)
            if head == ".model":
                self._handle_model(inner, toks[1:], no2, line2)
            elif head == ".param":
                pass  # collected in the first pass
            elif head.startswith("."):
                raise ParseError(f"unsupported directive {toks[0]!r} "
                                 "inside .subckt", no2, line2)
            else:
                self._handle_element(inner, toks, no2, line2)
            idx += 1
        raise ParseError(f".subckt {name} is missing .ends", no, line)

    # -- elements --------------------------------------------------------
    def _handle_element(self, circuit: Circuit, tokens: list[str],
                        no: int, line: str) -> None:
        name = tokens[0].lower()
        kind = name[0]
        try:
            if kind == "r":
                circuit.add(Resistor(name, tokens[1], tokens[2],
                                     self.value(tokens[3])))
            elif kind == "c":
                ic = self._trailing_ic(tokens[4:], no, line)
                circuit.add(Capacitor(name, tokens[1], tokens[2],
                                      self.value(tokens[3]), ic=ic))
            elif kind == "l":
                ic = self._trailing_ic(tokens[4:], no, line)
                circuit.add(Inductor(name, tokens[1], tokens[2],
                                     self.value(tokens[3]), ic=ic))
            elif kind in ("v", "i"):
                self._handle_source(circuit, kind, name, tokens, no, line)
            elif kind == "e":
                circuit.add(Vcvs(name, tokens[1], tokens[2], tokens[3],
                                 tokens[4], self.value(tokens[5])))
            elif kind == "g":
                circuit.add(Vccs(name, tokens[1], tokens[2], tokens[3],
                                 tokens[4], self.value(tokens[5])))
            elif kind == "m":
                params = self._kv_pairs(tokens[6:], no, line)
                if "w" not in params or "l" not in params:
                    raise ParseError("MOSFET needs W= and L=", no, line)
                circuit.add(Mosfet(name, tokens[1], tokens[2], tokens[3],
                                   tokens[4], tokens[5].lower(),
                                   params["w"], params["l"],
                                   m=params.get("m", 1.0)))
            elif kind == "d":
                circuit.add(Diode(name, tokens[1], tokens[2],
                                  tokens[3].lower()))
            elif kind == "s":
                circuit.add(VSwitch(name, tokens[1], tokens[2], tokens[3],
                                    tokens[4], tokens[5].lower()))
            elif kind == "x":
                circuit.instantiate(name, tokens[-1].lower(), tokens[1:-1])
            else:
                raise ParseError(f"unknown element type {tokens[0]!r}",
                                 no, line)
        except IndexError:
            raise ParseError(f"too few fields for element {tokens[0]!r}",
                             no, line) from None
        except NetlistError as exc:
            # Duplicate device names, bad subckt bindings and invalid
            # element values surface as parse errors with the offending
            # line instead of silently overwriting or failing later.
            raise ParseError(str(exc), no, line) from None

    def _trailing_ic(self, rest: list[str], no: int,
                     line: str) -> float | None:
        toks = [t for t in rest if t != "="]
        if not toks:
            return None
        if toks[0].lower() == "ic" and len(toks) >= 2:
            return self.value(toks[1])
        raise ParseError(f"unexpected trailing fields {rest!r}", no, line)

    def _handle_source(self, circuit: Circuit, kind: str, name: str,
                       tokens: list[str], no: int, line: str) -> None:
        n1, n2 = tokens[1], tokens[2]
        rest = tokens[3:]
        dc = 0.0
        ac_mag = 0.0
        ac_phase = 0.0
        wave = None
        i = 0

        def take_numbers(start: int) -> tuple[list[float], int]:
            vals: list[float] = []
            j = start
            if j < len(rest) and rest[j] == "(":
                j += 1
            while j < len(rest):
                tok = rest[j]
                if tok == ")":
                    j += 1
                    break
                if tok == "(":
                    j += 1
                    continue
                try:
                    vals.append(self.value(tok))
                except ParseError:
                    break
                j += 1
            return vals, j

        while i < len(rest):
            tok = rest[i].lower()
            if tok == "dc":
                dc = self.value(rest[i + 1])
                i += 2
            elif tok == "ac":
                ac_mag = self.value(rest[i + 1])
                i += 2
                if i < len(rest):
                    try:
                        ac_phase = self.value(rest[i])
                        i += 1
                    except ParseError:
                        pass
            elif tok == "pulse":
                vals, i = take_numbers(i + 1)
                if len(vals) < 2:
                    raise ParseError("PULSE needs at least v1 v2", no, line)
                defaults = [0.0, 0.0, 0.0, 1e-12, 1e-12, 1e-6, math.inf]
                vals = vals + defaults[len(vals):]
                wave = Pulse(*vals[:7])
            elif tok == "sin":
                vals, i = take_numbers(i + 1)
                if len(vals) < 3:
                    raise ParseError("SIN needs vo va freq", no, line)
                defaults = [0.0, 0.0, 0.0, 0.0, 0.0]
                vals = vals + defaults[len(vals):]
                wave = Sin(vals[0], vals[1], vals[2], vals[3], vals[4])
            elif tok == "pwl":
                vals, i = take_numbers(i + 1)
                if len(vals) < 2 or len(vals) % 2:
                    raise ParseError("PWL needs t/v pairs", no, line)
                pts = list(zip(vals[0::2], vals[1::2]))
                wave = Pwl(pts)
            else:
                # Bare leading number = DC value.
                dc = self.value(rest[i])
                i += 1
        cls = VoltageSource if kind == "v" else CurrentSource
        circuit.add(cls(name, n1, n2, dc=dc, ac_mag=ac_mag,
                        ac_phase=ac_phase, wave=wave))


def parse_netlist(text: str, title_line: bool = True) -> Circuit:
    """Parse Spice-format *text* into a :class:`Circuit`.

    Args:
        text: the netlist source.
        title_line: treat the first non-blank line as a title (classic
            Spice).  Lines that are clearly elements or directives are
            never consumed as titles.

    Raises:
        ParseError: with the offending line number on any syntax error.
    """
    return _NetlistParser(title_line=title_line).parse(text)
