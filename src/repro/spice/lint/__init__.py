"""Graph-based static netlist verification (the circuit-QA toolkit).

The pre-deployment discipline of large instrument papers applied to
netlists: flatten the circuit into a graph, prove structural sanity
*before* burning simulator time, and certify the shipped circuits
clean.  A malformed receiver netlist used to surface as an opaque
singular-matrix error deep inside a transient solve; it now fails fast
with a named rule and the offending nodes.

Three layers:

* :mod:`repro.spice.lint.graph` - :class:`CircuitGraph` flattens a
  circuit into node/device adjacency with normalized ground aliases and
  structural vs. DC-conduction edge views,
* :mod:`repro.spice.lint.rules` - the extensible ``@lint_rule``
  registry with stable ids (``SP-FLOAT-001``, ...) and severities,
* :mod:`repro.spice.lint.engine` / :mod:`~repro.spice.lint.report` -
  entry points producing serializable :class:`LintReport` values, plus
  the :func:`preflight_check` gate raising
  :class:`~repro.spice.errors.NetlistLintError`.

Wired in at three places: ``python -m repro lint`` (CLI verb), the
:class:`~repro.ams.cosim.SpiceBlock` pre-flight (opt out with
``preflight=False``), and the built-in circuit certification tests.
"""

from repro.spice.errors import NetlistLintError
from repro.spice.lint.engine import (
    lint_circuit,
    lint_netlist,
    lint_subckt,
    preflight_check,
)
from repro.spice.lint.graph import (
    CircuitGraph,
    dc_edges,
    non_current_source_edges,
    structural_edges,
)
from repro.spice.lint.report import LintFinding, LintReport, Severity
from repro.spice.lint.rules import LintRule, all_rules, get_rules, lint_rule

__all__ = [
    "CircuitGraph",
    "LintFinding",
    "LintReport",
    "LintRule",
    "NetlistLintError",
    "Severity",
    "all_rules",
    "dc_edges",
    "get_rules",
    "lint_circuit",
    "lint_netlist",
    "lint_rule",
    "lint_subckt",
    "non_current_source_edges",
    "preflight_check",
    "structural_edges",
]
