"""The circuit graph behind static netlist verification.

:class:`CircuitGraph` flattens a :class:`~repro.spice.netlist.Circuit`
(already flat - subcircuit instances expand eagerly through
``Subckt.flatten_into``) into an undirected node/device incidence
structure with normalized node names (``0``/``gnd``/``GND``/``vss!``
all collapse to ``"0"`` through the same
:func:`~repro.spice.netlist.normalize_node` the MNA node numbering
uses, so lint and simulator always agree on connectivity).

Two edge views drive the rules:

* **structural** edges - every device connects all of its terminals
  (even high-impedance sense pins); used for island detection,
* **DC-conduction** edges - only terminal pairs that carry direct
  current (resistors, inductors, sources' branches, switch channels,
  MOSFET drain/source/bulk junctions, diodes); capacitors, current
  sources, MOS gates and controlled-source sense pins conduct nothing,
  so capacitor-only cuts and gate-only nets show up as DC-floating.

Nodes listed in ``external`` (subcircuit ports of a definition linted
stand-alone) are assumed to be driven by the outside world: rules skip
floating/DC-path/island diagnostics for anything reachable from them.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
    VSwitch,
)
from repro.spice.devices.base import Device
from repro.spice.netlist import Circuit, normalize_node

#: the normalized global reference node.
GROUND = "0"

EdgeFn = Callable[[Device], Iterable[tuple[str, str]]]


def structural_edges(dev: Device) -> Iterator[tuple[str, str]]:
    """Every terminal of a device is structurally connected to the
    others (a chain suffices for union-find connectivity)."""
    nodes = dev.nodes
    for a, b in zip(nodes, nodes[1:]):
        yield a, b


def dc_edges(dev: Device) -> Iterator[tuple[str, str]]:
    """Terminal pairs of *dev* that conduct direct current."""
    if isinstance(dev, (Resistor, Inductor, Diode, VoltageSource)):
        yield dev.n1, dev.n2
    elif isinstance(dev, VSwitch):
        # ron/roff are both finite; the channel always conducts some DC.
        yield dev.n1, dev.n2
    elif isinstance(dev, Vcvs):
        # The controlled branch pins n1-n2; the sense pins are open.
        yield dev.n1, dev.n2
    elif isinstance(dev, Mosfet):
        # Channel plus junctions: drain/source/bulk form a DC-connected
        # cluster; the gate is purely capacitive.
        yield dev.d, dev.s
        yield dev.s, dev.b
    # Capacitor, CurrentSource, Vccs: no DC conduction at all.


def non_current_source_edges(dev: Device) -> Iterator[tuple[str, str]]:
    """Structural edges of everything except current-source branches
    (independent and voltage-controlled) - the graph whose cut
    components expose current-source cutsets."""
    if isinstance(dev, (CurrentSource, Vccs)):
        return
    yield from structural_edges(dev)


class _UnionFind:
    def __init__(self, items: Iterable[str]):
        self.parent = {item: item for item in items}

    def find(self, item: str) -> str:
        parent = self.parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, a: str, b: str) -> bool:
        """Merge the sets of *a* and *b*; False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


class CircuitGraph:
    """Incidence view of a flat circuit for the lint rules.

    Args:
        circuit: the (flat) circuit to analyze.
        external: node names treated as externally driven (subckt
            ports); normalized on entry.
    """

    def __init__(self, circuit: Circuit, external: Iterable[str] = ()):
        self.circuit = circuit
        self.external = frozenset(normalize_node(n) for n in external)
        # node -> [(device, terminal_index)] in insertion order
        self._attach: dict[str, list[tuple[Device, int]]] = {}
        for dev in circuit.devices:
            for idx, node in enumerate(dev.nodes):
                self._attach.setdefault(node, []).append((dev, idx))
        # External nodes exist even when no device touches them yet
        # (a dangling port binding).
        for node in self.external:
            self._attach.setdefault(node, [])

    # ------------------------------------------------------------------
    # node queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """All nodes (including ground when referenced)."""
        return list(self._attach)

    @property
    def has_ground(self) -> bool:
        return GROUND in self._attach and bool(self._attach[GROUND])

    def degree(self, node: str) -> int:
        """Number of device terminals attached to *node*."""
        return len(self._attach.get(normalize_node(node), ()))

    def devices_at(self, node: str) -> list[Device]:
        """Devices with at least one terminal on *node* (deduplicated,
        insertion order)."""
        seen: dict[int, Device] = {}
        for dev, _idx in self._attach.get(normalize_node(node), ()):
            seen.setdefault(id(dev), dev)
        return list(seen.values())

    def neighbors(self, node: str) -> list[str]:
        """Nodes sharing a device with *node* (excluding itself)."""
        node = normalize_node(node)
        seen: dict[str, None] = {}
        for dev in self.devices_at(node):
            for other in dev.nodes:
                if other != node:
                    seen.setdefault(other, None)
        return list(seen)

    def is_external(self, node: str) -> bool:
        return normalize_node(node) in self.external

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def components(self, edges: EdgeFn) -> list[set[str]]:
        """Connected components of the node set under *edges*.

        Args:
            edges: per-device edge generator (e.g.
                :func:`structural_edges` or :func:`dc_edges`).
        """
        uf = _UnionFind(self._attach)
        for dev in self.circuit.devices:
            for a, b in edges(dev):
                uf.union(a, b)
        groups: dict[str, set[str]] = {}
        for node in self._attach:
            groups.setdefault(uf.find(node), set()).add(node)
        return list(groups.values())

    def structural_components(self) -> list[set[str]]:
        return self.components(structural_edges)

    def dc_components(self) -> list[set[str]]:
        return self.components(dc_edges)

    def anchored(self, component: set[str]) -> bool:
        """True if *component* touches ground or an external node
        (i.e. the outside world can define its potentials)."""
        if GROUND in component:
            return True
        return bool(self.external & component)

    def __repr__(self) -> str:
        return (f"CircuitGraph({self.circuit.title!r}, "
                f"{len(self.circuit.devices)} devices, "
                f"{len(self._attach)} nodes)")
