"""The lint rule registry and the built-in rules.

A rule is a generator over a :class:`~repro.spice.lint.graph.CircuitGraph`
yielding ``(message, nodes, devices)`` triples; the engine stamps them
with the rule's stable id and severity into
:class:`~repro.spice.lint.report.LintFinding` values.  Register new
rules with the :func:`lint_rule` decorator::

    @lint_rule("SP-MYRULE-001", Severity.WARN, "my description")
    def _my_rule(graph):
        for node in graph.nodes:
            if looks_odd(node):
                yield f"node {node!r} looks odd", (node,), ()

Rule ids are part of the public contract: reports, the CLI ``--fail-on``
gate and the cosim pre-flight all reference them, so ids never change
meaning once shipped.

Built-in rules
==============

========================  ========  =======================================
id                        severity  defect
========================  ========  =======================================
``SP-GND-001``            error     no ground reference anywhere
``SP-FLOAT-001``          error     floating node (fewer than 2 terminals)
``SP-DCPATH-001``         error     no DC path to ground (capacitor /
                                    current-source / gate-only cut)
``SP-ISLAND-001``         error     island disconnected from ground
``SP-PORT-001``           error     dangling subcircuit port
``SP-SHORT-001``          warn      two-terminal device shorted on one net
``SP-SHORT-002``          error     voltage source shorted on one net
``SP-VALUE-001``          error     zero/negative passive value
``SP-VLOOP-001``          error     loop of voltage sources
``SP-ICUT-001``           error     current-source cutset
``SP-MODEL-001``          error     device references a missing model card
``SP-UNUSED-001``         info      model card never referenced
``SP-UNUSED-002``         info      subcircuit defined but never used
========================  ========  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
    VSwitch,
)
from repro.spice.devices.base import Device
from repro.spice.lint.graph import (
    GROUND,
    CircuitGraph,
    _UnionFind,
    non_current_source_edges,
)
from repro.spice.lint.report import Severity
from repro.spice.netlist import normalize_node

#: a rule yields (message, offending nodes, offending devices).
RuleOutput = Iterator[tuple[str, tuple[str, ...], tuple[str, ...]]]
RuleFn = Callable[[CircuitGraph], RuleOutput]


@dataclass(frozen=True)
class LintRule:
    """A registered lint rule (id + severity + check function)."""

    rule_id: str
    severity: Severity
    title: str
    check: RuleFn


_RULES: dict[str, LintRule] = {}


def lint_rule(rule_id: str, severity: Severity,
              title: str) -> Callable[[RuleFn], RuleFn]:
    """Register a rule under a stable *rule_id* (decorator)."""

    def register(fn: RuleFn) -> RuleFn:
        if rule_id in _RULES:
            raise ValueError(f"lint rule {rule_id!r} is already registered")
        _RULES[rule_id] = LintRule(rule_id, Severity(severity), title, fn)
        return fn

    return register


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, in registration order."""
    return tuple(_RULES.values())


def get_rules(ids: Sequence[str] | None = None,
              min_severity: Severity | None = None) -> tuple[LintRule, ...]:
    """Select rules by id and/or severity floor.

    Args:
        ids: explicit rule ids (default: all registered).
        min_severity: drop rules below this severity.

    Raises:
        KeyError: an id in *ids* is not registered.
    """
    if ids is None:
        selected = list(_RULES.values())
    else:
        missing = [i for i in ids if i not in _RULES]
        if missing:
            raise KeyError(
                f"unknown lint rule(s) {', '.join(missing)}; registered: "
                f"{', '.join(_RULES)}")
        selected = [_RULES[i] for i in ids]
    if min_severity is not None:
        selected = [r for r in selected if r.severity >= min_severity]
    return tuple(selected)


def _sorted_nodes(nodes: Iterable[str]) -> tuple[str, ...]:
    return tuple(sorted(nodes))


def _device_names(devices: Iterable[Device]) -> tuple[str, ...]:
    return tuple(sorted(dev.name for dev in devices))


def _attached(graph: CircuitGraph, component: set[str]) -> list[Device]:
    seen: dict[int, Device] = {}
    for node in component:
        for dev in graph.devices_at(node):
            seen.setdefault(id(dev), dev)
    return list(seen.values())


# ----------------------------------------------------------------------
# built-in rules
# ----------------------------------------------------------------------

@lint_rule("SP-GND-001", Severity.ERROR, "circuit has no ground reference")
def _rule_ground(graph: CircuitGraph) -> RuleOutput:
    if not graph.circuit.devices:
        return
    if graph.external:
        # A stand-alone subckt may take its reference through a port.
        return
    if not graph.has_ground:
        yield ("no device connects to the global reference "
               "('0'/'gnd')", (), ())


@lint_rule("SP-FLOAT-001", Severity.ERROR,
           "floating node (fewer than two connections)")
def _rule_floating(graph: CircuitGraph) -> RuleOutput:
    for node in graph.nodes:
        if node == GROUND or graph.is_external(node):
            continue
        degree = graph.degree(node)
        if degree < 2:
            devices = graph.devices_at(node)
            yield (f"node {node!r} has {degree} connection"
                   f"{'' if degree == 1 else 's'} (needs >= 2)",
                   (node,), _device_names(devices))


@lint_rule("SP-DCPATH-001", Severity.ERROR,
           "no DC path to ground (capacitor-only cut)")
def _rule_dc_path(graph: CircuitGraph) -> RuleOutput:
    if not graph.has_ground and not graph.external:
        return  # SP-GND-001 already covers the whole circuit
    for component in graph.dc_components():
        if graph.anchored(component):
            continue
        cut = _attached(graph, component)
        yield (f"node(s) {', '.join(_sorted_nodes(component))} have no "
               "DC path to ground (separated by capacitors, current "
               "sources or high-impedance pins)",
               _sorted_nodes(component), _device_names(cut))


@lint_rule("SP-ISLAND-001", Severity.ERROR,
           "isolated component island")
def _rule_island(graph: CircuitGraph) -> RuleOutput:
    if not graph.has_ground and not graph.external:
        return  # no anchor anywhere: SP-GND-001 covers it
    for component in graph.structural_components():
        if graph.anchored(component):
            continue
        island = _attached(graph, component)
        yield (f"island of {len(island)} device(s) on node(s) "
               f"{', '.join(_sorted_nodes(component))} is disconnected "
               "from the rest of the circuit",
               _sorted_nodes(component), _device_names(island))


@lint_rule("SP-PORT-001", Severity.ERROR,
           "dangling subcircuit port")
def _rule_dangling_port(graph: CircuitGraph) -> RuleOutput:
    for subckt in graph.circuit.subckts.values():
        used: set[str] = set()
        for dev in subckt.circuit.devices:
            used.update(normalize_node(n) for n in dev.nodes)
        for port in subckt.ports:
            if normalize_node(port) not in used:
                yield (f"subckt {subckt.name!r} port {port!r} is not "
                       "connected to any internal device",
                       (port,), ())


@lint_rule("SP-SHORT-001", Severity.WARN,
           "two-terminal device shorted (both terminals on one net)")
def _rule_shorted(graph: CircuitGraph) -> RuleOutput:
    for dev in graph.circuit.devices:
        if isinstance(dev, VoltageSource):
            continue  # SP-SHORT-002 (an error) handles sources
        n1 = getattr(dev, "n1", None)
        n2 = getattr(dev, "n2", None)
        if n1 is not None and n1 == n2:
            yield (f"{type(dev).__name__} {dev.name!r} has both "
                   f"terminals on node {n1!r} (no effect)",
                   (n1,), (dev.name,))


@lint_rule("SP-SHORT-002", Severity.ERROR,
           "voltage source shorted (both terminals on one net)")
def _rule_shorted_source(graph: CircuitGraph) -> RuleOutput:
    for dev in graph.circuit.devices:
        if isinstance(dev, VoltageSource) and dev.n1 == dev.n2:
            yield (f"voltage source {dev.name!r} shorts node "
                   f"{dev.n1!r} to itself (contradictory constraint)",
                   (dev.n1,), (dev.name,))


@lint_rule("SP-VALUE-001", Severity.ERROR,
           "zero or negative passive value")
def _rule_passive_values(graph: CircuitGraph) -> RuleOutput:
    for dev in graph.circuit.devices:
        if isinstance(dev, (Resistor, Capacitor, Inductor)):
            value = getattr(dev, "value", None)
            if value is not None and value <= 0.0:
                yield (f"{type(dev).__name__} {dev.name!r} has "
                       f"non-positive value {value!r}",
                       _sorted_nodes(set(dev.nodes)), (dev.name,))


@lint_rule("SP-VLOOP-001", Severity.ERROR,
           "loop of voltage sources")
def _rule_voltage_loop(graph: CircuitGraph) -> RuleOutput:
    """A cycle whose edges are all voltage branches (independent V or
    VCVS outputs) over-constrains the node potentials: MNA goes
    singular (or resolves an inconsistency by infinite current)."""
    uf = _UnionFind(graph.nodes)
    for dev in graph.circuit.devices:
        if not isinstance(dev, (VoltageSource, Vcvs)):
            continue
        if dev.n1 == dev.n2:
            continue  # SP-SHORT-002 reports the degenerate case
        if not uf.union(dev.n1, dev.n2):
            yield (f"voltage branch {dev.name!r} ({dev.n1!r}-"
                   f"{dev.n2!r}) closes a loop of voltage sources",
                   (dev.n1, dev.n2), (dev.name,))


@lint_rule("SP-ICUT-001", Severity.ERROR,
           "current-source cutset")
def _rule_current_cutset(graph: CircuitGraph) -> RuleOutput:
    """A node group fed *only* through current sources has no way to
    satisfy KCL for an arbitrary source value (ELDO/Spice: 'current
    source cutset')."""
    isources = [dev for dev in graph.circuit.devices
                if isinstance(dev, (CurrentSource, Vccs))]
    if not isources:
        return
    for component in graph.components(non_current_source_edges):
        if graph.anchored(component):
            continue
        cut = [dev for dev in isources
               if any(normalize_node(n) in component for n in dev.nodes[:2])]
        if cut:
            yield (f"node(s) {', '.join(_sorted_nodes(component))} "
                   "connect to the rest of the circuit only through "
                   "current source(s)",
                   _sorted_nodes(component), _device_names(cut))


@lint_rule("SP-MODEL-001", Severity.ERROR,
           "device references a missing model card")
def _rule_missing_model(graph: CircuitGraph) -> RuleOutput:
    models = graph.circuit.models
    for dev in graph.circuit.devices:
        if isinstance(dev, (Mosfet, Diode, VSwitch)):
            if dev.model not in models:
                yield (f"{type(dev).__name__} {dev.name!r} references "
                       f"undefined model {dev.model!r}",
                       (), (dev.name,))


@lint_rule("SP-UNUSED-001", Severity.INFO,
           "model card never referenced")
def _rule_unused_model(graph: CircuitGraph) -> RuleOutput:
    used = {dev.model for dev in graph.circuit.devices
            if isinstance(dev, (Mosfet, Diode, VSwitch))}
    for subckt in graph.circuit.subckts.values():
        used.update(dev.model for dev in subckt.circuit.devices
                    if isinstance(dev, (Mosfet, Diode, VSwitch)))
    for name in graph.circuit.models:
        if name not in used:
            yield (f"model card {name!r} is never referenced", (), ())


@lint_rule("SP-UNUSED-002", Severity.INFO,
           "subcircuit defined but never used")
def _rule_unused_subckt(graph: CircuitGraph) -> RuleOutput:
    uses = getattr(graph.circuit, "_subckt_uses", set())
    for name in graph.circuit.subckts:
        if name not in uses:
            yield (f"subckt {name!r} is defined but never instantiated",
                   (), ())
