"""Structured lint results: findings, severities and the report.

A lint run produces a :class:`LintReport` - an immutable, serializable
record of every :class:`LintFinding` the rule engine raised, plus enough
context (circuit title, node/device counts, rules run) to interpret it
without the circuit in hand.  Reports serialize reversibly through the
repository codec (:mod:`repro.core.serialization`), so the JSON emitted
by ``python -m repro lint --format json`` round-trips back into the
dataclasses, and render as stable human-readable text for terminals and
CI logs.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """Lint severity levels, ordered so comparisons read naturally
    (``Severity.ERROR > Severity.WARN > Severity.INFO``)."""

    INFO = 10
    WARN = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in reports and CLI flags."""
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {label!r}; choose from "
                f"{', '.join(s.label for s in cls)}") from None


@dataclass(frozen=True)
class LintFinding:
    """One defect (or observation) raised by a lint rule.

    Attributes:
        rule_id: stable rule identifier (e.g. ``SP-FLOAT-001``).
        severity: :class:`Severity` of the rule that fired.
        title: the rule's one-line description.
        message: instance-specific explanation.
        nodes: offending node names (normalized), if any.
        devices: offending device names, if any.
    """

    rule_id: str
    severity: Severity
    title: str
    message: str
    nodes: tuple[str, ...] = ()
    devices: tuple[str, ...] = ()

    def format(self) -> str:
        where = ""
        if self.nodes:
            where += f" nodes: {', '.join(self.nodes)}"
        if self.devices:
            where += f" devices: {', '.join(self.devices)}"
        return (f"[{self.severity.label:<5s}] {self.rule_id}: "
                f"{self.message}{' |' + where if where else ''}")


@dataclass(frozen=True)
class LintReport:
    """Outcome of linting one circuit.

    Attributes:
        circuit: the circuit's title.
        findings: every finding, most severe first.
        rules_run: ids of the rules that executed.
        n_devices / n_nodes: size of the (flattened) circuit.
    """

    circuit: str
    findings: tuple[LintFinding, ...] = ()
    rules_run: tuple[str, ...] = ()
    n_devices: int = 0
    n_nodes: int = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True when no error-severity finding was raised."""
        return not self.errors

    @property
    def errors(self) -> tuple[LintFinding, ...]:
        return self.at_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[LintFinding, ...]:
        return self.at_severity(Severity.WARN)

    @property
    def infos(self) -> tuple[LintFinding, ...]:
        return self.at_severity(Severity.INFO)

    def at_severity(self, severity: Severity) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity == severity)

    def at_least(self, severity: Severity) -> tuple[LintFinding, ...]:
        """Findings at or above *severity*."""
        return tuple(f for f in self.findings if f.severity >= severity)

    def counts(self) -> dict[str, int]:
        """``{"error": n, "warn": n, "info": n}``."""
        return {s.label: len(self.at_severity(s))
                for s in sorted(Severity, reverse=True)}

    def worst(self) -> Severity | None:
        """Highest severity present, or ``None`` for a clean report."""
        return max((f.severity for f in self.findings), default=None)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def format_text(self) -> str:
        """Human-readable multi-line report."""
        head = (f"lint {self.circuit or '<untitled>'}: "
                f"{self.n_devices} devices, {self.n_nodes} nodes, "
                f"{len(self.rules_run)} rules")
        counts = ", ".join(f"{n} {label}" for label, n
                           in self.counts().items() if n)
        lines = [head]
        for finding in self.findings:
            lines.append("  " + finding.format())
        lines.append(f"result: {'CLEAN' if self.ok else 'FAIL'}"
                     f"{' (' + counts + ')' if counts else ''}")
        return "\n".join(lines)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Reversible JSON via the repository serialization codec."""
        from repro.core.serialization import to_jsonable

        return json.dumps(to_jsonable(self), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        """Inverse of :meth:`to_json`."""
        from repro.core.serialization import from_jsonable

        report = from_jsonable(json.loads(text))
        if not isinstance(report, cls):
            raise ValueError(f"payload decodes to "
                             f"{type(report).__name__}, not {cls.__name__}")
        return report
