"""Lint entry points: run rules over circuits, netlists and subckts.

Three front doors:

* :func:`lint_circuit` / :func:`lint_netlist` / :func:`lint_subckt` -
  produce a full :class:`~repro.spice.lint.report.LintReport`,
* :func:`preflight_check` - the gate the co-simulation path runs before
  any MNA assembly: error-severity rules only, raising
  :class:`~repro.spice.errors.NetlistLintError` (which names the
  offending rules and nodes) when anything fires.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.spice.errors import NetlistLintError
from repro.spice.lint.graph import CircuitGraph
from repro.spice.lint.report import LintFinding, LintReport, Severity
from repro.spice.lint.rules import LintRule, get_rules
from repro.spice.netlist import Circuit, Subckt


def _run_rules(graph: CircuitGraph,
               rules: Sequence[LintRule]) -> tuple[LintFinding, ...]:
    findings: list[LintFinding] = []
    for rule in rules:
        for message, nodes, devices in rule.check(graph):
            findings.append(LintFinding(
                rule_id=rule.rule_id, severity=rule.severity,
                title=rule.title, message=message,
                nodes=tuple(nodes), devices=tuple(devices)))
    findings.sort(key=lambda f: (-f.severity, f.rule_id, f.message))
    return tuple(findings)


def lint_circuit(circuit: Circuit, *,
                 rules: Sequence[str] | None = None,
                 min_severity: Severity | None = None,
                 external: Iterable[str] = ()) -> LintReport:
    """Statically verify *circuit* and return the full report.

    Args:
        circuit: a flat circuit (subckt instances are already expanded
            by ``Circuit.instantiate``).
        rules: restrict to these rule ids (default: all registered).
        min_severity: drop rules below this severity.
        external: nodes assumed driven from outside (subckt ports);
            structural rules skip anything reachable from them.
    """
    graph = CircuitGraph(circuit, external=external)
    selected = get_rules(rules, min_severity)
    findings = _run_rules(graph, selected)
    return LintReport(
        circuit=circuit.title,
        findings=findings,
        rules_run=tuple(r.rule_id for r in selected),
        n_devices=len(circuit.devices),
        n_nodes=len(graph.nodes))


def lint_netlist(text: str, *, title_line: bool = True,
                 rules: Sequence[str] | None = None,
                 min_severity: Severity | None = None,
                 external: Iterable[str] = ()) -> LintReport:
    """Parse Spice-format *text* and lint the resulting circuit.

    Raises:
        ParseError: the netlist does not parse (lint needs a circuit).
    """
    from repro.spice.parser import parse_netlist

    circuit = parse_netlist(text, title_line=title_line)
    return lint_circuit(circuit, rules=rules, min_severity=min_severity,
                        external=external)


def lint_subckt(subckt: Subckt, *,
                rules: Sequence[str] | None = None,
                min_severity: Severity | None = None) -> LintReport:
    """Lint a subcircuit definition stand-alone.

    The definition is flattened once into a scratch circuit with its
    ports marked *external* (driven by the outside world), so
    floating/DC-path/island rules fire only on genuinely internal
    defects, while the dangling-port rule still sees the definition.
    """
    host = Circuit(f"subckt {subckt.name}")
    host.add_subckt(subckt)
    connections = list(subckt.ports)
    host.instantiate("uut", subckt, connections)
    return lint_circuit(host, rules=rules, min_severity=min_severity,
                        external=connections)


def preflight_check(circuit: Circuit, *,
                    rules: Sequence[str] | None = None,
                    external: Iterable[str] = ()) -> LintReport:
    """Error-level static verification gate (used by co-simulation
    before any MNA assembly).

    Args:
        circuit: the circuit about to be simulated.
        rules: restrict to these rule ids (default: every error-level
            rule).

    Returns:
        The (clean) report when no error-severity finding fires.

    Raises:
        NetlistLintError: naming each offending rule and its nodes.
    """
    if rules is None:
        report = lint_circuit(circuit, min_severity=Severity.ERROR,
                              external=external)
    else:
        report = lint_circuit(circuit, rules=rules, external=external)
    errors = report.errors
    if errors:
        details = "; ".join(
            f"{f.rule_id} ({', '.join(f.nodes) if f.nodes else f.title})"
            for f in errors)
        raise NetlistLintError(
            f"netlist {circuit.title!r} failed pre-flight lint with "
            f"{len(errors)} error(s): {details} - run "
            "`python -m repro lint` for the full report, or pass "
            "preflight=False to simulate anyway",
            report=report)
    return report
