"""Circuit and subcircuit data model.

A :class:`Circuit` is a flat bag of devices plus model cards.  Hierarchy is
provided by :class:`Subckt`, which is flattened eagerly when instantiated
(internal nodes get an ``instance.`` prefix), mirroring how Spice expands
``X`` elements.  Node and device names are case-insensitive; ``0`` and
``gnd`` both denote the global reference.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.spice.devices.base import Device
from repro.spice.devices.diode import DiodeModel
from repro.spice.devices.mosfet import MosModel
from repro.spice.devices.switch import SwitchModel
from repro.spice.errors import NetlistError

#: Names (case-insensitive) that denote the global reference: the
#: classic ``0``/``gnd`` pair plus the ``!``-suffixed global-net
#: spelling of digital PDK decks (``gnd!``, ``vss!``).  Shared by the
#: lint circuit graph and the MNA node numbering, so static checks and
#: the simulator can never disagree about what is ground.
GROUND_ALIASES = ("0", "gnd", "gnd!", "vss!")

ModelCard = MosModel | DiodeModel | SwitchModel


def is_ground(node: str) -> bool:
    """True if *node* names the global reference."""
    return node.lower() in GROUND_ALIASES


def normalize_node(node: str) -> str:
    """Canonical (lower-case) node name, with ground collapsed to ``"0"``."""
    node = node.lower()
    return "0" if node in GROUND_ALIASES else node


class Circuit:
    """A flat circuit: devices + model cards + (optional) subckt library.

    Typical use::

        ckt = Circuit("divider")
        ckt.add(VoltageSource("vin", "in", "0", dc=1.8))
        ckt.add(Resistor("r1", "in", "out", "10k"))
        ckt.add(Resistor("r2", "out", "0", "10k"))
        op = operating_point(ckt)
    """

    def __init__(self, title: str = "", models: Iterable[ModelCard] = ()):
        self.title = title
        self.devices: list[Device] = []
        self.models: dict[str, ModelCard] = {}
        self.subckts: dict[str, Subckt] = {}
        self._subckt_uses: set[str] = set()
        self._device_names: set[str] = set()
        for model in models:
            self.add_model(model)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, *devices: Device) -> "Circuit":
        """Add devices; names must be unique (case-insensitive)."""
        for dev in devices:
            key = dev.name.lower()
            if key in self._device_names:
                raise NetlistError(f"duplicate device name {dev.name!r}")
            normalized = dev.renamed(
                key, {n: normalize_node(n) for n in dev.nodes})
            self._device_names.add(key)
            self.devices.append(normalized)
        return self

    def add_model(self, model: ModelCard) -> "Circuit":
        key = model.name.lower()
        if key in self.models and self.models[key] != model:
            raise NetlistError(f"conflicting redefinition of model {model.name!r}")
        self.models[key] = model
        return self

    def add_subckt(self, subckt: "Subckt") -> "Circuit":
        key = subckt.name.lower()
        if key in self.subckts:
            raise NetlistError(f"duplicate subckt {subckt.name!r}")
        self.subckts[key] = subckt
        return self

    def instantiate(self, inst_name: str, subckt: "str | Subckt",
                    connections: Sequence[str]) -> "Circuit":
        """Flatten an instance of *subckt* into this circuit.

        *connections* are the actual nodes bound to the subckt ports, in
        port order.  Internal subckt nodes become ``<inst_name>.<node>``.
        Models defined inside the subckt are merged into this circuit.
        """
        if isinstance(subckt, str):
            try:
                subckt = self.subckts[subckt.lower()]
            except KeyError:
                raise NetlistError(f"unknown subckt {subckt!r}") from None
        self._subckt_uses.add(subckt.name.lower())
        subckt.flatten_into(self, inst_name.lower(),
                            [normalize_node(n) for n in connections])
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node_names(self) -> list[str]:
        """All non-ground nodes, in first-appearance order."""
        seen: dict[str, None] = {}
        for dev in self.devices:
            for node in dev.nodes:
                if not is_ground(node):
                    seen.setdefault(node, None)
        return list(seen)

    def device(self, name: str) -> Device:
        key = name.lower()
        for dev in self.devices:
            if dev.name == key:
                return dev
        raise NetlistError(f"no device named {name!r}")

    def devices_of(self, cls: type) -> list[Device]:
        return [dev for dev in self.devices if isinstance(dev, cls)]

    def has_device(self, name: str) -> bool:
        return name.lower() in self._device_names

    def replace_device(self, device: Device) -> "Circuit":
        """Replace the device with the same name (used by calibration
        sweeps and by co-simulation source updates at build time)."""
        key = device.name.lower()
        for i, dev in enumerate(self.devices):
            if dev.name == key:
                normalized = device.renamed(
                    key, {n: normalize_node(n) for n in device.nodes})
                self.devices[i] = normalized
                return self
        raise NetlistError(f"no device named {device.name!r} to replace")

    def validate(self) -> None:
        """Deprecated shallow sanity check, absorbed by the lint engine.

        .. deprecated::
            Use :func:`repro.spice.lint.lint_circuit` for the full rule
            set or :func:`repro.spice.lint.preflight_check` for the
            error-level gate; this shim runs only the historic ground
            check (rule ``SP-GND-001``).
        """
        warnings.warn(
            "Circuit.validate is deprecated; use repro.spice.lint "
            "(lint_circuit for reports, preflight_check for the "
            "error-level gate)", DeprecationWarning, stacklevel=2)
        from repro.spice.lint import preflight_check

        preflight_check(self, rules=("SP-GND-001",))

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:
        return (f"Circuit({self.title!r}, {len(self.devices)} devices, "
                f"{len(self.node_names())} nodes)")


@dataclass
class Subckt:
    """A reusable subcircuit definition.

    Args:
        name: subcircuit name.
        ports: external port names, in connection order.
        circuit: the internal circuit (may itself instantiate subckts that
            are registered on it).
    """

    name: str
    ports: Sequence[str]
    circuit: Circuit

    def __post_init__(self):
        self.ports = [normalize_node(p) for p in self.ports]
        port_set = set(self.ports)
        if len(port_set) != len(self.ports):
            raise NetlistError(f"subckt {self.name}: duplicate port names")

    def flatten_into(self, target: Circuit, inst: str,
                     connections: Sequence[str]) -> None:
        if len(connections) != len(self.ports):
            raise NetlistError(
                f"subckt {self.name}: expected {len(self.ports)} connections, "
                f"got {len(connections)}")
        port_map = dict(zip(self.ports, connections))

        def map_node(node: str) -> str:
            node = normalize_node(node)
            if is_ground(node):
                return "0"
            if node in port_map:
                return port_map[node]
            return f"{inst}.{node}"

        for model in self.circuit.models.values():
            target.add_model(model)
        # Subckts the definition itself expanded count as used at the
        # top too (the parser shares one subckt table across scopes).
        target._subckt_uses |= self.circuit._subckt_uses
        for dev in self.circuit.devices:
            node_map = {n: map_node(n) for n in dev.nodes}
            target.add(dev.renamed(f"{inst}.{dev.name}", node_map))
