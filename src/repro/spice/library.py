"""Generic 0.18 um CMOS model library.

The paper's integrator uses the UMC mixed-mode 0.18 um 1.8 V process with
standard and low-threshold (LV) devices.  That PDK is proprietary, so we
provide a generic level-1 fit with the same flavor set:

* ``nch`` / ``pch``   - standard-VT core devices,
* ``nch_lv`` / ``pch_lv`` - low-VT devices (the paper uses LV transistors
  for headroom in the current-mode integrator),

All cards share a 4.1 nm oxide and 1.8 V nominal supply.  The relatively
large ``lambd`` values reflect short-channel output conductance of
minimum-length 0.18 um devices squeezed into a level-1 model; they are
what gives the integrator its paper-like finite DC gain (21 dB) without a
cascode.
"""

from __future__ import annotations

from repro.spice.devices.mosfet import MosModel

VDD_NOMINAL = 1.8  # volts

_COMMON = dict(
    tox=4.1e-9,
    cgso=2.0e-10,
    cgdo=2.0e-10,
    cgbo=1.0e-10,
    cj=2.0e-4,
    cjsw=1.0e-10,
    ldiff=0.30e-6,
)


def generic_018() -> dict[str, MosModel]:
    """Return the generic-0.18 um model cards, keyed by model name."""
    cards = [
        MosModel(name="nch", mtype="n", vto=0.45, kp=280e-6, gamma=0.45,
                 phi=0.85, lambd=0.28, **_COMMON),
        MosModel(name="pch", mtype="p", vto=-0.45, kp=70e-6, gamma=0.40,
                 phi=0.85, lambd=0.26, **_COMMON),
        MosModel(name="nch_lv", mtype="n", vto=0.25, kp=280e-6, gamma=0.45,
                 phi=0.85, lambd=0.28, **_COMMON),
        MosModel(name="pch_lv", mtype="p", vto=-0.25, kp=70e-6, gamma=0.40,
                 phi=0.85, lambd=0.26, **_COMMON),
        # Long-channel variants with low output conductance, for current
        # mirrors and bias branches that need high ro.
        MosModel(name="nch_long", mtype="n", vto=0.45, kp=280e-6,
                 gamma=0.45, phi=0.85, lambd=0.04, **_COMMON),
        MosModel(name="pch_long", mtype="p", vto=-0.45, kp=70e-6,
                 gamma=0.40, phi=0.85, lambd=0.04, **_COMMON),
    ]
    return {card.name: card for card in cards}


#: Spice text of the same cards (exercises the parser; handy for users
#: writing textual netlists against this library).
GENERIC_018_CARDS = """
.model nch    nmos (vto=0.45  kp=280u gamma=0.45 phi=0.85 lambda=0.28
+ tox=4.1n cgso=0.2n cgdo=0.2n cgbo=0.1n cj=0.2m cjsw=0.1n ldiff=0.3u)
.model pch    pmos (vto=-0.45 kp=70u  gamma=0.40 phi=0.85 lambda=0.26
+ tox=4.1n cgso=0.2n cgdo=0.2n cgbo=0.1n cj=0.2m cjsw=0.1n ldiff=0.3u)
.model nch_lv nmos (vto=0.25  kp=280u gamma=0.45 phi=0.85 lambda=0.28
+ tox=4.1n cgso=0.2n cgdo=0.2n cgbo=0.1n cj=0.2m cjsw=0.1n ldiff=0.3u)
.model pch_lv pmos (vto=-0.25 kp=70u  gamma=0.40 phi=0.85 lambda=0.26
+ tox=4.1n cgso=0.2n cgdo=0.2n cgbo=0.1n cj=0.2m cjsw=0.1n ldiff=0.3u)
.model nch_long nmos (vto=0.45 kp=280u gamma=0.45 phi=0.85 lambda=0.04
+ tox=4.1n cgso=0.2n cgdo=0.2n cgbo=0.1n cj=0.2m cjsw=0.1n ldiff=0.3u)
.model pch_long pmos (vto=-0.45 kp=70u gamma=0.40 phi=0.85 lambda=0.04
+ tox=4.1n cgso=0.2n cgdo=0.2n cgbo=0.1n cj=0.2m cjsw=0.1n ldiff=0.3u)
"""
