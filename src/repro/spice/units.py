"""Engineering-notation number handling (Spice value suffixes).

Spice accepts values like ``1k``, ``10u``, ``2.2MEG``, ``0.5p`` and ignores
any trailing unit letters (``10pF``, ``1kOhm``).  :func:`parse_value`
implements that convention; :func:`format_value` renders a float back in
engineering notation for reports.
"""

from __future__ import annotations

import re

# Ordered so that 'meg' and 'mil' are matched before 'm'.
_SUFFIXES = (
    ("meg", 1e6),
    ("mil", 25.4e-6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
    ("a", 1e-18),
)

_NUMBER_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Z]*)\s*$"
)


def parse_value(text: str | float | int) -> float:
    """Parse a Spice-style number with an optional engineering suffix.

    >>> parse_value("1k")
    1000.0
    >>> parse_value("2.2MEG")
    2200000.0
    >>> parse_value("10pF")
    1e-11

    Raises:
        ValueError: if *text* is not a number.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(text)
    if match is None:
        raise ValueError(f"not a Spice number: {text!r}")
    mantissa = float(match.group(1))
    suffix = match.group(2).lower()
    if not suffix:
        return mantissa
    for name, scale in _SUFFIXES:
        if suffix.startswith(name):
            return mantissa * scale
    # Unknown letters (e.g. plain units like "V" or "Hz") are ignored,
    # matching Spice behaviour.
    return mantissa


_FORMAT_STEPS = (
    (1e12, "T"),
    (1e9, "G"),
    # "Meg", not "M": Spice reads a leading "m" as milli, so the
    # formatted text must round-trip through parse_value.
    (1e6, "Meg"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
)


def format_value(value: float, unit: str = "", digits: int = 4) -> str:
    """Format *value* in engineering notation, e.g. ``format_value(1e-12, "F")
    == "1 pF"``."""
    if value == 0.0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    for scale, prefix in _FORMAT_STEPS:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
    scale, prefix = _FORMAT_STEPS[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
