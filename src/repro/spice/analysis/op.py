"""DC operating-point analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit


@dataclass
class OpResult:
    """Operating-point solution.

    Attributes:
        system: the compiled MNA system (reusable for further analyses).
        x: raw solution vector (node voltages then branch currents).
    """

    system: MnaSystem
    x: np.ndarray

    def v(self, node: str) -> float:
        """Node voltage in volts."""
        return self.system.voltage(self.x, node)

    def vdiff(self, plus: str, minus: str) -> float:
        """Differential voltage ``v(plus) - v(minus)``."""
        return self.v(plus) - self.v(minus)

    def i(self, device: str) -> float:
        """Branch current of a voltage source, VCVS or inductor."""
        return self.system.branch_current(self.x, device)

    @property
    def node_voltages(self) -> dict[str, float]:
        return {name: float(self.x[i])
                for name, i in self.system.node_index.items()
                if i < self.system.n_nodes}

    def mos_info(self) -> dict[str, dict[str, float]]:
        """Per-MOSFET bias summary: ids, vgs, vds, region, gm, gds, gmb.

        Region codes: 0 = cutoff, 1 = triode, 2 = saturation.
        """
        group = self.system.mos_group
        if group is None:
            return {}
        ev = group.evaluate(self.system.full_vector(self.x))
        out: dict[str, dict[str, float]] = {}
        for idx, name in enumerate(group.names):
            out[name] = {
                "ids": float(ev.ids[idx]),
                "vgs": float(ev.vgs[idx]),
                "vds": float(ev.vds[idx]),
                "region": int(ev.region[idx]),
                "gm": float(ev.gm[idx]),
                "gds": float(ev.gds[idx]),
                "gmb": float(ev.gmb[idx]),
            }
        return out


def operating_point(circuit: Circuit,
                    initial_guess: Mapping[str, float] | None = None,
                    overrides: Mapping[str, float] | None = None,
                    gmin: float = 1e-12,
                    t: float | None = None) -> OpResult:
    """Compute the DC operating point of *circuit*.

    Capacitors are open, inductors are shorts.  Uses Newton iteration
    with gmin- and source-stepping fallbacks.

    Args:
        circuit: the circuit to solve.
        initial_guess: optional per-node starting voltages (helps
            convergence of multi-stable analog circuits).
        overrides: per-source value overrides.
        gmin: node-to-ground leakage conductance.
        t: if given, transient waveforms are evaluated at this time
            (useful to find the state at the start of a transient).
    """
    system = MnaSystem(circuit, gmin=gmin)
    x0 = None
    if initial_guess:
        x0 = np.zeros(system.size)
        for node, value in initial_guess.items():
            idx = system.node_index.get(node.lower())
            if idx is not None and idx < system.n_nodes:
                x0[idx] = value
    x = system.solve_robust(x0, overrides=overrides, t=t)
    return OpResult(system=system, x=x)
