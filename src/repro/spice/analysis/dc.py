"""DC sweep analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.spice.errors import AnalysisError, ConvergenceError
from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit, normalize_node


@dataclass
class DcSweepResult:
    """Result of a DC source sweep.

    Attributes:
        source: name of the swept source.
        values: swept source values.
        x: solution matrix, one row per sweep point.
    """

    system: MnaSystem
    source: str
    values: np.ndarray
    x: np.ndarray

    def v(self, node: str) -> np.ndarray:
        """Voltage trace of *node* across the sweep."""
        node = normalize_node(node)
        if node == "0":
            return np.zeros(len(self.values))
        return self.x[:, self.system.node_index[node]].copy()

    def vdiff(self, plus: str, minus: str) -> np.ndarray:
        return self.v(plus) - self.v(minus)

    def i(self, device: str) -> np.ndarray:
        return self.x[:, self.system.branch_index[device.lower()]].copy()


def dc_sweep(circuit: Circuit, source: str,
             values: Sequence[float],
             overrides: Mapping[str, float] | None = None,
             gmin: float = 1e-12) -> DcSweepResult:
    """Sweep the DC value of one independent source.

    Each point starts Newton from the previous solution (continuation),
    which makes sweeps through nonlinear transfer curves robust.

    Args:
        circuit: circuit to analyze.
        source: device name of the swept V or I source.
        values: sweep values (any monotonicity).
        overrides: additional fixed source overrides.
    """
    source = source.lower()
    if not circuit.has_device(source):
        raise AnalysisError(f"dc_sweep: no source named {source!r}")
    system = MnaSystem(circuit, gmin=gmin)
    values = np.asarray(values, dtype=float)
    solutions = np.empty((len(values), system.size))
    x = None
    base = dict(overrides or {})
    for k, val in enumerate(values):
        ov = dict(base)
        ov[source] = float(val)
        try:
            x = system.newton(x, overrides=ov)
        except ConvergenceError:
            x = system.solve_robust(x, overrides=ov)
        solutions[k] = x
    return DcSweepResult(system=system, source=source,
                         values=values, x=solutions)
