"""Circuit analyses: operating point, DC sweep, AC, transient."""

from repro.spice.analysis.op import OpResult, operating_point
from repro.spice.analysis.dc import DcSweepResult, dc_sweep
from repro.spice.analysis.ac import AcResult, ac_analysis
from repro.spice.analysis.tran import TranResult, TransientStepper, transient

__all__ = [
    "AcResult",
    "DcSweepResult",
    "OpResult",
    "TranResult",
    "TransientStepper",
    "ac_analysis",
    "dc_sweep",
    "operating_point",
    "transient",
]
