"""AC small-signal analysis.

The circuit is linearized at its DC operating point; the complex system
``(G + j*w*C) x = b_ac`` is then solved for every requested frequency.
All frequency points are solved in one batched ``numpy.linalg.solve``
call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.spice.analysis.op import OpResult, operating_point
from repro.spice.errors import AnalysisError
from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit, normalize_node


@dataclass
class AcResult:
    """Complex small-signal response versus frequency.

    Attributes:
        freqs: frequency grid in Hz.
        x: complex solution matrix (one row per frequency).
        op: the underlying DC operating point.
    """

    system: MnaSystem
    freqs: np.ndarray
    x: np.ndarray
    op: OpResult

    def v(self, node: str) -> np.ndarray:
        """Complex node voltage across frequency."""
        node = normalize_node(node)
        if node == "0":
            return np.zeros(len(self.freqs), dtype=complex)
        return self.x[:, self.system.node_index[node]].copy()

    def vdiff(self, plus: str, minus: str) -> np.ndarray:
        return self.v(plus) - self.v(minus)

    def mag_db(self, node: str, ref: str | None = None) -> np.ndarray:
        """Magnitude in dB of ``v(node)`` (or ``v(node) - v(ref)``)."""
        h = self.v(node) if ref is None else self.vdiff(node, ref)
        return 20.0 * np.log10(np.maximum(np.abs(h), 1e-30))

    def phase_deg(self, node: str, ref: str | None = None) -> np.ndarray:
        h = self.v(node) if ref is None else self.vdiff(node, ref)
        return np.degrees(np.angle(h))

    def i(self, device: str) -> np.ndarray:
        return self.x[:, self.system.branch_index[device.lower()]].copy()


def logspace_freqs(f_start: float, f_stop: float,
                   points_per_decade: int = 20) -> np.ndarray:
    """Logarithmic frequency grid like Spice ``.AC DEC``."""
    if f_start <= 0 or f_stop <= f_start:
        raise AnalysisError("logspace_freqs: need 0 < f_start < f_stop")
    decades = np.log10(f_stop / f_start)
    n = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), n)


def ac_analysis(circuit: Circuit, freqs: Sequence[float],
                op: OpResult | None = None,
                initial_guess: Mapping[str, float] | None = None,
                overrides: Mapping[str, float] | None = None) -> AcResult:
    """Small-signal AC analysis over the frequency grid *freqs*.

    Sources with a nonzero ``ac_mag`` drive the linearized circuit; all
    other independent sources are nulled (V shorts, I opens), as in Spice.

    Args:
        circuit: circuit to analyze.
        op: reuse a previously computed operating point.
        initial_guess / overrides: forwarded to the OP solve.
    """
    if op is None:
        op = operating_point(circuit, initial_guess=initial_guess,
                             overrides=overrides)
    system = op.system
    g_mat, c_mat = system.small_signal_matrices(op.x)
    freqs = np.asarray(freqs, dtype=float)
    if np.any(freqs <= 0):
        raise AnalysisError("ac_analysis: frequencies must be positive")

    n = system.size
    b_ac = np.zeros(n, dtype=complex)
    has_stimulus = False
    for src in system.vsources:
        if src.ac_mag:
            b_ac[system.branch_index[src.name]] += src.ac_complex
            has_stimulus = True
    from repro.spice.devices.sources import CurrentSource

    for src in circuit.devices_of(CurrentSource):
        if src.ac_mag:
            a = system.node_index[src.n1]
            c = system.node_index[src.n2]
            phasor = src.ac_complex
            if a < n:
                b_ac[a] -= phasor
            if c < n:
                b_ac[c] += phasor
            has_stimulus = True
    if not has_stimulus:
        raise AnalysisError(
            "ac_analysis: no source has an AC magnitude set")

    omega = 2.0 * np.pi * freqs
    a_stack = (g_mat[None, :, :].astype(complex)
               + 1j * omega[:, None, None] * c_mat[None, :, :])
    b_stack = np.broadcast_to(b_ac[:, None], (len(freqs), n, 1)).copy()
    x = np.linalg.solve(a_stack, b_stack)[:, :, 0]
    return AcResult(system=system, freqs=freqs, x=x, op=op)
