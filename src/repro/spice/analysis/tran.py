"""Transient analysis.

Implements fixed-step implicit integration (backward Euler or
trapezoidal) with companion models for capacitors and inductors, Newton
solution at each step, and automatic sub-stepping when an individual step
fails to converge.

:class:`TransientStepper` exposes the integration loop one step at a
time with per-step source overrides; this is the mechanism the
mixed-signal kernel (:mod:`repro.ams.cosim`) uses to embed a transistor
netlist inside a system simulation, mirroring the ADMS/Eldo
substitute-and-play flow of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.spice.errors import AnalysisError, ConvergenceError
from repro.spice.mna import MnaSystem, RhsAdditions, StampTriples
from repro.spice.netlist import Circuit, normalize_node


@dataclass
class TranResult:
    """Recorded transient waveforms.

    Attributes:
        t: time points (s).
        voltages: node-name -> waveform array.
        currents: source-name -> branch-current waveform array.
    """

    t: np.ndarray
    voltages: dict[str, np.ndarray]
    currents: dict[str, np.ndarray]

    def v(self, node: str) -> np.ndarray:
        return self.voltages[normalize_node(node)]

    def vdiff(self, plus: str, minus: str) -> np.ndarray:
        return self.v(plus) - self.v(minus)

    def i(self, device: str) -> np.ndarray:
        return self.currents[device.lower()]

    def at(self, node: str, time: float) -> float:
        """Linear-interpolated node voltage at *time*."""
        return float(np.interp(time, self.t, self.v(node)))


class TransientStepper:
    """Resumable fixed-step transient integrator.

    Args:
        circuit: circuit to integrate.
        dt: fixed time step (s).
        method: ``"trap"`` (trapezoidal) or ``"be"`` (backward Euler).
        overrides: initial source-value overrides (by device name); they
            persist until changed via :meth:`set_source`.
        initial_guess: node-voltage hints for the initial DC solve.
        uic: skip the initial DC solve and start from *x0* (or zero).
        x0: initial solution vector when ``uic`` is true.
    """

    def __init__(self, circuit: Circuit, dt: float, method: str = "trap",
                 overrides: Mapping[str, float] | None = None,
                 initial_guess: Mapping[str, float] | None = None,
                 uic: bool = False, x0: np.ndarray | None = None,
                 gmin: float = 1e-12):
        if dt <= 0:
            raise AnalysisError("TransientStepper: dt must be positive")
        if method not in ("trap", "be"):
            raise AnalysisError(f"unknown integration method {method!r}")
        self.system = MnaSystem(circuit, gmin=gmin)
        self.dt = float(dt)
        self.method = method
        self.overrides: dict[str, float] = {
            k.lower(): float(v) for k, v in (overrides or {}).items()}
        self.t = 0.0

        if uic:
            self.x = (np.zeros(self.system.size) if x0 is None
                      else np.asarray(x0, float).copy())
        else:
            x_init = None
            if initial_guess:
                x_init = np.zeros(self.system.size)
                for node, val in initial_guess.items():
                    idx = self.system.node_index.get(node.lower())
                    if idx is not None and idx < self.system.n_nodes:
                        x_init[idx] = val
            self.x = self.system.solve_robust(
                x_init, overrides=self.overrides, t=0.0)

        self._refresh_caps()
        self.i_cap = np.zeros(len(self.c_val))
        self.newton_iterations = 0
        self.steps_taken = 0

    # ------------------------------------------------------------------
    def _refresh_caps(self) -> None:
        x_full = self.system.full_vector(self.x)
        self.c_n1, self.c_n2, self.c_val = self.system.dynamic_caps(x_full)
        self.v_cap = x_full[self.c_n1] - x_full[self.c_n2]

    def set_source(self, name: str, value: float) -> None:
        """Override the value of an independent source from now on."""
        self.overrides[name.lower()] = float(value)

    def set_sources(self, values: Mapping[str, float]) -> None:
        for name, value in values.items():
            self.set_source(name, value)

    def v(self, node: str) -> float:
        """Present node voltage."""
        return self.system.voltage(self.x, node)

    def vdiff(self, plus: str, minus: str) -> float:
        return self.v(plus) - self.v(minus)

    def i(self, device: str) -> float:
        return self.system.branch_current(self.x, device)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the solution by one ``dt`` (with sub-stepping on
        convergence failure)."""
        self._advance(self.dt, depth=0)
        self.steps_taken += 1

    def run_until(self, t_stop: float) -> None:
        """Step repeatedly until ``self.t >= t_stop`` (within half a step)."""
        while self.t < t_stop - 0.5 * self.dt:
            self.step()

    def _advance(self, h: float, depth: int) -> None:
        t_new = self.t + h
        n1, n2, c = self.c_n1, self.c_n2, self.c_val
        if self.method == "trap":
            geq = 2.0 * c / h
            ieq = -(geq * self.v_cap + self.i_cap)
        else:
            geq = c / h
            ieq = -geq * self.v_cap

        rows = np.concatenate([n1, n2, n1, n2])
        cols = np.concatenate([n1, n2, n2, n1])
        vals = np.concatenate([geq, geq, -geq, -geq])
        b_rows = np.concatenate([n1, n2])
        b_vals = np.concatenate([-ieq, ieq])

        sys = self.system
        if len(sys.ind_rows):
            leq = sys.ind_val / h  # backward Euler for inductor branches
            i_old = self.x[sys.ind_rows]
            rows = np.concatenate([rows, sys.ind_rows])
            cols = np.concatenate([cols, sys.ind_rows])
            vals = np.concatenate([vals, -leq])
            b_rows = np.concatenate([b_rows, sys.ind_rows])
            b_vals = np.concatenate([b_vals, -leq * i_old])

        extra_g = StampTriples(rows=rows, cols=cols, vals=vals)
        extra_b = RhsAdditions(rows=b_rows, vals=b_vals)
        try:
            x_new = sys.newton(self.x, t=t_new, overrides=self.overrides,
                               extra_g=extra_g, extra_b=extra_b)
        except ConvergenceError:
            if depth >= 3:
                raise
            for _ in range(4):
                self._advance(h / 4.0, depth + 1)
            return

        x_full = sys.full_vector(x_new)
        v_new = x_full[n1] - x_full[n2]
        self.i_cap = geq * v_new + ieq
        self.v_cap = v_new
        self.x = x_new
        self.t = t_new
        # Re-evaluate device capacitances for the next step (frozen within
        # a step); the concatenation order is deterministic so the state
        # arrays stay aligned.
        c_n1, c_n2, c_val = sys.dynamic_caps(x_full)
        self.c_val = c_val


def transient(circuit: Circuit, t_stop: float, dt: float,
              probes: Sequence[str] | None = None,
              current_probes: Sequence[str] = (),
              method: str = "trap",
              overrides: Mapping[str, float] | None = None,
              initial_guess: Mapping[str, float] | None = None,
              uic: bool = False) -> TranResult:
    """Fixed-step transient analysis from 0 to *t_stop*.

    Args:
        circuit: circuit to integrate.
        t_stop: final time (s).
        dt: fixed step (s).
        probes: node names to record (default: every node).
        current_probes: voltage-source names whose branch current to record.
        method: ``"trap"`` or ``"be"``.
        overrides / initial_guess / uic: see :class:`TransientStepper`.

    Returns:
        A :class:`TranResult` including the initial point at t = 0.
    """
    stepper = TransientStepper(circuit, dt, method=method,
                               overrides=overrides,
                               initial_guess=initial_guess, uic=uic)
    system = stepper.system
    if probes is None:
        probe_list = list(system.nodes)
    else:
        probe_list = [normalize_node(p) for p in probes]
    for probe in probe_list:
        if probe != "0" and probe not in system.node_index:
            raise AnalysisError(f"transient: unknown probe node {probe!r}")
    current_list = [c.lower() for c in current_probes]

    n_steps = int(round(t_stop / dt))
    times = np.empty(n_steps + 1)
    volt_data = {p: np.empty(n_steps + 1) for p in probe_list}
    curr_data = {c: np.empty(n_steps + 1) for c in current_list}

    def record(k: int) -> None:
        times[k] = stepper.t
        for p in probe_list:
            volt_data[p][k] = stepper.v(p)
        for c in current_list:
            curr_data[c][k] = stepper.i(c)

    record(0)
    for k in range(1, n_steps + 1):
        stepper.step()
        record(k)
    return TranResult(t=times, voltages=volt_data, currents=curr_data)
