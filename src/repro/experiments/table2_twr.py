"""Table 2: Two-Way Ranging at 9.9 m, ideal versus circuit integrator.

Paper (10 iterations, CM1 LOS with recommended path loss):

    IDEAL integrator:  mean 10.10 m, variance 0.49
    ELDO  integrator:  mean 11.16 m, variance 0.10

The two observations the paper draws from this: the refined integrator
shows (1) a *larger offset* - the AGC overdrives its limited linear
input range, the squared signal is compressed, the output voltage is
lower and the ADC-referred arrival threshold is crossed later - and (2)
a *smaller variance*, attributed to the equivalent-SNR increase.  Our
harness reproduces the offset mechanism robustly; the variance gap sits
inside Monte-Carlo uncertainty at 10 iterations (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign.runner import CampaignRunner
from repro.campaign.store import ResultStore
from repro.core.metrics import RangingComparison
from repro.core.scenario import Scenario
from repro.uwb import (
    EnergyDetectionReceiver,
    IdealIntegrator,
    RangingResult,
    TwoWayRanging,
    UwbConfig,
)
from repro.uwb.channel import Cm1Channel
from repro.uwb.integrator import (
    CircuitSurrogateIntegrator,
    WindowIntegrator,
)

#: The overdriven AGC operating point of the TWR runs (see module doc).
TWR_CONFIG = dict(preamble_symbols=16, payload_bits=16,
                  adc_vref=2e-3, agc_range_db=80.0)
TWR_NOISE_SIGMA = 9e-5
TWR_TOA_FRACTION = 0.5
TWR_DETECTION_FACTOR = 8.0


@dataclass
class Table2Result:
    """Ranging statistics per model."""

    comparison: RangingComparison
    distance: float
    iterations: int

    PAPER = {"ideal": (10.10, 0.49), "circuit": (11.16, 0.10)}

    def format_report(self) -> str:
        lines = [f"Table 2 - TWR @ {self.distance} m, "
                 f"{self.iterations} iterations (CM1 LOS + path loss)",
                 self.comparison.format_table(),
                 "  paper:  ideal 10.10 m / 0.49, circuit 11.16 m / 0.10",
                 f"  offset increased with circuit: "
                 f"{self.comparison.offset_increased('ideal', 'circuit')}",
                 f"  variance decreased with circuit: "
                 f"{self.comparison.variance_decreased('ideal', 'circuit')}"]
        return "\n".join(lines)


def make_twr(config: UwbConfig, integrator: WindowIntegrator,
             distance: float = 9.9,
             noise_sigma: float = TWR_NOISE_SIGMA) -> TwoWayRanging:
    """A TWR simulator wired to the table-2 operating point."""
    channel = Cm1Channel(config.fs)
    return TwoWayRanging(
        config,
        lambda: EnergyDetectionReceiver(
            config, integrator,
            toa_threshold_fraction=TWR_TOA_FRACTION,
            detection_factor=TWR_DETECTION_FACTOR),
        distance=distance, tx_amplitude=1.0,
        noise_sigma=noise_sigma, channel=channel)


def run_twr_arm(integrator: WindowIntegrator, distance: float,
                iterations: int, rng: np.random.Generator,
                noise_sigma: float = TWR_NOISE_SIGMA) -> RangingResult:
    """One integrator arm of the table-2 campaign (top-level so
    scenario sweeps can fan it out and the campaign layer can cache
    it by content)."""
    config = UwbConfig(**TWR_CONFIG)
    twr = make_twr(config, integrator, distance=distance,
                   noise_sigma=noise_sigma)
    return twr.run(iterations, rng)


def run_table2(distance: float = 9.9, iterations: int = 10,
               seed: int = 42,
               circuit: WindowIntegrator | None = None,
               processes: int | None = None,
               store: ResultStore | None = None) -> Table2Result:
    """Regenerate table 2 (10 iterations at 9.9 m by default).

    Both arms are seeded identically (same noise/channel draws) and
    run as campaign scenarios, so they cache and fan out like every
    other harness.
    """
    circuit = circuit or CircuitSurrogateIntegrator()
    runner = CampaignRunner(processes=processes, store=store)
    for label, integ in (("ideal", IdealIntegrator()), ("circuit", circuit)):
        runner.add(Scenario(
            name=label, fn=run_twr_arm, seed=seed, rng_param="rng",
            params=dict(integrator=integ, distance=distance,
                        iterations=iterations)))
    arms = runner.run().by_name()
    comparison = RangingComparison()
    for label in ("ideal", "circuit"):
        comparison.add(label, arms[label])
    return Table2Result(comparison=comparison, distance=distance,
                        iterations=iterations)
