"""Table 2: Two-Way Ranging at 9.9 m, ideal versus circuit integrator.

Paper (10 iterations, CM1 LOS with recommended path loss):

    IDEAL integrator:  mean 10.10 m, variance 0.49
    ELDO  integrator:  mean 11.16 m, variance 0.10

The two observations the paper draws from this: the refined integrator
shows (1) a *larger offset* - the AGC overdrives its limited linear
input range, the squared signal is compressed, the output voltage is
lower and the ADC-referred arrival threshold is crossed later - and (2)
a *smaller variance*, attributed to the equivalent-SNR increase.  Our
harness reproduces the offset mechanism robustly; the variance gap sits
inside Monte-Carlo uncertainty at 10 iterations (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import warnings

from repro.campaign.runner import CampaignRunner
from repro.campaign.store import ResultStore
from repro.core.metrics import RangingComparison
from repro.core.scenario import Scenario
from repro.experiments.registry import ExperimentContext, experiment
from repro.link import ChannelSpec, FrontEndSpec, LinkSpec, ops
from repro.uwb import RangingResult, TwoWayRanging, UwbConfig
from repro.uwb.integrator import WindowIntegrator

#: The overdriven AGC operating point of the TWR runs (see module doc).
TWR_CONFIG = dict(preamble_symbols=16, payload_bits=16,
                  adc_vref=2e-3, agc_range_db=80.0)
TWR_NOISE_SIGMA = 9e-5
TWR_TOA_FRACTION = 0.5
TWR_DETECTION_FACTOR = 8.0


def twr_spec(distance: float = 9.9,
             integrator: str = "circuit") -> LinkSpec:
    """The table-2 operating point as a :class:`LinkSpec`: CM1 LOS
    channel at *distance*, overdriven AGC drive, mid-scale
    ADC-referred TOA threshold."""
    return LinkSpec(
        config=UwbConfig(**TWR_CONFIG),
        channel=ChannelSpec(kind="cm1", distance=float(distance)),
        frontend=FrontEndSpec(
            detection_factor=TWR_DETECTION_FACTOR,
            toa_threshold_fraction=TWR_TOA_FRACTION),
        integrator=integrator)


@dataclass
class Table2Result:
    """Ranging statistics per model."""

    comparison: RangingComparison
    distance: float
    iterations: int

    PAPER = {"ideal": (10.10, 0.49), "circuit": (11.16, 0.10)}

    def format_report(self) -> str:
        lines = [f"Table 2 - TWR @ {self.distance} m, "
                 f"{self.iterations} iterations (CM1 LOS + path loss)",
                 self.comparison.format_table(),
                 "  paper:  ideal 10.10 m / 0.49, circuit 11.16 m / 0.10",
                 f"  offset increased with circuit: "
                 f"{self.comparison.offset_increased('ideal', 'circuit')}",
                 f"  variance decreased with circuit: "
                 f"{self.comparison.variance_decreased('ideal', 'circuit')}"]
        return "\n".join(lines)


def make_twr(config: UwbConfig, integrator: WindowIntegrator,
             distance: float = 9.9,
             noise_sigma: float = TWR_NOISE_SIGMA) -> TwoWayRanging:
    """Deprecated TWR assembly helper.

    .. deprecated::
        Build the link via :func:`twr_spec` and call
        ``get_backend("fastsim").ranging(spec, ...)`` (or
        :func:`repro.link.ops.ranging`).
    """
    warnings.warn(
        "make_twr is deprecated; build the link via twr_spec() and "
        "run it through repro.link (Backend.ranging / ops.ranging)",
        DeprecationWarning, stacklevel=2)
    from repro.link import build_channel_model, build_receiver

    spec = twr_spec(distance).with_(config=config)
    return TwoWayRanging(
        spec.config,
        lambda: build_receiver(spec, integrator=integrator),
        distance=distance, tx_amplitude=1.0,
        noise_sigma=noise_sigma,
        channel=build_channel_model(spec))


def run_twr_arm(integrator: WindowIntegrator, distance: float,
                iterations: int, rng: np.random.Generator,
                noise_sigma: float = TWR_NOISE_SIGMA) -> RangingResult:
    """Deprecated table-2 arm runner.

    .. deprecated::
        Use :func:`repro.link.ops.ranging` with :func:`twr_spec`.
    """
    warnings.warn(
        "run_twr_arm is deprecated; use repro.link.ops.ranging with "
        "twr_spec()",
        DeprecationWarning, stacklevel=2)
    return ops.ranging(twr_spec(distance), iterations, rng,
                       integrator=integrator, noise_sigma=noise_sigma)


def run_table2(distance: float = 9.9, iterations: int = 10,
               seed: int = 42,
               circuit: WindowIntegrator | None = None,
               processes: int | None = None,
               store: ResultStore | None = None) -> Table2Result:
    """Regenerate table 2 (10 iterations at 9.9 m by default).

    Both arms are seeded identically (same noise/channel draws) and
    run as campaign scenarios, so they cache and fan out like every
    other harness.
    """
    runner = CampaignRunner(processes=processes, store=store)
    for label in ("ideal", "circuit"):
        params = dict(spec=twr_spec(distance, integrator=label),
                      iterations=iterations,
                      noise_sigma=TWR_NOISE_SIGMA)
        if label == "circuit" and circuit is not None:
            params["integrator"] = circuit
        runner.add(Scenario(
            name=label, fn=ops.ranging, seed=seed, rng_param="rng",
            params=params))
    arms = runner.run().by_name()
    comparison = RangingComparison()
    for label in ("ideal", "circuit"):
        comparison.add(label, arms[label])
    return Table2Result(comparison=comparison, distance=distance,
                        iterations=iterations)


@experiment("table2", order=40,
            description="Two-way ranging at 9.9 m over CM1 LOS, "
                        "ideal vs circuit integrator")
def table2_experiment(ctx: ExperimentContext) -> str:
    result = run_table2(iterations=30 if ctx.full else 10,
                        processes=ctx.processes, store=ctx.store,
                        **ctx.seed_kwargs())
    return result.format_report()
