"""Figure 6: BER versus Eb/N0, ideal versus circuit integrator.

Paper claims: both curves decrease monotonically from Eb/N0 = 0 to
14 dB; the real (ELDO) integrator performs slightly *better* at high
Eb/N0, "imputable to the noise shaping effect of the second pole at high
frequencies".  We run the vectorized Monte-Carlo engine with paired
noise (same seed) so the comparison is tight at small sample counts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.campaign.runner import CampaignRunner
from repro.campaign.store import ResultStore
from repro.core.metrics import BerComparison, compare_ber
from repro.core.scenario import Scenario
from repro.experiments.registry import ExperimentContext, experiment
from repro.link import FrontEndSpec, LinkSpec, ops
from repro.uwb import UwbConfig
from repro.uwb.fastsim import AdaptiveStopping
from repro.uwb.integrator import WindowIntegrator

#: Wide receiver front end: squared noise extends past the integrator's
#: second pole, activating the noise-shaping mechanism the paper cites.
WIDE_FRONT_END = (2.0e9, 9.0e9)

#: AGC operating point for the BER runs (inside the linear range; the
#: TWR experiment uses the overdriven point).
BER_DRIVE = 0.05


@dataclass
class Fig6Result:
    """Paired BER curves + comparison.

    ``curves`` keeps the raw per-curve results (error counters and
    Wilson confidence bounds) - the campaign artifact of record.
    """

    comparison: BerComparison
    config: UwbConfig
    drive: float
    curves: dict[str, "BerResult"] | None = None

    @property
    def monotone(self) -> bool:
        """Both curves non-increasing with Eb/N0 (within counting
        noise)."""
        def ok(ber):
            ber = np.asarray(ber)
            return bool(np.all(ber[1:] <= ber[:-1] * 1.5))

        return ok(self.comparison.ber_a) and ok(self.comparison.ber_b)

    def format_report(self) -> str:
        lines = ["Figure 6 - BER vs Eb/N0 (2-PPM energy detection)",
                 self.comparison.format_table(),
                 f"  winner at high Eb/N0: "
                 f"{self.comparison.wins_at_high_snr()} "
                 "(paper: the circuit integrator)"]
        if self.curves:
            for label, curve in self.curves.items():
                lines += ["", f"{label} curve (errors / bits / "
                              f"{curve.confidence:.0%} Wilson CI):",
                          curve.format_table()]
        return "\n".join(lines)


def run_fig6(config: UwbConfig | None = None,
             ebn0_grid=(0, 2, 4, 6, 8, 10, 12, 14),
             seed: int = 7,
             quick: bool = True,
             circuit: WindowIntegrator | None = None,
             processes: int | None = None,
             workers: int | None = None,
             adaptive: AdaptiveStopping | None = None,
             store: ResultStore | None = None,
             batch_points: bool = True,
             chunk_bits: int | None = None) -> Fig6Result:
    """Regenerate figure 6.

    Args:
        quick: smaller Monte-Carlo budget (bench default); paper-scale
            runs use ``quick=False``.
        circuit: override the circuit model (e.g. a
            :func:`repro.core.characterize.build_surrogate` extraction);
            default is the registry's analytic surrogate.
        processes: fan the two curves out over processes (legacy path
            only; the batched sweep is one scenario).
        workers: fan the Eb/N0 points of each curve out over processes
            (legacy path; see the fastsim backend).
        adaptive: sequential per-point stopping policy; deep-SNR
            points end once their Wilson bounds are resolved instead
            of burning the whole ``max_bits`` budget.
        store: result store for cached/resumable execution.
        batch_points: run the whole figure as ONE scenario-batched
            sweep (both curves share the seed, hence the front end:
            one Tx/channel/AFE pass feeds both decision stages).  Each
            curve is bit-identical to its own per-point run, but the
            campaign is a handful of large array ops.  ``False``
            restores the legacy one-scenario-per-curve campaign.
        chunk_bits: Monte-Carlo chunk size override.
    """
    config = config or UwbConfig()
    if quick:
        budget = dict(target_errors=60, max_bits=40_000, min_bits=2_000)
    else:
        budget = dict(target_errors=200, max_bits=400_000, min_bits=20_000)
    if chunk_bits is not None:
        budget["chunk_bits"] = chunk_bits

    # Paired noise: both curves draw from a generator seeded
    # identically, so they differ only by the integrator model.
    runner = CampaignRunner(processes=processes, store=store)
    spec = LinkSpec(config=config,
                    frontend=FrontEndSpec(band=WIDE_FRONT_END,
                                          squarer_drive=BER_DRIVE),
                    integrator="ideal")
    if batch_points:
        # The shared seed means both curves see identical Tx/channel/
        # AFE samples - the batched sweep computes that front end once
        # and grades every (integrator, Eb/N0) cell from it.
        runner.add(Scenario(
            name="curves", fn=ops.ber_sweep, seed=seed, rng_param="rng",
            params=dict(
                spec=spec, ebn0_grid=ebn0_grid,
                integrators=("ideal",
                             circuit if circuit is not None
                             else "circuit"),
                labels=("ideal", "circuit"),
                adaptive=adaptive, **budget)))
        curves = runner.run().by_name()["curves"]
    else:
        for label in ("ideal", "circuit"):
            params = dict(spec=dataclasses.replace(spec,
                                                   integrator=label),
                          ebn0_grid=ebn0_grid, label=label,
                          workers=workers, adaptive=adaptive,
                          batch_points=False, **budget)
            if label == "circuit" and circuit is not None:
                # Substitute-and-play override: a characterized
                # surrogate replaces the registry's analytic model.
                params["integrator"] = circuit
            # The worker count is an execution knob: any workers>1
            # yields identical spawned-stream results (see fastsim
            # ber_curve), so only the serial/spawned seeding
            # distinction enters the content address - re-running with
            # a different fan-out stays cached.
            key_params = dict(
                params,
                workers="spawned" if workers and workers > 1
                else "serial")
            runner.add(Scenario(
                name=label, fn=ops.ber_curve, seed=seed,
                rng_param="rng", params=params, key_params=key_params))
        curves = runner.run().by_name()
    return Fig6Result(comparison=compare_ber(curves["ideal"],
                                             curves["circuit"]),
                      config=config, drive=BER_DRIVE, curves=curves)


@experiment("fig6", order=10,
            description="BER vs Eb/N0, ideal vs circuit integrator "
                        "(paired Monte-Carlo)")
def fig6_experiment(ctx: ExperimentContext) -> str:
    # Adaptive Monte-Carlo: deep-SNR points stop once their Wilson
    # upper bound resolves below the study's floor instead of burning
    # the full symbol budget.
    adaptive = AdaptiveStopping(ber_floor=1e-5 if ctx.full else 1e-4)
    result = run_fig6(quick=not ctx.full, workers=ctx.processes,
                      adaptive=adaptive, store=ctx.store,
                      batch_points=ctx.batch_points,
                      chunk_bits=ctx.chunk_bits,
                      **ctx.seed_kwargs())
    return result.format_report()
