"""Experiment harnesses: one module per table/figure of the paper.

Every harness is a plain function returning a result object with a
``format_report()`` method; the ``benchmarks/`` tree wraps them in
pytest-benchmark targets, and the ``examples/`` scripts call them
directly.  Each accepts a ``quick`` flag that trades Monte-Carlo depth
for runtime (benchmarks default to quick settings; pass ``quick=False``
for paper-scale runs).

Each module additionally registers a CLI adapter with the
:func:`repro.experiments.registry.experiment` decorator, so
``python -m repro run <name>`` / ``--list`` discover experiments here
instead of hard-coding them - importing this package *is* the
discovery step.
"""

from repro.experiments.registry import (
    Experiment,
    ExperimentContext,
    all_experiments,
    experiment,
    experiment_names,
    get_experiment,
)
from repro.experiments.fig4_ac import Fig4Result, run_fig4
from repro.experiments.fig5_transient import (
    Fig5Result,
    run_fig5,
    run_fig5_drive_sweep,
)
from repro.experiments.fig6_ber import Fig6Result, run_fig6
from repro.experiments.mui_network import (
    MuiResult,
    default_victim,
    interference_network,
    near_far_network,
    run_mui,
)
from repro.experiments.table1_cpu import Table1Result, run_table1
from repro.experiments.table2_twr import Table2Result, run_table2
from repro.experiments.phase1_overlap import Phase1Result, run_phase1_overlap
from repro.experiments.ablations import (
    AgcAblationResult,
    NoiseShapingResult,
    run_agc_ablation,
    run_noise_shaping_ablation,
)

__all__ = [
    "AgcAblationResult",
    "Experiment",
    "ExperimentContext",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "MuiResult",
    "NoiseShapingResult",
    "Phase1Result",
    "Table1Result",
    "Table2Result",
    "all_experiments",
    "default_victim",
    "experiment",
    "experiment_names",
    "get_experiment",
    "interference_network",
    "near_far_network",
    "run_agc_ablation",
    "run_fig4",
    "run_fig5",
    "run_fig5_drive_sweep",
    "run_fig6",
    "run_mui",
    "run_noise_shaping_ablation",
    "run_phase1_overlap",
    "run_table1",
    "run_table2",
]
