"""Table 1: CPU time of a system simulation per integrator model.

Paper (30 us simulated, 0.05 ns fixed step, IBM Xeon 3.0 GHz):

    ELDO      59 m 33 s   (6.5x IDEAL, 2.9x VHDL-AMS)
    VHDL-AMS  20 m 37 s   (2.2x IDEAL)
    IDEAL      9 m 11 s

We run the same mixed-signal receiver testbench with the three
integrator back ends and report wall-clock time and ratios.  The claim
under test is the *ordering* and the existence of a large
circuit-in-the-loop penalty; absolute ratios differ because our
behavioral blocks are far cheaper relative to a matrix solve than
VHDL-AMS equation systems executed by ADMS (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import CpuTimeReport
from repro.uwb import UwbConfig
from repro.uwb.bpf import BandPassFilter
from repro.uwb.modulation import ppm_waveform, random_bits
from repro.uwb.system import run_ams_receiver


@dataclass
class Table1Result:
    """CPU-time table + per-model demodulated bits (sanity check)."""

    report: CpuTimeReport
    bits: dict[str, np.ndarray]
    tx_bits: np.ndarray

    PAPER = {"ELDO": 59 * 60 + 33, "VHDL-AMS": 20 * 60 + 37,
             "IDEAL": 9 * 60 + 11}

    def cosim_dominates(self) -> bool:
        """The headline claim: transistor-in-the-loop costs a large
        multiple of either behavioral model."""
        e = self.report.entries
        return (e["ELDO"] > 2.0 * e["VHDL-AMS"]
                and e["ELDO"] > 2.0 * e["IDEAL"])

    def model_vs_ideal_ratio(self) -> float:
        """VHDL-AMS model cost over IDEAL cost (paper: ~2.2x; here the
        behavioral blocks are so cheap relative to kernel overhead that
        the gap may vanish - see EXPERIMENTS.md)."""
        e = self.report.entries
        return e["VHDL-AMS"] / e["IDEAL"]

    def format_report(self) -> str:
        paper_ratio = {k: v / self.PAPER["IDEAL"]
                       for k, v in self.PAPER.items()}
        return "\n".join([
            "Table 1 - CPU time comparison",
            self.report.format_table(),
            "  paper ratios: "
            + ", ".join(f"{k} {v:.1f}x" for k, v in paper_ratio.items()),
            f"  circuit-in-the-loop dominates: {self.cosim_dominates()}",
            f"  VHDL-AMS / IDEAL ratio: {self.model_vs_ideal_ratio():.2f}x"
            " (paper: 2.2x)",
        ])


def run_table1(config: UwbConfig | None = None,
               simulated_time: float = 1e-6,
               seed: int = 11,
               cosim_substeps: int = 1) -> Table1Result:
    """Regenerate table 1.

    Args:
        simulated_time: simulated span (paper: 30 us; default 1 us keeps
            the benchmark minutes-scale - the ratios are span-invariant
            beyond a few symbols).
    """
    config = config or UwbConfig()
    n_symbols = max(2, int(round(simulated_time / config.symbol_period)))
    rng = np.random.default_rng(seed)
    tx_bits = random_bits(n_symbols, rng)
    wave = ppm_waveform(tx_bits, config, amplitude=1.0)
    wave = wave + rng.normal(0.0, 0.01, size=len(wave))
    bpf = BandPassFilter.for_pulse(config.fs, config.pulse_tau,
                                   config.pulse_order)
    sig = bpf(wave)
    sig = 0.25 * sig / np.max(np.abs(sig))

    span = n_symbols * config.symbol_period
    report = CpuTimeReport(simulated_time=span)
    bits: dict[str, np.ndarray] = {}
    for label, kind in (("IDEAL", "ideal"), ("VHDL-AMS", "two_pole"),
                        ("ELDO", "circuit")):
        result = run_ams_receiver(config, kind, sig,
                                  cosim_substeps=cosim_substeps,
                                  t_stop=span)
        report.add(label, result.cpu_time)
        bits[label] = result.bits
    return Table1Result(report=report, bits=bits, tx_bits=tx_bits)
