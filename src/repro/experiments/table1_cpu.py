"""Table 1: CPU time of a system simulation per integrator model.

Paper (30 us simulated, 0.05 ns fixed step, IBM Xeon 3.0 GHz):

    ELDO      59 m 33 s   (6.5x IDEAL, 2.9x VHDL-AMS)
    VHDL-AMS  20 m 37 s   (2.2x IDEAL)
    IDEAL      9 m 11 s

We run the same mixed-signal receiver testbench with the three
integrator back ends and report wall-clock time and ratios.  The claim
under test is the *ordering* and the existence of a large
circuit-in-the-loop penalty; absolute ratios differ because our
behavioral blocks are far cheaper relative to a matrix solve than
VHDL-AMS equation systems executed by ADMS (see EXPERIMENTS.md).

The behavioral rows run on the kernel's compiled (segment-vectorized)
execution engine by default; the ELDO row always runs lock-step because
the Spice block opts out of vectorization - exactly the cost structure
the paper reports, with the gap widened by the compiled engine.  When
``measure_reference`` is on (the default), the IDEAL row is re-run on
the lock-step reference engine so the report also tracks the
engine-vs-engine speedup and checks bit-identical demodulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.campaign.runner import CampaignRunner
from repro.campaign.store import ResultStore
from repro.core.metrics import CpuTimeReport
from repro.core.scenario import Scenario
from repro.experiments.registry import ExperimentContext, experiment
from repro.link import LinkSpec, build_bpf, ops
from repro.uwb import UwbConfig
from repro.uwb.modulation import ppm_waveform, random_bits

#: (report label, integrator spec) rows of the table.
MODEL_ROWS = (("IDEAL", "ideal"), ("VHDL-AMS", "two_pole"),
              ("ELDO", "circuit"))


@dataclass
class Table1Result:
    """CPU-time table + per-model demodulated bits (sanity check)."""

    report: CpuTimeReport
    bits: dict[str, np.ndarray]
    tx_bits: np.ndarray
    engine: str = "compiled"
    #: lock-step timings of re-measured rows (engine speedup tracking).
    reference_times: dict[str, float] = field(default_factory=dict)
    #: best compiled timings over the speedup repeats (robust ratio
    #: numerator/denominator; the table entry itself is a single run).
    compiled_times: dict[str, float] = field(default_factory=dict)
    #: demodulated bits of the lock-step re-runs.
    reference_bits: dict[str, np.ndarray] = field(default_factory=dict)

    PAPER = {"ELDO": 59 * 60 + 33, "VHDL-AMS": 20 * 60 + 37,
             "IDEAL": 9 * 60 + 11}

    def cosim_dominates(self) -> bool:
        """The headline claim: transistor-in-the-loop costs a large
        multiple of either behavioral model."""
        e = self.report.entries
        return (e["ELDO"] > 2.0 * e["VHDL-AMS"]
                and e["ELDO"] > 2.0 * e["IDEAL"])

    def model_vs_ideal_ratio(self) -> float:
        """VHDL-AMS model cost over IDEAL cost (paper: ~2.2x; here the
        behavioral blocks are so cheap relative to kernel overhead that
        the gap may vanish - see EXPERIMENTS.md)."""
        e = self.report.entries
        return e["VHDL-AMS"] / e["IDEAL"]

    def engine_speedup(self, label: str = "IDEAL") -> float | None:
        """Compiled-over-reference wall-clock speedup for *label*
        (``None`` when the reference row was not measured).  Uses the
        best-of-N timings of both engines so a single scheduler stall
        cannot flip the ratio."""
        ref = self.reference_times.get(label)
        if ref is None:
            return None
        compiled = self.compiled_times.get(label,
                                           self.report.entries[label])
        return ref / compiled

    def engines_agree(self) -> bool:
        """Both engines demodulated identical bits on every re-measured
        row (vacuously true when nothing was re-measured)."""
        return all(np.array_equal(self.bits[label], ref_bits)
                   for label, ref_bits in self.reference_bits.items())

    def format_report(self) -> str:
        paper_ratio = {k: v / self.PAPER["IDEAL"]
                       for k, v in self.PAPER.items()}
        lines = [
            "Table 1 - CPU time comparison "
            f"(engine: {self.engine})",
            self.report.format_table(),
            "  paper ratios: "
            + ", ".join(f"{k} {v:.1f}x" for k, v in paper_ratio.items()),
            f"  circuit-in-the-loop dominates: {self.cosim_dominates()}",
            f"  VHDL-AMS / IDEAL ratio: {self.model_vs_ideal_ratio():.2f}x"
            " (paper: 2.2x)",
        ]
        speedup = self.engine_speedup()
        if speedup is not None:
            lines.append(
                f"  compiled-vs-reference speedup (IDEAL): "
                f"{speedup:.1f}x, identical bits: {self.engines_agree()}")
        return "\n".join(lines)


def make_table1_waveform(config: UwbConfig, n_symbols: int,
                         seed: int) -> tuple[np.ndarray, np.ndarray]:
    """The shared Table-1 stimulus: a lightly noisy filtered 2-PPM
    burst, normalized to a fixed squarer drive."""
    rng = np.random.default_rng(seed)
    tx_bits = random_bits(n_symbols, rng)
    wave = ppm_waveform(tx_bits, config, amplitude=1.0)
    wave = wave + rng.normal(0.0, 0.01, size=len(wave))
    bpf = build_bpf(LinkSpec(config=config))
    sig = bpf(wave)
    sig = 0.25 * sig / np.max(np.abs(sig))
    return sig, tx_bits


def run_table1(config: UwbConfig | None = None,
               simulated_time: float = 1e-6,
               seed: int = 11,
               cosim_substeps: int = 1,
               engine: str = "compiled",
               measure_reference: bool = True,
               speedup_repeats: int = 3,
               processes: int | None = None,
               store: ResultStore | None = None) -> Table1Result:
    """Regenerate table 1.

    Args:
        simulated_time: simulated span (paper: 30 us; default 1 us keeps
            the benchmark minutes-scale - the ratios are span-invariant
            beyond a few symbols).
        engine: kernel execution engine for the behavioral rows.
        measure_reference: additionally time the IDEAL row on the
            lock-step reference engine (engine speedup + equivalence).
        speedup_repeats: repeats per engine for the speedup ratio (the
            best of each side is used, so one scheduler stall in a
            milliseconds-scale run cannot skew it).
        processes: fan the rows out over processes.  Defaults to serial
            execution, which is what a CPU-time comparison wants -
            parallel rows contend for cores and skew the table.
        store: result store for cached/resumable execution.  Note that
            cached rows report the *original* run's CPU time - exactly
            what a bookkept measurement campaign wants, but pass
            ``store=None`` (or clear the cache) to re-measure.
    """
    config = config or UwbConfig()
    n_symbols = max(2, int(round(simulated_time / config.symbol_period)))
    sig, tx_bits = make_table1_waveform(config, n_symbols, seed)
    span = n_symbols * config.symbol_period

    runner = CampaignRunner(processes=processes, store=store)
    for label, kind in MODEL_ROWS:
        runner.add(Scenario(
            name=label, fn=ops.run_testbench,
            params=dict(spec=LinkSpec(config=config, integrator=kind),
                        waveform=sig, cosim_substeps=cosim_substeps,
                        t_stop=span, engine=engine)))
    if measure_reference and engine != "reference":
        ideal_spec = LinkSpec(config=config, integrator="ideal")
        for i in range(max(1, speedup_repeats)):
            for eng in ("reference", engine):
                # cache=False: the repeats are independent timing
                # samples; under a store their identical content would
                # collapse onto one entry and fake the best-of-N.
                runner.add(Scenario(
                    name=f"IDEAL/{eng}#{i}", fn=ops.run_testbench,
                    cache=False,
                    params=dict(spec=ideal_spec, waveform=sig,
                                t_stop=span, engine=eng)))

    outcomes = runner.run().by_name()
    report = CpuTimeReport(simulated_time=span)
    bits: dict[str, np.ndarray] = {}
    reference_times: dict[str, float] = {}
    compiled_times: dict[str, float] = {}
    reference_bits: dict[str, np.ndarray] = {}
    for label, _kind in MODEL_ROWS:
        result = outcomes[label]
        report.add(label, result.cpu_time)
        bits[label] = result.bits
    if measure_reference and engine != "reference":
        ref_runs = [v for k, v in outcomes.items()
                    if k.startswith("IDEAL/reference#")]
        eng_runs = [v for k, v in outcomes.items()
                    if k.startswith(f"IDEAL/{engine}#")]
        reference_times["IDEAL"] = min(r.cpu_time for r in ref_runs)
        reference_bits["IDEAL"] = ref_runs[0].bits
        compiled_times["IDEAL"] = min(
            [r.cpu_time for r in eng_runs]
            + [report.entries["IDEAL"]])
    return Table1Result(report=report, bits=bits, tx_bits=tx_bits,
                        engine=engine, reference_times=reference_times,
                        compiled_times=compiled_times,
                        reference_bits=reference_bits)


@experiment("table1", order=20,
            description="CPU time of a system simulation per "
                        "integrator model (+ engine speedup)")
def table1_experiment(ctx: ExperimentContext) -> str:
    # measure_reference repeats are uncacheable timing samples; skip
    # them here so a completed table-1 campaign re-runs with zero
    # executions (benchmarks/ still track the engine speedup).
    result = run_table1(simulated_time=2e-6 if ctx.full else 1e-6,
                        processes=ctx.processes,
                        measure_reference=False, store=ctx.store,
                        **ctx.seed_kwargs())
    return result.format_report()
