"""Multi-user interference & coexistence: BER over a ``NetworkSpec``.

The paper's 2-PPM energy-detection receiver is non-coherent: it cannot
separate users by phase or code, so any same-band transmitter's energy
lands directly in the decision statistic.  This experiment quantifies
that sensitivity - the standard network-level evaluation for IEEE
802.15.4a-class links the paper itself leaves open:

* **interferer-count sweep** - BER versus Eb/N0 for 0 / 1 / 2 / 4
  equal-band interferers at several signal-to-interference ratios.
  At fixed Eb/N0 the BER worsens monotonically with the interferer
  count (each added transmitter injects independent energy into
  randomly-chosen slots).
* **near-far sweep** - one interferer walked toward the victim's
  receiver at fixed Eb/N0.  Relative received power follows the TG4a
  distance power law: an interferer at distance ``d`` against a victim
  at ``d_v`` arrives ``path_loss_db(d_v) - path_loss_db(d)`` dB above
  the victim - the classic near-far aggressor once ``d < d_v``.

Interferers are symbol-rate 2-PPM transmitters with independent
payloads, offset from the victim's symbol clock by fixed sub-slot
fractions (:data:`OFFSET_FRACTIONS`) so pulses never coherently
overlap.  SIR conventions live in :class:`repro.link.spec.InterfererSpec`
(``rel_power_db = -SIR``, calibrated on received pilot energies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.campaign.runner import CampaignRunner
from repro.campaign.store import ResultStore
from repro.core.scenario import Scenario
from repro.experiments.fig6_ber import BER_DRIVE, WIDE_FRONT_END
from repro.experiments.registry import ExperimentContext, experiment
from repro.link import (
    FrontEndSpec,
    InterfererSpec,
    LinkSpec,
    NetworkSpec,
    ops,
)
from repro.uwb import UwbConfig
from repro.uwb.channel.ieee802154a import path_loss_db
from repro.uwb.fastsim import AdaptiveStopping, BerResult

#: sub-slot timing offsets per interferer index, as fractions of the
#: PPM slot.  Distinct irrational-ish fractions keep interferer pulses
#: from landing coherently on the victim's (or each other's) pulses,
#: which would otherwise add amplitudes instead of energies.
OFFSET_FRACTIONS = (0.21, 0.41, 0.64, 0.79)

#: offset fraction of the near-far aggressor.
NEAR_FAR_OFFSET_FRACTION = 0.37


def default_victim(config: UwbConfig | None = None) -> LinkSpec:
    """The fig6-convention victim link (wide front end, BER drive,
    ideal integrator)."""
    return LinkSpec(config=config or UwbConfig(),
                    frontend=FrontEndSpec(band=WIDE_FRONT_END,
                                          squarer_drive=BER_DRIVE),
                    integrator="ideal")


def interference_network(victim: LinkSpec, n_interferers: int,
                         sir_db: float) -> NetworkSpec:
    """*victim* plus ``n_interferers`` equal-SIR transmitters at the
    canonical sub-slot offsets."""
    slot = victim.config.slot
    interferers = tuple(
        InterfererSpec(
            rel_power_db=-float(sir_db),
            timing_offset=OFFSET_FRACTIONS[i % len(OFFSET_FRACTIONS)]
            * slot)
        for i in range(n_interferers))
    return NetworkSpec(victim=victim, interferers=interferers)


def near_far_network(victim: LinkSpec, distance: float) -> NetworkSpec:
    """*victim* plus one aggressor at *distance* meters whose relative
    received power follows the TG4a path-loss law.

    The mapping is explicit rather than channel-borne (both links keep
    the victim's ideal-channel decision behavior, only the power ratio
    moves): ``rel_power_db = path_loss_db(d_victim) -
    path_loss_db(d_interferer)``, so an interferer closer than the
    victim's transmitter arrives hotter.
    """
    rel_db = (path_loss_db(victim.channel.distance)
              - path_loss_db(distance))
    aggressor = InterfererSpec(
        rel_power_db=rel_db,
        timing_offset=NEAR_FAR_OFFSET_FRACTION * victim.config.slot)
    return NetworkSpec(victim=victim, interferers=(aggressor,))


@dataclass
class MuiResult:
    """Multi-user interference study results.

    Attributes:
        curves: BER curves of the count sweep keyed by scenario name
            (``"n0"`` baseline, ``"n{count}-sir{sir:g}"`` otherwise).
        near_far: single-point BER results keyed by aggressor distance.
        victim: the victim link spec.
        counts / sir_grid: the scenario grid.
        ebn0_grid: the Eb/N0 grid of the count sweep.
        near_far_ebn0: operating point of the near-far sweep.
    """

    curves: dict[str, BerResult]
    near_far: dict[float, BerResult]
    victim: LinkSpec
    counts: tuple[int, ...]
    sir_grid: tuple[float, ...]
    ebn0_grid: tuple[float, ...]
    near_far_ebn0: float

    @staticmethod
    def scenario_name(n_interferers: int, sir_db: float) -> str:
        if n_interferers == 0:
            return "n0"
        return f"n{n_interferers}-sir{sir_db:g}"

    def count_sweep(self, sir_db: float) -> list[tuple[int, float]]:
        """``(count, BER at the top Eb/N0 point)`` per interferer
        count at *sir_db*."""
        rows = []
        for n in self.counts:
            curve = self.curves[self.scenario_name(n, sir_db)]
            rows.append((n, float(curve.ber[-1])))
        return rows

    @property
    def monotone_in_interferers(self) -> bool:
        """BER worsens monotonically with the interferer count at the
        top Eb/N0 point, for every SIR (within 15% counting slack)."""
        for sir in self.sir_grid:
            bers = [ber for _n, ber in self.count_sweep(sir)]
            if any(b1 < b0 * 0.85 for b0, b1 in zip(bers, bers[1:])):
                return False
            if not bers[-1] > bers[0]:
                return False
        return True

    @property
    def near_far_monotone(self) -> bool:
        """BER relaxes as the aggressor backs away (within 15%
        counting slack)."""
        distances = sorted(self.near_far)
        bers = [float(self.near_far[d].ber[0]) for d in distances]
        return not any(b1 > b0 * 1.15 for b0, b1 in
                       zip(bers, bers[1:]))

    def format_report(self) -> str:
        top = self.ebn0_grid[-1]
        lines = [
            "Multi-user interference - BER over a NetworkSpec "
            "(2-PPM energy detection)",
            f"victim: integrator={self.victim.integrator} "
            f"channel={self.victim.channel.kind} "
            f"drive={self.victim.frontend.squarer_drive:g}V",
            f"interferer count sweep, BER at Eb/N0={top:g}dB:"]
        for sir in self.sir_grid:
            cells = " | ".join(f"n={n}: {ber:.3e}"
                               for n, ber in self.count_sweep(sir))
            lines.append(f"  SIR {sir:g} dB   {cells}")
        lines.append(f"near-far, one aggressor at "
                     f"Eb/N0={self.near_far_ebn0:g}dB (victim at "
                     f"{self.victim.channel.distance:g} m, relative "
                     "power from path_loss_db):")
        for d in sorted(self.near_far):
            curve = self.near_far[d]
            rel_db = (path_loss_db(self.victim.channel.distance)
                      - path_loss_db(d))
            lines.append(f"  d={d:>5.1f} m  SIR={-rel_db:+6.1f} dB  "
                         f"BER={float(curve.ber[0]):.3e}  "
                         f"({int(curve.errors[0])}/"
                         f"{int(curve.bits[0])})")
        for name in sorted(self.curves):
            curve = self.curves[name]
            lines += ["", f"{name} curve (errors / bits / "
                          f"{curve.confidence:.0%} Wilson CI):",
                      curve.format_table()]
        return "\n".join(lines)


def run_mui(victim: LinkSpec | None = None,
            config: UwbConfig | None = None,
            ebn0_grid: Sequence[float] | None = None,
            counts: Sequence[int] = (0, 1, 2, 4),
            sir_grid: Sequence[float] = (0.0, 6.0),
            near_far_distances: Sequence[float] = (3.0, 6.0, 9.9, 15.0),
            near_far_ebn0: float = 12.0,
            seed: int = 11,
            quick: bool = True,
            budget: Mapping[str, Any] | None = None,
            processes: int | None = None,
            workers: int | None = None,
            adaptive: AdaptiveStopping | None = None,
            store: ResultStore | None = None,
            batch_points: bool = True,
            chunk_bits: int | None = None) -> MuiResult:
    """Run the multi-user interference study.

    Args:
        victim: victim link override (default: the fig6-convention
            link built by :func:`default_victim`; the interferer
            offsets scale with its slot duration).
        config: convenience override of the default victim's
            configuration (ignored when *victim* is given).
        ebn0_grid: count-sweep grid (default: budget-dependent).
        counts: interferer counts of the sweep (0 runs once, as the
            shared baseline).
        sir_grid: signal-to-interference ratios of the count sweep.
        near_far_distances: aggressor distances of the near-far sweep.
        near_far_ebn0: fixed operating point of the near-far sweep.
        quick: smaller Monte-Carlo budget (bench default).
        budget: explicit ``target_errors`` / ``max_bits`` /
            ``min_bits`` overrides on top of the *quick* selection.
        processes: fan scenarios out over processes.
        workers: fan each curve's Eb/N0 points out over processes.
        adaptive: per-point sequential stopping policy.
        store: result store for cached/resumable execution (each
            network scenario checkpoints independently).
        batch_points: run every curve through the scenario-batched
            sweep kernel (default; bit-identical to a per-point run,
            see the fastsim backend) instead of the legacy per-point
            loop.
        chunk_bits: Monte-Carlo chunk size override.
    """
    victim = victim or default_victim(config)
    if ebn0_grid is None:
        ebn0_grid = (2, 6, 10, 14) if quick \
            else (0, 2, 4, 6, 8, 10, 12, 14)
    ebn0_grid = tuple(float(e) for e in ebn0_grid)
    counts = tuple(int(n) for n in counts)
    sir_grid = tuple(float(s) for s in sir_grid)
    if quick:
        mc = dict(target_errors=50, max_bits=30_000, min_bits=2_000)
    else:
        mc = dict(target_errors=150, max_bits=200_000, min_bits=10_000)
    mc.update(budget or {})
    if chunk_bits is not None:
        mc["chunk_bits"] = chunk_bits

    runner = CampaignRunner(processes=processes, store=store)

    def add(name: str, network: NetworkSpec, grid) -> None:
        params = dict(network=network, ebn0_grid=grid, label=name,
                      workers=workers, adaptive=adaptive,
                      batch_points=batch_points, **mc)
        # The worker count is an execution knob (see fig6): normalize
        # it out of the content address so re-running with a different
        # fan-out stays cached.  The batched kernel has its own
        # (shared-draw) seeding convention, so it gets its own key.
        key_workers = ("batched" if batch_points
                       else "spawned" if workers and workers > 1
                       else "serial")
        key_params = dict(params, workers=key_workers)
        runner.add(Scenario(name=name, fn=ops.mui_ber_curve, seed=seed,
                            rng_param="rng", params=params,
                            key_params=key_params))

    seen = set()
    for sir in sir_grid:
        for n in counts:
            name = MuiResult.scenario_name(n, sir)
            if name in seen:
                continue  # the n=0 baseline is SIR-independent
            seen.add(name)
            add(name, interference_network(victim, n, sir), ebn0_grid)
    for d in near_far_distances:
        add(f"nearfar-d{d:g}", near_far_network(victim, float(d)),
            (float(near_far_ebn0),))

    by_name = runner.run().by_name()
    curves = {name: by_name[name] for name in seen}
    near_far = {float(d): by_name[f"nearfar-d{d:g}"]
                for d in near_far_distances}
    return MuiResult(curves=curves, near_far=near_far, victim=victim,
                     counts=counts, sir_grid=sir_grid,
                     ebn0_grid=ebn0_grid,
                     near_far_ebn0=float(near_far_ebn0))


@experiment("mui", order=60,
            description="BER vs Eb/N0 under 0/1/2/4 same-band "
                        "interferers + near-far sweep (NetworkSpec, "
                        "multi-user fastsim)")
def mui_experiment(ctx: ExperimentContext) -> str:
    adaptive = AdaptiveStopping(ber_floor=1e-5 if ctx.full else 1e-4)
    result = run_mui(quick=not ctx.full, processes=ctx.processes,
                     adaptive=adaptive, store=ctx.store,
                     batch_points=ctx.batch_points,
                     chunk_bits=ctx.chunk_bits,
                     **ctx.seed_kwargs())
    return result.format_report()
