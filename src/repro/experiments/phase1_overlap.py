"""Phase-I validation: AMS-kernel BER overlaps the golden model.

Paper, section 3 (Phase I): "we obtained BER curves which perfectly
overlapped the Matlab ones."  Here the mixed-signal kernel receiver
(block-level, event-driven timing) and the vectorized golden model
(:mod:`repro.uwb.fastsim`) demodulate the *same* noisy waveforms, so the
comparison is exact at the decision level, not merely statistical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.registry import ExperimentContext, experiment
from repro.link import (
    FastsimBackend,
    LinkSpec,
    calibrate,
    ops,
    run_equivalence,
)
from repro.link.equivalence import DEFAULT_SPEC
from repro.uwb import UwbConfig
from repro.uwb.channel.awgn import noise_sigma_for_ebn0
from repro.uwb.modulation import ppm_waveform, random_bits


@dataclass
class Phase1Result:
    """Per-Eb/N0 BERs of the two paths plus decision agreement."""

    ebn0_db: np.ndarray
    ber_ams: np.ndarray
    ber_golden: np.ndarray
    decision_agreement: float
    bits_per_point: int

    @property
    def max_ber_gap(self) -> float:
        return float(np.max(np.abs(self.ber_ams - self.ber_golden)))

    def format_report(self) -> str:
        lines = ["Phase I - AMS kernel vs golden model BER overlap",
                 f"{'Eb/N0':>7s} {'AMS':>10s} {'golden':>10s}"]
        for e, a, g in zip(self.ebn0_db, self.ber_ams, self.ber_golden):
            lines.append(f"{e:>7.1f} {a:>10.4f} {g:>10.4f}")
        lines.append(f"  per-decision agreement: "
                     f"{self.decision_agreement * 100:.2f} % "
                     f"({self.bits_per_point} bits/point)")
        return "\n".join(lines)


def run_phase1_overlap(config: UwbConfig | None = None,
                       ebn0_grid=(6.0, 10.0),
                       bits_per_point: int = 60,
                       seed: int = 23) -> Phase1Result:
    """Run both paths over identical waveforms and compare decisions.

    The golden path reproduces the AMS receiver's exact decision rule
    (slot integration from t=0 timing, auto-ranged ADC) on the same
    samples; agreement should be essentially total.
    """
    config = config or UwbConfig()
    spec = LinkSpec(config=config, integrator="ideal")
    # Pilot calibration: per-bit reference energy and the band-pass of
    # the spec (the same calibration every BER backend uses).
    cache = calibrate(spec)
    bpf = cache.bpf
    eb = cache.eb

    rng = np.random.default_rng(seed)
    ber_ams, ber_golden = [], []
    agree = 0
    total = 0
    for ebn0 in ebn0_grid:
        sigma = noise_sigma_for_ebn0(eb, float(ebn0), config.fs)
        tx = random_bits(bits_per_point, rng)
        clean = ppm_waveform(tx, config)
        noisy = clean + rng.normal(0.0, sigma, size=len(clean))
        sig = bpf(noisy)
        sig = 0.3 * sig / np.max(np.abs(bpf(clean)))

        ams = ops.run_testbench(spec, sig)
        usable = len(ams.bits)

        # Golden model: the fastsim backend's packet demodulation -
        # same slot reshaping, same Integrate & Dump gating (the spec's
        # t_dump/t_hold), same decision rule, on the same samples.
        golden = FastsimBackend().packet(
            spec, sig[:usable * config.samples_per_symbol])
        golden_bits = golden.bits

        ber_ams.append(np.mean(ams.bits != tx[:usable]))
        ber_golden.append(np.mean(golden_bits != tx[:usable]))
        agree += int(np.count_nonzero(ams.bits == golden_bits))
        total += usable
    return Phase1Result(
        ebn0_db=np.asarray(ebn0_grid, dtype=float),
        ber_ams=np.asarray(ber_ams), ber_golden=np.asarray(ber_golden),
        decision_agreement=agree / max(total, 1),
        bits_per_point=bits_per_point)


@experiment("phase1", order=60,
            description="Phase-I overlap: AMS-kernel BER vs the "
                        "gate-mirrored golden model")
def phase1_experiment(ctx: ExperimentContext) -> str:
    result = run_phase1_overlap(
        bits_per_point=120 if ctx.full else 60, **ctx.seed_kwargs())
    return result.format_report()


@experiment("equivalence", order=70,
            description="Cross-backend equivalence: fastsim vs kernel "
                        "(both engines) on one seeded burst")
def equivalence_experiment(ctx: ExperimentContext) -> str:
    result = run_equivalence(DEFAULT_SPEC,
                             bits=400 if ctx.full else 150,
                             **ctx.seed_kwargs())
    return result.format_report()
