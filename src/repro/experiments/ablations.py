"""Ablation experiments for the design choices the paper calls out.

* **Two-stage AGC** (paper section 5, proposed fix): a first gain stage
  matches the *amplitude* to the integrator's linear input range and a
  second stage restores *energy* matching for the ADC - removing the
  ranging offset the single-stage AGC incurs with the real integrator.
* **Noise shaping** (figure-6 mechanism): sweep the integrator's second
  pole and measure the paired BER delta against the ideal integrator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.campaign.runner import CampaignRunner
from repro.campaign.store import ResultStore
from repro.core.scenario import Scenario
from repro.experiments.registry import ExperimentContext, experiment
from repro.experiments.table2_twr import TWR_NOISE_SIGMA, twr_spec
from repro.link import FrontEndSpec, LinkSpec, ops
from repro.uwb import UwbConfig
from repro.uwb.ranging import RangingResult


@dataclass
class AgcAblationResult:
    """Ranging with single-stage versus two-stage AGC (circuit model)."""

    single_stage: RangingResult
    two_stage: RangingResult

    @property
    def offset_reduction(self) -> float:
        """Offset removed by the two-stage AGC (m)."""
        return abs(self.single_stage.offset) - abs(self.two_stage.offset)

    def format_report(self) -> str:
        return "\n".join([
            "Ablation - two-stage AGC (paper's proposed architecture fix)",
            f"  single-stage: mean {self.single_stage.mean:6.2f} m, "
            f"offset {self.single_stage.offset:+5.2f} m, "
            f"variance {self.single_stage.variance:6.3f}",
            f"  two-stage   : mean {self.two_stage.mean:6.2f} m, "
            f"offset {self.two_stage.offset:+5.2f} m, "
            f"variance {self.two_stage.variance:6.3f}",
            f"  offset reduced by {self.offset_reduction:+5.2f} m",
        ])


def _agc_spec(distance: float, two_stage: bool) -> "LinkSpec":
    """The ablation link: the table-2 operating point with the circuit
    integrator under the selected AGC policy."""
    spec = twr_spec(distance, integrator="circuit")
    if two_stage:
        spec = spec.with_frontend(agc="two_stage", agc_amp_target=0.06)
    return spec


def run_agc_ablation(distance: float = 9.9, iterations: int = 10,
                     seed: int = 42,
                     processes: int | None = None,
                     store: ResultStore | None = None) -> AgcAblationResult:
    """TWR with the circuit integrator under both AGC policies (both
    arms share the seed, so they see the same noise/channel draws)."""
    runner = CampaignRunner(processes=processes, store=store)
    for label, two_stage in (("single", False), ("two_stage", True)):
        runner.add(Scenario(
            name=label, fn=ops.ranging, seed=seed, rng_param="rng",
            params=dict(spec=_agc_spec(distance, two_stage),
                        iterations=iterations,
                        noise_sigma=TWR_NOISE_SIGMA)))
    arms = runner.run().by_name()
    return AgcAblationResult(single_stage=arms["single"],
                             two_stage=arms["two_stage"])


@dataclass
class NoiseShapingResult:
    """Paired BER delta versus the second-pole frequency."""

    fp2_grid: np.ndarray
    ber_ideal: float
    ber_shaped: np.ndarray
    ebn0_db: float

    def format_report(self) -> str:
        lines = [f"Ablation - noise shaping (Eb/N0 = {self.ebn0_db} dB)",
                 f"  ideal integrator BER: {self.ber_ideal:.4e}",
                 f"{'fp2':>12s} {'BER':>12s} {'vs ideal':>10s}"]
        for fp2, ber in zip(self.fp2_grid, self.ber_shaped):
            rel = ber / self.ber_ideal if self.ber_ideal else float("nan")
            lines.append(f"{fp2 / 1e9:>10.1f} G {ber:>12.4e} {rel:>9.2f}x")
        return "\n".join(lines)


def run_noise_shaping_ablation(ebn0_db: float = 12.0,
                               fp2_grid=(1e9, 3e9, 6e9, 20e9),
                               seed: int = 7,
                               quick: bool = True,
                               processes: int | None = None,
                               store: ResultStore | None = None
                               ) -> NoiseShapingResult:
    """BER versus the model's second pole, paired against the ideal
    integrator (every arm shares the seed, hence the noise)."""
    if quick:
        budget = dict(target_errors=80, max_bits=60_000, min_bits=4_000)
    else:
        budget = dict(target_errors=300, max_bits=600_000,
                      min_bits=40_000)
    base = LinkSpec(config=UwbConfig(),
                    frontend=FrontEndSpec(band=(2.0e9, 9.0e9)))

    runner = CampaignRunner(processes=processes, store=store)
    runner.add(Scenario(
        name="ideal", fn=ops.ber_curve, seed=seed, rng_param="rng",
        params=dict(spec=base.with_(integrator="ideal"),
                    ebn0_grid=[ebn0_db], **budget)))
    for fp2 in fp2_grid:
        runner.add(Scenario(
            name=f"fp2={float(fp2):g}", fn=ops.ber_curve, seed=seed,
            rng_param="rng",
            params=dict(
                spec=base.with_(
                    integrator="two_pole",
                    integrator_params={"fp2_hz": float(fp2)}),
                ebn0_grid=[ebn0_db], **budget)))
    # Consume positionally: results come back in submission order, so
    # fp2 values that format to the same label cannot collapse.
    curves = runner.run().values()
    shaped = [float(curve.ber[0]) for curve in curves[1:]]
    return NoiseShapingResult(fp2_grid=np.asarray(fp2_grid, dtype=float),
                              ber_ideal=float(curves[0].ber[0]),
                              ber_shaped=np.asarray(shaped),
                              ebn0_db=float(ebn0_db))


@experiment("ablations", order=50,
            description="Two-stage AGC fix + noise-shaping second-pole "
                        "sweep")
def ablations_experiment(ctx: ExperimentContext) -> str:
    agc = run_agc_ablation(iterations=20 if ctx.full else 10,
                           processes=ctx.processes, store=ctx.store,
                           **ctx.seed_kwargs())
    shaping = run_noise_shaping_ablation(quick=not ctx.full,
                                         processes=ctx.processes,
                                         store=ctx.store,
                                         **ctx.seed_kwargs())
    return agc.format_report() + "\n\n" + shaping.format_report()
