"""Figure 4: integrator AC response, circuit versus behavioral model.

Paper values: DC gain 21 dB, poles at 0.886 MHz and 5.895 GHz, ideal
integrator behaviour across 10 MHz - 1 GHz, and a Phase-IV model that
"perfectly overlaps the AC response simulated with Eldo".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits import IntegrateDumpDesign, default_design
from repro.core.characterize import TwoPoleFit, characterize_integrator
from repro.experiments.registry import ExperimentContext, experiment


@dataclass
class Fig4Result:
    """AC response data + the extracted two-pole fit."""

    freqs: np.ndarray
    circuit_mag_db: np.ndarray
    model_mag_db: np.ndarray
    fit: TwoPoleFit

    PAPER = {"gain_db": 21.0, "fp1_hz": 0.886e6, "fp2_hz": 5.895e9}

    @property
    def overlap_rms_db(self) -> float:
        """RMS distance between circuit and model curves (the paper's
        'perfect overlap' claim)."""
        return float(np.sqrt(np.mean(
            (self.circuit_mag_db - self.model_mag_db) ** 2)))

    def slope_db_per_decade(self, f_low: float, f_high: float) -> float:
        """Measured rolloff slope between two frequencies."""
        m_low = float(np.interp(np.log10(f_low), np.log10(self.freqs),
                                self.circuit_mag_db))
        m_high = float(np.interp(np.log10(f_high), np.log10(self.freqs),
                                 self.circuit_mag_db))
        return (m_high - m_low) / np.log10(f_high / f_low)

    def format_report(self) -> str:
        slope = self.slope_db_per_decade(10e6, 1e9)
        return "\n".join([
            "Figure 4 - Integrator AC response",
            f"  DC gain   : {self.fit.gain_db:6.2f} dB   "
            f"(paper: {self.PAPER['gain_db']:.1f} dB)",
            f"  pole 1    : {self.fit.fp1_hz / 1e6:6.3f} MHz "
            f"(paper: {self.PAPER['fp1_hz'] / 1e6:.3f} MHz)",
            f"  pole 2    : {self.fit.fp2_hz / 1e9:6.3f} GHz "
            f"(paper: {self.PAPER['fp2_hz'] / 1e9:.3f} GHz)",
            f"  10M-1G slope: {slope:6.2f} dB/dec (ideal integrator: -20)",
            f"  circuit-vs-model overlap: {self.overlap_rms_db:.3f} dB rms",
        ])


def run_fig4(design: IntegrateDumpDesign | None = None,
             points_per_decade: int = 10) -> Fig4Result:
    """Regenerate figure 4: AC-sweep the transistor netlist, fit the
    two-pole Phase-IV model, overlay both."""
    design = design or default_design()
    fit, freqs, mag_db = characterize_integrator(
        design, points_per_decade=points_per_decade)
    model_mag = fit.magnitude_db(freqs)
    return Fig4Result(freqs=freqs, circuit_mag_db=mag_db,
                      model_mag_db=model_mag, fit=fit)


@experiment("fig4", order=80,
            description="Integrator AC response: circuit netlist vs "
                        "the extracted two-pole model")
def fig4_experiment(ctx: ExperimentContext) -> str:
    result = run_fig4(points_per_decade=16 if ctx.full else 10)
    return result.format_report()
