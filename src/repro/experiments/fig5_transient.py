"""Figure 5: integrate / hold / dump transient, three implementations.

The paper drives the three integrators (IDEAL, ELDO netlist, VHDL-AMS
two-pole model) with the same input, integrates, holds for the ADC, then
resets - and observes that the behavioral model tracks the netlist
except for the distortion of the limited linear input range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ams.equations import (
    GatedIntegratorState,
    TwoPoleGatedIntegratorState,
)
from repro.circuits import (
    IntegrateDumpDesign,
    build_id_testbench,
    default_design,
)
from repro.circuits.integrate_dump import integrate_hold_dump_waves
from repro.campaign.runner import CampaignRunner
from repro.campaign.store import ResultStore
from repro.core.characterize import ID_OP_GUESS, characterize_integrator
from repro.core.scenario import Scenario
from repro.experiments.registry import ExperimentContext, experiment
from repro.spice import transient
from repro.spice.devices import Pulse
from repro.uwb.integrator import IdealIntegrator, TwoPoleIntegrator


@dataclass
class Fig5Result:
    """Transient trajectories of the three implementations."""

    t: np.ndarray
    circuit: np.ndarray
    ideal: np.ndarray
    model: np.ndarray
    t_int: tuple[float, float]
    t_hold: tuple[float, float]
    diff_dc: float

    def held_value(self, trace: np.ndarray) -> float:
        """Value mid-hold (what the ADC would convert)."""
        t_mid = 0.5 * (self.t_hold[0] + self.t_hold[1])
        return float(np.interp(t_mid, self.t, trace))

    @property
    def model_vs_circuit_mismatch(self) -> float:
        """Relative held-value mismatch of the two-pole model versus the
        netlist (the paper's figure-5 distortion discussion)."""
        circ = self.held_value(self.circuit)
        model = self.held_value(self.model)
        return abs(model - circ) / max(abs(circ), 1e-12)

    def reset_works(self, tol: float = 5e-3) -> bool:
        """All three outputs return to ~0 after the dump."""
        return all(abs(trace[-1]) < tol for trace in
                   (self.circuit, self.ideal, self.model))

    def format_report(self) -> str:
        return "\n".join([
            "Figure 5 - Integrate/hold/dump transient "
            f"(vin_diff = {self.diff_dc * 1e3:.0f} mV DC)",
            f"  held value  IDEAL   : {self.held_value(self.ideal) * 1e3:8.2f} mV",
            f"  held value  circuit : {self.held_value(self.circuit) * 1e3:8.2f} mV",
            f"  held value  model   : {self.held_value(self.model) * 1e3:8.2f} mV",
            f"  model-vs-circuit mismatch: "
            f"{self.model_vs_circuit_mismatch * 100:.1f} %",
            f"  reset returns to zero: {self.reset_works()}",
        ])


def run_fig5(design: IntegrateDumpDesign | None = None,
             diff_dc: float = 0.05,
             t_int: float = 60e-9, t_hold: float = 40e-9,
             t_dump: float = 30e-9, dt: float = 0.1e-9,
             use_measured_fit: bool = True) -> Fig5Result:
    """Regenerate figure 5.

    The circuit runs in the Spice engine; the IDEAL and two-pole models
    run their gated ODE states over the same timing.  With
    ``use_measured_fit`` the model uses the figure-4 extracted poles
    (else the paper's nominal 0.886 MHz / 5.895 GHz / 21 dB).
    """
    design = design or default_design()
    t_start = 20e-9
    waves = integrate_hold_dump_waves(t_start, t_int, t_hold, t_dump,
                                      vdd=design.vdd)
    tb = build_id_testbench(design, diff_dc=diff_dc, control_waves=waves)
    t_stop = t_start + t_int + t_hold + t_dump + 20e-9
    res = transient(tb, t_stop, dt, probes=["out_intp", "out_intm"],
                    initial_guess=ID_OP_GUESS)
    circuit = res.vdiff("out_intp", "out_intm")
    t = res.t

    if use_measured_fit:
        fit, _f, _m = characterize_integrator(design)
        gain, fp1, fp2 = fit.gain, fit.fp1_hz, fit.fp2_hz
    else:
        gain, fp1, fp2 = 10.0 ** (21.0 / 20.0), 0.886e6, 5.895e9

    t_int_window = (t_start, t_start + t_int)
    t_hold_window = (t_start + t_int, t_start + t_int + t_hold)
    ideal = _gated_replay(GatedIntegratorState(IdealIntegrator().k),
                          diff_dc, t, dt, t_int_window, t_hold_window)
    model = _gated_replay(TwoPoleGatedIntegratorState(gain, fp1, fp2),
                          diff_dc, t, dt, t_int_window, t_hold_window)
    return Fig5Result(t=t, circuit=circuit, ideal=ideal, model=model,
                      t_int=t_int_window, t_hold=t_hold_window,
                      diff_dc=diff_dc)


def run_fig5_drive_sweep(drives=(0.02, 0.15), dt: float = 0.4e-9,
                         processes: int | None = None,
                         store: ResultStore | None = None
                         ) -> list[Fig5Result]:
    """Figure-5 transients across input drive levels (the distortion
    study: the pole-only model tracks the netlist at small drive and
    diverges once the ~100 mV linear input range is exceeded).

    Returns:
        One :class:`Fig5Result` per drive, in the given order (each
        result carries its drive as ``diff_dc``).
    """
    runner = CampaignRunner(processes=processes, store=store)
    for drive in drives:
        runner.add(Scenario(name=f"drive={float(drive):g}", fn=run_fig5,
                            params=dict(diff_dc=float(drive), dt=dt)))
    return runner.run().values()


@experiment("fig5", order=30,
            description="Integrate/hold/dump transient, circuit vs "
                        "behavioral models, across drive levels")
def fig5_experiment(ctx: ExperimentContext) -> str:
    results = run_fig5_drive_sweep(dt=0.2e-9 if ctx.full else 0.4e-9,
                                   processes=ctx.processes,
                                   store=ctx.store)
    return "\n\n".join(r.format_report() for r in results)


def _gated_replay(state, diff_dc: float, t: np.ndarray, dt: float,
                  t_int_window: tuple[float, float],
                  t_hold_window: tuple[float, float]) -> np.ndarray:
    """Drive a gated ODE state over the integrate/hold/dump timing.

    Segment-vectorized like the kernel's compiled engine: the gate
    phase is piecewise constant in time, so each contiguous run of
    samples is computed in one ``integrate_block`` / ``hold`` / ``dump``
    call instead of one Python call per 0.05 ns sample.
    """
    out = np.zeros_like(t)
    now = t[1:]
    phase = np.zeros(len(now), dtype=np.int8)
    phase[(t_int_window[0] <= now) & (now < t_int_window[1])] = 1
    phase[(t_hold_window[0] <= now) & (now < t_hold_window[1])] = 2
    edges = np.flatnonzero(np.diff(phase)) + 1
    for lo, hi in zip(np.concatenate(([0], edges)),
                      np.concatenate((edges, [len(phase)]))):
        if phase[lo] == 1:
            out[1 + lo:1 + hi] = state.integrate_block(
                np.full(hi - lo, diff_dc), dt)
        elif phase[lo] == 2:
            out[1 + lo:1 + hi] = state.hold()
        else:
            out[1 + lo:1 + hi] = state.dump()
    return out
