"""Figure 5: integrate / hold / dump transient, three implementations.

The paper drives the three integrators (IDEAL, ELDO netlist, VHDL-AMS
two-pole model) with the same input, integrates, holds for the ADC, then
resets - and observes that the behavioral model tracks the netlist
except for the distortion of the limited linear input range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ams.equations import (
    GatedIntegratorState,
    TwoPoleGatedIntegratorState,
)
from repro.circuits import (
    IntegrateDumpDesign,
    build_id_testbench,
    default_design,
)
from repro.circuits.integrate_dump import integrate_hold_dump_waves
from repro.core.characterize import ID_OP_GUESS, characterize_integrator
from repro.spice import transient
from repro.spice.devices import Pulse
from repro.uwb.integrator import IdealIntegrator, TwoPoleIntegrator


@dataclass
class Fig5Result:
    """Transient trajectories of the three implementations."""

    t: np.ndarray
    circuit: np.ndarray
    ideal: np.ndarray
    model: np.ndarray
    t_int: tuple[float, float]
    t_hold: tuple[float, float]
    diff_dc: float

    def held_value(self, trace: np.ndarray) -> float:
        """Value mid-hold (what the ADC would convert)."""
        t_mid = 0.5 * (self.t_hold[0] + self.t_hold[1])
        return float(np.interp(t_mid, self.t, trace))

    @property
    def model_vs_circuit_mismatch(self) -> float:
        """Relative held-value mismatch of the two-pole model versus the
        netlist (the paper's figure-5 distortion discussion)."""
        circ = self.held_value(self.circuit)
        model = self.held_value(self.model)
        return abs(model - circ) / max(abs(circ), 1e-12)

    def reset_works(self, tol: float = 5e-3) -> bool:
        """All three outputs return to ~0 after the dump."""
        return all(abs(trace[-1]) < tol for trace in
                   (self.circuit, self.ideal, self.model))

    def format_report(self) -> str:
        return "\n".join([
            "Figure 5 - Integrate/hold/dump transient "
            f"(vin_diff = {self.diff_dc * 1e3:.0f} mV DC)",
            f"  held value  IDEAL   : {self.held_value(self.ideal) * 1e3:8.2f} mV",
            f"  held value  circuit : {self.held_value(self.circuit) * 1e3:8.2f} mV",
            f"  held value  model   : {self.held_value(self.model) * 1e3:8.2f} mV",
            f"  model-vs-circuit mismatch: "
            f"{self.model_vs_circuit_mismatch * 100:.1f} %",
            f"  reset returns to zero: {self.reset_works()}",
        ])


def run_fig5(design: IntegrateDumpDesign | None = None,
             diff_dc: float = 0.05,
             t_int: float = 60e-9, t_hold: float = 40e-9,
             t_dump: float = 30e-9, dt: float = 0.1e-9,
             use_measured_fit: bool = True) -> Fig5Result:
    """Regenerate figure 5.

    The circuit runs in the Spice engine; the IDEAL and two-pole models
    run their gated ODE states over the same timing.  With
    ``use_measured_fit`` the model uses the figure-4 extracted poles
    (else the paper's nominal 0.886 MHz / 5.895 GHz / 21 dB).
    """
    design = design or default_design()
    t_start = 20e-9
    waves = integrate_hold_dump_waves(t_start, t_int, t_hold, t_dump,
                                      vdd=design.vdd)
    tb = build_id_testbench(design, diff_dc=diff_dc, control_waves=waves)
    t_stop = t_start + t_int + t_hold + t_dump + 20e-9
    res = transient(tb, t_stop, dt, probes=["out_intp", "out_intm"],
                    initial_guess=ID_OP_GUESS)
    circuit = res.vdiff("out_intp", "out_intm")
    t = res.t

    if use_measured_fit:
        fit, _f, _m = characterize_integrator(design)
        gain, fp1, fp2 = fit.gain, fit.fp1_hz, fit.fp2_hz
    else:
        gain, fp1, fp2 = 10.0 ** (21.0 / 20.0), 0.886e6, 5.895e9

    ideal_state = GatedIntegratorState(IdealIntegrator().k)
    model_state = TwoPoleGatedIntegratorState(gain, fp1, fp2)
    ideal = np.zeros_like(t)
    model = np.zeros_like(t)
    t_int_window = (t_start, t_start + t_int)
    t_hold_window = (t_start + t_int, t_start + t_int + t_hold)
    for i in range(1, len(t)):
        now = t[i]
        if t_int_window[0] <= now < t_int_window[1]:
            ideal[i] = ideal_state.integrate(diff_dc, dt)
            model[i] = model_state.integrate(diff_dc, dt)
        elif t_hold_window[0] <= now < t_hold_window[1]:
            ideal[i] = ideal_state.hold()
            model[i] = model_state.hold()
        else:
            ideal[i] = ideal_state.dump()
            model[i] = model_state.dump()
    return Fig5Result(t=t, circuit=circuit, ideal=ideal, model=model,
                      t_int=t_int_window, t_hold=t_hold_window,
                      diff_dc=diff_dc)
