"""Self-declaring experiment registry for the campaign CLI.

Experiment harnesses register a CLI adapter with the
:func:`experiment` decorator::

    @experiment("fig6", description="BER vs Eb/N0, ideal vs circuit",
                order=10)
    def fig6_experiment(ctx: ExperimentContext) -> str:
        result = run_fig6(quick=not ctx.full, store=ctx.store,
                          **ctx.seed_kwargs())
        return result.format_report()

``python -m repro run <name>`` / ``python -m repro run --list`` then
discover them here instead of hard-coding a harness table - adding an
experiment module is enough to make it runnable.  Discovery is simply
``import repro.experiments``: the package's ``__init__`` imports every
harness module, and importing a harness module executes its
decorators.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

#: adapter signature: context in, rendered report text out.
ExperimentFn = Callable[["ExperimentContext"], str]


@dataclass
class ExperimentContext:
    """Execution knobs the CLI hands every experiment adapter.

    Attributes:
        full: paper-scale Monte-Carlo budgets (default: quick).
        processes: process fan-out degree for scenario sweeps.
        seed: seed override (``None`` keeps the harness default).
        store: campaign result store (``None`` disables caching).
        chunk_bits: Monte-Carlo chunk size override (``None`` keeps
            each backend's native default).
        batch_points: scenario-batched sweep kernel (default) versus
            the legacy per-point loop (``--no-batch-points``).
    """

    full: bool = False
    processes: int | None = None
    seed: int | None = None
    store: Any | None = None
    chunk_bits: int | None = None
    batch_points: bool = True

    def seed_kwargs(self, name: str = "seed") -> dict[str, int]:
        """``{name: seed}`` when a seed override is set, else ``{}`` -
        the idiom for forwarding the override to harnesses that have
        their own default seed."""
        return {} if self.seed is None else {name: self.seed}


@dataclass(frozen=True)
class Experiment:
    """One registered experiment.

    Attributes:
        name: CLI name (``python -m repro run <name>``).
        fn: the adapter callable.
        description: one-line summary shown by ``run --list``.
        order: menu sort key (registration order breaks ties by name).
    """

    name: str
    fn: ExperimentFn
    description: str = ""
    order: int = 100

    def run(self, ctx: ExperimentContext) -> str:
        return self.fn(ctx)


_EXPERIMENTS: dict[str, Experiment] = {}


def experiment(name: str, *, description: str = "",
               order: int = 100) -> Callable[[ExperimentFn], ExperimentFn]:
    """Register the decorated adapter as experiment *name*."""
    def decorate(fn: ExperimentFn) -> ExperimentFn:
        if name in _EXPERIMENTS:
            raise ValueError(f"experiment {name!r} is already "
                             f"registered (by "
                             f"{_EXPERIMENTS[name].fn.__module__})")
        _EXPERIMENTS[name] = Experiment(name=name, fn=fn,
                                        description=description,
                                        order=order)
        return fn

    return decorate


def discover() -> None:
    """Import every harness module (idempotent), populating the
    registry."""
    importlib.import_module("repro.experiments")


def all_experiments() -> list[Experiment]:
    """Registered experiments in menu order (after :func:`discover`)."""
    discover()
    return sorted(_EXPERIMENTS.values(),
                  key=lambda e: (e.order, e.name))


def experiment_names() -> list[str]:
    """Registered experiment names in menu order."""
    return [e.name for e in all_experiments()]


def get_experiment(name: str) -> Experiment:
    """Look up one experiment by name.

    Raises:
        KeyError: unknown name (message lists what is registered).
    """
    discover()
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: "
            f"{', '.join(experiment_names())}") from None
