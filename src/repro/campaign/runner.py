"""Resumable campaign execution on top of :class:`SweepRunner`.

A :class:`CampaignRunner` is a drop-in :class:`SweepRunner` that,
when given a :class:`~repro.campaign.store.ResultStore`,

* serves already-computed scenarios straight from the store (their
  :class:`SweepResult` comes back with ``cached=True``),
* executes only the missing ones, **checkpointing each result the
  moment it completes** - an interrupted sweep therefore loses at most
  the scenario in flight, and re-running the identical campaign
  completes only what is missing,
* merges cached and fresh results into one report in submission order.

With ``store=None`` it behaves exactly like a plain ``SweepRunner``,
so harnesses can route through it unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.scenario import (
    Scenario,
    SweepReport,
    SweepResult,
    SweepRunner,
    _execute,
)
from repro.campaign.store import ResultStore


@dataclass
class CampaignReport(SweepReport):
    """A :class:`SweepReport` plus campaign bookkeeping.

    Attributes:
        executed: scenarios actually run this invocation.
        cached: scenarios served from the result store.
    """

    executed: int = 0
    cached: int = 0

    @property
    def executed_wall_time(self) -> float:
        """Wall time spent executing (cache hits excluded)."""
        return sum(r.wall_time for r in self.results if not r.cached)

    def format_summary(self) -> str:
        return (f"campaign: executed={self.executed} "
                f"cached={self.cached} "
                f"wall={self.executed_wall_time:.3f}s")


class CampaignRunner(SweepRunner):
    """A :class:`SweepRunner` with content-addressed result caching.

    Args:
        scenarios: initial scenarios (more can be :meth:`add`-ed).
        processes: fan-out degree (see :class:`SweepRunner`).
        store: result store; ``None`` disables caching entirely.
    """

    def __init__(self, scenarios: Iterable[Scenario] = (), *,
                 processes: int | None = None,
                 store: ResultStore | None = None):
        super().__init__(scenarios, processes=processes)
        self.store = store

    def run(self) -> CampaignReport:
        """Execute the campaign; cached scenarios are not re-run."""
        if self.store is None:
            plain = super().run()
            return CampaignReport(results=plain.results,
                                  executed=len(plain.results), cached=0)
        slots: list[SweepResult | None] = [None] * len(self.scenarios)
        pending: list[tuple[int, str | None, Scenario]] = []
        for i, scenario in enumerate(self.scenarios):
            # The key is computed once and reused for the checkpoint:
            # execution may mutate lazy caches inside param objects,
            # which must not move the content address.
            key = self.store.scenario_key(scenario)
            hit = self.store.get(scenario, key)
            if hit is not None:
                slots[i] = hit
            else:
                pending.append((i, key, scenario))
        if pending:
            self._execute_pending(pending, slots)
        return CampaignReport(results=[r for r in slots if r is not None],
                              executed=len(pending),
                              cached=len(self.scenarios) - len(pending))

    def _execute_pending(self, pending, slots) -> None:
        if self.processes is None or self.processes <= 1:
            for i, key, scenario in pending:
                result = _execute(scenario)
                self.store.put(scenario, result, key)
                slots[i] = result
            return
        from concurrent.futures import ProcessPoolExecutor, as_completed

        workers = min(self.processes, len(pending))
        first_exc: BaseException | None = None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_execute, scenario): (i, key, scenario)
                       for i, key, scenario in pending}
            for future in as_completed(futures):
                i, key, scenario = futures[future]
                try:
                    result = future.result()
                except Exception as exc:
                    # Keep draining: sibling scenarios that completed
                    # must still be checkpointed, or one failure would
                    # throw away every other worker's finished result.
                    if first_exc is None:
                        first_exc = exc
                    continue
                # Checkpoint from the parent as each worker finishes,
                # so an interrupt mid-sweep keeps completed scenarios.
                self.store.put(scenario, result, key)
                slots[i] = result
        if first_exc is not None:
            raise first_exc
