"""Resumable campaign execution on top of :class:`SweepRunner`.

A :class:`CampaignRunner` is a drop-in :class:`SweepRunner` that,
when given a result store (either flavor -
:class:`~repro.campaign.store.ResultStore` or
:class:`~repro.campaign.shard.ShardedResultStore`),

* serves already-computed scenarios straight from the store (their
  :class:`SweepResult` comes back with ``cached=True``),
* executes only the missing ones, **checkpointing each result the
  moment it completes** - an interrupted sweep therefore loses at most
  the scenario in flight, and re-running the identical campaign
  completes only what is missing,
* merges cached and fresh results into one report in submission order.

With ``store=None`` it behaves exactly like a plain ``SweepRunner``,
so harnesses can route through it unconditionally.

The queue worker (:mod:`repro.campaign.queue`) attaches two hooks to
the store it hands the harness, and the runner honors them:

* ``store.progress_hook`` receives a :class:`CampaignProgress` after
  every completed scenario (cached or executed), carrying an ETA
  derived from the per-scenario wall-time history - cache hits
  contribute their original run's wall time, so the estimate is
  meaningful from the first heartbeat of a resumed campaign.
* ``store.preempt_hook`` is polled between checkpoints; once it
  returns true the runner stops starting new work, checkpoints
  everything already in flight, and raises
  :class:`CampaignPreempted` - the worker then requeues the job, and
  the next run resumes from the checkpoints.

Failures are wrapped in :class:`CampaignError`, which names the failed
scenario(s) and says how many sibling results were still checkpointed
(so an operator knows a re-run will only redo the failures).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.scenario import (
    Scenario,
    SweepReport,
    SweepResult,
    SweepRunner,
    _execute,
)
from repro.campaign.store import ResultStore
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

_SCENARIO_WALL = _metrics.REGISTRY.histogram("campaign.scenario.wall_s")


class CampaignError(RuntimeError):
    """One or more scenarios of a campaign failed.

    Attributes:
        failures: ``[(scenario name, exception), ...]`` in completion
            order.
        checkpointed: sibling results that completed and were written
            to the store before this error was raised - a re-run
            executes only the failures.
    """

    def __init__(self, failures: list[tuple[str, BaseException]],
                 checkpointed: int):
        self.failures = failures
        self.checkpointed = checkpointed
        names = ", ".join(name for name, _ in failures)
        first = failures[0][1]
        super().__init__(
            f"{len(failures)} campaign scenario(s) failed ({names}): "
            f"{first}; {checkpointed} sibling result(s) were "
            f"checkpointed and will be served from cache on re-run")


class CampaignPreempted(RuntimeError):
    """The campaign was preempted (store ``preempt_hook`` fired).

    Everything already completed was checkpointed; ``remaining`` names
    the scenarios a re-run still has to execute.
    """

    def __init__(self, checkpointed: int, remaining: list[str]):
        self.checkpointed = checkpointed
        self.remaining = remaining
        super().__init__(
            f"campaign preempted: {checkpointed} result(s) "
            f"checkpointed, {len(remaining)} scenario(s) requeued")


@dataclass(frozen=True)
class CampaignProgress:
    """One progress tick, delivered after each completed scenario.

    Attributes:
        done / total: completed vs. submitted scenarios (cache hits
            count as done immediately).
        executed / cached: breakdown of ``done``.
        eta_seconds: projected remaining wall time from the mean of
            the per-scenario wall-time history (cache hits contribute
            their original run's time); ``None`` until at least two
            samples exist (a single sample - often a cache hit or an
            unrepresentative first scenario - projects nonsense).
        last_name: the scenario that just completed.
        stage_walls: cumulative per-stage wall breakdown
            (:func:`repro.obs.trace.stage_summary`) when tracing is
            enabled in the running process; ``None`` otherwise.  The
            queue worker forwards it into the heartbeat file so
            ``repro queue status`` can show live stage breakdowns.
    """

    done: int
    total: int
    executed: int
    cached: int
    eta_seconds: float | None
    last_name: str | None = None
    stage_walls: dict[str, float] | None = None

    @property
    def remaining(self) -> int:
        return self.total - self.done


@dataclass
class CampaignReport(SweepReport):
    """A :class:`SweepReport` plus campaign bookkeeping.

    Attributes:
        executed: scenarios actually run this invocation.
        cached: scenarios served from the result store.
    """

    executed: int = 0
    cached: int = 0

    @property
    def executed_wall_time(self) -> float:
        """Wall time spent executing (cache hits excluded)."""
        return sum(r.wall_time for r in self.results if not r.cached)

    def format_summary(self) -> str:
        return (f"campaign: executed={self.executed} "
                f"cached={self.cached} "
                f"wall={self.executed_wall_time:.3f}s")


class _ProgressTracker:
    """Wall-time history + progress fan-out for one run() invocation."""

    def __init__(self, total: int,
                 hook: Callable[[CampaignProgress], None] | None):
        self.total = total
        self.hook = hook
        self.executed = 0
        self.cached = 0
        self._samples: list[float] = []

    @property
    def done(self) -> int:
        return self.executed + self.cached

    def eta_seconds(self) -> float | None:
        # A single sample is no basis for a projection (it is often a
        # cache hit, or the campaign's one unrepresentative warm-up
        # scenario) - report "unknown" until the mean means something.
        if len(self._samples) < 2:
            return None
        mean = sum(self._samples) / len(self._samples)
        return mean * (self.total - self.done)

    def tick(self, result: SweepResult, *, cached: bool) -> None:
        if cached:
            self.cached += 1
        else:
            self.executed += 1
        self._samples.append(result.wall_time)
        _SCENARIO_WALL.observe(result.wall_time)
        if self.hook is not None:
            stage_walls = (dict(_trace.stage_summary())
                           if _trace.ENABLED else None)
            progress = CampaignProgress(
                done=self.done, total=self.total,
                executed=self.executed, cached=self.cached,
                eta_seconds=self.eta_seconds(),
                last_name=result.name,
                stage_walls=stage_walls)
            try:
                self.hook(progress)
            except Exception as exc:
                # A broken observer must not abort the campaign: the
                # results are valid regardless of who is watching.
                warnings.warn(
                    f"campaign progress hook raised {exc!r}; "
                    "continuing without aborting the campaign",
                    RuntimeWarning, stacklevel=2)


class CampaignRunner(SweepRunner):
    """A :class:`SweepRunner` with content-addressed result caching.

    Args:
        scenarios: initial scenarios (more can be :meth:`add`-ed).
        processes: fan-out degree (see :class:`SweepRunner`).
        store: result store, either flavor; ``None`` disables caching
            entirely.
        progress: optional progress callback; defaults to the store's
            ``progress_hook`` (the queue worker's channel).
        preempt: optional zero-argument callable polled between
            checkpoints; defaults to the store's ``preempt_hook``.
    """

    def __init__(self, scenarios: Iterable[Scenario] = (), *,
                 processes: int | None = None,
                 store: ResultStore | None = None,
                 progress: Callable[[CampaignProgress], None] | None = None,
                 preempt: Callable[[], bool] | None = None):
        super().__init__(scenarios, processes=processes)
        self.store = store
        self.progress = progress
        self.preempt = preempt

    def _hooks(self):
        progress = self.progress
        if progress is None and self.store is not None:
            progress = getattr(self.store, "progress_hook", None)
        preempt = self.preempt
        if preempt is None and self.store is not None:
            preempt = getattr(self.store, "preempt_hook", None)
        return progress, preempt

    def run(self) -> CampaignReport:
        """Execute the campaign; cached scenarios are not re-run.

        Raises:
            CampaignError: one or more scenarios failed (completed
                siblings were checkpointed first).
            CampaignPreempted: the store's ``preempt_hook`` fired; the
                remainder should be requeued.
        """
        if self.store is None:
            plain = super().run()
            return CampaignReport(results=plain.results,
                                  executed=len(plain.results), cached=0)
        progress, preempt = self._hooks()
        tracker = _ProgressTracker(len(self.scenarios), progress)
        slots: list[SweepResult | None] = [None] * len(self.scenarios)
        pending: list[tuple[int, str | None, Scenario]] = []
        for i, scenario in enumerate(self.scenarios):
            # The key is computed once and reused for the checkpoint:
            # execution may mutate lazy caches inside param objects,
            # which must not move the content address.
            key = self.store.scenario_key(scenario)
            hit = self.store.get(scenario, key)
            if hit is not None:
                slots[i] = hit
                tracker.tick(hit, cached=True)
            else:
                pending.append((i, key, scenario))
        if pending:
            self._execute_pending(pending, slots, tracker, preempt)
        return CampaignReport(results=[r for r in slots if r is not None],
                              executed=len(pending),
                              cached=len(self.scenarios) - len(pending))

    def _execute_pending(self, pending, slots, tracker, preempt) -> None:
        if self.processes is None or self.processes <= 1:
            for n, (i, key, scenario) in enumerate(pending):
                if preempt is not None and preempt():
                    raise CampaignPreempted(
                        checkpointed=n,
                        remaining=[s.name for _i, _k, s in pending[n:]])
                try:
                    # One interior span per scenario: the pipeline's
                    # leaf spans nest under it, so a trace of a whole
                    # campaign reads scenario by scenario.
                    with _trace.span(f"scenario:{scenario.name}"):
                        result = _execute(scenario)
                except Exception as exc:
                    # Serial execution fails fast: everything before
                    # this scenario is already checkpointed.
                    raise CampaignError([(scenario.name, exc)],
                                        checkpointed=n) from exc
                self.store.put(scenario, result, key)
                slots[i] = result
                tracker.tick(result, cached=False)
            return
        from concurrent.futures import ProcessPoolExecutor, as_completed

        workers = min(self.processes, len(pending))
        failures: list[tuple[str, BaseException]] = []
        checkpointed = 0
        preempted = False
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_execute, scenario): (i, key, scenario)
                       for i, key, scenario in pending}
            for future in as_completed(futures):
                if future.cancelled():
                    continue
                i, key, scenario = futures[future]
                try:
                    result = future.result()
                except Exception as exc:
                    # Keep draining: sibling scenarios that completed
                    # must still be checkpointed, or one failure would
                    # throw away every other worker's finished result.
                    failures.append((scenario.name, exc))
                    continue
                # Checkpoint from the parent as each worker finishes,
                # so an interrupt mid-sweep keeps completed scenarios.
                self.store.put(scenario, result, key)
                slots[i] = result
                checkpointed += 1
                tracker.tick(result, cached=False)
                if not preempted and preempt is not None and preempt():
                    # Stop feeding the pool; in-flight futures keep
                    # running and are drained/checkpointed above.
                    preempted = True
                    for f in futures:
                        f.cancel()
        if preempted:
            remaining = [s.name for i, _k, s in pending
                         if slots[i] is None
                         and s.name not in [n for n, _ in failures]]
            raise CampaignPreempted(checkpointed=checkpointed,
                                    remaining=remaining + [
                                        n for n, _ in failures])
        if failures:
            raise CampaignError(failures,
                                checkpointed=checkpointed) from failures[0][1]
