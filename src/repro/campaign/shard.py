"""Prefix-sharded result store for concurrent writer fleets.

:class:`ShardedResultStore` implements the exact
get/put/entries/clear contract of
:class:`~repro.campaign.store.ResultStore` over a sharded layout::

    <cache root>/
        shards/<hh>/
            index.jsonl         per-shard append journal
            .lock               advisory lock (journal + GC swaps)
            objects/<key>.json  same object format as ResultStore
            objects/<key>.npz
        reports/<name>.txt      shared with the classic layout

Objects are bucketed by the first two hex characters of their content
address (256 shards), so concurrent campaign workers - each
checkpointing through its own store instance - contend only on the
shard their key happens to land in, and only for the microseconds it
takes to append one journal line under the shard's
:class:`~repro.campaign.locking.FileLock`.  Object writes themselves
need no lock at all (atomic rename; identical keys produce identical
bytes), so the read path is wait-free.

On top of the shared contract the sharded store adds the two
operations a scale-out campaign needs:

* :meth:`merge` - union another store's objects into this one (either
  flavor: the object format is identical), newest-``created`` wins on
  key collisions, records failing the format-marker check or missing
  their array payload are skipped.  Running shards of a campaign on
  independent machines and merging their caches yields a store whose
  re-run executes zero scenarios.
* :meth:`gc` - evict by age and/or total size, oldest-``created``
  first.  Eviction deletes the JSON record before the payload, so a
  concurrent reader observes either a complete object or a plain miss,
  never a torn one.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path
from typing import Iterator

from repro.campaign.locking import FileLock
from repro.campaign.objects import (
    StoreEntry,
    atomic_write,
    delete_object,
    entry_meta,
    read_entry,
    read_record,
)
from repro.campaign.store import INDEX_FORMAT, ResultStore
from repro.obs import metrics as _metrics

__all__ = ["ShardedResultStore", "is_sharded_layout"]

# Shard-layer traffic (get/put counters live in the base store).
_APPENDS = _metrics.REGISTRY.counter("campaign.shard.journal_appends")
_ADOPTED = _metrics.REGISTRY.counter("campaign.shard.merge_adopted")
_EVICTED = _metrics.REGISTRY.counter("campaign.shard.gc_evicted")


def is_sharded_layout(root: str | os.PathLike) -> bool:
    """True when *root* holds (or held) a sharded store - the CLI uses
    this to autodetect which flavor to open."""
    return (Path(root).expanduser() / "shards").is_dir()


class ShardedResultStore(ResultStore):
    """A :class:`ResultStore` sharded by key prefix for concurrent use.

    Args:
        root / salt: as for :class:`ResultStore`.

    The constructor does not touch the filesystem; directories appear
    on first write, so speculatively opening a store is free.
    """

    #: hex characters of the key that select a shard (2 -> 256 shards).
    PREFIX = 2

    # -- layout -------------------------------------------------------

    @property
    def shards_dir(self) -> Path:
        return self.root / "shards"

    def shard_dir(self, key: str) -> Path:
        return self.shards_dir / key[:self.PREFIX]

    def _shard_lock(self, shard: Path) -> FileLock:
        return FileLock(shard / ".lock")

    def _shard_dirs(self) -> Iterator[Path]:
        if not self.shards_dir.is_dir():
            return
        yield from sorted(p for p in self.shards_dir.iterdir()
                          if p.is_dir())

    def _object_path(self, key: str) -> Path:
        return self.shard_dir(key) / "objects" / f"{key}.json"

    def _payload_path(self, key: str) -> Path:
        return self.shard_dir(key) / "objects" / f"{key}.npz"

    def _object_files(self) -> Iterator[Path]:
        for shard in self._shard_dirs():
            objects = shard / "objects"
            if objects.is_dir():
                yield from sorted(objects.glob("*.json"))

    # -- index journals (one per shard, lock-guarded) -----------------

    def _index_add(self, key: str, meta: dict) -> None:
        shard = self.shard_dir(key)
        index = shard / "index.jsonl"
        line = json.dumps({"key": key, **meta}, sort_keys=True)
        _APPENDS.inc()
        with self._shard_lock(shard):
            header = ""
            if not index.exists():
                header = json.dumps({"format": INDEX_FORMAT,
                                     "salt": self.salt}) + "\n"
            with open(index, "a", encoding="utf-8") as fh:
                fh.write(header + line + "\n")

    def index_entries(self) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for shard in self._shard_dirs():
            out.update(self._read_journal(shard / "index.jsonl"))
        return out

    @staticmethod
    def _read_journal(path: Path) -> dict[str, dict]:
        out: dict[str, dict] = {}
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return out
        for line in text.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) or "key" not in record:
                continue
            meta = dict(record)
            out[meta.pop("key")] = meta
        return out

    def _compact_shard(self, shard: Path,
                       entries: list[StoreEntry]) -> None:
        lines = [json.dumps({"format": INDEX_FORMAT, "salt": self.salt})]
        lines += [json.dumps({"key": e.key, **entry_meta(e)},
                             sort_keys=True) for e in entries]
        with self._shard_lock(shard):
            atomic_write(shard / "index.jsonl", lambda path:
                         path.write_text("\n".join(lines) + "\n",
                                         encoding="utf-8"))

    # -- maintenance --------------------------------------------------

    def entries(self) -> list[StoreEntry]:
        """All stored results across shards; compacts each shard's
        journal (under its lock) as a side effect."""
        out: list[StoreEntry] = []
        for shard in self._shard_dirs():
            shard_entries: list[StoreEntry] = []
            objects = shard / "objects"
            if objects.is_dir():
                for path in sorted(objects.glob("*.json")):
                    entry = read_entry(path, path.with_suffix(".npz"))
                    if entry is not None:
                        shard_entries.append(entry)
            if (shard / "index.jsonl").exists():
                self._compact_shard(shard, shard_entries)
            out.extend(shard_entries)
        return out

    def clear(self) -> tuple[int, int]:
        """Delete all stored results (reports are kept); returns
        ``(entries, bytes)`` removed/freed."""
        removed = 0
        freed = 0
        for shard in list(self._shard_dirs()):
            objects = shard / "objects"
            if objects.is_dir():
                for path in list(sorted(objects.glob("*.json"))):
                    n, b = delete_object(path, path.with_suffix(".npz"))
                    removed += n
                    freed += b
                # Stray payloads whose record is already gone.
                for path in list(objects.glob("*.npz")):
                    try:
                        freed += path.stat().st_size
                        path.unlink()
                    except OSError:
                        pass
            index = shard / "index.jsonl"
            try:
                freed += index.stat().st_size
            except OSError:
                pass
            shutil.rmtree(shard, ignore_errors=True)
        return removed, freed

    # -- scale-out operations -----------------------------------------

    def merge(self, other: ResultStore) -> int:
        """Union *other*'s objects into this store; returns the number
        of entries adopted.

        Either store flavor can be merged from (the object format is
        shared).  On a key collision the newest ``created`` stamp
        wins; merging the same store twice therefore adopts nothing
        the second time.  Records that fail the format-marker check,
        or whose array payload is missing/torn, are skipped - a
        corrupted source entry must not evict a good local one.
        """
        adopted = 0
        for src in other._object_files():
            key = src.stem
            record = read_record(src)
            if record is None:
                continue
            src_payload = other._payload_path(key)
            if record.get("has_arrays") and not src_payload.exists():
                continue
            dst = self._object_path(key)
            ours = read_record(dst)
            if ours is not None and float(ours.get("created", 0.0)) >= \
                    float(record.get("created", 0.0)):
                continue
            dst.parent.mkdir(parents=True, exist_ok=True)
            # Payload first, record second: a reader that can see the
            # record must be able to see its payload.
            if record.get("has_arrays"):
                atomic_write(self._payload_path(key),
                             lambda tmp: shutil.copyfile(src_payload, tmp))
            atomic_write(dst, lambda tmp: shutil.copyfile(src, tmp))
            self._index_add(key, {
                "name": record.get("scenario", {}).get("name", "?"),
                "fn": record.get("scenario", {}).get("fn", "?"),
                "wall_time": float(record.get("wall_time", 0.0)),
                "created": float(record.get("created", 0.0))})
            adopted += 1
        _ADOPTED.inc(adopted)
        return adopted

    def gc(self, *, max_bytes: int | None = None,
           max_age: float | None = None,
           now: float | None = None) -> tuple[int, int]:
        """Evict stored results by age and/or total size.

        Args:
            max_bytes: evict oldest-``created`` entries until the
                store's total object size is at most this.
            max_age: evict every entry whose ``created`` stamp is more
                than this many seconds before *now*.
            now: reference time (defaults to ``time.time()``; tests
                pin it).

        Returns:
            ``(entries, bytes)`` evicted/freed.  With neither limit
            given this is a no-op.
        """
        if max_bytes is None and max_age is None:
            return 0, 0
        if now is None:
            now = time.time()
        entries = self.entries()
        victims: dict[str, StoreEntry] = {}
        if max_age is not None:
            for e in entries:
                if now - e.created > max_age:
                    victims[e.key] = e
        if max_bytes is not None:
            live = [e for e in entries if e.key not in victims]
            total = sum(e.size_bytes for e in live)
            # Oldest first: created is the store's LRU ordering (a put
            # refreshes it; reads do not, by design - re-deriving a
            # result is cheap exactly when it was cheap to compute).
            for e in sorted(live, key=lambda e: (e.created, e.key)):
                if total <= max_bytes:
                    break
                victims[e.key] = e
                total -= e.size_bytes
        evicted = 0
        freed = 0
        touched: set[Path] = set()
        for e in victims.values():
            n, b = delete_object(self._object_path(e.key),
                                 self._payload_path(e.key))
            evicted += n
            freed += b
            touched.add(self.shard_dir(e.key))
        survivors: dict[Path, list[StoreEntry]] = {s: [] for s in touched}
        for e in entries:
            if e.key in victims:
                continue
            shard = self.shard_dir(e.key)
            if shard in survivors:
                survivors[shard].append(e)
        for shard, shard_entries in survivors.items():
            if (shard / "index.jsonl").exists():
                self._compact_shard(shard, shard_entries)
        _EVICTED.inc(evicted)
        return evicted, freed
