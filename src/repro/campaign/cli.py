"""``python -m repro`` - the unified campaign command line.

Drives every experiment harness through the campaign layer, so runs
are cached, resumable and scriptable:

.. code-block:: text

    python -m repro run fig6 --fast          # figure 6, quick budget
    python -m repro run table1 --processes 1 # table 1 (serial timing)
    python -m repro run fig5 table2          # several experiments
    python -m repro run ablations --full     # paper-scale budgets
    python -m repro cache ls                 # stored results
    python -m repro cache clear              # drop stored results
    python -m repro report                   # re-print saved reports

Common flags: ``--fast`` (default) / ``--full`` select the
Monte-Carlo budget, ``--processes`` fans scenarios out over a process
pool, ``--seed`` overrides the experiment's default seed, and
``--cache-dir`` / ``--no-cache`` control the result store.  Re-running
a completed campaign executes zero scenarios; an interrupted campaign
resumes from its checkpoints.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Callable

from repro.campaign.store import ResultStore, default_cache_dir

#: experiments the ``run`` subcommand knows, in menu order.
EXPERIMENTS = ("fig6", "table1", "fig5", "table2", "ablations")


def _seeded(kwargs: dict[str, Any], args: argparse.Namespace,
            name: str = "seed") -> dict[str, Any]:
    if args.seed is not None:
        kwargs[name] = args.seed
    return kwargs


def _run_fig6(args: argparse.Namespace,
              store: ResultStore | None) -> str:
    from repro.experiments import run_fig6
    from repro.uwb.fastsim import AdaptiveStopping

    # Adaptive Monte-Carlo: deep-SNR points stop once their Wilson
    # upper bound resolves below the study's floor instead of burning
    # the full symbol budget.
    adaptive = AdaptiveStopping(ber_floor=1e-4 if not args.full else 1e-5)
    result = run_fig6(quick=not args.full, workers=args.processes,
                      adaptive=adaptive, store=store,
                      **_seeded({}, args))
    return result.format_report()


def _run_table1(args: argparse.Namespace,
                store: ResultStore | None) -> str:
    from repro.experiments import run_table1

    # measure_reference repeats are uncacheable timing samples; skip
    # them here so a completed table-1 campaign re-runs with zero
    # executions (benchmarks/ still track the engine speedup).
    result = run_table1(simulated_time=2e-6 if args.full else 1e-6,
                        processes=args.processes,
                        measure_reference=False, store=store,
                        **_seeded({}, args))
    return result.format_report()


def _run_fig5(args: argparse.Namespace,
              store: ResultStore | None) -> str:
    from repro.experiments import run_fig5_drive_sweep

    results = run_fig5_drive_sweep(dt=0.2e-9 if args.full else 0.4e-9,
                                   processes=args.processes, store=store)
    return "\n\n".join(r.format_report() for r in results)


def _run_table2(args: argparse.Namespace,
                store: ResultStore | None) -> str:
    from repro.experiments import run_table2

    result = run_table2(iterations=30 if args.full else 10,
                        processes=args.processes, store=store,
                        **_seeded({}, args))
    return result.format_report()


def _run_ablations(args: argparse.Namespace,
                   store: ResultStore | None) -> str:
    from repro.experiments import (
        run_agc_ablation,
        run_noise_shaping_ablation,
    )

    agc = run_agc_ablation(iterations=20 if args.full else 10,
                           processes=args.processes, store=store,
                           **_seeded({}, args))
    shaping = run_noise_shaping_ablation(quick=not args.full,
                                         processes=args.processes,
                                         store=store,
                                         **_seeded({}, args))
    return agc.format_report() + "\n\n" + shaping.format_report()


_RUNNERS: dict[str, Callable[[argparse.Namespace,
                              ResultStore | None], str]] = {
    "fig6": _run_fig6,
    "table1": _run_table1,
    "fig5": _run_fig5,
    "table2": _run_table2,
    "ablations": _run_ablations,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Campaign runner for the DATE'07 UWB reproduction: "
                    "cached, resumable experiment harnesses.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="run experiment campaigns through the result store")
    run_p.add_argument("experiments", nargs="+", choices=EXPERIMENTS,
                       metavar="experiment",
                       help=f"one or more of: {', '.join(EXPERIMENTS)}")
    budget = run_p.add_mutually_exclusive_group()
    budget.add_argument("--fast", action="store_true", default=True,
                        help="quick Monte-Carlo budgets (default)")
    budget.add_argument("--full", action="store_true",
                        help="paper-scale Monte-Carlo budgets")
    run_p.add_argument("--processes", type=int, default=None,
                       help="fan scenarios out over N processes")
    run_p.add_argument("--seed", type=int, default=None,
                       help="override the experiment's default seed")
    _add_cache_flags(run_p)
    run_p.add_argument("--no-cache", action="store_true",
                       help="bypass the result store entirely")

    cache_p = sub.add_parser("cache", help="inspect the result store")
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    ls_p = cache_sub.add_parser("ls", help="list stored results")
    _add_cache_flags(ls_p)
    clear_p = cache_sub.add_parser("clear", help="delete stored results")
    _add_cache_flags(clear_p)

    report_p = sub.add_parser(
        "report", help="print the saved report of past runs")
    # no choices= here: argparse would reject the empty default of
    # nargs="*"; unknown names are validated in cmd_report instead.
    report_p.add_argument("experiments", nargs="*", metavar="experiment",
                          help="limit to these experiments (default: all)")
    _add_cache_flags(report_p)
    return parser


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-store directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")


def _make_store(args: argparse.Namespace) -> ResultStore:
    return ResultStore(args.cache_dir)


def cmd_run(args: argparse.Namespace) -> int:
    store = None if getattr(args, "no_cache", False) else _make_store(args)
    for name in args.experiments:
        start = time.perf_counter()
        text = _RUNNERS[name](args, store)
        elapsed = time.perf_counter() - start
        print(text)
        if store is not None:
            print(f"campaign[{name}]: executed={store.misses} "
                  f"cached={store.hits} wall={elapsed:.3f}s "
                  f"cache={store.root}")
            store.save_report(name, text)
            # Per-experiment accounting when several run in one call.
            store.hits = store.misses = 0
        else:
            print(f"campaign[{name}]: uncached wall={elapsed:.3f}s")
        print()
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    store = _make_store(args)
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} stored results from {store.root}")
        return 0
    entries = store.entries()
    if not entries:
        print(f"(result store at {store.root} is empty)")
        return 0
    print(f"{'key':<14s} {'scenario':<28s} {'wall':>9s} "
          f"{'size':>9s}  fn")
    total = 0
    for e in sorted(entries, key=lambda e: e.created):
        total += e.size_bytes
        print(f"{e.key[:12] + '..':<14s} {e.name:<28.28s} "
              f"{e.wall_time:>8.3f}s {e.size_bytes / 1024:>8.1f}K"
              f"  {e.fn}")
    print(f"{len(entries)} results, {total / 1024:.1f} KiB total, "
          f"root {store.root}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    store = _make_store(args)
    wanted = [e for e in args.experiments if e]
    unknown = sorted(set(wanted) - set(EXPERIMENTS))
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)} "
              f"(choose from {', '.join(EXPERIMENTS)})")
        return 2
    found = False
    for name, text in store.load_reports():
        if wanted and name not in wanted:
            continue
        found = True
        print(f"=== {name} ===")
        print(text)
        print()
    if not found:
        which = ", ".join(wanted) if wanted else "any experiment"
        print(f"no saved reports for {which} under {store.reports_dir}; "
              f"run `python -m repro run <experiment>` first")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args)
        if args.command == "cache":
            return cmd_cache(args)
        if args.command == "report":
            return cmd_report(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early.
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
