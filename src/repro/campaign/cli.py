"""``python -m repro`` - the unified campaign command line.

Drives every *registered* experiment through the campaign layer, so
runs are cached, resumable and scriptable:

.. code-block:: text

    python -m repro run --list               # discover experiments
    python -m repro run fig6 --fast          # figure 6, quick budget
    python -m repro run table1 --processes 1 # table 1 (serial timing)
    python -m repro run fig5 table2          # several experiments
    python -m repro run mui --fast           # multi-user interference
    python -m repro run ablations --full     # paper-scale budgets
    python -m repro cache ls                 # stored results
    python -m repro cache clear              # drop stored results
    python -m repro report                   # re-print saved reports

Experiments self-register via the ``@experiment`` decorator in
:mod:`repro.experiments.registry`; adding a harness module makes it
runnable here with no CLI change.  Common flags: ``--fast`` (default)
/ ``--full`` select the Monte-Carlo budget, ``--processes`` fans
scenarios out over a process pool, ``--seed`` overrides the
experiment's default seed, ``--chunk-bits`` sizes the Monte-Carlo
chunks, ``--batch-points`` / ``--no-batch-points`` select the
scenario-batched sweep kernel versus the legacy per-point loop, and
``--cache-dir`` / ``--no-cache`` control the result store.  Re-running a completed campaign executes
zero scenarios; an interrupted campaign resumes from its checkpoints.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.campaign.store import ResultStore


def _positive_int(text: str) -> int:
    """argparse type for flags that only make sense strictly positive
    (e.g. ``--chunk-bits``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def _registry():
    """Experiment discovery, deferred so ``cache``/``report`` commands
    stay import-light."""
    from repro.experiments.registry import all_experiments

    return {e.name: e for e in all_experiments()}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Campaign runner for the DATE'07 UWB reproduction: "
                    "cached, resumable experiment harnesses.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="run experiment campaigns through the result store")
    # No choices= here: the registry is discovered lazily; unknown
    # names are validated in cmd_run (and --list needs no names).
    run_p.add_argument("experiments", nargs="*", metavar="experiment",
                       help="registered experiment names "
                            "(see --list)")
    run_p.add_argument("--list", action="store_true", dest="list_only",
                       help="list registered experiments and exit")
    budget = run_p.add_mutually_exclusive_group()
    budget.add_argument("--fast", action="store_true", default=True,
                        help="quick Monte-Carlo budgets (default)")
    budget.add_argument("--full", action="store_true",
                        help="paper-scale Monte-Carlo budgets")
    run_p.add_argument("--processes", type=int, default=None,
                       help="fan scenarios out over N processes")
    run_p.add_argument("--seed", type=int, default=None,
                       help="override the experiment's default seed")
    run_p.add_argument("--chunk-bits", type=_positive_int, default=None,
                       metavar="N",
                       help="Monte-Carlo chunk size (bits per "
                            "vectorized chunk; default: backend "
                            "native)")
    run_p.add_argument("--batch-points",
                       action=argparse.BooleanOptionalAction,
                       default=True,
                       help="scenario-batched sweep kernel (default) "
                            "vs. the legacy per-point loop "
                            "(--no-batch-points)")
    _add_cache_flags(run_p)
    run_p.add_argument("--no-cache", action="store_true",
                       help="bypass the result store entirely")

    lint_p = sub.add_parser(
        "lint", help="static netlist verification (graph-based "
                     "pre-flight checks)")
    lint_p.add_argument("targets", nargs="*", metavar="netlist",
                        help="Spice netlist file path or built-in "
                             "circuit name (see --list)")
    lint_p.add_argument("--list", action="store_true", dest="list_only",
                        help="list built-in circuits and lint rules, "
                             "then exit")
    lint_p.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="report format (json round-trips through "
                             "LintReport.from_json)")
    lint_p.add_argument("--fail-on", choices=("error", "warn", "info"),
                        default="error", dest="fail_on",
                        help="exit non-zero when findings at or above "
                             "this severity exist (default: error)")
    lint_p.add_argument("--no-title-line", action="store_true",
                        help="treat the first netlist line as content, "
                             "not a title")

    cache_p = sub.add_parser("cache", help="inspect the result store")
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    ls_p = cache_sub.add_parser("ls", help="list stored results")
    _add_cache_flags(ls_p)
    clear_p = cache_sub.add_parser("clear", help="delete stored results")
    _add_cache_flags(clear_p)

    report_p = sub.add_parser(
        "report", help="print the saved report of past runs")
    report_p.add_argument("experiments", nargs="*", metavar="experiment",
                          help="limit to these experiments (default: all)")
    _add_cache_flags(report_p)
    return parser


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-store directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")


def _make_store(args: argparse.Namespace) -> ResultStore:
    return ResultStore(args.cache_dir)


def cmd_list() -> int:
    experiments = _registry()
    print("registered experiments:")
    for exp in experiments.values():
        print(f"  {exp.name:<12s} {exp.description}")
    print(f"{len(experiments)} experiments "
          "(run with: python -m repro run <name>)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.list_only:
        return cmd_list()
    if not args.experiments:
        print("no experiments given (try: python -m repro run --list)")
        return 2
    experiments = _registry()
    unknown = sorted(set(args.experiments) - set(experiments))
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)} "
              f"(choose from {', '.join(experiments)})")
        return 2
    from repro.experiments.registry import ExperimentContext

    store = None if getattr(args, "no_cache", False) else _make_store(args)
    for name in args.experiments:
        ctx = ExperimentContext(full=args.full,
                                processes=args.processes,
                                seed=args.seed, store=store,
                                chunk_bits=args.chunk_bits,
                                batch_points=args.batch_points)
        start = time.perf_counter()
        text = experiments[name].run(ctx)
        elapsed = time.perf_counter() - start
        print(text)
        if store is not None:
            print(f"campaign[{name}]: executed={store.misses} "
                  f"cached={store.hits} wall={elapsed:.3f}s "
                  f"cache={store.root}")
            store.save_report(name, text)
            # Per-experiment accounting when several run in one call.
            store.hits = store.misses = 0
        else:
            print(f"campaign[{name}]: uncached wall={elapsed:.3f}s")
        print()
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: parse/build each target, run the rule engine,
    exit 0 (clean below --fail-on), 1 (findings at/above --fail-on) or
    2 (unknown target / parse failure)."""
    import os

    from repro.circuits import builtin_circuits
    from repro.spice import ParseError
    from repro.spice.lint import (
        Severity,
        all_rules,
        lint_circuit,
        lint_netlist,
        lint_subckt,
    )
    from repro.spice.netlist import Subckt

    builtins = builtin_circuits()
    if args.list_only:
        print("built-in circuits:")
        for name in builtins:
            print(f"  {name}")
        print("lint rules:")
        for rule in all_rules():
            print(f"  {rule.rule_id:<14s} [{rule.severity.label:<5s}] "
                  f"{rule.title}")
        return 0
    if not args.targets:
        print("no netlists given (try: python -m repro lint --list)")
        return 2

    threshold = Severity.from_label(args.fail_on)
    failed = False
    for target in args.targets:
        try:
            if target in builtins:
                built = builtins[target]()
                if isinstance(built, Subckt):
                    report = lint_subckt(built)
                else:
                    report = lint_circuit(built)
            elif os.path.exists(target):
                with open(target, encoding="utf-8") as fh:
                    text = fh.read()
                report = lint_netlist(
                    text, title_line=not args.no_title_line)
            else:
                print(f"unknown target {target!r}: not a file and not a "
                      f"built-in circuit (choose from "
                      f"{', '.join(builtins)})")
                return 2
        except ParseError as exc:
            print(f"{target}: parse error: {exc}")
            return 2
        if args.format == "json":
            print(report.to_json())
        else:
            print(report.format_text())
        if report.at_least(threshold):
            failed = True
    return 1 if failed else 0


def cmd_cache(args: argparse.Namespace) -> int:
    store = _make_store(args)
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} stored results from {store.root}")
        return 0
    entries = store.entries()
    if not entries:
        print(f"(result store at {store.root} is empty)")
        return 0
    print(f"{'key':<14s} {'scenario':<28s} {'wall':>9s} "
          f"{'size':>9s}  fn")
    total = 0
    for e in sorted(entries, key=lambda e: e.created):
        total += e.size_bytes
        print(f"{e.key[:12] + '..':<14s} {e.name:<28.28s} "
              f"{e.wall_time:>8.3f}s {e.size_bytes / 1024:>8.1f}K"
              f"  {e.fn}")
    print(f"{len(entries)} results, {total / 1024:.1f} KiB total, "
          f"root {store.root}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    store = _make_store(args)
    wanted = [e for e in args.experiments if e]
    if wanted:
        known = set(_registry())
        unknown = sorted(set(wanted) - known)
        if unknown:
            print(f"unknown experiment(s): {', '.join(unknown)} "
                  f"(choose from {', '.join(sorted(known))})")
            return 2
    found = False
    for name, text in store.load_reports():
        if wanted and name not in wanted:
            continue
        found = True
        print(f"=== {name} ===")
        print(text)
        print()
    if not found:
        which = ", ".join(wanted) if wanted else "any experiment"
        print(f"no saved reports for {which} under {store.reports_dir}; "
              f"run `python -m repro run <experiment>` first")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args)
        if args.command == "lint":
            return cmd_lint(args)
        if args.command == "cache":
            return cmd_cache(args)
        if args.command == "report":
            return cmd_report(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early.
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
