"""``python -m repro`` - the unified campaign command line.

Drives every *registered* experiment through the campaign layer, so
runs are cached, resumable and scriptable:

.. code-block:: text

    python -m repro run --list               # discover experiments
    python -m repro run fig6 --fast          # figure 6, quick budget
    python -m repro run table1 --processes 1 # table 1 (serial timing)
    python -m repro run fig5 table2          # several experiments
    python -m repro run mui --fast           # multi-user interference
    python -m repro run ablations --full     # paper-scale budgets
    python -m repro queue submit fig6 table2 # enqueue campaigns...
    python -m repro queue work               # ...and run them (fleet-safe)
    python -m repro queue status             # progress/ETA per job
    python -m repro queue drain              # empty the queue
    python -m repro cache ls                 # stored results
    python -m repro cache clear              # drop stored results
    python -m repro cache gc --max-bytes N   # evict oldest (sharded)
    python -m repro cache merge SRC          # union another cache in
    python -m repro report                   # re-print saved reports
    python -m repro trace fig6 --fast        # span tree of one run
    python -m repro stats                    # aggregate store/queue stats

Experiments self-register via the ``@experiment`` decorator in
:mod:`repro.experiments.registry`; adding a harness module makes it
runnable here with no CLI change.  Common flags: ``--fast`` (default)
/ ``--full`` select the Monte-Carlo budget, ``--processes`` fans
scenarios out over a process pool, ``--seed`` overrides the
experiment's default seed, ``--chunk-bits`` sizes the Monte-Carlo
chunks, ``--batch-points`` / ``--no-batch-points`` select the
scenario-batched sweep kernel versus the legacy per-point loop, and
``--cache-dir`` / ``--no-cache`` / ``--sharded`` control the result
store (the flavor is autodetected from an existing layout; fresh
directories are classic for ``run`` and sharded for ``queue work``).
Re-running a completed campaign executes zero scenarios; an
interrupted campaign resumes from its checkpoints.  ``queue work``
converts SIGINT/SIGTERM into graceful preemption: the in-flight job
checkpoints what completed and goes back to pending.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.campaign.store import ResultStore


def _positive_int(text: str) -> int:
    """argparse type for flags that only make sense strictly positive
    (e.g. ``--chunk-bits``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def _registry():
    """Experiment discovery, deferred so ``cache``/``queue`` commands
    stay import-light."""
    from repro.experiments.registry import all_experiments

    return {e.name: e for e in all_experiments()}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Campaign runner for the DATE'07 UWB reproduction: "
                    "cached, resumable experiment harnesses.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="run experiment campaigns through the result store")
    # No choices= here: the registry is discovered lazily; unknown
    # names are validated in cmd_run (and --list needs no names).
    run_p.add_argument("experiments", nargs="*", metavar="experiment",
                       help="registered experiment names "
                            "(see --list)")
    run_p.add_argument("--list", action="store_true", dest="list_only",
                       help="list registered experiments and exit")
    _add_budget_flags(run_p)
    _add_cache_flags(run_p)
    run_p.add_argument("--no-cache", action="store_true",
                       help="bypass the result store entirely")

    lint_p = sub.add_parser(
        "lint", help="static netlist verification (graph-based "
                     "pre-flight checks)")
    lint_p.add_argument("targets", nargs="*", metavar="netlist",
                        help="Spice netlist file path or built-in "
                             "circuit name (see --list)")
    lint_p.add_argument("--list", action="store_true", dest="list_only",
                        help="list built-in circuits and lint rules, "
                             "then exit")
    lint_p.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="report format (json round-trips through "
                             "LintReport.from_json)")
    lint_p.add_argument("--fail-on", choices=("error", "warn", "info"),
                        default="error", dest="fail_on",
                        help="exit non-zero when findings at or above "
                             "this severity exist (default: error)")
    lint_p.add_argument("--no-title-line", action="store_true",
                        help="treat the first netlist line as content, "
                             "not a title")

    queue_p = sub.add_parser(
        "queue", help="campaign-as-a-service: durable job queue + "
                      "work-stealing workers")
    queue_sub = queue_p.add_subparsers(dest="queue_command",
                                       required=True)
    submit_p = queue_sub.add_parser(
        "submit", help="enqueue experiment campaigns as durable jobs")
    submit_p.add_argument("experiments", nargs="+", metavar="experiment",
                          help="registered experiment names")
    _add_budget_flags(submit_p)
    submit_p.add_argument("--module", action="append", default=[],
                          metavar="MOD",
                          help="extra module(s) the worker imports "
                               "before resolving the experiment "
                               "(carries user @experiment "
                               "registrations with the job)")
    _add_queue_flags(submit_p)

    status_p = queue_sub.add_parser(
        "status", help="pending/claimed/done/failed jobs with "
                       "progress and ETA")
    _add_queue_flags(status_p)

    work_p = queue_sub.add_parser(
        "work", help="claim and run queued jobs (fleet-safe; "
                     "SIGINT/SIGTERM preempt gracefully)")
    _add_queue_flags(work_p)
    _add_cache_flags(work_p)
    work_p.add_argument("--worker-id", default=None, metavar="ID",
                        help="worker name stamped into heartbeats "
                             "(default: host-pid)")
    work_p.add_argument("--follow", action="store_true",
                        help="keep polling after the queue drains "
                             "(resident worker)")
    work_p.add_argument("--poll", type=float, default=0.5, metavar="S",
                        help="idle sleep between claims with --follow "
                             "(default: 0.5s)")
    work_p.add_argument("--max-jobs", type=_positive_int, default=None,
                        metavar="N", help="stop after N jobs")
    work_p.add_argument("--stale-after", type=float, default=None,
                        metavar="S",
                        help="reclaim claimed jobs whose heartbeat is "
                             "older than S seconds (default: 300)")

    drain_p = queue_sub.add_parser(
        "drain", help="empty the queue (jobs in every state; the "
                      "result store is untouched)")
    _add_queue_flags(drain_p)

    cache_p = sub.add_parser("cache", help="inspect the result store")
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    ls_p = cache_sub.add_parser("ls", help="list stored results")
    _add_cache_flags(ls_p)
    clear_p = cache_sub.add_parser("clear", help="delete stored results")
    _add_cache_flags(clear_p)
    gc_p = cache_sub.add_parser(
        "gc", help="evict stored results by total size and/or age "
                   "(sharded store)")
    _add_cache_flags(gc_p)
    gc_p.add_argument("--max-bytes", type=int, default=None, metavar="N",
                      help="evict oldest entries until the store is "
                           "at most N bytes")
    gc_p.add_argument("--max-age", type=float, default=None, metavar="S",
                      help="evict entries created more than S seconds "
                           "ago")
    merge_p = cache_sub.add_parser(
        "merge", help="union another store's results into this one "
                      "(newest wins per key)")
    merge_p.add_argument("source", metavar="SRC",
                         help="source store directory (either flavor)")
    _add_cache_flags(merge_p)

    report_p = sub.add_parser(
        "report", help="print the saved report of past runs")
    report_p.add_argument("experiments", nargs="*", metavar="experiment",
                          help="limit to these experiments (default: all)")
    _add_cache_flags(report_p)

    trace_p = sub.add_parser(
        "trace", help="run one experiment with hierarchical tracing "
                      "and print its span tree (repro.obs)")
    trace_p.add_argument("experiment", metavar="experiment",
                         help="registered experiment name (see "
                              "`repro run --list`)")
    trace_p.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="span-tree format (json round-trips "
                              "through repro.obs.export.TraceReport)")
    _add_budget_flags(trace_p)

    stats_p = sub.add_parser(
        "stats", help="aggregate metrics over a result store and/or "
                      "job queue directory")
    stats_p.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="output format (json is a tagged "
                              "repro.stats/1 document)")
    _add_cache_flags(stats_p)
    _add_queue_flags(stats_p)
    return parser


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    """Execution knobs shared by ``run`` and ``queue submit``."""
    budget = parser.add_mutually_exclusive_group()
    budget.add_argument("--fast", action="store_true", default=True,
                        help="quick Monte-Carlo budgets (default)")
    budget.add_argument("--full", action="store_true",
                        help="paper-scale Monte-Carlo budgets")
    parser.add_argument("--processes", type=int, default=None,
                        help="fan scenarios out over N processes")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the experiment's default seed")
    parser.add_argument("--chunk-bits", type=_positive_int, default=None,
                        metavar="N",
                        help="Monte-Carlo chunk size (bits per "
                             "vectorized chunk; default: backend "
                             "native)")
    parser.add_argument("--batch-points",
                        action=argparse.BooleanOptionalAction,
                        default=True,
                        help="scenario-batched sweep kernel (default) "
                             "vs. the legacy per-point loop "
                             "(--no-batch-points)")


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-store directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--sharded",
                        action=argparse.BooleanOptionalAction,
                        default=None,
                        help="force the sharded (or classic) store "
                             "flavor; default: autodetect from the "
                             "existing layout")


def _add_queue_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="job-queue directory (default: "
                             "$REPRO_QUEUE_DIR or <cache root>/queue)")


def _make_store(args: argparse.Namespace, *,
                default_sharded: bool = False) -> ResultStore:
    from repro.campaign.queue import open_store

    return open_store(args.cache_dir,
                      sharded=getattr(args, "sharded", None),
                      default_sharded=default_sharded)


def cmd_list() -> int:
    experiments = _registry()
    print("registered experiments:")
    for exp in experiments.values():
        print(f"  {exp.name:<12s} {exp.description}")
    print(f"{len(experiments)} experiments "
          "(run with: python -m repro run <name>)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.list_only:
        return cmd_list()
    if not args.experiments:
        print("no experiments given (try: python -m repro run --list)")
        return 2
    experiments = _registry()
    unknown = sorted(set(args.experiments) - set(experiments))
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)} "
              f"(choose from {', '.join(experiments)})")
        return 2
    from repro.experiments.registry import ExperimentContext

    store = None if getattr(args, "no_cache", False) else _make_store(args)
    for name in args.experiments:
        ctx = ExperimentContext(full=args.full,
                                processes=args.processes,
                                seed=args.seed, store=store,
                                chunk_bits=args.chunk_bits,
                                batch_points=args.batch_points)
        start = time.perf_counter()
        text = experiments[name].run(ctx)
        elapsed = time.perf_counter() - start
        print(text)
        if store is not None:
            print(f"campaign[{name}]: executed={store.misses} "
                  f"cached={store.hits} wall={elapsed:.3f}s "
                  f"cache={store.root}")
            store.save_report(name, text)
            # Per-experiment accounting when several run in one call.
            store.hits = store.misses = 0
        else:
            print(f"campaign[{name}]: uncached wall={elapsed:.3f}s")
        print()
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: parse/build each target, run the rule engine,
    exit 0 (clean below --fail-on), 1 (findings at/above --fail-on) or
    2 (unknown target / parse failure)."""
    import os

    from repro.circuits import builtin_circuits
    from repro.spice import ParseError
    from repro.spice.lint import (
        Severity,
        all_rules,
        lint_circuit,
        lint_netlist,
        lint_subckt,
    )
    from repro.spice.netlist import Subckt

    builtins = builtin_circuits()
    if args.list_only:
        print("built-in circuits:")
        for name in builtins:
            print(f"  {name}")
        print("lint rules:")
        for rule in all_rules():
            print(f"  {rule.rule_id:<14s} [{rule.severity.label:<5s}] "
                  f"{rule.title}")
        return 0
    if not args.targets:
        print("no netlists given (try: python -m repro lint --list)")
        return 2

    threshold = Severity.from_label(args.fail_on)
    failed = False
    for target in args.targets:
        try:
            if target in builtins:
                built = builtins[target]()
                if isinstance(built, Subckt):
                    report = lint_subckt(built)
                else:
                    report = lint_circuit(built)
            elif os.path.exists(target):
                with open(target, encoding="utf-8") as fh:
                    text = fh.read()
                report = lint_netlist(
                    text, title_line=not args.no_title_line)
            else:
                print(f"unknown target {target!r}: not a file and not a "
                      f"built-in circuit (choose from "
                      f"{', '.join(builtins)})")
                return 2
        except ParseError as exc:
            print(f"{target}: parse error: {exc}")
            return 2
        if args.format == "json":
            print(report.to_json())
        else:
            print(report.format_text())
        if report.at_least(threshold):
            failed = True
    return 1 if failed else 0


def cmd_queue(args: argparse.Namespace) -> int:
    """``repro queue submit|status|work|drain``."""
    from repro.campaign.queue import JobQueue, work_loop

    queue = JobQueue(args.queue_dir)
    if args.queue_command == "submit":
        return _queue_submit(queue, args)
    if args.queue_command == "status":
        return _queue_status(queue)
    if args.queue_command == "work":
        return _queue_work(queue, args, work_loop)
    if args.queue_command == "drain":
        removed = queue.drain()
        total = sum(removed.values())
        detail = " ".join(f"{state}={n}" for state, n in removed.items())
        print(f"drained {total} job(s) from {queue.root} ({detail})")
        return 0
    raise AssertionError(f"unhandled queue command "
                         f"{args.queue_command!r}")


def _queue_submit(queue, args: argparse.Namespace) -> int:
    from repro.campaign.queue import JobSpec

    # User modules may register extra experiments; import them before
    # validating the names (the worker repeats the import job-side).
    import importlib

    for module in args.module:
        importlib.import_module(module)
    experiments = _registry()
    unknown = sorted(set(args.experiments) - set(experiments))
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)} "
              f"(choose from {', '.join(experiments)})")
        return 2
    for name in args.experiments:
        job_id = queue.submit(JobSpec(
            experiment=name, full=args.full, seed=args.seed,
            processes=args.processes, chunk_bits=args.chunk_bits,
            batch_points=args.batch_points,
            modules=tuple(args.module)))
        print(f"submitted {job_id} [{name}]")
    counts = queue.counts()
    print(f"queue at {queue.root}: pending={counts['pending']} "
          f"claimed={counts['claimed']} done={counts['done']} "
          f"failed={counts['failed']}")
    return 0


def _queue_status(queue) -> int:
    now = time.time()
    counts = queue.counts()
    print(f"queue at {queue.root}")
    for state in ("pending", "claimed"):
        print(f"{state}: {counts[state]}")
        for job_id, spec in queue.jobs(state):
            line = f"  {job_id} [{spec.experiment}]"
            stages = None
            if state == "claimed":
                beat = queue.read_heartbeat(job_id)
                if beat is not None:
                    line += f" worker={beat.get('worker', '?')}"
                    if beat.get("total"):
                        line += (f" done={beat.get('done', 0)}"
                                 f"/{beat.get('total')}")
                    # No wall-time history yet (or a single sample):
                    # the tracker reports None and we show "--" rather
                    # than a nonsense projection.
                    eta = beat.get("eta_seconds")
                    line += (f" eta={eta:.1f}s" if eta is not None
                             else " eta=--")
                    line += f" age={now - beat.get('time', now):.1f}s"
                    stages = beat.get("stages")
                else:
                    line += " (no heartbeat yet)"
            print(line)
            if stages:
                print("    stages: " + _format_stages(stages))
    # concluded jobs carry outcome records, not specs
    for state in ("done", "failed"):
        print(f"{state}: {counts[state]}")
        for job_id in queue.job_ids(state):
            outcome = queue.outcome(job_id) or {}
            line = (f"  {job_id} [{outcome.get('experiment', '?')}]"
                    f" executed={outcome.get('executed', 0)} "
                    f"cached={outcome.get('cached', 0)} "
                    f"wall={outcome.get('wall', 0.0):.3f}s")
            if outcome.get("error"):
                line += f" error={outcome['error']}"
            print(line)
    return 0


def _queue_work(queue, args: argparse.Namespace, work_loop) -> int:
    import os
    import signal
    import socket
    import threading

    store = _make_store(args, default_sharded=True)
    worker = args.worker_id or f"{socket.gethostname()}-{os.getpid()}"
    stop = threading.Event()

    def on_signal(signum, frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, on_signal)
        except ValueError:  # not the main thread (embedded use)
            pass
    from repro.campaign.queue import DEFAULT_STALE_AFTER

    stale_after = args.stale_after if args.stale_after is not None \
        else DEFAULT_STALE_AFTER
    try:
        outcomes = work_loop(queue, store, worker=worker,
                             follow=args.follow, poll=args.poll,
                             max_jobs=args.max_jobs,
                             stale_after=stale_after,
                             preempt=stop.is_set, log=print)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    executed = sum(o.get("executed", 0) for o in outcomes)
    cached = sum(o.get("cached", 0) for o in outcomes)
    states = [o.get("state") for o in outcomes]
    print(f"worker {worker}: {len(outcomes)} job(s) "
          f"(done={states.count('done')} failed={states.count('failed')} "
          f"preempted={states.count('preempted')}) "
          f"executed={executed} cached={cached} store={store.root}")
    return 1 if "failed" in states else 0


def _format_stages(stages: dict) -> str:
    """``name=wall`` pairs, biggest wall first (heartbeat/status view)."""
    ordered = sorted(stages.items(), key=lambda kv: -float(kv[1]))
    return " ".join(f"{name}={float(wall):.3f}s"
                    for name, wall in ordered)


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.obs.export import format_bytes

    store = _make_store(args)
    if args.cache_command == "clear":
        removed, freed = store.clear()
        print(f"removed {removed} stored results "
              f"({format_bytes(freed)}) from {store.root}")
        return 0
    if args.cache_command == "gc":
        return _cache_gc(store, args)
    if args.cache_command == "merge":
        return _cache_merge(store, args)
    entries = store.entries()
    if not entries:
        print(f"(result store at {store.root} is empty)")
        return 0
    print(f"{'key':<14s} {'scenario':<28s} {'wall':>9s} "
          f"{'size':>9s}  fn")
    total = 0
    for e in sorted(entries, key=lambda e: e.created):
        total += e.size_bytes
        print(f"{e.key[:12] + '..':<14s} {e.name:<28.28s} "
              f"{e.wall_time:>8.3f}s {e.size_bytes / 1024:>8.1f}K"
              f"  {e.fn}")
    print(f"{len(entries)} results, {format_bytes(total)} total, "
          f"root {store.root}")
    return 0


def _cache_gc(store, args: argparse.Namespace) -> int:
    from repro.campaign.shard import ShardedResultStore
    from repro.obs.export import format_bytes

    if not isinstance(store, ShardedResultStore):
        print(f"cache gc needs the sharded store; {store.root} holds "
              f"a classic layout (use `repro cache clear`, or migrate "
              f"with `repro cache merge` into a sharded directory)")
        return 2
    if args.max_bytes is None and args.max_age is None:
        print("nothing to do: give --max-bytes and/or --max-age")
        return 2
    evicted, freed = store.gc(max_bytes=args.max_bytes,
                              max_age=args.max_age)
    print(f"evicted {evicted} stored results "
          f"({format_bytes(freed)}) from {store.root}")
    return 0


def _cache_merge(store, args: argparse.Namespace) -> int:
    from repro.campaign.queue import open_store
    from repro.campaign.shard import ShardedResultStore

    if not isinstance(store, ShardedResultStore):
        print(f"cache merge needs a sharded destination; {store.root} "
              f"holds a classic layout (pass --sharded with a fresh "
              f"--cache-dir to migrate into)")
        return 2
    source = open_store(args.source, default_sharded=False)
    adopted = store.merge(source)
    print(f"merged {adopted} entr{'y' if adopted == 1 else 'ies'} "
          f"from {source.root} into {store.root}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    store = _make_store(args)
    wanted = [e for e in args.experiments if e]
    if wanted:
        known = set(_registry())
        unknown = sorted(set(wanted) - known)
        if unknown:
            print(f"unknown experiment(s): {', '.join(unknown)} "
                  f"(choose from {', '.join(sorted(known))})")
            return 2
    found = False
    for name, text in store.load_reports():
        if wanted and name not in wanted:
            continue
        found = True
        print(f"=== {name} ===")
        print(text)
        print()
    if not found:
        which = ", ".join(wanted) if wanted else "any experiment"
        print(f"no saved reports for {which} under {store.reports_dir}; "
              f"run `python -m repro run <experiment>` first")
        return 1
    return 0


#: format marker of the ``repro stats --format json`` document.
STATS_FORMAT = "repro.stats/1"


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace <experiment>``: run once, uncached and traced,
    and print the hierarchical span tree (or its JSON document)."""
    experiments = _registry()
    if args.experiment not in experiments:
        print(f"unknown experiment {args.experiment!r} "
              f"(choose from {', '.join(experiments)})")
        return 2
    from repro.experiments.registry import ExperimentContext
    from repro.obs import metrics, trace
    from repro.obs.export import TraceReport, render_trace

    # store=None: a trace must observe real execution, not cache hits.
    ctx = ExperimentContext(full=args.full, processes=args.processes,
                            seed=args.seed, store=None,
                            chunk_bits=args.chunk_bits,
                            batch_points=args.batch_points)
    metrics.REGISTRY.reset()
    with trace.collect(args.experiment) as root:
        text = experiments[args.experiment].run(ctx)
    report = TraceReport.from_run(args.experiment, root,
                                  metrics.REGISTRY.snapshot())
    if args.format == "json":
        print(report.to_json())
        return 0
    print(text)
    print()
    print(render_trace(root, title=f"trace: {args.experiment}"))
    if report.metrics.counters:
        print("counters:")
        for name, value in report.metrics.counters.items():
            print(f"  {name:<36s} {value}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: aggregate store contents and queue outcomes
    into one metrics view (text or a tagged JSON document)."""
    from repro.campaign.queue import JobQueue, STATES
    from repro.core.serialization import dump_tagged
    from repro.obs.export import format_bytes

    store = _make_store(args)
    queue = JobQueue(args.queue_dir)

    entries = store.entries()
    by_fn: dict[str, dict] = {}
    total_bytes = 0
    total_wall = 0.0
    for e in entries:
        total_bytes += e.size_bytes
        total_wall += e.wall_time
        agg = by_fn.setdefault(e.fn, {"results": 0, "bytes": 0,
                                      "wall_s": 0.0})
        agg["results"] += 1
        agg["bytes"] += e.size_bytes
        agg["wall_s"] += e.wall_time

    counts = queue.counts()
    stage_totals: dict[str, float] = {}
    jobs_wall = 0.0
    jobs_executed = 0
    jobs_cached = 0
    for state in ("done", "failed"):
        for job_id in queue.job_ids(state):
            outcome = queue.outcome(job_id) or {}
            jobs_wall += float(outcome.get("wall", 0.0))
            jobs_executed += int(outcome.get("executed", 0))
            jobs_cached += int(outcome.get("cached", 0))
            for name, wall in (outcome.get("stages") or {}).items():
                stage_totals[name] = (stage_totals.get(name, 0.0)
                                      + float(wall))
    workers = []
    for job_id in queue.job_ids("claimed"):
        beat = queue.read_heartbeat(job_id) or {}
        workers.append({
            "job_id": job_id,
            "worker": beat.get("worker", "?"),
            "done": beat.get("done", 0),
            "total": beat.get("total", 0),
            "eta_seconds": beat.get("eta_seconds"),
            "stages": beat.get("stages") or {},
        })

    payload = {
        "store": {"root": str(store.root), "results": len(entries),
                  "bytes": total_bytes, "wall_s": total_wall,
                  "by_fn": by_fn},
        "queue": {"root": str(queue.root), "counts": counts,
                  "executed": jobs_executed, "cached": jobs_cached,
                  "wall_s": jobs_wall, "stages": stage_totals,
                  "workers": workers},
    }
    if args.format == "json":
        print(dump_tagged(STATS_FORMAT, payload, indent=2))
        return 0
    print(f"store at {store.root}: {len(entries)} results, "
          f"{format_bytes(total_bytes)}, {total_wall:.3f}s recorded "
          "wall")
    for fn, agg in sorted(by_fn.items(),
                          key=lambda kv: -kv[1]["wall_s"]):
        print(f"  {fn:<44s} {agg['results']:>4d} results "
              f"{format_bytes(agg['bytes']):>10s} "
              f"{agg['wall_s']:>9.3f}s")
    print(f"queue at {queue.root}: "
          + " ".join(f"{s}={counts[s]}" for s in STATES)
          + f" executed={jobs_executed} cached={jobs_cached} "
            f"wall={jobs_wall:.3f}s")
    if stage_totals:
        print("  stages: " + _format_stages(stage_totals))
    for w in workers:
        eta = w["eta_seconds"]
        line = (f"  worker {w['worker']} [{w['job_id']}]: "
                f"done={w['done']}/{w['total']} "
                + (f"eta={eta:.1f}s" if eta is not None else "eta=--"))
        print(line)
        if w["stages"]:
            print("    stages: " + _format_stages(w["stages"]))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args)
        if args.command == "lint":
            return cmd_lint(args)
        if args.command == "queue":
            return cmd_queue(args)
        if args.command == "cache":
            return cmd_cache(args)
        if args.command == "report":
            return cmd_report(args)
        if args.command == "trace":
            return cmd_trace(args)
        if args.command == "stats":
            return cmd_stats(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early.
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
