"""Shared object codec of the campaign result stores.

Both store flavors - the classic single-directory
:class:`~repro.campaign.store.ResultStore` and the concurrent
:class:`~repro.campaign.shard.ShardedResultStore` - persist one
*object* per content address: a ``<key>.json`` record (scenario echo,
encoded value, timings, format marker) plus an optional ``<key>.npz``
array payload.  This module is the single implementation of that file
format, so the two stores can read each other's objects byte-for-byte
(which is what makes :meth:`ShardedResultStore.merge` a plain file
copy) and so torn or truncated files are classified identically
everywhere: any object that fails to decode is a cache *miss*, never
an error.

All writes go through :func:`atomic_write` (temp file + ``os.replace``)
- readers therefore only ever observe complete files, with no locking
on the read path.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.scenario import Scenario, SweepResult
from repro.core.serialization import (
    UnserializableError,
    callable_spec,
    from_jsonable,
    to_jsonable,
)

#: format marker of the per-result object files.
OBJECT_FORMAT = "repro.result/1"


@dataclass(frozen=True)
class StoreEntry:
    """One stored result, as listed by ``repro cache ls``."""

    key: str
    name: str
    fn: str
    wall_time: float
    created: float
    size_bytes: int
    has_arrays: bool


def atomic_write(path: Path, writer: Callable[[Path], None]) -> None:
    """Write via a sibling temp file and ``os.replace`` so concurrent
    readers never observe a partial file.

    The temp name includes the pid plus a random tag so concurrent
    writers of the same object race only on the final rename, where
    last-write-wins is safe.
    """
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{os.urandom(4).hex()}.tmp")
    try:
        writer(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def encode_record(scenario: Scenario, result: SweepResult, key: str,
                  salt: str) -> tuple[dict, dict[str, np.ndarray]]:
    """Object-file record of *result*, plus its array side table.

    Raises :class:`UnserializableError` when the scenario or its value
    cannot be encoded (the stores then treat the run as uncacheable).
    """
    arrays: dict[str, np.ndarray] = {}
    record = {
        "format": OBJECT_FORMAT,
        "key": key,
        "salt": salt,
        "scenario": {
            "name": scenario.name,
            "fn": callable_spec(scenario.fn),
            "params": to_jsonable(dict(scenario.params), arrays),
            "seed": to_jsonable(scenario.seed, arrays),
            "rng_param": scenario.rng_param,
            "seed_param": scenario.seed_param,
        },
        "value": to_jsonable(result.value, arrays),
        "wall_time": result.wall_time,
        "created": time.time(),
        "has_arrays": bool(arrays),
    }
    return record, arrays


def write_object(object_path: Path, payload_path: Path, record: dict,
                 arrays: dict[str, np.ndarray]) -> None:
    """Persist an encoded record (and payload, if any) atomically."""
    object_path.parent.mkdir(parents=True, exist_ok=True)
    if arrays:
        def write_npz(path: Path) -> None:
            # A file handle stops savez from appending ".npz" to the
            # temp name, keeping the atomic rename simple.
            with open(path, "wb") as fh:
                np.savez_compressed(fh, **arrays)

        atomic_write(payload_path, write_npz)
    atomic_write(
        object_path,
        lambda path: path.write_text(json.dumps(record, indent=1)))


def read_record(object_path: Path) -> dict | None:
    """The decoded JSON record of an object file, or ``None`` for a
    missing/torn/foreign file."""
    try:
        record = json.loads(object_path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(record, dict) or record.get("format") != OBJECT_FORMAT:
        return None
    return record


def load_result(object_path: Path, payload_path: Path,
                scenario: Scenario) -> SweepResult | None:
    """Decode a stored result, or ``None`` (a cache miss)."""
    record = read_record(object_path)
    if record is None:
        return None
    arrays = None
    try:
        if record.get("has_arrays"):
            with np.load(payload_path, allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in npz.files}
        value = from_jsonable(record["value"], arrays)
    except Exception:
        # Torn write, missing/corrupt payload, or an entry written
        # against renamed code (stale import path, unpicklable blob):
        # treat as absent; the scenario re-executes and overwrites the
        # entry.
        return None
    return SweepResult(scenario=scenario, value=value,
                       wall_time=float(record.get("wall_time", 0.0)),
                       cached=True)


def read_entry(object_path: Path, payload_path: Path) -> StoreEntry | None:
    """The :class:`StoreEntry` view of an object file, or ``None``."""
    record = read_record(object_path)
    if record is None:
        return None
    try:
        size = object_path.stat().st_size
        if payload_path.exists():
            size += payload_path.stat().st_size
    except OSError:
        # The object was evicted between the read and the stat (a GC
        # running in another process): report it gone.
        return None
    return StoreEntry(
        key=record.get("key", object_path.stem),
        name=record.get("scenario", {}).get("name", "?"),
        fn=record.get("scenario", {}).get("fn", "?"),
        wall_time=float(record.get("wall_time", 0.0)),
        created=float(record.get("created", 0.0)),
        size_bytes=size,
        has_arrays=bool(record.get("has_arrays")))


def entry_meta(entry: StoreEntry) -> dict:
    """Index-journal line payload for *entry*."""
    return {"name": entry.name, "fn": entry.fn,
            "wall_time": entry.wall_time, "created": entry.created}


def delete_object(object_path: Path, payload_path: Path) -> tuple[int, int]:
    """Remove one object's files; returns ``(entries, bytes)`` freed.

    The JSON record goes first so a concurrent reader either sees the
    complete pair or a straight miss - never a record whose payload
    has already vanished mid-decode being counted as corruption.
    """
    removed = 0
    freed = 0
    for path in (object_path, payload_path):
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            continue
        freed += size
        if path is object_path:
            removed = 1
    return removed, freed
