"""Content-addressed result store: the campaign layer's persistence.

Every :class:`~repro.core.scenario.Scenario` has a *content address* -
a SHA-256 over its canonical encoding::

    key = sha256({fn qualname, params, seed, rng/seed conventions, salt})

where *salt* defaults to ``repro-<package version>`` so a code release
invalidates old results wholesale (pass an explicit salt to pin or
partition a campaign).  Results are stored one file pair per key:

.. code-block:: text

    <cache root>/
        index.json              derived metadata (rebuildable)
        objects/<key>.json      scenario echo + encoded value + timings
        objects/<key>.npz       NumPy array payloads (only if any)
        reports/<name>.txt      rendered experiment reports (CLI)

The object files are the source of truth; ``index.json`` is a
convenience view for ``repro cache ls`` and is rebuilt on demand, so a
campaign interrupted mid-write never corrupts previously stored
results (all writes are atomic rename).

Scenarios are only cacheable when they are *deterministic on paper*:
a scenario that injects entropy (``rng_param``/``seed_param`` with
``seed=None``) or whose function/params cannot be encoded (lambdas)
is silently treated as uncacheable and simply always executes.

The cache root resolves, in order: explicit argument, the
``REPRO_CACHE_DIR`` environment variable, ``~/.cache/repro``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro import __version__
from repro.core.scenario import Scenario, SweepResult
from repro.core.serialization import (
    UnserializableError,
    callable_spec,
    from_jsonable,
    stable_hash,
    to_jsonable,
)

#: format marker of the per-result object files.
OBJECT_FORMAT = "repro.result/1"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def default_salt() -> str:
    """Code-version salt baked into every content address."""
    return f"repro-{__version__}"


@dataclass(frozen=True)
class StoreEntry:
    """One stored result, as listed by ``repro cache ls``."""

    key: str
    name: str
    fn: str
    wall_time: float
    created: float
    size_bytes: int
    has_arrays: bool


class ResultStore:
    """Content-addressed store of :class:`SweepResult` values.

    Args:
        root: cache directory (created lazily on first write); defaults
            to :func:`default_cache_dir`.
        salt: hash-key salt; defaults to :func:`default_salt`.

    Attributes:
        hits / misses: lookup counters of this store instance -
            ``misses`` equals the number of scenarios that had to
            execute, which is what the CLI's ``executed=N`` line and
            the CI cache-hit smoke job report.
    """

    def __init__(self, root: str | os.PathLike | None = None, *,
                 salt: str | None = None):
        self.root = Path(root).expanduser() if root is not None \
            else default_cache_dir()
        self.salt = salt if salt is not None else default_salt()
        self.hits = 0
        self.misses = 0
        #: in-memory index entries, loaded lazily on first write.
        self._index: dict[str, dict] | None = None

    # -- layout -------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def reports_dir(self) -> Path:
        return self.root / "reports"

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.json"

    def _payload_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.npz"

    # -- keys ---------------------------------------------------------

    def scenario_key(self, scenario: Scenario) -> str | None:
        """Content address of *scenario*, or ``None`` if uncacheable.

        Uncacheable means opted out (``Scenario.cache=False``),
        nondeterministic (entropy injection with no seed) or
        unencodable (lambda function / exotic params).
        """
        if not scenario.cache:
            return None
        if scenario.seed is None and (scenario.rng_param
                                      or scenario.seed_param):
            return None
        key_params = scenario.key_params
        if key_params is None:
            key_params = scenario.params
        try:
            payload = {
                "fn": callable_spec(scenario.fn),
                "params": dict(key_params),
                "seed": scenario.seed,
                "rng_param": scenario.rng_param,
                "seed_param": scenario.seed_param,
                "salt": self.salt,
            }
            return stable_hash(payload)
        except UnserializableError:
            return None

    # -- read path ----------------------------------------------------

    def contains(self, scenario: Scenario) -> bool:
        key = self.scenario_key(scenario)
        return key is not None and self._object_path(key).exists()

    def get(self, scenario: Scenario,
            key: str | None = None) -> SweepResult | None:
        """Stored result of *scenario*, or ``None`` (counted as a
        miss - i.e. the scenario will have to execute)."""
        if key is None:
            key = self.scenario_key(scenario)
        result = self._load(key, scenario) if key is not None else None
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def _load(self, key: str, scenario: Scenario) -> SweepResult | None:
        path = self._object_path(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if record.get("format") != OBJECT_FORMAT:
            return None
        arrays = None
        payload = self._payload_path(key)
        try:
            if record.get("has_arrays"):
                with np.load(payload, allow_pickle=False) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            value = from_jsonable(record["value"], arrays)
        except Exception:
            # Torn write, missing/corrupt payload, or an entry written
            # against renamed code (stale import path, unpicklable
            # blob): treat as absent; the scenario re-executes and
            # overwrites the entry.
            return None
        return SweepResult(scenario=scenario, value=value,
                           wall_time=float(record.get("wall_time", 0.0)),
                           cached=True)

    # -- write path ---------------------------------------------------

    def put(self, scenario: Scenario, result: SweepResult,
            key: str | None = None) -> str | None:
        """Persist *result* under *scenario*'s content address.

        Returns the key, or ``None`` when the scenario (or its value)
        is uncacheable - the campaign then simply runs uncached.
        """
        if key is None:
            key = self.scenario_key(scenario)
        if key is None:
            return None
        arrays: dict[str, np.ndarray] = {}
        try:
            record = {
                "format": OBJECT_FORMAT,
                "key": key,
                "salt": self.salt,
                "scenario": {
                    "name": scenario.name,
                    "fn": callable_spec(scenario.fn),
                    "params": to_jsonable(dict(scenario.params), arrays),
                    "seed": to_jsonable(scenario.seed, arrays),
                    "rng_param": scenario.rng_param,
                    "seed_param": scenario.seed_param,
                },
                "value": to_jsonable(result.value, arrays),
                "wall_time": result.wall_time,
                "created": time.time(),
                "has_arrays": bool(arrays),
            }
        except UnserializableError:
            return None
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        if arrays:
            def write_npz(path: Path) -> None:
                # A file handle stops savez from appending ".npz" to
                # the temp name, keeping the atomic rename simple.
                with open(path, "wb") as fh:
                    np.savez_compressed(fh, **arrays)

            self._atomic_write(self._payload_path(key), write_npz)
        self._atomic_write(
            self._object_path(key),
            lambda path: path.write_text(json.dumps(record, indent=1)))
        self._index_add(key, {"name": scenario.name,
                              "fn": record["scenario"]["fn"],
                              "wall_time": result.wall_time,
                              "created": record["created"]})
        return key

    @staticmethod
    def _atomic_write(path: Path, writer) -> None:
        tmp = path.with_name(path.name + ".tmp")
        writer(tmp)
        os.replace(tmp, path)

    # -- maintenance --------------------------------------------------

    def entries(self) -> list[StoreEntry]:
        """All stored results (scanned from the object files)."""
        out = []
        if not self.objects_dir.is_dir():
            return out
        for path in sorted(self.objects_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if record.get("format") != OBJECT_FORMAT:
                continue
            key = record.get("key", path.stem)
            size = path.stat().st_size
            payload = self._payload_path(key)
            if payload.exists():
                size += payload.stat().st_size
            out.append(StoreEntry(
                key=key,
                name=record.get("scenario", {}).get("name", "?"),
                fn=record.get("scenario", {}).get("fn", "?"),
                wall_time=float(record.get("wall_time", 0.0)),
                created=float(record.get("created", 0.0)),
                size_bytes=size,
                has_arrays=bool(record.get("has_arrays"))))
        return out

    def _index_add(self, key: str, meta: dict) -> None:
        """Incrementally update ``index.json`` (no object-dir rescan:
        checkpoint cost must not grow with the store size)."""
        if self._index is None:
            self._index = self._load_index_entries()
        self._index[key] = meta
        index = {"format": "repro.index/1", "salt": self.salt,
                 "entries": self._index}
        self.root.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self.index_path,
            lambda path: path.write_text(json.dumps(index, indent=1)))

    def _load_index_entries(self) -> dict[str, dict]:
        try:
            index = json.loads(self.index_path.read_text())
            entries = index.get("entries", {})
            if isinstance(entries, dict):
                return entries
        except (OSError, ValueError):
            pass
        # Missing or corrupt index: rebuild once from the object files.
        return {e.key: {"name": e.name, "fn": e.fn,
                        "wall_time": e.wall_time, "created": e.created}
                for e in self.entries()}

    def clear(self) -> int:
        """Delete all stored results (reports are kept); returns the
        number of entries removed."""
        removed = 0
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            for path in self.objects_dir.glob("*.npz"):
                path.unlink(missing_ok=True)
        self.index_path.unlink(missing_ok=True)
        self._index = None
        return removed

    # -- rendered reports (CLI) ---------------------------------------

    def save_report(self, name: str, text: str) -> Path:
        self.reports_dir.mkdir(parents=True, exist_ok=True)
        path = self.reports_dir / f"{name}.txt"
        self._atomic_write(path, lambda p: p.write_text(text))
        return path

    def load_reports(self) -> Iterator[tuple[str, str]]:
        if not self.reports_dir.is_dir():
            return
        for path in sorted(self.reports_dir.glob("*.txt")):
            yield path.stem, path.read_text()
