"""Content-addressed result store: the campaign layer's persistence.

Every :class:`~repro.core.scenario.Scenario` has a *content address* -
a SHA-256 over its canonical encoding::

    key = sha256({fn qualname, params, seed, rng/seed conventions, salt})

where *salt* defaults to ``repro-<package version>`` so a code release
invalidates old results wholesale (pass an explicit salt to pin or
partition a campaign).  Results are stored one file pair per key:

.. code-block:: text

    <cache root>/
        index.jsonl             append-only journal (rebuildable)
        objects/<key>.json      scenario echo + encoded value + timings
        objects/<key>.npz       NumPy array payloads (only if any)
        reports/<name>.txt      rendered experiment reports (CLI)

The object files are the source of truth; ``index.jsonl`` is a derived
convenience view for ``repro cache ls``.  Each checkpoint *appends*
one line to the journal (an O(1) write - checkpoint cost does not grow
with the store size), and :meth:`ResultStore.entries` compacts the
journal back to one line per live key.  All object writes are atomic
renames, so a campaign interrupted mid-write never corrupts previously
stored results.

Scenarios are only cacheable when they are *deterministic on paper*:
a scenario that injects entropy (``rng_param``/``seed_param`` with
``seed=None``) or whose function/params cannot be encoded (lambdas)
is silently treated as uncacheable and simply always executes.

The cache root resolves, in order: explicit argument, the
``REPRO_CACHE_DIR`` environment variable, ``~/.cache/repro``.

For many concurrent writer processes (queue workers sharing one
cache), use :class:`repro.campaign.shard.ShardedResultStore` - the
same contract over a prefix-sharded layout with per-shard locking.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro import __version__
from repro.campaign.objects import (
    OBJECT_FORMAT,
    StoreEntry,
    atomic_write,
    delete_object,
    encode_record,
    entry_meta,
    load_result,
    read_entry,
    write_object,
)
from repro.core.scenario import Scenario, SweepResult
from repro.core.serialization import (
    UnserializableError,
    callable_spec,
    stable_hash,
)
from repro.obs import metrics as _metrics

# Process-wide cache traffic, aggregated across every store instance
# (the per-instance hits/misses attributes below stay authoritative
# for the CLI's executed=N accounting).
_HITS = _metrics.REGISTRY.counter("campaign.store.hits")
_MISSES = _metrics.REGISTRY.counter("campaign.store.misses")
_PUTS = _metrics.REGISTRY.counter("campaign.store.puts")

__all__ = ["OBJECT_FORMAT", "INDEX_FORMAT", "ResultStore", "StoreEntry",
           "default_cache_dir", "default_salt"]

#: format marker of the index journal's header line.
INDEX_FORMAT = "repro.index/2"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def default_salt() -> str:
    """Code-version salt baked into every content address."""
    return f"repro-{__version__}"


class ResultStore:
    """Content-addressed store of :class:`SweepResult` values.

    Args:
        root: cache directory (created lazily on first write); defaults
            to :func:`default_cache_dir`.
        salt: hash-key salt; defaults to :func:`default_salt`.

    Attributes:
        hits / misses: lookup counters of this store instance -
            ``misses`` equals the number of scenarios that had to
            execute, which is what the CLI's ``executed=N`` line and
            the CI cache-hit smoke job report.
        progress_hook / preempt_hook: optional callables the queue
            worker attaches; :class:`~repro.campaign.runner.
            CampaignRunner` picks them up to report per-scenario
            progress and to honor graceful preemption without every
            harness having to thread new arguments through.
    """

    def __init__(self, root: str | os.PathLike | None = None, *,
                 salt: str | None = None):
        self.root = Path(root).expanduser() if root is not None \
            else default_cache_dir()
        self.salt = salt if salt is not None else default_salt()
        self.hits = 0
        self.misses = 0
        #: queue-worker hooks (see class docstring).
        self.progress_hook: Callable[[Any], None] | None = None
        self.preempt_hook: Callable[[], bool] | None = None

    # -- layout -------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def reports_dir(self) -> Path:
        return self.root / "reports"

    @property
    def index_path(self) -> Path:
        return self.root / "index.jsonl"

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.json"

    def _payload_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.npz"

    def _object_files(self) -> Iterator[Path]:
        """Every object record file, in deterministic order."""
        if self.objects_dir.is_dir():
            yield from sorted(self.objects_dir.glob("*.json"))

    # -- keys ---------------------------------------------------------

    def scenario_key(self, scenario: Scenario) -> str | None:
        """Content address of *scenario*, or ``None`` if uncacheable.

        Uncacheable means opted out (``Scenario.cache=False``),
        nondeterministic (entropy injection with no seed) or
        unencodable (lambda function / exotic params).
        """
        if not scenario.cache:
            return None
        if scenario.seed is None and (scenario.rng_param
                                      or scenario.seed_param):
            return None
        key_params = scenario.key_params
        if key_params is None:
            key_params = scenario.params
        try:
            payload = {
                "fn": callable_spec(scenario.fn),
                "params": dict(key_params),
                "seed": scenario.seed,
                "rng_param": scenario.rng_param,
                "seed_param": scenario.seed_param,
                "salt": self.salt,
            }
            return stable_hash(payload)
        except UnserializableError:
            return None

    # -- read path ----------------------------------------------------

    def contains(self, scenario: Scenario) -> bool:
        key = self.scenario_key(scenario)
        return key is not None and self._object_path(key).exists()

    def get(self, scenario: Scenario,
            key: str | None = None) -> SweepResult | None:
        """Stored result of *scenario*, or ``None`` (counted as a
        miss - i.e. the scenario will have to execute)."""
        if key is None:
            key = self.scenario_key(scenario)
        result = None
        if key is not None:
            result = load_result(self._object_path(key),
                                 self._payload_path(key), scenario)
        if result is None:
            self.misses += 1
            _MISSES.inc()
        else:
            self.hits += 1
            _HITS.inc()
        return result

    # -- write path ---------------------------------------------------

    def put(self, scenario: Scenario, result: SweepResult,
            key: str | None = None) -> str | None:
        """Persist *result* under *scenario*'s content address.

        Returns the key, or ``None`` when the scenario (or its value)
        is uncacheable - the campaign then simply runs uncached.
        """
        if key is None:
            key = self.scenario_key(scenario)
        if key is None:
            return None
        try:
            record, arrays = encode_record(scenario, result, key, self.salt)
        except UnserializableError:
            return None
        write_object(self._object_path(key), self._payload_path(key),
                     record, arrays)
        _PUTS.inc()
        self._index_add(key, {"name": scenario.name,
                              "fn": record["scenario"]["fn"],
                              "wall_time": result.wall_time,
                              "created": record["created"]})
        return key

    # -- index journal ------------------------------------------------
    #
    # One line per checkpoint, appended - never rewritten - so the
    # cost of a checkpoint is O(1) regardless of how many results the
    # store already holds.  entries() compacts the journal (dedup by
    # key, drop evicted keys) from the object files, which are the
    # source of truth.

    def _index_add(self, key: str, meta: dict) -> None:
        line = json.dumps({"key": key, **meta}, sort_keys=True)
        self.root.mkdir(parents=True, exist_ok=True)
        header = ""
        if not self.index_path.exists():
            header = json.dumps({"format": INDEX_FORMAT,
                                 "salt": self.salt}) + "\n"
        with open(self.index_path, "a", encoding="utf-8") as fh:
            fh.write(header + line + "\n")

    def index_entries(self) -> dict[str, dict]:
        """Journal view ``{key: meta}`` (last write per key wins);
        torn or foreign lines are skipped."""
        out: dict[str, dict] = {}
        try:
            text = self.index_path.read_text(encoding="utf-8")
        except OSError:
            return out
        for line in text.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) or "key" not in record:
                continue
            meta = dict(record)
            out[meta.pop("key")] = meta
        return out

    def _compact_index(self, entries: Iterable[StoreEntry]) -> None:
        """Rewrite the journal as one line per live entry."""
        lines = [json.dumps({"format": INDEX_FORMAT, "salt": self.salt})]
        lines += [json.dumps({"key": e.key, **entry_meta(e)},
                             sort_keys=True) for e in entries]
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write(self.index_path, lambda path: path.write_text(
            "\n".join(lines) + "\n", encoding="utf-8"))

    # -- maintenance --------------------------------------------------

    def entries(self) -> list[StoreEntry]:
        """All stored results (scanned from the object files); as a
        side effect the index journal is compacted to match."""
        out = []
        for path in self._object_files():
            entry = read_entry(path, self._payload_path(path.stem))
            if entry is not None:
                out.append(entry)
        if self.index_path.exists():
            self._compact_index(out)
        return out

    def clear(self) -> tuple[int, int]:
        """Delete all stored results (reports are kept).

        Returns:
            ``(entries, bytes)`` - the number of results removed and
            the total bytes freed (object records, array payloads and
            the index journal).
        """
        removed = 0
        freed = 0
        for path in list(self._object_files()):
            n, b = delete_object(path, self._payload_path(path.stem))
            removed += n
            freed += b
        try:
            freed += self.index_path.stat().st_size
            self.index_path.unlink()
        except OSError:
            pass
        return removed, freed

    # -- rendered reports (CLI) ---------------------------------------

    def save_report(self, name: str, text: str) -> Path:
        self.reports_dir.mkdir(parents=True, exist_ok=True)
        path = self.reports_dir / f"{name}.txt"
        atomic_write(path, lambda p: p.write_text(text))
        return path

    def load_reports(self) -> Iterator[tuple[str, str]]:
        if not self.reports_dir.is_dir():
            return
        for path in sorted(self.reports_dir.glob("*.txt")):
            yield path.stem, path.read_text()
