"""Persistent on-disk job queue + worker pool for experiment campaigns.

``python -m repro run`` executes one campaign in the foreground; this
module turns campaigns into a *service*: submit N of them as durable
JSON job specs, then run any number of worker processes - on one
machine or many sharing a filesystem - that steal jobs from the queue,
execute them through the campaign layer (so every scenario checkpoint
lands in the shared :class:`~repro.campaign.shard.ShardedResultStore`)
and report heartbeat progress/ETA while they run.

Queue layout (all records are format-tagged JSON, written atomically)::

    <queue root>/
        pending/<job id>.json     submitted specs, oldest id first
        claimed/<job id>.json     spec, while a worker owns the job
        done/<job id>.json        outcome: executed/cached/wall/worker
        failed/<job id>.json      outcome + error text
        heartbeats/<job id>.json  live progress: done/total/ETA/worker

**Work stealing** needs no locks: claiming a job is a single
``os.replace`` of its spec from ``pending/`` to ``claimed/`` - exactly
one of any number of racing workers wins the rename, the others get
``FileNotFoundError`` and move on to the next job.

**Graceful preemption**: the worker loop converts SIGINT/SIGTERM into
a preempt flag that the campaign runner polls between scenario
checkpoints (via the store's ``preempt_hook``).  Completed scenarios
are already in the store, the in-flight remainder raises
:class:`~repro.campaign.runner.CampaignPreempted`, and the worker puts
the job back into ``pending/`` - re-running it executes only what is
missing.  A worker that dies without cleanup leaves its job in
``claimed/`` with a cooling heartbeat; :meth:`JobQueue.reclaim_stale`
(run when a ``repro queue work`` worker starts) returns such jobs to
the queue.

Job ids sort oldest-first (millisecond timestamp prefix), carry the
experiment name for humans, and end in a random nonce so identical
specs can be queued repeatedly.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.campaign.runner import (
    CampaignPreempted,
    CampaignProgress,
)
from repro.campaign.shard import ShardedResultStore, is_sharded_layout
from repro.campaign.store import ResultStore, default_cache_dir
from repro.campaign.objects import atomic_write
from repro.core.serialization import dump_tagged, load_tagged
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = ["JOB_FORMAT", "HEARTBEAT_FORMAT", "OUTCOME_FORMAT",
           "JobQueue", "JobSpec", "default_queue_dir", "open_store",
           "run_job", "work_loop"]

#: format markers of the queue's on-disk records.
JOB_FORMAT = "repro.job/1"
HEARTBEAT_FORMAT = "repro.heartbeat/1"
OUTCOME_FORMAT = "repro.job-outcome/1"

#: job lifecycle directories, in display order.
STATES = ("pending", "claimed", "done", "failed")

#: a claimed job whose heartbeat is older than this is presumed dead
#: and eligible for :meth:`JobQueue.reclaim_stale`.
DEFAULT_STALE_AFTER = 300.0


def default_queue_dir() -> Path:
    """``$REPRO_QUEUE_DIR`` or ``<cache root>/queue``."""
    env = os.environ.get("REPRO_QUEUE_DIR")
    if env:
        return Path(env).expanduser()
    return default_cache_dir() / "queue"


def open_store(root: str | os.PathLike | None, *,
               sharded: bool | None = None,
               default_sharded: bool = True,
               salt: str | None = None) -> ResultStore:
    """Open the right store flavor for *root*.

    ``sharded=None`` autodetects: an existing sharded layout opens
    sharded, an existing classic layout opens classic, and a fresh
    directory follows *default_sharded* - ``True`` for the queue
    (concurrent workers are the expected case there), ``False`` for
    the single-process ``repro run``/``cache`` commands.
    """
    if sharded is None:
        probe = Path(root).expanduser() if root is not None \
            else default_cache_dir()
        if is_sharded_layout(probe):
            sharded = True
        elif (probe / "objects").is_dir():
            sharded = False
        else:
            sharded = default_sharded
    cls = ShardedResultStore if sharded else ResultStore
    return cls(root, salt=salt) if salt is not None else cls(root)


@dataclass(frozen=True)
class JobSpec:
    """One queued campaign: an experiment plus its execution knobs.

    The fields mirror :class:`~repro.experiments.registry.
    ExperimentContext` (the queue is a durable, deferred ``repro
    run``).  ``modules`` lists extra modules the worker imports before
    resolving the experiment, so user-defined ``@experiment``
    registrations travel with the job.
    """

    experiment: str
    full: bool = False
    seed: int | None = None
    processes: int | None = None
    chunk_bits: int | None = None
    batch_points: bool = True
    modules: tuple[str, ...] = ()
    submitted: float = field(default=0.0)

    def to_json(self) -> str:
        return dump_tagged(JOB_FORMAT, self, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        spec = load_tagged(JOB_FORMAT, text)
        if not isinstance(spec, cls):
            raise ValueError(f"job document decodes to "
                             f"{type(spec).__name__}, not JobSpec")
        return spec


class JobQueue:
    """A durable, multi-writer campaign queue rooted at a directory.

    Every operation is safe against concurrent queues on the same
    root: submissions are atomic writes, claims are atomic renames,
    and all reads tolerate files vanishing mid-listing (some other
    worker got there first).
    """

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root).expanduser() if root is not None \
            else default_queue_dir()

    def state_dir(self, state: str) -> Path:
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}")
        return self.root / state

    @property
    def heartbeats_dir(self) -> Path:
        return self.root / "heartbeats"

    # -- submission ---------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Enqueue *spec*; returns its job id."""
        now = time.time()
        spec = replace(spec, submitted=now)
        job_id = (f"{int(now * 1000):013d}-{spec.experiment}-"
                  f"{os.urandom(4).hex()}")
        pending = self.state_dir("pending")
        pending.mkdir(parents=True, exist_ok=True)
        atomic_write(pending / f"{job_id}.json",
                     lambda path: path.write_text(spec.to_json()))
        return job_id

    # -- listing ------------------------------------------------------

    def job_ids(self, state: str) -> list[str]:
        directory = self.state_dir(state)
        if not directory.is_dir():
            return []
        return sorted(path.stem for path in directory.glob("*.json"))

    def load(self, state: str, job_id: str) -> JobSpec | None:
        """The spec of a job in *state*, or ``None`` (gone/torn)."""
        try:
            text = (self.state_dir(state) / f"{job_id}.json").read_text()
            return JobSpec.from_json(text)
        except (OSError, ValueError):
            return None

    def jobs(self, state: str) -> Iterator[tuple[str, JobSpec]]:
        """``(job id, spec)`` pairs in *state*, oldest first."""
        for job_id in self.job_ids(state):
            spec = self.load(state, job_id)
            if spec is not None:
                yield job_id, spec

    def outcome(self, job_id: str) -> dict | None:
        """The outcome record of a finished job (done or failed)."""
        for state in ("done", "failed"):
            try:
                text = (self.state_dir(state) / f"{job_id}.json").read_text()
                return load_tagged(OUTCOME_FORMAT, text)
            except (OSError, ValueError):
                continue
        return None

    # -- the work-stealing claim --------------------------------------

    def claim(self, worker: str) -> tuple[str, JobSpec] | None:
        """Atomically take the oldest pending job, or ``None``.

        Racing workers each attempt the rename; exactly one wins per
        job, the rest silently try the next id.
        """
        claimed_dir = self.state_dir("claimed")
        for job_id in self.job_ids("pending"):
            claimed_dir.mkdir(parents=True, exist_ok=True)
            src = self.state_dir("pending") / f"{job_id}.json"
            dst = claimed_dir / f"{job_id}.json"
            try:
                os.replace(src, dst)
            except FileNotFoundError:
                continue  # another worker stole it
            spec = self.load("claimed", job_id)
            if spec is None:
                # Torn submission: park it in failed/ so it cannot
                # wedge the queue head forever.
                self._write_outcome("failed", job_id, {
                    "experiment": "?", "state": "failed", "worker": worker,
                    "error": "unreadable job spec", "finished": time.time()})
                dst.unlink(missing_ok=True)
                continue
            self.heartbeat(job_id, worker=worker, progress=None,
                           note="claimed")
            return job_id, spec
        return None

    def requeue(self, job_id: str) -> bool:
        """Return a claimed job to pending (preemption/crash recovery)."""
        try:
            os.replace(self.state_dir("claimed") / f"{job_id}.json",
                       self.state_dir("pending") / f"{job_id}.json")
        except FileNotFoundError:
            return False
        (self.heartbeats_dir / f"{job_id}.json").unlink(missing_ok=True)
        return True

    # -- completion ---------------------------------------------------

    def _write_outcome(self, state: str, job_id: str,
                       outcome: dict) -> None:
        directory = self.state_dir(state)
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write(directory / f"{job_id}.json", lambda path:
                     path.write_text(dump_tagged(OUTCOME_FORMAT,
                                                 outcome, indent=1)))

    def _conclude(self, state: str, job_id: str, outcome: dict) -> None:
        self._write_outcome(state, job_id, outcome)
        (self.state_dir("claimed") / f"{job_id}.json").unlink(
            missing_ok=True)
        (self.heartbeats_dir / f"{job_id}.json").unlink(missing_ok=True)

    def finish(self, job_id: str, outcome: dict) -> None:
        self._conclude("done", job_id, dict(outcome, state="done"))

    def fail(self, job_id: str, outcome: dict) -> None:
        self._conclude("failed", job_id, dict(outcome, state="failed"))

    # -- heartbeats ---------------------------------------------------

    def heartbeat(self, job_id: str, *, worker: str,
                  progress: CampaignProgress | None,
                  note: str = "running") -> None:
        """Record live progress of a claimed job (atomic overwrite)."""
        payload: dict[str, Any] = {
            "worker": worker, "time": time.time(), "note": note,
            "pid": os.getpid()}
        if progress is not None:
            payload.update(done=progress.done, total=progress.total,
                           executed=progress.executed,
                           cached=progress.cached,
                           eta_seconds=progress.eta_seconds,
                           last_name=progress.last_name)
            if progress.stage_walls:
                payload["stages"] = dict(progress.stage_walls)
        counters = _metrics.REGISTRY.counter_values()
        if counters:
            payload["counters"] = counters
        self.heartbeats_dir.mkdir(parents=True, exist_ok=True)
        atomic_write(self.heartbeats_dir / f"{job_id}.json", lambda path:
                     path.write_text(dump_tagged(HEARTBEAT_FORMAT,
                                                 payload, indent=1)))

    def read_heartbeat(self, job_id: str) -> dict | None:
        try:
            text = (self.heartbeats_dir / f"{job_id}.json").read_text()
            return load_tagged(HEARTBEAT_FORMAT, text)
        except (OSError, ValueError):
            return None

    def reclaim_stale(self, *, stale_after: float = DEFAULT_STALE_AFTER,
                      now: float | None = None) -> list[str]:
        """Requeue claimed jobs whose worker stopped heartbeating.

        A job with no heartbeat at all uses its claim file's mtime, so
        a worker that died between rename and first heartbeat is still
        recovered.
        """
        if now is None:
            now = time.time()
        reclaimed = []
        for job_id in self.job_ids("claimed"):
            beat = self.read_heartbeat(job_id)
            if beat is not None:
                last = float(beat.get("time", 0.0))
            else:
                try:
                    last = (self.state_dir("claimed") /
                            f"{job_id}.json").stat().st_mtime
                except OSError:
                    continue
            if now - last > stale_after and self.requeue(job_id):
                reclaimed.append(job_id)
        return reclaimed

    # -- administration -----------------------------------------------

    def counts(self) -> dict[str, int]:
        return {state: len(self.job_ids(state)) for state in STATES}

    def drain(self) -> dict[str, int]:
        """Empty the queue (all states + heartbeats); returns the
        per-state counts removed.  The result store is untouched."""
        removed = {}
        for state in STATES:
            ids = self.job_ids(state)
            for job_id in ids:
                (self.state_dir(state) / f"{job_id}.json").unlink(
                    missing_ok=True)
            removed[state] = len(ids)
        if self.heartbeats_dir.is_dir():
            for path in self.heartbeats_dir.glob("*.json"):
                path.unlink(missing_ok=True)
        return removed


# -- the worker -------------------------------------------------------

def _import_job_modules(spec: JobSpec) -> None:
    import importlib

    for module in spec.modules:
        importlib.import_module(module)


def run_job(queue: JobQueue, job_id: str, spec: JobSpec,
            store: ResultStore, *, worker: str = "worker") -> dict:
    """Execute one claimed job; returns its outcome record.

    The job's experiment runs through the normal campaign path with
    *store* attached, so scenario checkpoints, cache hits and the
    rendered report all behave exactly like ``repro run``.  The
    store's ``preempt_hook`` (installed by the caller) is honored via
    :class:`CampaignPreempted`: the job goes back to pending with its
    completed scenarios already checkpointed.
    """
    from repro.experiments.registry import ExperimentContext, get_experiment

    def on_progress(progress: CampaignProgress) -> None:
        queue.heartbeat(job_id, worker=worker, progress=progress)

    store.progress_hook = on_progress
    store.hits = store.misses = 0
    outcome: dict[str, Any] = {"experiment": spec.experiment,
                               "worker": worker, "job_id": job_id}
    troot = None
    start = time.perf_counter()
    try:
        _import_job_modules(spec)
        experiment = get_experiment(spec.experiment)
        ctx = ExperimentContext(full=spec.full, processes=spec.processes,
                                seed=spec.seed, store=store,
                                chunk_bits=spec.chunk_bits,
                                batch_points=spec.batch_points)
        # Each job runs traced into a fresh tree with fresh metrics:
        # the progress hooks above then carry live per-stage walls
        # into the heartbeat file, and the outcome records the final
        # breakdown for `repro stats`.
        _metrics.REGISTRY.reset()
        with _trace.collect(f"job:{spec.experiment}") as troot:
            text = experiment.run(ctx)
    except CampaignPreempted as exc:
        outcome.update(state="preempted", executed=store.misses,
                       cached=store.hits, requeued=len(exc.remaining),
                       wall=time.perf_counter() - start,
                       stages=_job_stages(troot))
        queue.requeue(job_id)
        return outcome
    except Exception as exc:
        outcome.update(state="failed", error=f"{type(exc).__name__}: {exc}",
                       executed=store.misses, cached=store.hits,
                       wall=time.perf_counter() - start,
                       finished=time.time(), stages=_job_stages(troot))
        queue.fail(job_id, outcome)
        return outcome
    finally:
        store.progress_hook = None
    store.save_report(spec.experiment, text)
    outcome.update(state="done", executed=store.misses, cached=store.hits,
                   wall=time.perf_counter() - start, finished=time.time(),
                   stages=_job_stages(troot),
                   counters=_metrics.REGISTRY.counter_values())
    queue.finish(job_id, outcome)
    return outcome


def _job_stages(troot) -> dict[str, float]:
    """Final per-stage wall breakdown of a traced job (empty when the
    job died before tracing started)."""
    return dict(troot.leaf_walls()) if troot is not None else {}


def _format_outcome(job_id: str, outcome: dict) -> str:
    state = outcome.get("state", "?")
    line = (f"job {job_id} [{outcome.get('experiment', '?')}]: {state} "
            f"executed={outcome.get('executed', 0)} "
            f"cached={outcome.get('cached', 0)} "
            f"wall={outcome.get('wall', 0.0):.3f}s")
    if outcome.get("error"):
        line += f" error={outcome['error']}"
    if state == "preempted":
        line += f" requeued={outcome.get('requeued', 0)}"
    return line


def work_loop(queue: JobQueue, store: ResultStore, *,
              worker: str = "worker",
              follow: bool = False, poll: float = 0.5,
              max_jobs: int | None = None,
              preempt: Callable[[], bool] | None = None,
              stale_after: float = DEFAULT_STALE_AFTER,
              log: Callable[[str], None] | None = None) -> list[dict]:
    """Claim and run jobs until the queue is empty (or *preempt*).

    Args:
        queue / store: the queue to steal from and the (shared) result
            store to campaign through.  Run several ``work_loop``
            processes against the same pair for a worker fleet - the
            sharded store and the rename-based claim make that safe.
        worker: id stamped into heartbeats and outcomes.
        follow: keep polling for new jobs after the queue drains
            (a resident worker) instead of returning.
        poll: idle sleep between claim attempts when following.
        max_jobs: stop after this many jobs (``None`` = unbounded).
        preempt: zero-argument callable; once true, the current job is
            gracefully preempted (checkpoint + requeue) and the loop
            exits.  The CLI wires SIGINT/SIGTERM to this.
        stale_after: heartbeat age after which an abandoned claimed
            job is stolen back on loop entry.
        log: line sink for per-job outcome reports (``None`` = silent).

    Returns:
        The outcome records of every job this worker ran.
    """
    outcomes: list[dict] = []
    store.preempt_hook = preempt
    try:
        for job_id in queue.reclaim_stale(stale_after=stale_after):
            if log:
                log(f"job {job_id}: reclaimed from a stale worker")
        while max_jobs is None or len(outcomes) < max_jobs:
            if preempt is not None and preempt():
                break
            claimed = queue.claim(worker)
            if claimed is None:
                if not follow:
                    break
                time.sleep(poll)
                continue
            job_id, spec = claimed
            outcome = run_job(queue, job_id, spec, store, worker=worker)
            outcomes.append(outcome)
            if log:
                log(_format_outcome(job_id, outcome))
            if outcome.get("state") == "preempted":
                break
    finally:
        store.preempt_hook = None
    return outcomes
