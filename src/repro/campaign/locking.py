"""Advisory inter-process file locks for the campaign stores.

The sharded store serializes *tiny* critical sections (appending one
line to a per-shard index journal, swapping files during GC) across
writer processes.  OS advisory locks are the right primitive for that:

* they are released automatically when the holding process dies, so a
  crashed worker can never wedge the store (no stale-lockfile cleanup
  protocol),
* they cost one ``open`` + one syscall, negligible next to the NPZ
  payload writes they guard,
* they are advisory - readers that do not take the lock (the whole
  read path, which relies on atomic renames instead) are never blocked.

:class:`FileLock` wraps ``fcntl.flock`` on POSIX and ``msvcrt.locking``
on Windows behind one context manager::

    with FileLock(shard_dir / ".lock"):
        append_index_line(...)

Locks are held per *instance*, not per process: two ``FileLock``
objects on the same path in one process do contend (which is what the
store wants - it treats threads like processes).  Instances are not
reentrant.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

try:  # POSIX
    import fcntl

    def _try_lock(fd: int) -> bool:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            return True
        except OSError:
            return False

    def _unlock(fd: int) -> None:
        fcntl.flock(fd, fcntl.LOCK_UN)

except ImportError:  # pragma: no cover - Windows
    import msvcrt

    def _try_lock(fd: int) -> bool:
        try:
            os.lseek(fd, 0, os.SEEK_SET)
            msvcrt.locking(fd, msvcrt.LK_NBLCK, 1)
            return True
        except OSError:
            return False

    def _unlock(fd: int) -> None:
        os.lseek(fd, 0, os.SEEK_SET)
        msvcrt.locking(fd, msvcrt.LK_UNLCK, 1)


class LockTimeout(TimeoutError):
    """The lock could not be acquired within the timeout."""


class FileLock:
    """Exclusive advisory lock on *path* (created if missing).

    Args:
        path: lock-file path; its parent directory is created lazily.
            The file itself carries no data - only the OS lock state.
        timeout: seconds to keep retrying before :class:`LockTimeout`.
            The default is generous because the guarded sections are
            sub-millisecond; a timeout firing indicates a dead-lock
            level bug, not contention.
        poll_interval: sleep between non-blocking attempts.
    """

    def __init__(self, path: str | os.PathLike, *,
                 timeout: float = 30.0, poll_interval: float = 0.005):
        self.path = Path(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "FileLock":
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} is not reentrant")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        deadline = time.monotonic() + self.timeout
        try:
            while not _try_lock(fd):
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not lock {self.path} within "
                        f"{self.timeout:.1f}s")
                time.sleep(self.poll_interval)
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd
        return self

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            _unlock(fd)
        finally:
            os.close(fd)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
