"""Campaign layer: persistent, resumable, scriptable experiment runs.

The paper's point is making mixed-signal system simulation cheap
enough for large design-space exploration; this subsystem makes such
campaigns *incremental*:

* :mod:`repro.campaign.store` - a content-addressed result store
  (JSON index + NPZ payloads) keyed by a stable hash of
  ``(fn qualname, params, seed, code-version salt)``,
* :mod:`repro.campaign.runner` - a resumable drop-in
  :class:`~repro.core.scenario.SweepRunner` that checkpoints every
  scenario result as it completes and re-runs only what is missing,
* :mod:`repro.campaign.cli` - the ``python -m repro`` command line
  driving all experiment harnesses through the campaign layer.
"""

from repro.campaign.runner import CampaignReport, CampaignRunner
from repro.campaign.store import (
    ResultStore,
    StoreEntry,
    default_cache_dir,
    default_salt,
)

__all__ = [
    "CampaignReport",
    "CampaignRunner",
    "ResultStore",
    "StoreEntry",
    "default_cache_dir",
    "default_salt",
]
