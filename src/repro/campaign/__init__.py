"""Campaign layer: persistent, resumable, scriptable experiment runs.

The paper's point is making mixed-signal system simulation cheap
enough for large design-space exploration; this subsystem makes such
campaigns *incremental* and *scale-out*:

* :mod:`repro.campaign.store` - a content-addressed result store
  (append-journal index + NPZ payloads) keyed by a stable hash of
  ``(fn qualname, params, seed, code-version salt)``,
* :mod:`repro.campaign.shard` - the same contract sharded by key
  prefix with per-shard file locks, safe for fleets of concurrent
  writer processes, plus ``merge`` (union caches computed on
  independent machines) and ``gc`` (size/age eviction),
* :mod:`repro.campaign.objects` - the object codec both stores share,
* :mod:`repro.campaign.locking` - the advisory file-lock primitive,
* :mod:`repro.campaign.runner` - a resumable drop-in
  :class:`~repro.core.scenario.SweepRunner` that checkpoints every
  scenario result as it completes, re-runs only what is missing, and
  reports progress/honors preemption for the queue,
* :mod:`repro.campaign.queue` - a durable job queue + work-stealing
  worker loop turning ``repro run`` campaigns into a service
  (``repro queue submit|status|work|drain``),
* :mod:`repro.campaign.cli` - the ``python -m repro`` command line
  driving all experiment harnesses through the campaign layer.
"""

from repro.campaign.locking import FileLock, LockTimeout
from repro.campaign.queue import JobQueue, JobSpec, default_queue_dir
from repro.campaign.runner import (
    CampaignError,
    CampaignPreempted,
    CampaignProgress,
    CampaignReport,
    CampaignRunner,
)
from repro.campaign.shard import ShardedResultStore, is_sharded_layout
from repro.campaign.store import (
    ResultStore,
    StoreEntry,
    default_cache_dir,
    default_salt,
)

__all__ = [
    "CampaignError",
    "CampaignPreempted",
    "CampaignProgress",
    "CampaignReport",
    "CampaignRunner",
    "FileLock",
    "JobQueue",
    "JobSpec",
    "LockTimeout",
    "ResultStore",
    "ShardedResultStore",
    "StoreEntry",
    "default_cache_dir",
    "default_queue_dir",
    "default_salt",
    "is_sharded_layout",
]
