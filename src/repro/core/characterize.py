"""Phase-IV automation: extract behavioral models from the circuit.

The paper builds its Phase-IV integrator model by hand ("the model simply
consists of two coupled differential equations which define the two poles
and the DC gain") and notes its residual mismatch comes from the
unmodeled input-range distortion.  This module automates both steps
against our transistor netlist:

* :func:`fit_two_pole` - least-squares fit of ``G / ((1+s/w1)(1+s/w2))``
  to an AC response,
* :func:`extract_nonlinearity` - static input compression measured by a
  differential DC sweep,
* :func:`build_surrogate` - the combination: a circuit-calibrated
  :class:`~repro.uwb.integrator.CircuitSurrogateIntegrator` (this is the
  "ELDO stand-in" used by the BER and TWR experiments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.circuits import IntegrateDumpDesign, build_id_testbench, \
    default_design
from repro.spice import ac_analysis
from repro.spice.analysis.ac import logspace_freqs
from repro.spice.mna import MnaSystem
from repro.uwb.integrator import (
    CircuitSurrogateIntegrator,
    TwoPoleIntegrator,
    tabulated_nonlinearity,
)

#: Operating-point hints reused by every circuit characterization.
ID_OP_GUESS = {
    "x1.outp": 0.9, "x1.outm": 0.9, "out_intp": 0.9, "out_intm": 0.9,
    "x1.ap": 0.79, "x1.am": 0.79, "x1.pdiop": 1.06, "x1.pdiom": 1.06,
    "x1.vcmfb": 1.15, "x1.x1": 1.1, "x1.s": 0.49, "x1.sref": 0.49,
    "x1.vcmref": 0.9, "x1.tail": 0.15, "vdd": 1.8,
}


@dataclass(frozen=True)
class TwoPoleFit:
    """Result of a two-pole magnitude fit.

    Attributes:
        gain: DC gain (linear).
        fp1_hz / fp2_hz: pole frequencies, ``fp1 <= fp2``.
        rms_error_db: RMS misfit over the fitted band.
    """

    gain: float
    fp1_hz: float
    fp2_hz: float
    rms_error_db: float

    @property
    def gain_db(self) -> float:
        return 20.0 * math.log10(self.gain)

    def magnitude_db(self, freqs) -> np.ndarray:
        """Model magnitude (dB) on a frequency grid."""
        f = np.asarray(freqs, dtype=float)
        return (self.gain_db
                - 10.0 * np.log10(1.0 + (f / self.fp1_hz) ** 2)
                - 10.0 * np.log10(1.0 + (f / self.fp2_hz) ** 2))

    def to_model(self, input_nonlinearity=None) -> TwoPoleIntegrator:
        """The corresponding Phase-IV behavioral integrator."""
        return TwoPoleIntegrator(gain=self.gain, fp1_hz=self.fp1_hz,
                                 fp2_hz=self.fp2_hz,
                                 input_nonlinearity=input_nonlinearity)


def fit_two_pole(freqs, mag_db) -> TwoPoleFit:
    """Fit a DC-gain + two-real-pole magnitude response.

    Args:
        freqs: frequency grid (Hz).
        mag_db: measured magnitude in dB (same length).
    """
    freqs = np.asarray(freqs, dtype=float)
    mag_db = np.asarray(mag_db, dtype=float)
    if len(freqs) != len(mag_db) or len(freqs) < 6:
        raise ValueError("need matching grids with at least 6 points")

    gain0_db = float(mag_db[0])
    below = np.nonzero(mag_db < gain0_db - 3.0)[0]
    f1_0 = freqs[below[0]] if len(below) else freqs[len(freqs) // 2]
    x0 = np.array([gain0_db / 20.0, math.log10(f1_0),
                   math.log10(f1_0) + 3.0])

    def residual(params):
        g_log, f1_log, f2_log = params
        model = (20.0 * g_log
                 - 10.0 * np.log10(1.0 + (freqs / 10.0 ** f1_log) ** 2)
                 - 10.0 * np.log10(1.0 + (freqs / 10.0 ** f2_log) ** 2))
        return model - mag_db

    fit = least_squares(residual, x0)
    g_log, f1_log, f2_log = fit.x
    fp1, fp2 = sorted((10.0 ** f1_log, 10.0 ** f2_log))
    rms = float(np.sqrt(np.mean(fit.fun ** 2)))
    return TwoPoleFit(gain=10.0 ** g_log, fp1_hz=fp1, fp2_hz=fp2,
                      rms_error_db=rms)


def characterize_integrator(design: IntegrateDumpDesign | None = None,
                            f_start: float = 1e3, f_stop: float = 50e9,
                            points_per_decade: int = 10
                            ) -> tuple[TwoPoleFit, np.ndarray, np.ndarray]:
    """AC-characterize the I&D circuit in integrate mode.

    Returns:
        ``(fit, freqs, mag_db)`` - the fit plus the raw AC data (the
        figure-4 curve).
    """
    design = design or default_design()
    tb = build_id_testbench(design, mode="integrate", ac=True)
    freqs = logspace_freqs(f_start, f_stop, points_per_decade)
    ac = ac_analysis(tb, freqs, initial_guess=ID_OP_GUESS)
    mag_db = ac.mag_db("out_intp", "out_intm")
    return fit_two_pole(freqs, mag_db), freqs, mag_db


def extract_nonlinearity(design: IntegrateDumpDesign | None = None,
                         v_max: float = 0.30, points: int = 61
                         ) -> tuple[np.ndarray, np.ndarray, float]:
    """Measure the static differential transfer of the I&D circuit.

    Performs a true differential DC sweep (both inputs move
    symmetrically around the design's input common mode) and returns the
    input-referred compression table.

    Returns:
        ``(vin_grid, f_of_vin, gain0)`` where ``f_of_vin`` is the
        input-referred static characteristic normalized to unit slope at
        the origin (``vout_dc(vin) / gain0``).
    """
    design = design or default_design()
    tb = build_id_testbench(design, mode="integrate")
    system = MnaSystem(tb)
    cm = design.input_cm
    vin_grid = np.linspace(-v_max, v_max, points)
    # Continuation: walk outward from 0 in both directions.
    vout = np.empty(points)
    order = np.argsort(np.abs(vin_grid), kind="stable")
    x = None
    x_center = None
    solved: dict[int, float] = {}
    for rank, idx in enumerate(order):
        v = vin_grid[idx]
        overrides = {"vinp": cm + v / 2.0, "vinm": cm - v / 2.0}
        x0 = x_center if (x is None or rank == 0) else x
        x = system.solve_robust(x0, overrides=overrides)
        if rank == 0:
            x_center = x
        solved[idx] = (system.voltage(x, "out_intp")
                       - system.voltage(x, "out_intm"))
    for idx, val in solved.items():
        vout[idx] = val
    # Slope at the origin from the innermost symmetric pair.
    inner = np.argsort(np.abs(vin_grid))[:3]
    lo, hi = min(inner, key=lambda i: vin_grid[i]), max(
        inner, key=lambda i: vin_grid[i])
    gain0 = (vout[hi] - vout[lo]) / (vin_grid[hi] - vin_grid[lo])
    if gain0 <= 0:
        raise RuntimeError("nonpositive small-signal gain - check the "
                           "operating point")
    return vin_grid, vout / gain0, float(gain0)


def build_surrogate(design: IntegrateDumpDesign | None = None,
                    v_max: float = 0.30) -> CircuitSurrogateIntegrator:
    """Fully automated Phase-IV+: AC fit + measured nonlinearity.

    The returned model is the fast ELDO stand-in: it reproduces the
    circuit's gain, both poles *and* the input compression the paper's
    own hand-written Phase-IV model lacked.
    """
    design = design or default_design()
    fit, _freqs, _mag = characterize_integrator(design)
    vin, f_of_vin, _gain0 = extract_nonlinearity(design, v_max=v_max)
    nonlin = tabulated_nonlinearity(vin, f_of_vin)
    return CircuitSurrogateIntegrator(
        gain=fit.gain, fp1_hz=fit.fp1_hz, fp2_hz=fit.fp2_hz,
        input_nonlinearity=nonlin)
