"""The refinement-flow orchestrator.

:class:`RefinementFlow` captures the paper's working loop:

1. register per-phase implementations of each block,
2. run the *same* testbench with a chosen phase per block
   (substitute-and-play),
3. compare system metrics across phases and account for CPU time.

The flow is testbench-agnostic: it is constructed with a callable
``testbench(implementations: dict[str, Any]) -> Any`` receiving the
instantiated per-block implementations.  ``repro.experiments`` wires it
to the UWB receiver testbenches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.phases import Phase
from repro.core.registry import ModelRegistry


@dataclass
class RunOutcome:
    """One testbench run under a specific phase selection.

    Attributes:
        phase_map: block -> phase used.
        result: whatever the testbench returned.
        cpu_time: wall-clock seconds of the run.
    """

    phase_map: dict[str, Phase]
    result: Any
    cpu_time: float

    def label(self) -> str:
        return ", ".join(f"{b}@{p.name}" for b, p in
                         sorted(self.phase_map.items()))


class RefinementFlow:
    """Substitute-and-play flow driver.

    Args:
        testbench: callable building + running the system testbench from
            a mapping ``block -> implementation instance``.
        registry: the entity/architecture registry (a fresh one is
            created if omitted).
    """

    def __init__(self, testbench: Callable[[Mapping[str, Any]], Any],
                 registry: ModelRegistry | None = None):
        self.testbench = testbench
        self.registry = registry or ModelRegistry()
        self.history: list[RunOutcome] = []

    def register(self, block: str, phase: Phase | int,
                 factory: Callable[[], Any],
                 description: str = "") -> None:
        """Register an implementation (delegates to the registry)."""
        self.registry.register(block, phase, factory,
                               description=description, check_now=False)

    def run(self, baseline_phase: Phase | int = Phase.II,
            refine: Mapping[str, Phase | int] | None = None) -> RunOutcome:
        """Run the testbench with *baseline_phase* everywhere except the
        blocks singled out in *refine* - the paper's "apply the
        transistor level to one block at a time" discipline.

        Returns:
            A :class:`RunOutcome` (also appended to ``self.history``).
        """
        baseline_phase = Phase(baseline_phase)
        refine = {b: Phase(p) for b, p in (refine or {}).items()}
        phase_map: dict[str, Phase] = {}
        implementations: dict[str, Any] = {}
        for block in self.registry.blocks():
            phase = refine.get(block, baseline_phase)
            if (block, phase) not in self.registry:
                # Blocks without a binding at the requested phase keep
                # their most refined available phase <= requested.
                candidates = [p for p in self.registry.phases_of(block)
                              if p <= phase]
                if not candidates:
                    raise KeyError(
                        f"block {block!r} has no binding at or below "
                        f"{phase}")
                phase = candidates[-1]
            phase_map[block] = phase
            implementations[block] = self.registry.create(block, phase)
        started = time.perf_counter()
        result = self.testbench(implementations)
        cpu = time.perf_counter() - started
        outcome = RunOutcome(phase_map=phase_map, result=result,
                             cpu_time=cpu)
        self.history.append(outcome)
        return outcome

    def sweep_block(self, block: str,
                    baseline_phase: Phase | int = Phase.II
                    ) -> list[RunOutcome]:
        """Run once per available phase of *block* (everything else at
        the baseline) - the phase-II-vs-III-vs-IV comparison in one
        call."""
        outcomes = []
        for phase in self.registry.phases_of(block):
            outcomes.append(self.run(baseline_phase=baseline_phase,
                                     refine={block: phase}))
        return outcomes
