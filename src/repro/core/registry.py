"""Entity/architecture registry: the substitute-and-play bookkeeping.

A VHDL-AMS entity can have several architectures; ADMS lets the designer
re-bind one instance to a Spice netlist without touching the testbench,
"provided that input/output terminals are electrically compatible".  The
registry reproduces that discipline in Python: a *block name* (entity)
maps to one *implementation factory* per :class:`~repro.core.phases.Phase`
(architecture), and an optional interface checker enforces terminal
compatibility at registration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.phases import Phase


@dataclass(frozen=True)
class Binding:
    """One (block, phase) -> implementation binding."""

    block: str
    phase: Phase
    factory: Callable[[], Any]
    description: str = ""


class ModelRegistry:
    """Phase-indexed implementation factories for named blocks.

    Args:
        interface_check: optional callable ``(block, implementation) ->
            None`` raising on incompatible interfaces; it runs against a
            probe instance at registration time, mirroring the
            electrical-compatibility requirement of the paper's flow.
    """

    def __init__(self, interface_check: Callable[[str, Any], None]
                 | None = None):
        self._bindings: dict[tuple[str, Phase], Binding] = {}
        self._interface_check = interface_check

    def register(self, block: str, phase: Phase | int,
                 factory: Callable[[], Any],
                 description: str = "",
                 check_now: bool = True) -> Binding:
        """Bind *factory* as the *phase* implementation of *block*.

        Raises:
            KeyError: on duplicate registration.
            Whatever *interface_check* raises on incompatibility.
        """
        phase = Phase(phase)
        key = (block, phase)
        if key in self._bindings:
            raise KeyError(f"{block!r} already has a {phase} binding")
        if self._interface_check is not None and check_now:
            self._interface_check(block, factory())
        binding = Binding(block=block, phase=phase, factory=factory,
                          description=description)
        self._bindings[key] = binding
        return binding

    def binding(self, block: str, phase: Phase | int) -> Binding:
        """The :class:`Binding` of *block* at *phase* (for callers that
        need the factory itself, e.g. to pass construction parameters)."""
        phase = Phase(phase)
        try:
            return self._bindings[(block, phase)]
        except KeyError:
            available = self.phases_of(block)
            raise KeyError(
                f"no {phase} binding for block {block!r}; available: "
                f"{[str(p) for p in available]}") from None

    def create(self, block: str, phase: Phase | int) -> Any:
        """Instantiate the implementation of *block* at *phase*."""
        return self.binding(block, phase).factory()

    def phases_of(self, block: str) -> list[Phase]:
        """Phases that have a binding for *block*, in order."""
        return sorted(p for (b, p) in self._bindings if b == block)

    def blocks(self) -> list[str]:
        return sorted({b for (b, _p) in self._bindings})

    def describe(self) -> str:
        """Human-readable binding table."""
        lines = ["block                phase      description"]
        for (block, phase), binding in sorted(self._bindings.items()):
            lines.append(f"{block:<20s} {str(phase):<10s} "
                         f"{binding.description}")
        return "\n".join(lines)

    def __contains__(self, key: tuple[str, Phase | int]) -> bool:
        block, phase = key
        return (block, Phase(phase)) in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)
