"""Structured serialization and stable hashing of harness values.

The campaign layer (``repro.campaign``) persists scenario results to
disk and keys them by content, so it needs two things this module
provides for arbitrary harness values (result dataclasses, NumPy
arrays, configuration objects, nested containers):

* :func:`to_jsonable` / :func:`from_jsonable` - a reversible encoding
  into JSON-compatible structures.  Arrays are either inlined (base64,
  self-contained JSON) or collected into a side table destined for an
  ``.npz`` payload; dataclasses round-trip by import path (fields
  added after a payload was written decode to their defaults, so
  evolving spec dataclasses stay readable); enum members round-trip
  by import path *and value* (an ``IntEnum`` is an ``int``, but
  decaying it would lose the type - e.g. the ``Phase`` inside a
  ``LinkSpec``); callables round-trip as ``module:qualname``
  references; anything else falls back to pickle.
* :func:`stable_hash` - a SHA-256 over the canonical (sorted-keys)
  JSON encoding, used as the content address of a scenario.  The
  declarative spec layer (``LinkSpec``, ``NetworkSpec`` and their
  nested specs) is designed to hash through this path with no pickle
  fallback, which is what makes campaign cache keys portable.

Encoded markers all use ``__tag__``-style keys; plain dicts whose keys
could collide with a marker are escaped through ``__map__``, so any
JSON-representable input survives the round trip unchanged.

Limitations (enforced with :class:`UnserializableError`): lambdas and
other non-importable callables cannot be encoded, because the decode
side resolves callables by import path.
"""

from __future__ import annotations

import base64
import dataclasses
import enum
import hashlib
import importlib
import inspect
import json
import pickle
from typing import Any, Mapping, MutableMapping

import numpy as np


class UnserializableError(TypeError):
    """A value cannot be encoded reversibly (e.g. a lambda)."""


_TAGS = ("__tuple__", "__set__", "__complex__", "__bytes__",
         "__ndarray__", "__npz__", "__dataclass__", "__callable__",
         "__enum__", "__seedseq__", "__pickle__", "__map__")


def callable_spec(fn: Any) -> str:
    """``module:qualname`` reference of an importable callable."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        raise UnserializableError(f"callable {fn!r} has no import path")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise UnserializableError(
            f"callable {module}:{qualname} is not importable by name "
            "(lambdas/closures cannot be serialized; use a top-level "
            "function)")
    return f"{module}:{qualname}"


def resolve_callable(spec: str) -> Any:
    """Inverse of :func:`callable_spec`."""
    module_name, _, qualname = spec.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _encode_array(arr: np.ndarray,
                  arrays: MutableMapping[str, np.ndarray] | None) -> Any:
    if arr.dtype == object:
        raise UnserializableError("object-dtype arrays are not supported")
    if arrays is not None:
        name = f"a{len(arrays)}"
        arrays[name] = arr
        return {"__npz__": name}
    data = base64.b64encode(np.ascontiguousarray(arr).tobytes())
    return {"__ndarray__": {"dtype": arr.dtype.str,
                            "shape": list(arr.shape),
                            "data": data.decode("ascii")}}


def _decode_array(obj: Mapping[str, Any],
                  arrays: Mapping[str, np.ndarray] | None) -> np.ndarray:
    if "__npz__" in obj:
        if arrays is None:
            raise ValueError("array payload table required to decode "
                             f"reference {obj['__npz__']!r}")
        return np.asarray(arrays[obj["__npz__"]])
    spec = obj["__ndarray__"]
    raw = base64.b64decode(spec["data"])
    arr = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
    return arr.reshape(spec["shape"]).copy()


def to_jsonable(value: Any,
                arrays: MutableMapping[str, np.ndarray] | None = None
                ) -> Any:
    """Encode *value* into JSON-compatible structures.

    Args:
        value: any supported value (see module docstring).
        arrays: if given, NumPy arrays are appended to this mapping and
            referenced by name (the caller stores them in an ``.npz``
            payload); if ``None``, arrays are inlined as base64 so the
            JSON document is self-contained.
    """
    # Enum members must be caught before the primitive check: an
    # IntEnum *is* an int, but decaying it to one would lose the type
    # (e.g. a Phase selection inside a LinkSpec).
    if isinstance(value, enum.Enum):
        return {"__enum__": callable_spec(type(value)),
                "value": to_jsonable(value.value, arrays)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        return _encode_array(value, arrays)
    if isinstance(value, np.generic):
        # NumPy scalars decay to the equivalent Python scalar.
        return to_jsonable(value.item(), arrays)
    if isinstance(value, np.random.SeedSequence):
        entropy = value.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = [int(e) for e in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        return {"__seedseq__": {
            "entropy": entropy,
            "spawn_key": [int(k) for k in value.spawn_key],
            "pool_size": int(value.pool_size)}}
    if isinstance(value, tuple):
        return {"__tuple__": [to_jsonable(v, arrays) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {"__set__": [to_jsonable(v, arrays) for v in
                            sorted(value, key=repr)]}
    if isinstance(value, complex):
        return {"__complex__": [value.real, value.imag]}
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, list):
        return [to_jsonable(v, arrays) for v in value]
    if isinstance(value, Mapping):
        items = list(value.items())
        if all(isinstance(k, str) and k not in _TAGS for k, _v in items):
            return {k: to_jsonable(v, arrays) for k, v in items}
        return {"__map__": [[to_jsonable(k, arrays),
                             to_jsonable(v, arrays)] for k, v in items]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: to_jsonable(getattr(value, f.name), arrays)
                  for f in dataclasses.fields(value)}
        return {"__dataclass__": callable_spec(type(value)),
                "fields": fields}
    if isinstance(value, type) or inspect.isroutine(value):
        # Functions, methods and classes round-trip by import path;
        # *callable instances* (filters, nonlinearities) fall through
        # to the pickle path below, which captures their state.
        return {"__callable__": callable_spec(value)}
    try:
        blob = pickle.dumps(value, protocol=4)
    except Exception as exc:  # pragma: no cover - exotic objects
        raise UnserializableError(
            f"cannot serialize {type(value).__name__}: {exc}") from exc
    return {"__pickle__": base64.b64encode(blob).decode("ascii")}


def from_jsonable(obj: Any,
                  arrays: Mapping[str, np.ndarray] | None = None) -> Any:
    """Inverse of :func:`to_jsonable`."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [from_jsonable(v, arrays) for v in obj]
    if not isinstance(obj, Mapping):
        raise ValueError(f"unexpected encoded node: {obj!r}")
    if "__ndarray__" in obj or "__npz__" in obj:
        return _decode_array(obj, arrays)
    if "__seedseq__" in obj:
        spec = obj["__seedseq__"]
        entropy = spec["entropy"]
        if isinstance(entropy, list):
            entropy = [int(e) for e in entropy]
        return np.random.SeedSequence(
            entropy=entropy, spawn_key=tuple(spec["spawn_key"]),
            pool_size=int(spec["pool_size"]))
    if "__tuple__" in obj:
        return tuple(from_jsonable(v, arrays) for v in obj["__tuple__"])
    if "__set__" in obj:
        return set(from_jsonable(v, arrays) for v in obj["__set__"])
    if "__complex__" in obj:
        re, im = obj["__complex__"]
        return complex(re, im)
    if "__bytes__" in obj:
        return base64.b64decode(obj["__bytes__"])
    if "__map__" in obj:
        return {from_jsonable(k, arrays): from_jsonable(v, arrays)
                for k, v in obj["__map__"]}
    if "__dataclass__" in obj:
        cls = resolve_callable(obj["__dataclass__"])
        instance = cls.__new__(cls)
        # Seed defaults first so fields added after the payload was
        # written still exist on the decoded object.
        for f in dataclasses.fields(cls):
            if f.default is not dataclasses.MISSING:
                object.__setattr__(instance, f.name, f.default)
            elif f.default_factory is not dataclasses.MISSING:
                object.__setattr__(instance, f.name, f.default_factory())
        for name, encoded in obj["fields"].items():
            object.__setattr__(instance, name,
                               from_jsonable(encoded, arrays))
        return instance
    if "__enum__" in obj:
        cls = resolve_callable(obj["__enum__"])
        return cls(from_jsonable(obj["value"], arrays))
    if "__callable__" in obj:
        return resolve_callable(obj["__callable__"])
    if "__pickle__" in obj:
        return pickle.loads(base64.b64decode(obj["__pickle__"]))
    return {k: from_jsonable(v, arrays) for k, v in obj.items()}


def dump_tagged(tag: str, payload: Any, *, indent: int | None = None) -> str:
    """Encode *payload* as a format-tagged JSON document.

    The campaign queue persists small records (job specs, heartbeats,
    completion summaries) as single files; tagging them with an
    explicit format marker makes version skew and foreign files a
    clean error instead of a silent mis-parse.  The payload goes
    through :func:`to_jsonable` (arrays inlined), so spec dataclasses
    round-trip exactly.
    """
    return json.dumps({"format": tag, "payload": to_jsonable(payload)},
                      indent=indent, sort_keys=True)


def load_tagged(tag: str, text: str) -> Any:
    """Inverse of :func:`dump_tagged`.

    Raises:
        ValueError: the document is not valid JSON or its format
            marker is not *tag* (torn writes and version skew both
            land here, so callers need a single except clause).
    """
    doc = json.loads(text)
    if not isinstance(doc, Mapping) or doc.get("format") != tag:
        found = doc.get("format") if isinstance(doc, Mapping) else None
        raise ValueError(f"expected a {tag!r} document, found "
                         f"{found!r}")
    return from_jsonable(doc["payload"])


def canonical_json(value: Any) -> str:
    """Deterministic JSON text of *value* (sorted keys, no whitespace,
    arrays inlined) - the hashing pre-image."""
    return json.dumps(to_jsonable(value), sort_keys=True,
                      separators=(",", ":"))


def stable_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of *value*.

    Stable across processes and platforms for the supported value
    types; for pickle-fallback objects it is stable as long as the
    object's pickled state is (true for the plain attribute-holder
    classes used in this repository).
    """
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
