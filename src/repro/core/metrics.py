"""System-metric comparison reports (CPU time, BER, ranging).

These produce the paper's tables in text form:

* :class:`CpuTimeReport` -> Table 1 (CPU time per integrator model),
* :func:`compare_ber` -> Figure 6 commentary (where curves cross, who
  wins at high Eb/N0),
* :func:`compare_ranging` -> Table 2 (mean / variance per model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.uwb.fastsim import BerResult
from repro.uwb.ranging import RangingResult


def _format_seconds(seconds: float) -> str:
    minutes, secs = divmod(seconds, 60.0)
    if minutes >= 1:
        return f"{int(minutes)} m {secs:4.1f} s"
    return f"{secs:.3f} s"


@dataclass
class CpuTimeReport:
    """CPU-time accounting for one testbench across models (Table 1).

    Attributes:
        simulated_time: the simulated span (s) shared by all runs.
        entries: model label -> wall-clock seconds.
    """

    simulated_time: float
    entries: dict[str, float] = field(default_factory=dict)

    def add(self, label: str, cpu_seconds: float) -> None:
        self.entries[label] = float(cpu_seconds)

    def ratio(self, label: str, reference: str) -> float:
        return self.entries[label] / self.entries[reference]

    def format_table(self) -> str:
        """The Table-1 layout: model, CPU time, simulated time, ratio
        to the fastest model."""
        if not self.entries:
            return "(no entries)"
        fastest = min(self.entries.values())
        sim_txt = f"{self.simulated_time * 1e6:g} us"
        lines = [f"{'Model':<12s} {'CPU Time':>14s} {'Simulation time':>16s}"
                 f" {'x fastest':>10s}"]
        for label, cpu in sorted(self.entries.items(),
                                 key=lambda kv: -kv[1]):
            lines.append(f"{label:<12s} {_format_seconds(cpu):>14s} "
                         f"{sim_txt:>16s} {cpu / fastest:>9.2f}x")
        return "\n".join(lines)


@dataclass
class BerComparison:
    """Comparison of two BER curves on a common Eb/N0 grid.

    Attributes:
        ebn0_db: common grid.
        ber_a / ber_b: the two curves.
        label_a / label_b: their names.
    """

    ebn0_db: np.ndarray
    ber_a: np.ndarray
    ber_b: np.ndarray
    label_a: str
    label_b: str

    @property
    def log10_max_gap(self) -> float:
        """Largest |log10 BER_a - log10 BER_b| over points where both
        curves have counted errors (the Phase-I 'overlap' metric)."""
        mask = (self.ber_a > 0) & (self.ber_b > 0)
        if not np.any(mask):
            return 0.0
        return float(np.max(np.abs(np.log10(self.ber_a[mask])
                                   - np.log10(self.ber_b[mask]))))

    def wins_at_high_snr(self) -> str:
        """Label of the curve with the lower BER at the highest grid
        point where both have errors counted (ties -> 'tie')."""
        mask = (self.ber_a > 0) & (self.ber_b > 0)
        if not np.any(mask):
            return "tie"
        idx = np.nonzero(mask)[0][-1]
        if self.ber_a[idx] < self.ber_b[idx]:
            return self.label_a
        if self.ber_b[idx] < self.ber_a[idx]:
            return self.label_b
        return "tie"

    def format_table(self) -> str:
        lines = [f"{'Eb/N0 (dB)':>10s} {self.label_a:>14s} "
                 f"{self.label_b:>14s}"]
        for e, a, b in zip(self.ebn0_db, self.ber_a, self.ber_b):
            lines.append(f"{e:>10.1f} {a:>14.3e} {b:>14.3e}")
        return "\n".join(lines)


def compare_ber(a: BerResult, b: BerResult) -> BerComparison:
    """Align two :class:`~repro.uwb.fastsim.BerResult` curves."""
    if not np.array_equal(a.ebn0_db, b.ebn0_db):
        raise ValueError("BER curves use different Eb/N0 grids")
    return BerComparison(ebn0_db=a.ebn0_db, ber_a=a.ber, ber_b=b.ber,
                         label_a=a.label or "A", label_b=b.label or "B")


@dataclass
class RangingComparison:
    """Table-2 style ranging comparison.

    Attributes:
        entries: label -> RangingResult.
    """

    entries: dict[str, RangingResult] = field(default_factory=dict)

    def add(self, label: str, result: RangingResult) -> None:
        self.entries[label] = result

    def format_table(self) -> str:
        lines = [f"{'Model':<12s} {'Mean':>9s} {'Variance':>10s} "
                 f"{'Offset':>9s}"]
        for label, res in self.entries.items():
            lines.append(f"{label:<12s} {res.mean:>8.2f} m "
                         f"{res.variance:>8.2f}  {res.offset:>+7.2f} m")
        return "\n".join(lines)

    def offset_increased(self, baseline: str, refined: str) -> bool:
        """Does the refined model show the larger offset (the paper's
        first table-2 observation)?"""
        return abs(self.entries[refined].offset) > abs(
            self.entries[baseline].offset)

    def variance_decreased(self, baseline: str, refined: str) -> bool:
        """Does the refined model show the smaller variance (the
        paper's second table-2 observation)?"""
        return (self.entries[refined].variance
                < self.entries[baseline].variance)


def compare_ranging(**results: RangingResult) -> RangingComparison:
    """Build a :class:`RangingComparison` from keyword-labeled results."""
    comparison = RangingComparison()
    for label, result in results.items():
        comparison.add(label, result)
    return comparison
