"""The paper's contribution: the four-phase top-down AMS methodology.

* :mod:`repro.core.phases` - the phase model (I: monolithic behavioral,
  II: partitioned ideal architecture, III: substitute-and-play with a
  transistor netlist, IV: circuit-calibrated behavioral model),
* :mod:`repro.core.registry` - entity/architecture bindings: one block
  name, one implementation per phase, interface-checked,
* :mod:`repro.core.refinement` - the flow orchestrator that runs the
  same testbench with per-block phase selections and compares results,
* :mod:`repro.core.characterize` - Phase-IV automation: two-pole fit of
  an AC response and static-nonlinearity extraction from a DC sweep of
  the transistor circuit,
* :mod:`repro.core.metrics` - CPU-time accounting and system-metric
  (BER / ranging) comparison reports,
* :mod:`repro.core.scenario` - declarative :class:`Scenario` /
  :class:`SweepRunner` descriptions of multi-run workloads (corner
  sweeps, BER grids, model comparisons) with per-run seeding and
  multiprocessing fan-out.
"""

from repro.core.phases import Phase
from repro.core.registry import ModelRegistry
from repro.core.refinement import RefinementFlow, RunOutcome
from repro.core.characterize import (
    TwoPoleFit,
    build_surrogate,
    characterize_integrator,
    extract_nonlinearity,
    fit_two_pole,
)
from repro.core.metrics import (
    BerComparison,
    CpuTimeReport,
    RangingComparison,
    compare_ber,
    compare_ranging,
)
from repro.core.scenario import (
    Scenario,
    SweepReport,
    SweepResult,
    SweepRunner,
)

__all__ = [
    "BerComparison",
    "CpuTimeReport",
    "ModelRegistry",
    "Phase",
    "RangingComparison",
    "RefinementFlow",
    "RunOutcome",
    "Scenario",
    "SweepReport",
    "SweepResult",
    "SweepRunner",
    "TwoPoleFit",
    "build_surrogate",
    "characterize_integrator",
    "compare_ber",
    "compare_ranging",
    "extract_nonlinearity",
    "fit_two_pole",
]
