"""The four phases of the top-down design flow (paper section 3)."""

from __future__ import annotations

import enum


class Phase(enum.IntEnum):
    """Design-flow phases, ordered by refinement depth.

    Attributes:
        I: single behavioral description of the whole system; ideal
            synchronizer; validated against a golden model (Matlab in
            the paper, :mod:`repro.uwb.fastsim` here).
        II: architectural partition into entities with ideal internals
            but system-relevant non-idealities kept (ADC/DAC
            quantization, saturation).
        III: substitute-and-play - one block at a time replaced by a
            transistor-level netlist co-simulated inside the unchanged
            system testbench.
        IV: the characterized circuit re-abstracted into a light
            behavioral model (DC gain + poles, optionally the measured
            nonlinearity) so simulation stays fast while carrying
            circuit truth.
    """

    I = 1
    II = 2
    III = 3
    IV = 4

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]

    def __str__(self) -> str:  # "Phase III" in reports
        return f"Phase {self.name}"


_DESCRIPTIONS = {
    Phase.I: "monolithic behavioral model, validated against the golden "
             "model",
    Phase.II: "partitioned architecture, ideal blocks with quantization "
              "and saturation",
    Phase.III: "substitute-and-play: transistor-level netlist co-simulated "
               "in the system testbench",
    Phase.IV: "circuit-calibrated behavioral model (poles + gain "
              "extracted from Phase III)",
}
