"""Declarative scenarios and parallel sweep execution.

Every workload in this repository ultimately boils down to "call one
top-level harness function with some parameters and a seed" - a BER
point, a Table-1 timing run, a figure-5 transient, an ablation arm.
This module gives that pattern one vocabulary:

* :class:`Scenario` - a named, seeded unit of work (function +
  parameters + reproducible seeding policy),
* :class:`SweepRunner` - runs a batch of scenarios serially or fanned
  out over processes, timing each one,
* :meth:`SweepRunner.sweep` - builds the cartesian product of parameter
  axes with deterministic per-run seeds spawned from one base seed.

Multiprocessing notes: with ``processes > 1`` the scenario functions and
parameters must be picklable (top-level functions, no lambdas or
closures); results come back in submission order.  Serial execution
(``processes`` of ``None``/``0``/``1``) has no such restriction.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class Scenario:
    """One named, seeded unit of work.

    Args:
        name: label of the run (report/artifact key).
        fn: the harness function to call.
        params: keyword arguments for *fn*.
        seed: reproducible seed of this run (anything accepted by
            :func:`numpy.random.default_rng`); ``None`` means unseeded
            - injected generators/seeds then come from fresh OS
            entropy.
        rng_param: if set, pass ``np.random.default_rng(seed)`` to *fn*
            under this keyword (the convention of ``ber_curve`` and
            friends).
        seed_param: if set, pass the seed as an ``int`` under this
            keyword (the convention of harnesses like
            ``run_table1(seed=...)``).
        cache: opt-out flag for the campaign layer - ``False`` marks a
            run that must execute every time even under a result store
            (e.g. repeated timing measurements, whose content address
            would otherwise collapse the repeats onto one entry).
        key_params: optional override of the parameters hashed into
            the campaign content address (default: *params*).  Use it
            to normalize execution-only knobs - e.g. a worker count
            that changes scheduling but not results - so equivalent
            runs share one cache entry.
    """

    name: str
    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Any = None
    rng_param: str | None = None
    seed_param: str | None = None
    cache: bool = True
    key_params: Mapping[str, Any] | None = None

    def build_kwargs(self) -> dict[str, Any]:
        kwargs = dict(self.params)
        if self.rng_param:
            # seed=None -> fresh entropy, still a valid generator.
            kwargs[self.rng_param] = np.random.default_rng(self.seed)
        if self.seed_param:
            seed = self.seed
            if not isinstance(seed, (int, np.integer)):
                # None or a SeedSequence: derive a concrete integer.
                if not isinstance(seed, np.random.SeedSequence):
                    seed = np.random.SeedSequence(seed)
                seed = int(seed.generate_state(1)[0])
            kwargs[self.seed_param] = int(seed)
        return kwargs

    def run(self) -> Any:
        """Execute the scenario and return the harness result."""
        return self.fn(**self.build_kwargs())


@dataclass
class SweepResult:
    """Outcome of one scenario: the returned value plus wall time.

    ``cached`` marks results served from a
    :class:`repro.campaign.store.ResultStore` instead of executed
    (their ``wall_time`` is the original run's).
    """

    scenario: Scenario
    value: Any
    wall_time: float
    cached: bool = False

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def params(self) -> Mapping[str, Any]:
        return self.scenario.params


def _execute(scenario: Scenario) -> SweepResult:
    """Worker entry point (top-level so process pools can pickle it)."""
    start = time.perf_counter()
    value = scenario.run()
    return SweepResult(scenario=scenario, value=value,
                       wall_time=time.perf_counter() - start)


@dataclass
class SweepReport:
    """Results of a sweep, in submission order."""

    results: list[SweepResult]

    def values(self) -> list[Any]:
        return [r.value for r in self.results]

    def by_name(self) -> dict[str, Any]:
        return {r.name: r.value for r in self.results}

    def __getitem__(self, name: str) -> Any:
        for r in self.results:
            if r.name == name:
                return r.value
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def total_wall_time(self) -> float:
        return sum(r.wall_time for r in self.results)

    def format_table(self) -> str:
        lines = [f"{'Scenario':<32s} {'Wall time':>10s}"]
        for r in self.results:
            suffix = "  (cached)" if r.cached else ""
            lines.append(f"{r.name:<32s} {r.wall_time:>9.3f}s{suffix}")
        return "\n".join(lines)

    #: format marker of the JSON serialization.
    JSON_FORMAT = "repro.sweep-report/1"

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialize the report (scenarios, values, timings) to JSON.

        Values are encoded with :mod:`repro.core.serialization`: result
        dataclasses and NumPy arrays round-trip exactly; scenario
        functions are stored as ``module:qualname`` references, so
        reports over lambdas cannot be serialized.
        """
        from repro.core.serialization import to_jsonable

        payload = {"format": self.JSON_FORMAT,
                   "results": [to_jsonable(r) for r in self.results]}
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        """Inverse of :meth:`to_json`."""
        from repro.core.serialization import from_jsonable

        payload = json.loads(text)
        fmt = payload.get("format")
        if fmt != cls.JSON_FORMAT:
            raise ValueError(f"unsupported sweep-report format: {fmt!r}")
        return cls(results=[from_jsonable(r)
                            for r in payload["results"]])


class SweepRunner:
    """Run a batch of :class:`Scenario` objects, optionally in parallel.

    Args:
        scenarios: initial scenarios (more can be :meth:`add`-ed).
        processes: fan-out degree; ``None``/``0``/``1`` run serially in
            this process (no pickling requirements), ``>1`` uses a
            process pool.  Note that timing-sensitive sweeps (e.g. the
            Table-1 CPU comparison) should run serially so the runs do
            not contend for cores.
    """

    def __init__(self, scenarios: Iterable[Scenario] = (), *,
                 processes: int | None = None):
        self.scenarios: list[Scenario] = list(scenarios)
        self.processes = processes

    def add(self, scenario: Scenario) -> Scenario:
        self.scenarios.append(scenario)
        return scenario

    def extend(self, scenarios: Iterable[Scenario]) -> None:
        self.scenarios.extend(scenarios)

    @classmethod
    def sweep(cls, name: str, fn: Callable[..., Any],
              axes: Mapping[str, Sequence[Any]], *,
              base: Mapping[str, Any] | None = None,
              base_seed: int | None = None,
              rng_param: str | None = None,
              seed_param: str | None = None,
              processes: int | None = None) -> "SweepRunner":
        """Cartesian-product sweep builder.

        Args:
            name: prefix of the scenario names (each run is labeled
                ``name[axis=value,...]``).
            fn: harness function shared by all runs.
            axes: mapping of parameter name to the values to sweep
                (cartesian product over all axes, in declaration order).
            base: parameters common to every run.
            base_seed: if given, deterministic per-run seeds are spawned
                from it with :class:`numpy.random.SeedSequence`, so the
                sweep is reproducible regardless of execution order or
                fan-out degree.
            rng_param / seed_param: seeding conventions passed through
                to :class:`Scenario`.
        """
        def axis_label(value: Any) -> str:
            # Prefer a model-style .name; fall back to str() unless it
            # is a default repr whose memory address would make the
            # scenario name differ between runs (the dedup suffixes
            # below keep type-name labels unique).
            name = getattr(value, "name", None)
            if isinstance(name, str) and name:
                return name
            text = str(value)
            if text.startswith("<") and " at 0x" in text:
                return type(value).__name__
            return text

        keys = list(axes)
        combos = list(itertools.product(*(axes[k] for k in keys)))
        seeds: Sequence[Any]
        if base_seed is not None:
            seeds = np.random.SeedSequence(base_seed).spawn(len(combos))
        else:
            seeds = [None] * len(combos)
        runner = cls(processes=processes)
        used: dict[str, int] = {}
        for combo, seed in zip(combos, seeds):
            params = dict(base or {})
            params.update(zip(keys, combo))
            label = ",".join(f"{k}={axis_label(v)}"
                             for k, v in zip(keys, combo))
            run_name = f"{name}[{label}]"
            # Axis values may share a display label (e.g. two models of
            # the same class); keep names unique so by_name() is
            # lossless.
            count = used.get(run_name, 0)
            used[run_name] = count + 1
            if count:
                run_name = f"{run_name}#{count + 1}"
            runner.add(Scenario(name=run_name, fn=fn,
                                params=params, seed=seed,
                                rng_param=rng_param,
                                seed_param=seed_param))
        return runner

    def run(self) -> SweepReport:
        """Execute all scenarios; results come back in submission
        order regardless of completion order."""
        if not self.scenarios:
            return SweepReport(results=[])
        if self.processes is None or self.processes <= 1:
            return SweepReport(results=[_execute(s)
                                        for s in self.scenarios])
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.processes, len(self.scenarios))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_execute, self.scenarios))
        return SweepReport(results=results)
