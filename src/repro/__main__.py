"""``python -m repro`` entry point (see :mod:`repro.campaign.cli`)."""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
