"""Hierarchical span tracing with an aggregating, thread-local tree.

The observability layer's timing primitive.  A *span* is one named
region of work; entering a span pushes a node onto the current
thread's span stack, exiting it accumulates the elapsed monotonic
wall time into that node.  Repeated spans with the same name under
the same parent **aggregate** (``count`` + ``total_s``) instead of
growing the tree - a Monte-Carlo chunk loop that enters
``link.afe`` ten thousand times produces one tree node, not ten
thousand, so tracing a whole campaign stays O(distinct span names)
in memory and the rendered tree reads like a flame graph collapsed
by name.

**Disabled fast path.** Tracing is off by default.  The contract for
hot loops is a *module-level flag check*, not a function call::

    from repro.obs import trace as _trace

    if _trace.ENABLED:
        for stage in self.stages:
            with _trace.span(stage.span_name):
                stage.process(state)
    else:
        for stage in self.stages:        # zero-overhead fast path
            stage.process(state)

so the disabled cost per chunk is one attribute load and one branch
(pinned <2% on the fig6 fast-scale run by
``tests/obs/test_overhead.py``).  Warm paths (once per scenario, per
run) may simply call :func:`span`, which returns a shared no-op
context manager while disabled.

**Threading.** ``ENABLED`` is process-global; the span stack and tree
are thread-local, so concurrent threads trace into independent trees
and never contend.  Child *processes* (campaign fan-out) do not report
back into the parent's tree - trace serially when a full tree is
wanted (the ``repro trace`` CLI does).

This module is dependency-free (stdlib only); JSON import/export and
rendering live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["ENABLED", "SpanNode", "collect", "current_root", "disable",
           "enable", "reset", "span", "stage_summary"]

#: Module-level tracing switch.  Hot loops read this attribute
#: directly (``if trace.ENABLED:``) to skip instrumentation entirely.
ENABLED = False


@dataclass
class SpanNode:
    """One aggregated node of a span tree.

    Attributes:
        name: span name (unique among its siblings - same-name spans
            under one parent merge into a single node).
        count: completed enter/exit cycles accumulated here.
        total_s: wall seconds accumulated over those cycles
            (inclusive of child spans).
        children: child nodes keyed by name, in first-seen order.
    """

    name: str
    count: int = 0
    total_s: float = 0.0
    children: dict[str, "SpanNode"] = field(default_factory=dict)

    def child(self, name: str) -> "SpanNode":
        """Get-or-create the child span node *name*."""
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "SpanNode"]]:
        """Depth-first ``(depth, node)`` traversal, self included."""
        yield depth, self
        for node in self.children.values():
            yield from node.walk(depth + 1)

    def leaf_walls(self) -> dict[str, float]:
        """Aggregate wall seconds of the *leaf* spans below (or at)
        this node, keyed by span name.  Leaves are where actual work
        was timed; interior nodes only wrap them, so summing leaves
        never double-counts."""
        acc: dict[str, float] = {}
        for _depth, node in self.walk():
            if not node.children and node.total_s:
                acc[node.name] = acc.get(node.name, 0.0) + node.total_s
        # The root itself is not a measurement when it has children.
        if self.children:
            acc.pop(self.name, None)
        return acc

    def coverage(self) -> float:
        """Fraction of this node's wall accounted for by leaf spans
        (0.0 when this node has no recorded wall)."""
        if self.total_s <= 0.0:
            return 0.0
        return sum(self.leaf_walls().values()) / self.total_s

    def find(self, name: str) -> "SpanNode | None":
        """First node named *name* in depth-first order, or ``None``."""
        for _depth, node in self.walk():
            if node.name == name:
                return node
        return None


_local = threading.local()


def _stack() -> list[SpanNode]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = [SpanNode("trace")]
        _local.stack = stack
    return stack


def reset(name: str = "trace") -> SpanNode:
    """Start a fresh span tree for this thread; returns its root."""
    root = SpanNode(name)
    _local.stack = [root]
    return root


def current_root() -> SpanNode:
    """This thread's span-tree root (created on first use)."""
    return _stack()[0]


def enable() -> None:
    """Turn tracing on (process-global)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn tracing off (process-global)."""
    global ENABLED
    ENABLED = False


class _Span:
    """The live span context manager (tracing enabled)."""

    __slots__ = ("name", "_start")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self) -> SpanNode:
        stack = _stack()
        node = stack[-1].child(self.name)
        stack.append(node)
        self._start = time.perf_counter()
        return node

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        node = _stack().pop()
        node.count += 1
        node.total_s += elapsed
        return False


class _NoopSpan:
    """Shared do-nothing context manager (tracing disabled)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str) -> "_Span | _NoopSpan":
    """Context manager timing one region under the current span.

    Returns a shared no-op object while tracing is disabled, so warm
    call sites need no flag check of their own.  Hot loops should
    still guard on :data:`ENABLED` to skip even this call.
    """
    if not ENABLED:
        return _NOOP
    return _Span(name)


@contextmanager
def collect(name: str = "trace", *, keep_enabled: bool = False):
    """Trace a block into a fresh tree; yields the root node.

    Enables tracing, resets this thread's tree, runs the block, stamps
    the root's wall time, and restores the previous enabled state
    (unless *keep_enabled*).  The canonical harness for ``repro
    trace`` and the test suite::

        with trace.collect("fig6") as root:
            run_fig6(...)
        print(root.total_s, root.leaf_walls())
    """
    was_enabled = ENABLED
    root = reset(name)
    enable()
    start = time.perf_counter()
    try:
        yield root
    finally:
        root.count += 1
        root.total_s += time.perf_counter() - start
        if not (was_enabled or keep_enabled):
            disable()


def stage_summary(root: SpanNode | None = None) -> dict[str, float]:
    """Leaf-span wall breakdown of *root* (default: the current
    thread's tree) - the per-stage view heartbeats and bench
    artifacts carry."""
    if root is None:
        root = current_root()
    return root.leaf_walls()


def timed(name: str) -> Callable:
    """Decorator tracing every call of the wrapped function as *name*
    (no-op per call while disabled)."""
    def decorate(fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            with _Span(name):
                return fn(*args, **kwargs)
        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__qualname__ = getattr(fn, "__qualname__",
                                       wrapper.__name__)
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper
    return decorate
