"""Process-local metrics registry: counters, gauges, histograms.

The counting half of :mod:`repro.obs` (the timing half is
:mod:`repro.obs.trace`).  Instruments are cheap mutable objects
handed out by a :class:`MetricsRegistry`; hot sites cache the handle
at module import and call ``inc()`` / ``observe()`` directly::

    from repro.obs import metrics

    _HITS = metrics.REGISTRY.counter("campaign.store.hits")
    ...
    _HITS.inc()

``REGISTRY.reset()`` zeroes every instrument **in place** rather than
discarding them, so cached handles stay live across resets - a test
or a ``repro trace`` run can reset, run, snapshot without re-wiring
any call site.

Histograms use fixed log-spaced bucket boundaries (decade thirds
from 1 µs to 1000 s) so snapshots from different runs and workers
are mergeable bucket-by-bucket without rebinning.

Stdlib-only by contract; serialization to/from JSON documents lives
in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "HistogramState",
           "MetricsRegistry", "MetricsSnapshot", "REGISTRY",
           "default_bounds"]


def default_bounds() -> tuple[float, ...]:
    """The shared log-spaced bucket boundaries: three per decade from
    1e-6 to 1e3 (wall seconds), 28 edges -> 29 buckets including the
    overflow bucket."""
    return tuple(10.0 ** (exp / 3.0) for exp in range(-18, 10))


_DEFAULT_BOUNDS = default_bounds()


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Last-write-wins numeric level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram of non-negative samples.

    ``bounds`` are the upper-inclusive bucket edges; a sample lands in
    the first bucket whose edge is >= the value, or the final
    overflow bucket.  Exact ``total``/``min``/``max``/``count`` are
    kept alongside the bucket counts.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: tuple[float, ...] = _DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float | None:
        if not self.count:
            return None
        return self.total / self.count

    def reset(self) -> None:
        for i in range(len(self.counts)):
            self.counts[i] = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def state(self) -> "HistogramState":
        return HistogramState(
            bounds=list(self.bounds),
            counts=list(self.counts),
            count=self.count,
            total=self.total,
            min=self.min if self.count else None,
            max=self.max if self.count else None,
        )


@dataclass
class HistogramState:
    """Serializable snapshot of one :class:`Histogram`."""

    bounds: list[float] = field(default_factory=list)
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None


@dataclass
class MetricsSnapshot:
    """Point-in-time, serializable view of a registry."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramState] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Element-wise sum with *other* (gauges: last write wins;
        histograms require identical bounds)."""
        out = MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={k: HistogramState(
                bounds=list(v.bounds), counts=list(v.counts),
                count=v.count, total=v.total, min=v.min, max=v.max)
                for k, v in self.histograms.items()},
        )
        for name, value in other.counters.items():
            out.counters[name] = out.counters.get(name, 0) + value
        out.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = out.histograms.get(name)
            if mine is None:
                out.histograms[name] = HistogramState(
                    bounds=list(hist.bounds), counts=list(hist.counts),
                    count=hist.count, total=hist.total,
                    min=hist.min, max=hist.max)
                continue
            if mine.bounds != hist.bounds:
                raise ValueError(
                    f"histogram {name!r}: bucket bounds differ, "
                    "cannot merge")
            mine.counts = [a + b
                           for a, b in zip(mine.counts, hist.counts)]
            mine.count += hist.count
            mine.total += hist.total
            for attr, pick in (("min", min), ("max", max)):
                a, b = getattr(mine, attr), getattr(hist, attr)
                setattr(mine, attr,
                        pick(a, b) if a is not None and b is not None
                        else (a if b is None else b))
        return out


class MetricsRegistry:
    """Get-or-create factory and namespace for instruments.

    Creation is lock-guarded so two threads asking for the same name
    get the same instrument; the instruments themselves are unlocked
    (single-writer or tolerable-race counters, per the GIL).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(name, Counter(name))
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(name, Gauge(name))
        return inst

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = _DEFAULT_BOUNDS,
                  ) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(
                    name, Histogram(name, bounds))
        return inst

    def counter_values(self) -> dict[str, int]:
        """Non-zero counter values, name-sorted (the compact form
        heartbeat files carry)."""
        return {name: c.value
                for name, c in sorted(self._counters.items())
                if c.value}

    def snapshot(self) -> MetricsSnapshot:
        """Serializable point-in-time copy of every instrument that
        has recorded anything."""
        return MetricsSnapshot(
            counters={name: c.value
                      for name, c in sorted(self._counters.items())
                      if c.value},
            gauges={name: g.value
                    for name, g in sorted(self._gauges.items())
                    if g.value},
            histograms={name: h.state()
                        for name, h in sorted(self._histograms.items())
                        if h.count},
        )

    def reset(self) -> None:
        """Zero every instrument *in place* - cached handles at call
        sites keep working across resets."""
        with self._lock:
            for c in self._counters.values():
                c.reset()
            for g in self._gauges.values():
                g.reset()
            for h in self._histograms.values():
                h.reset()


#: The process-wide default registry all built-in instrumentation
#: writes to.
REGISTRY = MetricsRegistry()
