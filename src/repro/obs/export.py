"""Rendering and JSON persistence for the observability layer.

:mod:`repro.obs.trace` and :mod:`repro.obs.metrics` are stdlib-only
by contract; everything that touches :mod:`repro.core.serialization`
(and therefore NumPy) lives here instead:

* :class:`TraceReport` - one traced experiment run (span tree +
  metrics snapshot) as a format-tagged, reversible JSON document
  (``repro.trace/1``), the payload of ``repro trace --format json``.
* :func:`render_trace` - the flame-style text tree.
* :func:`format_bytes` - the human-readable byte formatter shared by
  ``repro cache clear``/``gc`` and ``repro stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import serialization
from .metrics import MetricsSnapshot
from .trace import SpanNode

__all__ = ["TRACE_FORMAT", "TraceReport", "format_bytes",
           "render_trace"]

TRACE_FORMAT = "repro.trace/1"

_UNITS = ("B", "KiB", "MiB", "GiB", "TiB")


def format_bytes(n: int | float) -> str:
    """Human-readable byte size: ``512 B``, ``1.5 KiB``, ``2.3 MiB``.

    One decimal place above bytes, exact below 1 KiB; never switches
    to a unit that would round to 1024 of the smaller one.
    """
    size = float(n)
    for unit in _UNITS[:-1]:
        if abs(size) < 1024.0:
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{size:.1f} {_UNITS[-1]}"


@dataclass
class TraceReport:
    """One traced run: experiment name, span tree, metrics.

    ``root.total_s`` is the total traced wall; ``stage_walls`` (a
    convenience copy of the leaf breakdown) is stored explicitly so
    JSON consumers need not re-derive it from the tree.
    """

    experiment: str
    root: SpanNode
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    stage_walls: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_run(cls, experiment: str, root: SpanNode,
                 metrics: MetricsSnapshot | None = None
                 ) -> "TraceReport":
        return cls(experiment=experiment, root=root,
                   metrics=metrics or MetricsSnapshot(),
                   stage_walls=root.leaf_walls())

    @property
    def wall_s(self) -> float:
        return self.root.total_s

    def to_json(self, *, indent: int | None = 2) -> str:
        return serialization.dump_tagged(TRACE_FORMAT, self,
                                         indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TraceReport":
        report = serialization.load_tagged(TRACE_FORMAT, text)
        if not isinstance(report, cls):
            raise ValueError(
                f"expected a {cls.__name__} payload, found "
                f"{type(report).__name__}")
        return report


def _render_node(node: SpanNode, root_wall: float, depth: int,
                 lines: list[str]) -> None:
    share = (f"{100.0 * node.total_s / root_wall:5.1f}%"
             if root_wall > 0 else "    -")
    count = f" x{node.count}" if node.count > 1 else ""
    lines.append(f"{'  ' * depth}{node.name:<{max(1, 40 - 2 * depth)}}"
                 f" {node.total_s * 1e3:9.2f} ms  {share}{count}")
    for child in node.children.values():
        _render_node(child, root_wall, depth + 1, lines)


def render_trace(root: SpanNode, *, title: str | None = None) -> str:
    """Flame-style indented text tree of *root*.

    Each line shows span name, accumulated wall, share of the root
    wall, and the aggregate enter count; a trailing coverage line
    reports how much of the total wall the leaf spans explain.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    _render_node(root, root.total_s, 0, lines)
    lines.append(f"coverage: {100.0 * root.coverage():.1f}% of "
                 f"{root.total_s * 1e3:.2f} ms explained by "
                 "leaf spans")
    return "\n".join(lines)
