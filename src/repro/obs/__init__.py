"""Observability for the reproduction harness: tracing + metrics.

Two stdlib-only primitives and an export layer:

* :mod:`repro.obs.trace` - hierarchical, aggregating span tracer
  with a module-flag-gated no-op fast path (``trace.ENABLED``).
* :mod:`repro.obs.metrics` - process-local counters, gauges and
  log-bucketed histograms behind a reset-in-place registry
  (``metrics.REGISTRY``).
* :mod:`repro.obs.export` - text rendering and JSON-reversible
  persistence (via :mod:`repro.core.serialization`), plus the shared
  ``format_bytes`` helper.

See the "Observability" section of ``EXPERIMENTS.md`` for the span
taxonomy, metric names, and the enable/disable + overhead contract.
"""

from . import metrics, trace
from .metrics import REGISTRY, MetricsRegistry, MetricsSnapshot
from .trace import SpanNode, collect, span, stage_summary

# The export layer pulls repro.core.serialization, whose package
# __init__ reaches back into repro.uwb - importing it eagerly here
# would close an import cycle through the instrumented AMS engines
# (repro.uwb -> ams.engine -> repro.obs).  Load it on first attribute
# access instead; the stdlib-only trace/metrics stay eager.
_EXPORT_NAMES = ("TraceReport", "format_bytes", "render_trace",
                 "export")


def __getattr__(name: str):
    if name in _EXPORT_NAMES:
        # importlib, not ``from . import export``: the from-import
        # form resolves the submodule via getattr on this package and
        # would recurse straight back into this hook.
        import importlib

        export = importlib.import_module(__name__ + ".export")
        globals()["export"] = export
        for sym in _EXPORT_NAMES[:-1]:
            globals()[sym] = getattr(export, sym)
        return globals()[name]
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "REGISTRY",
    "SpanNode",
    "TraceReport",
    "collect",
    "format_bytes",
    "metrics",
    "render_trace",
    "span",
    "stage_summary",
    "trace",
]
