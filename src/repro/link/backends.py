"""Pluggable execution backends behind the one front door.

A :class:`Backend` turns a :class:`~repro.link.spec.LinkSpec` into
results through four uniform operations:

* :meth:`Backend.ber_point` / :meth:`Backend.ber_curve` - Monte-Carlo
  BER (the figure-6 workload),
* :meth:`Backend.packet` - demodulate an already-conditioned waveform
  with ideal symbol alignment (the Table-1 / Phase-I workload),
* :meth:`Backend.ranging` - two-way ranging through the full
  packet-level receiver (the table-2 workload).

Two implementations ship:

* :class:`FastsimBackend` - the vectorized NumPy golden model
  (Phase I; "the Matlab description" of the paper),
* :class:`KernelBackend` - the mixed-signal testbench on the AMS
  kernel's reference or compiled engine (Phases II-IV, including
  transistor-netlist co-simulation for ``integrator="circuit"``).

Both resolve components from the spec the same way (integrators via
the :mod:`repro.link.registry`, BPF/ADC/receiver via the builders
below), which is what makes the cross-backend equivalence harness in
:mod:`repro.link.equivalence` a pure substitute-and-play comparison.
"""

from __future__ import annotations

import abc
import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.link.pipeline import InterfererPath
from repro.link.registry import resolve_integrator
from repro.link.spec import InterfererSpec, LinkSpec, NetworkSpec
from repro.uwb.adc import Adc
from repro.uwb.agc import Agc, TwoStageAgc
from repro.uwb.bpf import BandPassFilter
from repro.uwb.channel.awgn import noise_sigma_for_ebn0
from repro.uwb.channel.ieee802154a import ChannelRealization, Cm1Channel
from repro.uwb.fastsim import (
    AdaptiveStopping,
    BerResult,
    _ber_curve,
    _ber_sweep,
    _curve_result,
    _LinkCache,
    _simulate_ber_point,
    wilson_interval,
)
from repro.uwb.frontend import Vga
from repro.uwb.integrator import WindowIntegrator, nominal_gain
from repro.uwb.modulation import ppm_waveform, random_bits
from repro.uwb.ranging import RangingResult, TwoWayRanging
from repro.uwb.receiver import EnergyDetectionReceiver
from repro.uwb.system import AmsRunResult, build_ams_receiver


# ----------------------------------------------------------------------
# component builders (the only place BPF / ADC / VGA / receiver wiring
# is assembled from a spec)
# ----------------------------------------------------------------------

def build_bpf(spec: LinkSpec) -> BandPassFilter:
    """The receiver band-pass of *spec* (explicit band or
    pulse-derived)."""
    cfg = spec.config
    fe = spec.frontend
    if fe.band is None:
        return BandPassFilter.for_pulse(cfg.fs, cfg.pulse_tau,
                                        cfg.pulse_order,
                                        order=fe.bpf_order)
    return BandPassFilter(fe.band, cfg.fs, order=fe.bpf_order)


def build_adc(spec: LinkSpec) -> Adc:
    """The configuration-referred ADC of *spec* (packet receiver
    path)."""
    cfg = spec.config
    return Adc(bits=cfg.adc_bits, vref=cfg.adc_vref)


def build_channel_model(spec: LinkSpec) -> Cm1Channel | None:
    """The channel *generator* of *spec* (draws per-run realizations),
    or ``None`` for the ideal delay-only link."""
    if spec.channel.kind == "none":
        return None
    return Cm1Channel(spec.config.fs)


#: memoized deterministic channel realizations keyed by
#: ``(ChannelSpec, fs)``.  Every Eb/N0 point of a curve (and every
#: curve of a campaign over the same spec) reuses one CM1 draw instead
#: of redoing the identical multipath work; the realization is seeded
#: by the spec, so sharing cannot change any number.
_REALIZATION_MEMO: dict = {}

#: memoized pilot calibrations keyed by
#: ``(UwbConfig, ChannelSpec, FrontEndSpec)`` - everything
#: :class:`~repro.uwb.fastsim._LinkCache` depends on.
_CALIBRATION_MEMO: dict = {}

_MEMO_CAP = 128


def _memoized(memo: dict, key, build):
    hit = memo.get(key)
    if hit is None:
        hit = build()
        if len(memo) >= _MEMO_CAP:
            memo.clear()
        memo[key] = hit
    return hit


def build_channel_realization(spec: LinkSpec,
                              rng: np.random.Generator | None = None
                              ) -> ChannelRealization | None:
    """One deterministic channel realization for BER sweeps (seeded by
    ``spec.channel.realization_seed`` unless *rng* is given).

    The seeded (``rng=None``) path is memoized per
    ``(channel spec, fs)``: identical specs share one realization
    object across points, curves and campaigns.
    """
    model = build_channel_model(spec)
    if model is None:
        return None
    if rng is not None:
        return model.realize(spec.channel.distance, rng)
    return _memoized(
        _REALIZATION_MEMO, (spec.channel, spec.config.fs),
        lambda: model.realize(
            spec.channel.distance,
            np.random.default_rng(spec.channel.realization_seed)))


def build_receiver(spec: LinkSpec, *,
                   integrator: WindowIntegrator | None = None
                   ) -> EnergyDetectionReceiver:
    """The packet-level receiver of *spec*: VGA, ADC and AGC built
    from the configuration, the band-pass and AGC policy from the
    front-end spec, the integrator from the registry."""
    cfg = spec.config
    fe = spec.frontend
    if integrator is None:
        resolved = resolve_integrator(spec.integrator, phase=spec.phase,
                                      params=spec.integrator_params,
                                      cosim=False)
    else:
        resolved = integrator
    vga = Vga(step_db=cfg.agc_steps_db, max_db=cfg.agc_range_db)
    adc = build_adc(spec)
    k = nominal_gain(resolved)
    if k is None:
        raise ValueError(
            f"integrator {type(resolved).__name__} exposes no "
            "ideal_k/k gain; the AGC needs the nominal integration "
            "constant (add an ideal_k property or pass agc= yourself)")
    if fe.agc == "two_stage":
        agc: Agc = TwoStageAgc(vga, adc, k, fill=fe.agc_fill,
                               amp_target=fe.agc_amp_target)
    else:
        agc = Agc(vga, adc, k, fill=fe.agc_fill)
    return EnergyDetectionReceiver(
        cfg, resolved, vga=vga, adc=adc, agc=agc, bpf=build_bpf(spec),
        detection_factor=fe.detection_factor,
        toa_threshold_fraction=fe.toa_threshold_fraction)


def calibrate(spec: LinkSpec, *,
              channel: ChannelRealization | None = None) -> _LinkCache:
    """Pilot calibration of *spec*: per-bit received energy ``eb`` and
    clean peak amplitude ``peak`` after channel + band-pass (the
    quantities every BER point needs for noise sizing and drive
    scaling).

    Without an explicit *channel*, the calibration is memoized per
    ``(config, channel spec, front end)``: every Eb/N0 point - and
    every curve of a campaign over the same link - shares one pilot
    measurement instead of re-filtering an identical pilot.
    """
    if channel is not None:
        return _LinkCache(spec.config, channel, build_bpf(spec))
    return _memoized(
        _CALIBRATION_MEMO, (spec.config, spec.channel, spec.frontend),
        lambda: _LinkCache(spec.config, build_channel_realization(spec),
                           build_bpf(spec)))


def build_interferer_realization(intf: InterfererSpec, spec: LinkSpec
                                 ) -> ChannelRealization | None:
    """The interferer's own channel realization (independent CM1 draw
    from its ``realization_seed``), or ``None`` for an ideal path.

    Exactly the victim's construction path, pointed at the
    interferer's :class:`~repro.link.spec.ChannelSpec` - victim and
    interferer channels can never diverge in how they are built.
    """
    return build_channel_realization(
        dataclasses.replace(spec, channel=intf.channel))


def build_interferer_paths(network: NetworkSpec, *,
                           cache: _LinkCache | None = None
                           ) -> tuple[InterfererPath, ...]:
    """Resolve a :class:`NetworkSpec`'s interferers into calibrated
    :class:`~repro.link.pipeline.InterfererPath` values.

    SIR calibration: with ``rel_power_db`` set, the interferer's
    amplitude is chosen so that its received per-bit energy (its own
    pilot through its own channel and the victim's band-pass) relative
    to the victim's received per-bit energy equals ``rel_power_db``
    exactly.  With ``rel_power_db=None`` the amplitude is the victim's
    unit transmit amplitude and the received ratio emerges from the
    channels' path losses (the near-far configuration).

    Args:
        network: the multi-user scenario.
        cache: the victim's pilot calibration, if the caller already
            has one (avoids recomputing the pilot).
    """
    victim = network.victim
    cfg = victim.config
    if cache is None:
        cache = calibrate(victim)
    paths = []
    for intf in network.interferers:
        realization = build_interferer_realization(intf, victim)
        if intf.rel_power_db is None:
            amplitude = 1.0
        else:
            if realization is None and cache.channel is None:
                # Identical pilot chains measure identical energies;
                # reuse the victim's calibration outright.
                pilot = cache
            else:
                pilot = _LinkCache(cfg, realization, cache.bpf)
            amplitude = math.sqrt(10.0 ** (intf.rel_power_db / 10.0)
                                  * cache.eb / pilot.eb)
        paths.append(InterfererPath(
            amplitude=amplitude,
            offset_samples=int(round(intf.timing_offset * cfg.fs)),
            channel=realization))
    return tuple(paths)


def _as_link_spec(spec: LinkSpec | NetworkSpec,
                  operation: str) -> LinkSpec:
    """Reject :class:`NetworkSpec` where only single links run."""
    if isinstance(spec, NetworkSpec):
        raise TypeError(
            f"{operation} runs single links only; multi-user "
            "NetworkSpec is supported by FastsimBackend.ber_point / "
            "ber_curve (the golden model synthesizes and sums the "
            "per-transmitter waveforms)")
    return spec


@dataclass
class PacketResult:
    """Demodulation outcome of :meth:`FastsimBackend.packet` (duck-type
    compatible with :class:`~repro.uwb.system.AmsRunResult`).

    Attributes:
        bits: demodulated bits, one per full symbol in the waveform.
        slot_values: integrator outputs per slot, shape (n_symbols, 2).
        cpu_time / steps: zero placeholders (the vectorized path has no
            kernel loop to account).
    """

    bits: np.ndarray
    slot_values: np.ndarray
    cpu_time: float = 0.0
    steps: int = 0


# ----------------------------------------------------------------------
# the backend protocol
# ----------------------------------------------------------------------

class Backend(abc.ABC):
    """Uniform execution interface over a :class:`LinkSpec`.

    Every operation takes the spec first and an explicit NumPy
    generator where entropy is consumed; the optional ``integrator=``
    override substitutes a concrete model instance (e.g. a
    characterized surrogate from
    :func:`repro.core.characterize.build_surrogate`) for the spec's
    registry selection - the substitute-and-play escape hatch.
    """

    #: registry name of the backend (see :func:`get_backend`).
    name: str = "backend"

    def _integrator(self, spec: LinkSpec,
                    override: str | WindowIntegrator | None,
                    cosim: bool) -> WindowIntegrator | str:
        return resolve_integrator(
            override if override is not None else spec.integrator,
            phase=spec.phase, params=spec.integrator_params,
            cosim=cosim)

    @abc.abstractmethod
    def ber_point(self, spec: LinkSpec, ebn0_db: float,
                  rng: np.random.Generator, *,
                  integrator: str | WindowIntegrator | None = None,
                  **budget: Any) -> tuple[int, int]:
        """Monte-Carlo ``(errors, bits)`` at one Eb/N0 point."""

    @abc.abstractmethod
    def ber_curve(self, spec: LinkSpec, ebn0_grid,
                  rng: np.random.Generator, *,
                  label: str | None = None,
                  integrator: str | WindowIntegrator | None = None,
                  **budget: Any) -> BerResult:
        """BER versus Eb/N0 (returns Wilson-bounded counters)."""

    @abc.abstractmethod
    def packet(self, spec: LinkSpec, waveform: np.ndarray, *,
               integrator: str | WindowIntegrator | None = None,
               **options: Any):
        """Demodulate an already-conditioned waveform (post band-pass,
        at squarer drive) with ideal symbol alignment from t=0.

        Returns an object exposing ``bits`` and ``slot_values``.
        """

    def ranging(self, spec: LinkSpec, iterations: int,
                rng: np.random.Generator, *,
                integrator: str | WindowIntegrator | None = None,
                noise_sigma: float = 1e-4,
                tx_amplitude: float = 1.0) -> RangingResult:
        """Two-way ranging at ``spec.channel.distance``.

        The exchange runs through the full packet-level receiver
        (NE -> PS -> AGC -> sync -> demod) built by
        :func:`build_receiver`; backends share this waveform-level
        implementation and differ only through the integrator model
        the spec installs.
        """
        spec = _as_link_spec(spec, "ranging")
        resolved = self._integrator(spec, integrator, cosim=False)
        if not isinstance(resolved, WindowIntegrator):
            raise ValueError("ranging needs a behavioral integrator "
                             "model (co-simulation is not supported in "
                             "the packet-level receiver)")
        twr = TwoWayRanging(
            spec.config,
            lambda: build_receiver(spec, integrator=resolved),
            distance=spec.channel.distance,
            tx_amplitude=tx_amplitude,
            noise_sigma=noise_sigma,
            channel=build_channel_model(spec))
        return twr.run(iterations, rng)


def split_network(spec: LinkSpec | NetworkSpec
                  ) -> tuple[LinkSpec, NetworkSpec | None]:
    """``(victim, network)`` of a spec that may be multi-user
    (``network`` is ``None`` for a plain link)."""
    if isinstance(spec, NetworkSpec):
        return spec.victim, spec
    return spec, None


class FastsimBackend(Backend):
    """The vectorized Monte-Carlo golden model (Phase I).

    The BER operations additionally accept a
    :class:`~repro.link.spec.NetworkSpec`: the staged pipeline
    synthesizes one waveform per transmitter, sums the interferers at
    their calibrated amplitudes, and grades the victim's bits."""

    name = "fastsim"

    def _ber_adc(self, spec: LinkSpec) -> Adc | None:
        # "auto" is the golden model's native choice: an unquantized
        # decision path (the kernel harvest's "auto" is an auto-ranged
        # converter instead - its native stand-in for a converged AGC).
        if spec.frontend.adc == "config":
            return build_adc(spec)
        return None

    def ber_point(self, spec: LinkSpec | NetworkSpec, ebn0_db: float,
                  rng: np.random.Generator, *,
                  integrator: str | WindowIntegrator | None = None,
                  target_errors: int = 100,
                  max_bits: int = 200_000,
                  min_bits: int = 2_000,
                  chunk_bits: int = 1_000,
                  adaptive: AdaptiveStopping | None = None
                  ) -> tuple[int, int]:
        victim, network = split_network(spec)
        resolved = self._integrator(victim, integrator, cosim=False)
        # One (memoized) calibration drives the noise sizing, any
        # interferer SIR amplitudes and the point's channel/BPF.
        cache = calibrate(victim)
        extra: dict[str, Any] = dict(_cache=cache)
        if network is not None and network.interferers:
            extra["interferers"] = build_interferer_paths(network,
                                                          cache=cache)
        return _simulate_ber_point(
            victim.config, resolved, float(ebn0_db), rng,
            channel=cache.channel, bpf=cache.bpf,
            squarer_drive=victim.frontend.squarer_drive,
            adc=self._ber_adc(victim),
            target_errors=target_errors, max_bits=max_bits,
            min_bits=min_bits, chunk_bits=chunk_bits,
            adaptive=adaptive, **extra)

    def ber_curve(self, spec: LinkSpec | NetworkSpec, ebn0_grid,
                  rng: np.random.Generator, *,
                  label: str | None = None,
                  integrator: str | WindowIntegrator | None = None,
                  target_errors: int = 100,
                  max_bits: int = 200_000,
                  min_bits: int = 2_000,
                  chunk_bits: int = 1_000,
                  workers: int | None = None,
                  adaptive: AdaptiveStopping | None = None,
                  batch_points: bool | None = None) -> BerResult:
        victim, network = split_network(spec)
        resolved = self._integrator(victim, integrator, cosim=False)
        # One (memoized) calibration drives the noise sizing, any
        # interferer SIR amplitudes and every point of the curve.
        cache = calibrate(victim)
        extra: dict[str, Any] = dict(_cache=cache)
        if network is not None and network.interferers:
            extra["interferers"] = build_interferer_paths(network,
                                                          cache=cache)
        return _ber_curve(
            victim.config, resolved, ebn0_grid, rng,
            channel=cache.channel, bpf=cache.bpf,
            squarer_drive=victim.frontend.squarer_drive,
            adc=self._ber_adc(victim),
            target_errors=target_errors, max_bits=max_bits,
            min_bits=min_bits, chunk_bits=chunk_bits, label=label,
            workers=workers, adaptive=adaptive,
            batch_points=batch_points, **extra)

    def sweep(self, spec: LinkSpec | NetworkSpec, ebn0_grid,
              rng: np.random.Generator, *,
              integrators: tuple = ("ideal", "circuit"),
              labels: tuple | None = None,
              target_errors: int = 100,
              max_bits: int = 200_000,
              min_bits: int = 2_000,
              chunk_bits: int = 1_000,
              adaptive: AdaptiveStopping | None = None
              ) -> dict[str, BerResult]:
        """Batched multi-curve BER sweep: one shared front end, one
        decision stage per integrator, every (integrator, Eb/N0) cell
        graded from the same bit/noise draws.

        Each returned curve is bit-identical to
        :meth:`ber_curve` called with the same *rng* seeding
        convention (a fresh generator per point) - the batch only
        reorganizes the arithmetic, never the entropy stream.

        Args:
            integrators: registry names or model instances; their
                decision stages share the Tx/channel/AFE work.
            labels: one result key per integrator (defaults to the
                registry name / model name).
        """
        victim, network = split_network(spec)
        resolved = [self._integrator(victim, integ, cosim=False)
                    for integ in integrators]
        if labels is None:
            labels = tuple(
                integ if isinstance(integ, str) else r.name
                for integ, r in zip(integrators, resolved))
        if len(labels) != len(resolved):
            raise ValueError(
                f"{len(resolved)} integrators need {len(resolved)} "
                f"labels, got {len(labels)}")
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate sweep labels: {labels!r}")
        cache = calibrate(victim)
        extra: dict[str, Any] = {}
        if network is not None and network.interferers:
            extra["interferers"] = build_interferer_paths(network,
                                                          cache=cache)
        ebn0_grid = np.asarray(ebn0_grid, dtype=float)
        errors, bits = _ber_sweep(
            victim.config, tuple(resolved), ebn0_grid, rng,
            squarer_drive=victim.frontend.squarer_drive,
            adc=self._ber_adc(victim),
            target_errors=target_errors, max_bits=max_bits,
            min_bits=min_bits, chunk_bits=chunk_bits,
            adaptive=adaptive, _cache=cache, **extra)
        return {
            label: _curve_result(ebn0_grid, errors[k], bits[k],
                                 label, adaptive)
            for k, label in enumerate(labels)}

    def packet(self, spec: LinkSpec, waveform: np.ndarray, *,
               integrator: str | WindowIntegrator | None = None
               ) -> PacketResult:
        spec = _as_link_spec(spec, "FastsimBackend.packet")
        resolved = self._integrator(spec, integrator, cosim=False)
        cfg = spec.config
        waveform = np.asarray(waveform, dtype=float)
        n = len(waveform) // cfg.samples_per_symbol
        squared = np.square(
            waveform[:n * cfg.samples_per_symbol]
        ).reshape(n, 2, cfg.samples_per_slot)
        # Honor the spec's Integrate & Dump gate: the kernel testbench
        # dumps for t_dump and holds for t_hold within every slot, so
        # the golden decision integrates the same sample window.
        gate0 = int(round(spec.frontend.t_dump * cfg.fs))
        gate1 = cfg.samples_per_slot - int(round(
            spec.frontend.t_hold * cfg.fs))
        pairs = resolved.window_outputs(squared[:, :, gate0:gate1],
                                        cfg.dt)
        mode = spec.frontend.adc
        if mode == "none":
            quantized = pairs
        else:
            if mode == "config":
                adc = build_adc(spec)
            else:
                # Auto-ranged converter, mirroring the kernel harvest:
                # full scale tracks the observed slot peak (a converged
                # AGC stand-in), so both backends quantize alike.
                peak = float(np.max(pairs)) if pairs.size else 1.0
                adc = Adc(bits=cfg.adc_bits,
                          vref=max(peak, 1e-12) * 1.05)
            quantized = adc.quantize(np.maximum(pairs, 0.0))
        bits = (quantized[:, 1] > quantized[:, 0]).astype(np.int8)
        return PacketResult(bits=bits, slot_values=pairs)


class _NoQuantization:
    """Identity stand-in for an :class:`Adc`: implements the harvest's
    ``quantize`` so ``adc="none"`` really disables quantization on the
    kernel path too."""

    @staticmethod
    def quantize(values):
        return values


class KernelBackend(Backend):
    """The mixed-signal AMS-kernel testbench (Phases II-IV).

    Args:
        engine: kernel execution engine - ``"compiled"`` (segment
            vectorized) or ``"reference"`` (the lock-step oracle).
        cosim_substeps: circuit-level steps per kernel step when the
            spec selects the co-simulated netlist.
        preflight: statically lint a co-simulated netlist (error-level
            rules) before any MNA assembly; a broken circuit raises
            :class:`~repro.spice.errors.NetlistLintError` naming the
            rule and nodes.  ``False`` opts out.
    """

    name = "kernel"

    def __init__(self, engine: str = "compiled",
                 cosim_substeps: int = 1,
                 preflight: bool = True):
        self.engine = engine
        self.cosim_substeps = int(cosim_substeps)
        self.preflight = bool(preflight)

    def _harvest_adc(self, spec: LinkSpec
                     ) -> "Adc | _NoQuantization | None":
        # "auto" -> None lets the harvest auto-range its converter;
        # "config" -> the configuration-referred ADC; "none" disables
        # quantization outright, exactly as on the fastsim side.
        if spec.frontend.adc == "config":
            return build_adc(spec)
        if spec.frontend.adc == "none":
            return _NoQuantization()
        return None

    def packet(self, spec: LinkSpec, waveform: np.ndarray, *,
               integrator: str | WindowIntegrator | None = None,
               t_stop: float | None = None,
               record: bool = False) -> AmsRunResult:
        spec = _as_link_spec(spec, "KernelBackend.packet")
        resolved = self._integrator(spec, integrator, cosim=True)
        cfg = spec.config
        sim, harvest = build_ams_receiver(
            cfg, resolved, np.asarray(waveform, dtype=float),
            adc=self._harvest_adc(spec),
            cosim_substeps=self.cosim_substeps, record=record,
            t_hold=spec.frontend.t_hold, t_dump=spec.frontend.t_dump,
            engine=self.engine, preflight=self.preflight)
        if t_stop is None:
            n_symbols = len(waveform) // cfg.samples_per_symbol
            t_stop = n_symbols * cfg.symbol_period
        sim.run(t_stop)
        return harvest.result()

    def ber_point(self, spec: LinkSpec, ebn0_db: float,
                  rng: np.random.Generator, *,
                  integrator: str | WindowIntegrator | None = None,
                  target_errors: int = 25,
                  max_bits: int = 1_500,
                  min_bits: int = 200,
                  chunk_bits: int = 100,
                  adaptive: AdaptiveStopping | None = None
                  ) -> tuple[int, int]:
        """Monte-Carlo BER with kernel-demodulated decisions.

        The stimulus pipeline (pilot calibration, noise sizing, BPF,
        drive scaling) is identical to the golden model's; only the
        decision path runs through the event-driven testbench.  The
        default budget is far smaller than fastsim's - each chunk is a
        full kernel simulation.
        """
        spec = _as_link_spec(spec, "KernelBackend.ber_point")
        cfg = spec.config
        channel = build_channel_realization(spec)
        cache = calibrate(spec, channel=channel)
        sigma = noise_sigma_for_ebn0(cache.eb, float(ebn0_db), cfg.fs)
        scale = spec.frontend.squarer_drive / cache.peak
        n_sym = cfg.samples_per_symbol
        errors = 0
        bits_done = 0
        while bits_done < max_bits and (errors < target_errors
                                        or bits_done < min_bits):
            if (adaptive is not None and bits_done >= min_bits
                    and adaptive.resolved(errors, bits_done)):
                break
            n = min(chunk_bits, max_bits - bits_done)
            bits = random_bits(n, rng)
            wave = ppm_waveform(bits, cfg)
            if cache.channel is not None:
                wave = cache.channel.apply(wave)[
                    cache.channel.delay_samples:
                    cache.channel.delay_samples + n * n_sym]
            noisy = wave + rng.normal(0.0, sigma, size=len(wave))
            driven = scale * cache.bpf(noisy)[:n * n_sym]
            decided = self.packet(spec, driven,
                                  integrator=integrator).bits
            errors += int(np.count_nonzero(decided != bits[:len(decided)]))
            bits_done += n
        return errors, bits_done

    def ber_curve(self, spec: LinkSpec, ebn0_grid,
                  rng: np.random.Generator, *,
                  label: str | None = None,
                  integrator: str | WindowIntegrator | None = None,
                  target_errors: int = 25,
                  max_bits: int = 1_500,
                  min_bits: int = 200,
                  chunk_bits: int = 100,
                  workers: int | None = None,
                  adaptive: AdaptiveStopping | None = None,
                  batch_points: bool | None = None) -> BerResult:
        """Serial BER sweep (``workers`` is accepted for signature
        uniformity and ignored: each point is a kernel simulation and
        fan-out belongs at the campaign layer).  ``batch_points`` may
        only be falsy - the event-driven testbench has no batched
        path."""
        if batch_points:
            raise ValueError(
                "KernelBackend has no batched sweep path; pass "
                "batch_points=False (or use backend='fastsim')")
        ebn0_grid = np.asarray(ebn0_grid, dtype=float)
        errors = np.zeros(len(ebn0_grid), dtype=np.int64)
        bits = np.zeros(len(ebn0_grid), dtype=np.int64)
        for i, point in enumerate(ebn0_grid):
            e, b = self.ber_point(
                spec, float(point), rng, integrator=integrator,
                target_errors=target_errors, max_bits=max_bits,
                min_bits=min_bits, chunk_bits=chunk_bits,
                adaptive=adaptive)
            errors[i] = e
            bits[i] = b
        confidence = (adaptive.confidence if adaptive is not None
                      else 0.95)
        bounds = np.array([wilson_interval(int(e), int(b), confidence)
                           if b else (0.0, 1.0)
                           for e, b in zip(errors, bits)])
        if label is None:
            resolved = self._integrator(spec, integrator, cosim=True)
            label = resolved if isinstance(resolved, str) \
                else resolved.name
        return BerResult(
            ebn0_db=ebn0_grid, ber=errors / np.maximum(bits, 1),
            errors=errors, bits=bits, label=label,
            ci_low=bounds[:, 0] if len(bounds) else np.zeros(0),
            ci_high=bounds[:, 1] if len(bounds) else np.zeros(0),
            confidence=confidence)


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------

#: backend name -> constructor (extensible via :func:`register_backend`).
BACKENDS: dict[str, Callable[..., Backend]] = {
    FastsimBackend.name: FastsimBackend,
    KernelBackend.name: KernelBackend,
}


def register_backend(name: str,
                     factory: Callable[..., Backend]) -> None:
    """Register a new backend constructor under *name*."""
    if name in BACKENDS:
        raise KeyError(f"backend {name!r} is already registered")
    BACKENDS[name] = factory


def get_backend(name: str | Backend, **kwargs: Any) -> Backend:
    """Instantiate a backend by name (instances pass through).

    Extra keyword arguments go to the constructor, e.g.
    ``get_backend("kernel", engine="reference")``.
    """
    if isinstance(name, Backend):
        return name
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(f"unknown backend {name!r}; registered: "
                         f"{', '.join(sorted(BACKENDS))}") from None
    return factory(**kwargs)
