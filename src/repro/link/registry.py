"""Integrator construction routed through the entity registry.

The paper re-binds one entity (the Integrate & Dump) to a different
architecture per refinement phase without touching the testbench.  This
module gives that discipline one implementation: integrator *names*
map to ``(block, phase)`` bindings in a :class:`ModelRegistry`, and
every backend resolves :attr:`LinkSpec.integrator` through it — the
ad-hoc string dispatch that used to live in ``uwb/system.py``
(``make_integrator``) is absorbed here.

Default bindings:

==============  =======  ==============================================
name            phase    implementation
==============  =======  ==============================================
``ideal``       II       :class:`~repro.uwb.integrator.IdealIntegrator`
``two_pole``    IV       :class:`~repro.uwb.integrator.TwoPoleIntegrator`
``surrogate``   III      :class:`~repro.uwb.integrator.CircuitSurrogateIntegrator`
``circuit``     III      the transistor netlist co-simulated in the
                         loop (kernel backend); behavioral backends
                         substitute the ``surrogate`` stand-in
==============  =======  ==============================================

Custom models register with :func:`register_integrator` and are then
selectable by name from any :class:`~repro.link.spec.LinkSpec`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.phases import Phase
from repro.core.registry import ModelRegistry
from repro.uwb.integrator import (
    CircuitSurrogateIntegrator,
    IdealIntegrator,
    TwoPoleIntegrator,
    WindowIntegrator,
)

#: registry block namespace of integrator bindings.
INTEGRATOR_BLOCK_PREFIX = "integrator."

#: sentinel returned for the co-simulated transistor netlist: the AMS
#: testbench replaces it with a :class:`~repro.ams.cosim.SpiceBlock`.
COSIM = "circuit"


def cosim_netlist() -> str:
    """Factory of the ``circuit`` binding (the co-simulation marker)."""
    return COSIM


def check_integrator_interface(block: str, impl: Any) -> None:
    """Terminal-compatibility check of integrator bindings: every
    implementation must speak the :class:`WindowIntegrator` API (the
    co-simulation marker is exempt; its compatibility is electrical
    and enforced by the testbench netlist)."""
    if impl == COSIM:
        return
    for attr in ("window_outputs", "make_state"):
        if not callable(getattr(impl, attr, None)):
            raise TypeError(
                f"{block!r} implementation {type(impl).__name__} lacks "
                f"the WindowIntegrator API (missing {attr}())")


def default_link_registry() -> ModelRegistry:
    """A fresh registry with the built-in integrator bindings."""
    registry = ModelRegistry(interface_check=check_integrator_interface)
    registry.register(
        INTEGRATOR_BLOCK_PREFIX + "ideal", Phase.II, IdealIntegrator,
        description="ideal gated integrator vo' = K vin")
    registry.register(
        INTEGRATOR_BLOCK_PREFIX + "two_pole", Phase.IV, TwoPoleIntegrator,
        description="DC gain + two real poles (the paper's VHDL-AMS "
                    "model)")
    registry.register(
        INTEGRATOR_BLOCK_PREFIX + "surrogate", Phase.III,
        CircuitSurrogateIntegrator,
        description="two poles + measured input compression (fast "
                    "ELDO stand-in)")
    registry.register(
        INTEGRATOR_BLOCK_PREFIX + "circuit", Phase.III, cosim_netlist,
        description="transistor netlist co-simulated in the loop")
    return registry


_REGISTRY: ModelRegistry | None = None


def link_registry() -> ModelRegistry:
    """The process-wide default integrator registry (built lazily)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = default_link_registry()
    return _REGISTRY


def register_integrator(name: str, phase: Phase | int,
                        factory: Callable[..., Any],
                        description: str = "",
                        registry: ModelRegistry | None = None):
    """Bind *factory* as integrator *name* at *phase* (then any
    :class:`~repro.link.spec.LinkSpec` can select it by name)."""
    registry = registry if registry is not None else link_registry()
    return registry.register(INTEGRATOR_BLOCK_PREFIX + name, phase,
                             factory, description=description)


def integrator_names(registry: ModelRegistry | None = None) -> list[str]:
    """Registered integrator names, sorted."""
    registry = registry if registry is not None else link_registry()
    prefix = INTEGRATOR_BLOCK_PREFIX
    return sorted(b[len(prefix):] for b in registry.blocks()
                  if b.startswith(prefix))


def resolve_integrator(integrator: str | WindowIntegrator, *,
                       phase: Phase | int | None = None,
                       params: Mapping[str, Any] |
                       tuple[tuple[str, Any], ...] = (),
                       registry: ModelRegistry | None = None,
                       cosim: bool = False) -> WindowIntegrator | str:
    """Resolve an integrator selection to a model instance.

    Args:
        integrator: a :class:`WindowIntegrator` instance (passed
            through) or a registered name.
        phase: explicit phase selection; ``None`` takes the name's most
            refined registered phase.
        params: constructor overrides forwarded to the bound factory.
        registry: registry to resolve against (default: the
            process-wide :func:`link_registry`).
        cosim: whether the caller can host true circuit co-simulation.
            With ``cosim=False`` the ``"circuit"`` name resolves to the
            behavioral ``"surrogate"`` stand-in (the paper's fast
            substitute for ELDO-in-the-loop); with ``cosim=True`` it
            resolves to the :data:`COSIM` marker.

    Returns:
        A :class:`WindowIntegrator`, or the :data:`COSIM` marker string.

    Raises:
        ValueError: unknown name or phase without a binding.
    """
    if isinstance(integrator, WindowIntegrator):
        return integrator
    if not isinstance(integrator, str):
        raise TypeError(f"integrator spec must be a name or a "
                        f"WindowIntegrator, not {type(integrator).__name__}")
    registry = registry if registry is not None else link_registry()
    name = integrator
    if name == "circuit" and not cosim:
        name = "surrogate"
    block = INTEGRATOR_BLOCK_PREFIX + name
    phases = registry.phases_of(block)
    if not phases:
        raise ValueError(
            f"unknown integrator spec {integrator!r}; registered: "
            f"{', '.join(integrator_names(registry))}")
    if phase is None:
        selected = phases[-1]
    else:
        selected = Phase(phase)
        if selected not in phases:
            raise ValueError(
                f"integrator {name!r} has no {selected} binding; "
                f"available: {[str(p) for p in phases]}")
    factory = registry.binding(block, selected).factory
    kwargs = dict(params)
    if not kwargs:
        return factory()
    if factory is cosim_netlist:
        # Fail with intent, not with a TypeError from the zero-arg
        # sentinel factory: the co-simulated netlist has no behavioral
        # constructor to parameterize.
        raise ValueError(
            "the co-simulated 'circuit' integrator takes no "
            "integrator_params; parameterize the behavioral "
            "'surrogate'/'two_pole' models instead (or register a "
            "custom netlist binding)")
    return factory(**kwargs)
