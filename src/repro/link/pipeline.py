"""Staged signal-path pipeline of the golden-model link simulation.

The vectorized BER engine used to be one monolithic loop
(``repro.uwb.fastsim._simulate_ber_point``): pulse train, channel,
noise, band-pass, squarer, integrator and decision fused into a single
function body.  That shape made the single-transmitter assumption
structural - there was no seam where a second transmitter's waveform
could enter the chunk.  This module is the refactor that opens that
seam: the chunk computation becomes a :class:`SignalPipeline` of five
composable stages operating on a batched :class:`LinkState`,

    :class:`TxStage` -> :class:`ChannelStage` -> :class:`CombineStage`
    -> :class:`AnalogFrontEndStage` -> :class:`DecisionStage`

with multi-user interference entering at the :class:`CombineStage`,
which synthesizes and sums one waveform per :class:`InterfererPath`
(relative amplitude, circular timing offset, optional independent
channel realization) before the victim's AWGN is added.

**Bit-identity contract.** With no interferers the pipeline performs
exactly the arithmetic of the historic monolithic loop, on exactly the
same generator draw order (victim bits, then noise), so fixed-seed
error/bit counters are bit-for-bit identical to the pre-refactor
engine - cached campaign results and the committed ``BENCH_*`` numbers
stay valid (``tests/network/test_pipeline_parity.py`` pins this
against a verbatim copy of the legacy loop).  With interferers, each
interferer's bits are drawn from the same generator *between* the
victim bits and the noise, in interferer order.

Stages are deliberately dependency-light (uwb building blocks only);
:mod:`repro.link.backends` resolves :class:`~repro.link.spec.NetworkSpec`
interference descriptions into :class:`InterfererPath` values (SIR
calibration needs the pilot energies, which live with the backends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.uwb.adc import Adc
from repro.uwb.bpf import BandPassFilter
from repro.uwb.channel.ieee802154a import ChannelRealization
from repro.uwb.config import UwbConfig
from repro.uwb.integrator import WindowIntegrator
from repro.uwb.modulation import ppm_waveform, random_bits

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fastsim
    # imports this module lazily inside its point loop).
    from repro.uwb.fastsim import AdaptiveStopping


@dataclass
class LinkState:
    """Batched per-chunk state flowing through the pipeline.

    One state is one Monte-Carlo chunk of ``n`` symbols.  Stages
    mutate it in place, each consuming the fields of its predecessor:

    Attributes:
        n: symbols in this chunk.
        rng: the chunk's entropy source (bit draws and noise).
        bits: victim payload bits (set by :class:`TxStage`).
        waveform: clean waveform at the antenna reference plane -
            victim only after :class:`ChannelStage`, victim plus scaled
            interferers after :class:`CombineStage`.
        interferer_bits: payload bits drawn per interferer (diagnostic;
            the decision only grades the victim's bits).
        noisy: waveform after AWGN (set by :class:`CombineStage`).
        squared: squarer output reshaped to ``(n, 2, samples_per_slot)``
            (set by :class:`AnalogFrontEndStage`).
        slot_values: integrator outputs per slot, shape ``(n, 2)``,
            post-ADC when the pipeline quantizes (set by
            :class:`DecisionStage`).
        decisions: larger-slot decisions, one int8 bit per symbol.
    """

    n: int
    rng: np.random.Generator
    bits: np.ndarray | None = None
    waveform: np.ndarray | None = None
    interferer_bits: list[np.ndarray] = field(default_factory=list)
    noisy: np.ndarray | None = None
    squared: np.ndarray | None = None
    slot_values: np.ndarray | None = None
    decisions: np.ndarray | None = None

    def error_count(self) -> int:
        """Victim bit errors decided in this chunk."""
        if self.decisions is None or self.bits is None:
            raise ValueError("chunk has not been decided yet")
        return int(np.count_nonzero(self.decisions != self.bits))


class Stage:
    """One step of the signal path; mutates the :class:`LinkState`."""

    def process(self, state: LinkState) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class InterfererPath:
    """One resolved interfering transmitter, ready to synthesize.

    This is the *execution-level* description (everything calibrated
    to concrete numbers); the declarative description is
    :class:`repro.link.spec.InterfererSpec`, resolved into paths by
    :func:`repro.link.backends.build_interferer_paths`.

    Attributes:
        amplitude: linear amplitude applied to the interferer's unit
            pulse train (after its channel).  SIR calibration happens
            upstream: the amplitude already accounts for both pilots'
            received energies.
        offset_samples: circular timing offset of the interferer's
            waveform within the chunk (``np.roll`` convention: positive
            shifts the interferer later).  Circular shifting keeps the
            chunk statistics stationary - the few symbols wrapping
            around the chunk edge see the tail of the interferer
            stream, which is statistically identical.
        channel: optional multipath realization of the interferer's own
            propagation path (``None`` = ideal link); applied and
            delay-trimmed exactly like the victim's.
    """

    amplitude: float
    offset_samples: int = 0
    channel: ChannelRealization | None = None

    def synthesize(self, state: LinkState, config: UwbConfig) -> np.ndarray:
        """Draw this interferer's bits from the chunk's generator and
        return its scaled, offset waveform (length ``n *
        samples_per_symbol``)."""
        n_sym = config.samples_per_symbol
        bits = random_bits(state.n, state.rng)
        state.interferer_bits.append(bits)
        wave = ppm_waveform(bits, config)
        if self.channel is not None:
            wave = self.channel.apply(wave)[
                self.channel.delay_samples:
                self.channel.delay_samples + state.n * n_sym]
        if self.offset_samples:
            wave = np.roll(wave, self.offset_samples)
        return self.amplitude * wave


@dataclass
class TxStage(Stage):
    """Victim transmitter: draw payload bits, synthesize the 2-PPM
    pulse train."""

    config: UwbConfig

    def process(self, state: LinkState) -> None:
        state.bits = random_bits(state.n, state.rng)
        state.waveform = ppm_waveform(state.bits, self.config)


@dataclass
class ChannelStage(Stage):
    """Victim propagation: convolve with the realization and trim the
    propagation delay to whole symbols (a no-op on the ideal link)."""

    config: UwbConfig
    channel: ChannelRealization | None = None

    def process(self, state: LinkState) -> None:
        if self.channel is None:
            return
        n_sym = self.config.samples_per_symbol
        state.waveform = self.channel.apply(state.waveform)[
            self.channel.delay_samples:
            self.channel.delay_samples + state.n * n_sym]


@dataclass
class CombineStage(Stage):
    """Sum interfering transmitters into the victim waveform, then add
    the victim-referred AWGN.

    Interferers are synthesized per chunk (fresh bits from the chunk's
    generator, in path order) and summed at their calibrated
    amplitudes.  ``sigma`` is sized against the *victim's* pilot energy
    - interference is extra disturbance on top of the thermal-noise
    operating point, matching the standard SIR convention.

    With no interferers the victim waveform passes through untouched
    (not even an add of zero), preserving the single-link
    bit-identity contract of the module docstring.
    """

    config: UwbConfig
    sigma: float
    interferers: tuple[InterfererPath, ...] = ()

    def __post_init__(self) -> None:
        self.interferers = tuple(self.interferers)
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")

    def process(self, state: LinkState) -> None:
        for path in self.interferers:
            state.waveform = state.waveform + path.synthesize(
                state, self.config)
        state.noisy = state.waveform + state.rng.normal(
            0.0, self.sigma, size=len(state.waveform))


@dataclass
class AnalogFrontEndStage(Stage):
    """Receiver analog front end: band-pass, AGC drive scaling, squarer
    (output reshaped into per-slot windows)."""

    config: UwbConfig
    bpf: BandPassFilter
    scale: float

    def process(self, state: LinkState) -> None:
        cfg = self.config
        filtered = self.bpf(state.noisy)[:state.n * cfg.samples_per_symbol]
        driven = self.scale * filtered
        state.squared = np.square(driven).reshape(
            state.n, 2, cfg.samples_per_slot)


@dataclass
class DecisionStage(Stage):
    """Integrator model per slot, optional ADC, larger-slot decision."""

    config: UwbConfig
    integrator: WindowIntegrator
    adc: Adc | None = None

    def process(self, state: LinkState) -> None:
        values = self.integrator.window_outputs(state.squared,
                                                self.config.dt)
        if self.adc is not None:
            values = self.adc.quantize(values)
        state.slot_values = values
        state.decisions = (values[:, 1] > values[:, 0]).astype(np.int8)


@dataclass
class SignalPipeline:
    """An ordered stage composition executable chunk by chunk."""

    stages: tuple[Stage, ...]

    def __post_init__(self) -> None:
        self.stages = tuple(self.stages)
        if not self.stages:
            raise ValueError("pipeline needs at least one stage")

    def run_chunk(self, n: int, rng: np.random.Generator) -> LinkState:
        """Push one fresh chunk of *n* symbols through every stage."""
        if n <= 0:
            raise ValueError("chunk size must be positive")
        state = LinkState(n=n, rng=rng)
        for stage in self.stages:
            stage.process(state)
        return state

    def stage(self, kind: type) -> Stage:
        """The first stage of class *kind* (test/diagnostic hook)."""
        for stage in self.stages:
            if isinstance(stage, kind):
                return stage
        raise KeyError(f"no {kind.__name__} in pipeline")


def build_link_pipeline(config: UwbConfig, *,
                        integrator: WindowIntegrator,
                        bpf: BandPassFilter,
                        sigma: float,
                        scale: float,
                        channel: ChannelRealization | None = None,
                        adc: Adc | None = None,
                        interferers: Sequence[InterfererPath] = ()
                        ) -> SignalPipeline:
    """The canonical five-stage BER pipeline for one operating point.

    Args:
        config: link timing/sampling configuration.
        integrator: resolved integrator model deciding slot energies.
        bpf: receiver band-pass (pass the calibration pilot's filter so
            noise sizing and the data path agree).
        sigma: per-sample AWGN standard deviation at this Eb/N0.
        scale: drive scaling mapping the clean filtered peak onto the
            squarer operating point.
        channel: victim multipath realization (``None`` = ideal link).
        adc: optional converter in the decision path.
        interferers: resolved interfering transmitters summed in at the
            :class:`CombineStage`.
    """
    return SignalPipeline(stages=(
        TxStage(config),
        ChannelStage(config, channel),
        CombineStage(config, sigma, tuple(interferers)),
        AnalogFrontEndStage(config, bpf, scale),
        DecisionStage(config, integrator, adc),
    ))


def run_ber_point(pipeline: SignalPipeline, rng: np.random.Generator, *,
                  target_errors: int = 100,
                  max_bits: int = 200_000,
                  min_bits: int = 2_000,
                  chunk_bits: int = 1_000,
                  adaptive: "AdaptiveStopping | None" = None
                  ) -> tuple[int, int]:
    """Monte-Carlo chunk loop over *pipeline* (the historic stopping
    rule, verbatim: hard ``target_errors`` / ``max_bits`` caps plus the
    optional sequential :class:`~repro.uwb.fastsim.AdaptiveStopping`
    early exit checked after each chunk past ``min_bits``).

    Returns:
        ``(errors, bits)`` counters.
    """
    errors = 0
    bits_done = 0
    while bits_done < max_bits and (errors < target_errors
                                    or bits_done < min_bits):
        if (adaptive is not None and bits_done >= min_bits
                and adaptive.resolved(errors, bits_done)):
            break
        n = min(chunk_bits, max_bits - bits_done)
        state = pipeline.run_chunk(n, rng)
        errors += state.error_count()
        bits_done += n
    return errors, bits_done
