"""Staged signal-path pipeline of the golden-model link simulation.

The vectorized BER engine used to be one monolithic loop
(``repro.uwb.fastsim._simulate_ber_point``): pulse train, channel,
noise, band-pass, squarer, integrator and decision fused into a single
function body.  That shape made the single-transmitter assumption
structural - there was no seam where a second transmitter's waveform
could enter the chunk.  This module is the refactor that opens that
seam: the chunk computation becomes a :class:`SignalPipeline` of five
composable stages operating on a batched :class:`LinkState`,

    :class:`TxStage` -> :class:`ChannelStage` -> :class:`CombineStage`
    -> :class:`AnalogFrontEndStage` -> :class:`DecisionStage`

with multi-user interference entering at the :class:`CombineStage`,
which synthesizes and sums one waveform per :class:`InterfererPath`
(relative amplitude, circular timing offset, optional independent
channel realization) before the victim's AWGN is added.

**Bit-identity contract.** With no interferers the pipeline performs
exactly the arithmetic of the historic monolithic loop, on exactly the
same generator draw order (victim bits, then noise), so fixed-seed
error/bit counters are bit-for-bit identical to the pre-refactor
engine - cached campaign results and the committed ``BENCH_*`` numbers
stay valid (``tests/network/test_pipeline_parity.py`` pins this
against a verbatim copy of the legacy loop).  With interferers, each
interferer's bits are drawn from the same generator *between* the
victim bits and the noise, in interferer order.

**Scenario batch axis.** Beyond the per-chunk symbol batching, the
pipeline carries an optional *scenario* axis: one :class:`LinkState`
can hold a whole family of operating points that share every draw
(victim bits, interferer bits, the unit noise process) and differ only
in their noise scale.  :meth:`SignalPipeline.run_chunk` takes a
``sigmas`` vector to activate it - the :class:`CombineStage` then
fans the shared chunk out into an ``(n_scenarios, n_samples)`` batch
(``waveform + sigmas[:, None] * unit_noise``), and the downstream
stages operate on the leading axis transparently.  Because
``rng.normal(0, sigma, n)`` draws ``sigma * standard_normal(n)``
bitwise, scenario *i* of the batch is bit-identical to a per-point
run at ``sigmas[i]`` from the same generator state - the invariant
:func:`run_ber_sweep` builds the whole-curve sweep on (pinned by
``tests/network/test_batched_sweep.py``).

Stages are deliberately dependency-light (uwb building blocks only);
:mod:`repro.link.backends` resolves :class:`~repro.link.spec.NetworkSpec`
interference descriptions into :class:`InterfererPath` values (SIR
calibration needs the pilot energies, which live with the backends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.obs import trace as _trace
from repro.uwb.adc import Adc
from repro.uwb.bpf import BandPassFilter
from repro.uwb.channel.ieee802154a import ChannelRealization
from repro.uwb.config import UwbConfig
from repro.uwb.integrator import WindowIntegrator
from repro.uwb.modulation import ppm_waveform, random_bits

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fastsim
    # imports this module lazily inside its point loop).
    from repro.uwb.fastsim import AdaptiveStopping


@dataclass
class LinkState:
    """Batched per-chunk state flowing through the pipeline.

    One state is one Monte-Carlo chunk of ``n`` symbols.  Stages
    mutate it in place, each consuming the fields of its predecessor:

    Attributes:
        n: symbols in this chunk.
        rng: the chunk's entropy source (bit draws and noise).
        sigmas: optional per-scenario noise standard deviations.  When
            set, the :class:`CombineStage` fans the shared chunk out
            into an ``(n_scenarios, ...)`` batch - one row per noise
            scale over identical bit/interferer/noise draws - and
            every downstream field grows that leading axis.
        bits: victim payload bits (set by :class:`TxStage`; shared
            across scenario rows).
        waveform: clean waveform at the antenna reference plane -
            victim only after :class:`ChannelStage`, victim plus scaled
            interferers after :class:`CombineStage`.
        interferer_bits: payload bits drawn per interferer (diagnostic;
            the decision only grades the victim's bits).
        noisy: waveform after AWGN (set by :class:`CombineStage`);
            ``(n_scenarios, n_samples)`` in batched mode.
        squared: squarer output reshaped to
            ``(..., n, 2, samples_per_slot)`` (set by
            :class:`AnalogFrontEndStage`).
        slot_values: integrator outputs per slot, shape ``(..., n, 2)``,
            post-ADC when the pipeline quantizes (set by
            :class:`DecisionStage`).
        decisions: larger-slot decisions, one int8 bit per symbol
            (per scenario row in batched mode).
    """

    n: int
    rng: np.random.Generator
    sigmas: np.ndarray | None = None
    bits: np.ndarray | None = None
    waveform: np.ndarray | None = None
    interferer_bits: list[np.ndarray] = field(default_factory=list)
    noisy: np.ndarray | None = None
    squared: np.ndarray | None = None
    slot_values: np.ndarray | None = None
    decisions: np.ndarray | None = None

    def error_count(self) -> int:
        """Victim bit errors decided in this chunk."""
        if self.decisions is None or self.bits is None:
            raise ValueError("chunk has not been decided yet")
        return int(np.count_nonzero(self.decisions != self.bits))

    def error_counts(self) -> np.ndarray:
        """Victim bit errors per scenario row (batched mode)."""
        if self.decisions is None or self.bits is None:
            raise ValueError("chunk has not been decided yet")
        return np.count_nonzero(self.decisions != self.bits, axis=-1)


class Stage:
    """One step of the signal path; mutates the :class:`LinkState`."""

    #: Span name this stage reports under when tracing is enabled
    #: (see :mod:`repro.obs.trace`); subclasses override.
    span_name = "link.stage"

    def process(self, state: LinkState) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class InterfererPath:
    """One resolved interfering transmitter, ready to synthesize.

    This is the *execution-level* description (everything calibrated
    to concrete numbers); the declarative description is
    :class:`repro.link.spec.InterfererSpec`, resolved into paths by
    :func:`repro.link.backends.build_interferer_paths`.

    Attributes:
        amplitude: linear amplitude applied to the interferer's unit
            pulse train (after its channel).  SIR calibration happens
            upstream: the amplitude already accounts for both pilots'
            received energies.
        offset_samples: circular timing offset of the interferer's
            waveform within the chunk (``np.roll`` convention: positive
            shifts the interferer later).  Circular shifting keeps the
            chunk statistics stationary - the few symbols wrapping
            around the chunk edge see the tail of the interferer
            stream, which is statistically identical.
        channel: optional multipath realization of the interferer's own
            propagation path (``None`` = ideal link); applied and
            delay-trimmed exactly like the victim's.
    """

    amplitude: float
    offset_samples: int = 0
    channel: ChannelRealization | None = None

    def synthesize(self, state: LinkState, config: UwbConfig) -> np.ndarray:
        """Draw this interferer's bits from the chunk's generator and
        return its scaled, offset waveform (length ``n *
        samples_per_symbol``)."""
        n_sym = config.samples_per_symbol
        bits = random_bits(state.n, state.rng)
        state.interferer_bits.append(bits)
        wave = ppm_waveform(bits, config)
        if self.channel is not None:
            wave = self.channel.apply(wave)[
                self.channel.delay_samples:
                self.channel.delay_samples + state.n * n_sym]
        if self.offset_samples:
            wave = np.roll(wave, self.offset_samples)
        return self.amplitude * wave


@dataclass
class TxStage(Stage):
    """Victim transmitter: draw payload bits, synthesize the 2-PPM
    pulse train."""

    config: UwbConfig
    span_name = "link.tx"

    def process(self, state: LinkState) -> None:
        state.bits = random_bits(state.n, state.rng)
        state.waveform = ppm_waveform(state.bits, self.config)


@dataclass
class ChannelStage(Stage):
    """Victim propagation: convolve with the realization and trim the
    propagation delay to whole symbols (a no-op on the ideal link)."""

    config: UwbConfig
    channel: ChannelRealization | None = None
    span_name = "link.channel"

    def process(self, state: LinkState) -> None:
        if self.channel is None:
            return
        n_sym = self.config.samples_per_symbol
        state.waveform = self.channel.apply(state.waveform)[
            self.channel.delay_samples:
            self.channel.delay_samples + state.n * n_sym]


@dataclass
class CombineStage(Stage):
    """Sum interfering transmitters into the victim waveform, then add
    the victim-referred AWGN.

    Interferers are synthesized per chunk (fresh bits from the chunk's
    generator, in path order) and summed at their calibrated
    amplitudes.  ``sigma`` is sized against the *victim's* pilot energy
    - interference is extra disturbance on top of the thermal-noise
    operating point, matching the standard SIR convention.

    With no interferers the victim waveform passes through untouched
    (not even an add of zero), preserving the single-link
    bit-identity contract of the module docstring.
    """

    config: UwbConfig
    sigma: float
    interferers: tuple[InterfererPath, ...] = ()
    span_name = "link.combine"

    def __post_init__(self) -> None:
        self.interferers = tuple(self.interferers)
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")

    def process(self, state: LinkState) -> None:
        for path in self.interferers:
            state.waveform = state.waveform + path.synthesize(
                state, self.config)
        if state.sigmas is not None:
            # Scenario batch: one shared unit-variance noise process,
            # scaled per row.  ``rng.normal(0, sigma, n)`` draws
            # ``sigma * standard_normal(n)`` bitwise, so row i equals
            # a per-point run at sigmas[i] from this generator state.
            # The scale and add land in one preallocated batch buffer
            # (IEEE addition commutes bitwise, so += keeps the
            # waveform + sigma*unit identity) - one less full-size
            # temporary per chunk on the hottest allocation.
            unit = state.rng.standard_normal(len(state.waveform))
            noisy = np.multiply(
                state.sigmas[:, None], unit[None, :],
                out=np.empty((len(state.sigmas), unit.size)))
            noisy += state.waveform
            state.noisy = noisy
        else:
            state.noisy = state.waveform + state.rng.normal(
                0.0, self.sigma, size=len(state.waveform))


@dataclass
class AnalogFrontEndStage(Stage):
    """Receiver analog front end: band-pass, AGC drive scaling, squarer
    (output reshaped into per-slot windows)."""

    config: UwbConfig
    bpf: BandPassFilter
    scale: float
    span_name = "link.afe"

    def process(self, state: LinkState) -> None:
        cfg = self.config
        # Filtering, scaling and squaring act along the last (sample)
        # axis, so the optional scenario batch axis passes through
        # untouched: each row is processed exactly as a lone chunk.
        # The filter output is ours alone (sosfilt copies its input),
        # so drive scaling and squaring run in place - two fewer
        # full-size temporaries per chunk, identical arithmetic.
        filtered = self.bpf(state.noisy)[
            ..., :state.n * cfg.samples_per_symbol]
        if not filtered.flags.writeable:  # pragma: no cover - guard
            filtered = filtered.copy()
        np.multiply(filtered, self.scale, out=filtered)
        np.square(filtered, out=filtered)
        state.squared = filtered.reshape(
            filtered.shape[:-1] + (state.n, 2, cfg.samples_per_slot))


@dataclass
class DecisionStage(Stage):
    """Integrator model per slot, optional ADC, larger-slot decision."""

    config: UwbConfig
    integrator: WindowIntegrator
    adc: Adc | None = None
    span_name = "link.decision"

    def decide(self, squared: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """``(slot_values, decisions)`` for a squared-slot array of
        shape ``(..., n, 2, samples_per_slot)`` (any leading batch
        axes; the batched sweep driver calls this on scenario-row
        subsets)."""
        values = self.integrator.window_outputs(squared, self.config.dt)
        if self.adc is not None:
            values = self.adc.quantize(values)
        decisions = (values[..., 1] > values[..., 0]).astype(np.int8)
        return values, decisions

    def process(self, state: LinkState) -> None:
        state.slot_values, state.decisions = self.decide(state.squared)


@dataclass
class SignalPipeline:
    """An ordered stage composition executable chunk by chunk."""

    stages: tuple[Stage, ...]

    def __post_init__(self) -> None:
        self.stages = tuple(self.stages)
        if not self.stages:
            raise ValueError("pipeline needs at least one stage")

    def run_chunk(self, n: int, rng: np.random.Generator,
                  sigmas: np.ndarray | None = None) -> LinkState:
        """Push one fresh chunk of *n* symbols through every stage.

        Args:
            sigmas: optional per-scenario noise standard deviations;
                when given, the chunk fans out into a scenario batch
                at the :class:`CombineStage` (one row per sigma over
                shared draws) and the downstream state fields carry
                the leading scenario axis.
        """
        if n <= 0:
            raise ValueError("chunk size must be positive")
        if sigmas is not None:
            sigmas = np.asarray(sigmas, dtype=float)
            if sigmas.ndim != 1:
                raise ValueError("sigmas must be a 1-D vector")
            if np.any(sigmas < 0):
                raise ValueError("sigmas must be >= 0")
        state = LinkState(n=n, rng=rng, sigmas=sigmas)
        # Hot path: the disabled branch must stay the bare stage loop
        # (one module attribute load + one branch per chunk - pinned
        # <2% on fig6 fast-scale by tests/obs/test_overhead.py).
        if _trace.ENABLED:
            for stage in self.stages:
                with _trace.span(stage.span_name):
                    stage.process(state)
        else:
            for stage in self.stages:
                stage.process(state)
        return state

    def stage(self, kind: type) -> Stage:
        """The first stage of class *kind* (test/diagnostic hook)."""
        for stage in self.stages:
            if isinstance(stage, kind):
                return stage
        raise KeyError(f"no {kind.__name__} in pipeline")


def build_link_pipeline(config: UwbConfig, *,
                        integrator: WindowIntegrator,
                        bpf: BandPassFilter,
                        sigma: float,
                        scale: float,
                        channel: ChannelRealization | None = None,
                        adc: Adc | None = None,
                        interferers: Sequence[InterfererPath] = ()
                        ) -> SignalPipeline:
    """The canonical five-stage BER pipeline for one operating point.

    Args:
        config: link timing/sampling configuration.
        integrator: resolved integrator model deciding slot energies.
        bpf: receiver band-pass (pass the calibration pilot's filter so
            noise sizing and the data path agree).
        sigma: per-sample AWGN standard deviation at this Eb/N0.
        scale: drive scaling mapping the clean filtered peak onto the
            squarer operating point.
        channel: victim multipath realization (``None`` = ideal link).
        adc: optional converter in the decision path.
        interferers: resolved interfering transmitters summed in at the
            :class:`CombineStage`.
    """
    return SignalPipeline(stages=(
        TxStage(config),
        ChannelStage(config, channel),
        CombineStage(config, sigma, tuple(interferers)),
        AnalogFrontEndStage(config, bpf, scale),
        DecisionStage(config, integrator, adc),
    ))


def run_ber_point(pipeline: SignalPipeline, rng: np.random.Generator, *,
                  target_errors: int = 100,
                  max_bits: int = 200_000,
                  min_bits: int = 2_000,
                  chunk_bits: int = 1_000,
                  adaptive: "AdaptiveStopping | None" = None
                  ) -> tuple[int, int]:
    """Monte-Carlo chunk loop over *pipeline* (the historic stopping
    rule, verbatim: hard ``target_errors`` / ``max_bits`` caps plus the
    optional sequential :class:`~repro.uwb.fastsim.AdaptiveStopping`
    early exit checked after each chunk past ``min_bits``).

    Returns:
        ``(errors, bits)`` counters.
    """
    errors = 0
    bits_done = 0
    while bits_done < max_bits and (errors < target_errors
                                    or bits_done < min_bits):
        if (adaptive is not None and bits_done >= min_bits
                and adaptive.resolved(errors, bits_done)):
            break
        n = min(chunk_bits, max_bits - bits_done)
        state = pipeline.run_chunk(n, rng)
        errors += state.error_count()
        bits_done += n
    return errors, bits_done


_PRIMED_BYTES = 0


def _prime_allocator(block_bytes: int, live_blocks: int = 4) -> None:
    """Pre-adapt the process allocator to the sweep's chunk temporaries.

    The batched chunk temporaries (``(rows, samples)`` float64 blocks
    from the noise fan-out, band-pass, squarer and integrator) sit far
    above glibc's initial 128 KiB mmap threshold, so an unprimed
    process mmaps each of them fresh and munmaps it again on every
    wave - every release hands the pages back to the OS and the next
    wave page-faults them all back in, which dominates a cold run.
    glibc's threshold is *dynamic*: freeing an mmapped block raises the
    threshold to that block's size, after which same-sized requests are
    served from the heap free list and their pages stay resident.
    Allocating and releasing a few wave-sized scratch blocks triggers
    that adaptation once, up front; touching a working set's worth of
    heap blocks afterwards pre-faults the pages the waves then recycle.
    """
    # glibc caps the dynamic threshold at 32 MiB; bigger blocks stay
    # mmapped no matter what, so clamp the scratch size to what the
    # adaptation can actually absorb.  Priming is per-process state:
    # once the allocator has adapted to a given block size, re-priming
    # at or below it would only burn a working set's worth of memset.
    global _PRIMED_BYTES
    block_bytes = max(1, min(block_bytes, 1 << 25))
    if block_bytes <= _PRIMED_BYTES:
        return
    _PRIMED_BYTES = block_bytes
    for _ in range(3):
        scratch = np.empty(block_bytes, dtype=np.uint8)
        del scratch
    count = max(1, min(live_blocks, (1 << 27) // block_bytes))
    blocks = [np.empty(block_bytes, dtype=np.uint8)
              for _ in range(count)]
    for scratch in blocks:
        scratch.fill(0)
    del blocks


def _cell_continues(errors: int, bits: int, bits_done: int, *,
                    target_errors: int, max_bits: int, min_bits: int,
                    adaptive: "AdaptiveStopping | None") -> bool:
    """:func:`run_ber_point`'s stopping rule for one sweep cell,
    verbatim: the hard-cap ``while`` condition first, then the
    adaptive early exit.  A retired cell's counters freeze behind the
    sweep's shared ``bits_done``, which keeps it retired (the rule is
    monotone in frozen counters; the explicit check makes the
    invariant unconditional)."""
    if bits != bits_done:
        return False
    if not (bits < max_bits and (errors < target_errors
                                 or bits < min_bits)):
        return False
    if (adaptive is not None and bits >= min_bits
            and adaptive.resolved(errors, bits)):
        return False
    return True


def run_ber_sweep(front: SignalPipeline,
                  deciders: Sequence[DecisionStage],
                  sigmas, rng: np.random.Generator, *,
                  target_errors: int = 100,
                  max_bits: int = 200_000,
                  min_bits: int = 2_000,
                  chunk_bits: int = 1_000,
                  adaptive: "AdaptiveStopping | None" = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo sweep over a whole scenario batch in one chunk loop.

    Runs the shared front of the pipeline (*front*: Tx -> Channel ->
    Combine -> AnalogFrontEnd, **without** a decision stage) once per
    chunk with the scenario batch axis active, then grades the batch
    through every :class:`DecisionStage` in *deciders* - so a whole
    BER campaign (every Eb/N0 point x every integrator variant)
    becomes a handful of large array ops per chunk instead of an
    outer Python loop over points.

    **Seeding / sharing convention.**  All scenarios consume *one*
    generator: per chunk the driver draws the victim bits, each
    interferer's bits (in path order) and one unit-variance noise
    vector - exactly the draw sequence of a single per-point run.
    Scenario (decider k, sigma j) is therefore bit-identical to
    ``run_ber_point`` over the equivalent per-point pipeline started
    from the *same generator seed*: it sees the same bits, the same
    interferers and the same noise process scaled by its own sigma.

    **Retirement.**  Each cell follows :func:`run_ber_point`'s
    stopping rule (hard ``target_errors`` / ``max_bits`` caps,
    optional :class:`~repro.uwb.fastsim.AdaptiveStopping` early exit)
    independently: a resolved cell simply stops accumulating while the
    shared draws continue for the survivors, so retiring a cell
    cannot perturb any other cell's stream.  Scenario rows with no
    active cell left are dropped from the batch arithmetic entirely.

    Args:
        front: the shared pipeline front (no :class:`DecisionStage`).
        deciders: one decision stage per integrator variant; all
            variants share the front-end computation of each chunk.
        sigmas: per-scenario noise standard deviations (one per Eb/N0
            point of the sweep).
        rng: the sweep's single shared generator.

    Returns:
        ``(errors, bits)`` int64 arrays of shape
        ``(len(deciders), len(sigmas))``.
    """
    if chunk_bits < 1:
        raise ValueError("chunk_bits must be >= 1")
    if max_bits < 1:
        raise ValueError("max_bits must be >= 1")
    if min_bits < 0:
        raise ValueError("min_bits must be >= 0")
    if target_errors < 1:
        raise ValueError("target_errors must be >= 1")
    sigmas = np.asarray(sigmas, dtype=float)
    deciders = tuple(deciders)
    n_dec, n_pts = len(deciders), len(sigmas)
    errors = np.zeros((n_dec, n_pts), dtype=np.int64)
    bits = np.zeros((n_dec, n_pts), dtype=np.int64)
    if n_dec == 0 or n_pts == 0:
        return errors, bits
    rule = dict(target_errors=target_errors, max_bits=max_bits,
                min_bits=min_bits, adaptive=adaptive)
    cfg = getattr(front.stages[0], "config", None)
    if cfg is not None:
        samples = min(chunk_bits, max_bits) * cfg.samples_per_symbol
        with _trace.span("link.prime"):
            _prime_allocator(n_pts * samples * 8)
    bits_done = 0
    while True:
        active = np.zeros((n_dec, n_pts), dtype=bool)
        for k in range(n_dec):
            for j in range(n_pts):
                active[k, j] = _cell_continues(
                    int(errors[k, j]), int(bits[k, j]), bits_done,
                    **rule)
        if not active.any():
            break
        n = min(chunk_bits, max_bits - bits_done)
        # Only scenario rows some decider still needs enter the batch;
        # the generator draws are row-count independent (shared bits +
        # one unit noise vector), so retirement never moves the stream.
        rows = np.flatnonzero(active.any(axis=0))
        state = front.run_chunk(n, rng, sigmas=sigmas[rows])
        for k, decider in enumerate(deciders):
            cols = np.flatnonzero(active[k])
            if not len(cols):
                continue
            # Fancy indexing copies; the common all-rows-active wave
            # grades the shared batch directly (decide() is read-only).
            sub = (state.squared if len(cols) == len(rows)
                   else state.squared[np.searchsorted(rows, cols)])
            if _trace.ENABLED:
                with _trace.span(decider.span_name):
                    _, decisions = decider.decide(sub)
                    errors[k, cols] += np.count_nonzero(
                        decisions != state.bits[None, :], axis=-1)
            else:
                _, decisions = decider.decide(sub)
                errors[k, cols] += np.count_nonzero(
                    decisions != state.bits[None, :], axis=-1)
            bits[k, cols] += n
        bits_done += n
    return errors, bits
