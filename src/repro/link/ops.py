"""Top-level spec-driven operations for campaigns and sweeps.

:class:`~repro.core.scenario.Scenario` needs importable, picklable
functions whose keyword arguments content-address cleanly.  These
wrappers are exactly that: each takes a
:class:`~repro.link.spec.LinkSpec` plus a backend name and delegates
to the resolved :class:`~repro.link.backends.Backend` - so every
experiment harness fans out, caches and resumes the same way
regardless of the backend executing it.

Budget keywords default to ``None`` and are forwarded only when set,
letting each backend keep its own native defaults (the kernel's
Monte-Carlo budget is orders of magnitude smaller than fastsim's).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.link.backends import get_backend
from repro.link.spec import LinkSpec, NetworkSpec
from repro.uwb.fastsim import AdaptiveStopping, BerResult
from repro.uwb.integrator import WindowIntegrator
from repro.uwb.ranging import RangingResult
from repro.uwb.system import AmsRunResult


def _backend(name: str, engine: str | None):
    kwargs: dict[str, Any] = {}
    if engine is not None:
        kwargs["engine"] = engine
    return get_backend(name, **kwargs)


def _budget(**candidates: Any) -> dict[str, Any]:
    return {k: v for k, v in candidates.items() if v is not None}


def ber_point(spec: LinkSpec, ebn0_db: float,
              rng: np.random.Generator, *,
              backend: str = "fastsim",
              engine: str | None = None,
              integrator: str | WindowIntegrator | None = None,
              target_errors: int | None = None,
              max_bits: int | None = None,
              min_bits: int | None = None,
              chunk_bits: int | None = None,
              adaptive: AdaptiveStopping | None = None
              ) -> tuple[int, int]:
    """Monte-Carlo ``(errors, bits)`` at one Eb/N0 point."""
    return _backend(backend, engine).ber_point(
        spec, float(ebn0_db), rng, integrator=integrator,
        adaptive=adaptive,
        **_budget(target_errors=target_errors, max_bits=max_bits,
                  min_bits=min_bits, chunk_bits=chunk_bits))


def ber_curve(spec: LinkSpec, ebn0_grid,
              rng: np.random.Generator, *,
              backend: str = "fastsim",
              engine: str | None = None,
              label: str | None = None,
              integrator: str | WindowIntegrator | None = None,
              target_errors: int | None = None,
              max_bits: int | None = None,
              min_bits: int | None = None,
              chunk_bits: int | None = None,
              workers: int | None = None,
              adaptive: AdaptiveStopping | None = None,
              batch_points: bool | None = None) -> BerResult:
    """BER versus Eb/N0 through the selected backend.

    ``batch_points`` selects fastsim's scenario-batched sweep kernel
    (``True``), the legacy per-point loop (``False``), or the
    backend's own default (``None``); it is forwarded only when set so
    backends without a batched path keep working untouched.
    """
    return _backend(backend, engine).ber_curve(
        spec, ebn0_grid, rng, label=label, integrator=integrator,
        workers=workers, adaptive=adaptive,
        **_budget(target_errors=target_errors, max_bits=max_bits,
                  min_bits=min_bits, chunk_bits=chunk_bits,
                  batch_points=batch_points))


def mui_ber_curve(network: NetworkSpec, ebn0_grid,
                  rng: np.random.Generator, *,
                  backend: str = "fastsim",
                  engine: str | None = None,
                  label: str | None = None,
                  integrator: str | WindowIntegrator | None = None,
                  target_errors: int | None = None,
                  max_bits: int | None = None,
                  min_bits: int | None = None,
                  chunk_bits: int | None = None,
                  workers: int | None = None,
                  adaptive: AdaptiveStopping | None = None,
                  batch_points: bool | None = None) -> BerResult:
    """Multi-user BER versus Eb/N0 over a :class:`NetworkSpec`.

    The campaign-facing twin of :func:`ber_curve` for multi-user
    scenarios: a distinct top-level name keeps network campaigns
    content-addressed separately from single-link ones, and the
    explicit :class:`NetworkSpec` requirement catches a plain
    :class:`LinkSpec` being fanned out by mistake (wrap it in
    ``NetworkSpec(victim=spec)`` for an interferer-free baseline).
    """
    if not isinstance(network, NetworkSpec):
        raise TypeError("mui_ber_curve needs a NetworkSpec; wrap a "
                        "plain LinkSpec in NetworkSpec(victim=spec) "
                        "for the zero-interferer baseline")
    return _backend(backend, engine).ber_curve(
        network, ebn0_grid, rng, label=label, integrator=integrator,
        workers=workers, adaptive=adaptive,
        **_budget(target_errors=target_errors, max_bits=max_bits,
                  min_bits=min_bits, chunk_bits=chunk_bits,
                  batch_points=batch_points))


def ber_sweep(spec: LinkSpec | NetworkSpec, ebn0_grid,
              rng: np.random.Generator, *,
              backend: str = "fastsim",
              engine: str | None = None,
              integrators: tuple = ("ideal", "circuit"),
              labels: tuple | None = None,
              target_errors: int | None = None,
              max_bits: int | None = None,
              min_bits: int | None = None,
              chunk_bits: int | None = None,
              adaptive: AdaptiveStopping | None = None
              ) -> dict[str, BerResult]:
    """Batched multi-curve BER sweep: every (integrator, Eb/N0) cell
    of the campaign graded from one shared front-end pass.

    The whole-campaign unit of work for experiments like fig6 whose
    curves share a seed: one :class:`Scenario` instead of one per
    curve, with each returned curve bit-identical to a standalone
    :func:`ber_curve` run.  Only backends exposing a batched
    ``sweep`` support it (fastsim today).
    """
    b = _backend(backend, engine)
    if not hasattr(b, "sweep"):
        raise TypeError(
            f"backend {backend!r} has no batched sweep path; use "
            "ber_curve per integrator instead")
    return b.sweep(
        spec, ebn0_grid, rng, integrators=integrators, labels=labels,
        adaptive=adaptive,
        **_budget(target_errors=target_errors, max_bits=max_bits,
                  min_bits=min_bits, chunk_bits=chunk_bits))


def ranging(spec: LinkSpec, iterations: int,
            rng: np.random.Generator, *,
            backend: str = "fastsim",
            engine: str | None = None,
            integrator: str | WindowIntegrator | None = None,
            noise_sigma: float = 1e-4,
            tx_amplitude: float = 1.0) -> RangingResult:
    """Two-way ranging at ``spec.channel.distance``."""
    return _backend(backend, engine).ranging(
        spec, iterations, rng, integrator=integrator,
        noise_sigma=noise_sigma, tx_amplitude=tx_amplitude)


def run_testbench(spec: LinkSpec, waveform, *,
                  engine: str = "compiled",
                  cosim_substeps: int = 1,
                  t_stop: float | None = None,
                  record: bool = False,
                  integrator: str | WindowIntegrator | None = None
                  ) -> AmsRunResult:
    """One mixed-signal testbench run over *waveform* (the Table-1
    unit of work) on the AMS kernel backend."""
    kernel = get_backend("kernel", engine=engine,
                         cosim_substeps=cosim_substeps)
    return kernel.packet(spec, waveform, integrator=integrator,
                         t_stop=t_stop, record=record)
