"""One front door to the simulated link: ``LinkSpec`` + ``Backend``.

The paper's whole point is that *one unchanged testbench* drives every
refinement phase by substituting implementations.  This package is
that front door for the repository:

* :mod:`repro.link.spec` - :class:`LinkSpec`: a frozen, hashable,
  serializable description of the link (configuration, channel, front
  end, integrator selection by registry name), plus the multi-user
  vocabulary: :class:`InterfererSpec` and :class:`NetworkSpec`,
* :mod:`repro.link.pipeline` - the staged signal-path pipeline the
  golden model executes chunk by chunk (Tx -> Channel -> Combine ->
  AnalogFrontEnd -> Decision over a batched :class:`LinkState`), with
  interferers entering at the :class:`CombineStage`,
* :mod:`repro.link.registry` - integrator construction routed through
  the :class:`~repro.core.registry.ModelRegistry` (absorbing the old
  ``make_integrator`` string dispatch),
* :mod:`repro.link.backends` - the :class:`Backend` protocol with two
  implementations: :class:`FastsimBackend` (vectorized golden model)
  and :class:`KernelBackend` (AMS-kernel testbench, reference or
  compiled engine, optional transistor co-simulation),
* :mod:`repro.link.ops` - picklable top-level operations for campaign
  scenarios (``ber_curve`` / ``ranging`` / ``run_testbench``),
* :mod:`repro.link.equivalence` - the cross-backend Phase-I
  validation harness (fastsim vs kernel, fixed seed).

Quick start::

    from repro.link import FastsimBackend, LinkSpec
    import numpy as np

    spec = LinkSpec(integrator="two_pole")
    curve = FastsimBackend().ber_curve(spec, [4, 8, 12],
                                       np.random.default_rng(7))
"""

from repro.link.spec import (
    ADC_MODES,
    AGC_MODES,
    CHANNEL_KINDS,
    ChannelSpec,
    FrontEndSpec,
    InterfererSpec,
    LinkSpec,
    NetworkSpec,
)
from repro.link.pipeline import (
    AnalogFrontEndStage,
    ChannelStage,
    CombineStage,
    DecisionStage,
    InterfererPath,
    LinkState,
    SignalPipeline,
    Stage,
    TxStage,
    build_link_pipeline,
    run_ber_point,
    run_ber_sweep,
)
from repro.link.registry import (
    COSIM,
    default_link_registry,
    integrator_names,
    link_registry,
    register_integrator,
    resolve_integrator,
)
from repro.link.backends import (
    BACKENDS,
    Backend,
    FastsimBackend,
    KernelBackend,
    PacketResult,
    build_adc,
    build_bpf,
    build_channel_model,
    build_channel_realization,
    build_interferer_paths,
    build_interferer_realization,
    build_receiver,
    calibrate,
    get_backend,
    register_backend,
    split_network,
)
from repro.link.equivalence import EquivalenceResult, run_equivalence
from repro.link import ops

__all__ = [
    "ADC_MODES",
    "AGC_MODES",
    "BACKENDS",
    "AnalogFrontEndStage",
    "Backend",
    "CHANNEL_KINDS",
    "COSIM",
    "ChannelSpec",
    "ChannelStage",
    "CombineStage",
    "DecisionStage",
    "EquivalenceResult",
    "FastsimBackend",
    "FrontEndSpec",
    "InterfererPath",
    "InterfererSpec",
    "KernelBackend",
    "LinkSpec",
    "LinkState",
    "NetworkSpec",
    "PacketResult",
    "SignalPipeline",
    "Stage",
    "TxStage",
    "build_adc",
    "build_bpf",
    "build_channel_model",
    "build_channel_realization",
    "build_interferer_paths",
    "build_interferer_realization",
    "build_link_pipeline",
    "build_receiver",
    "calibrate",
    "default_link_registry",
    "get_backend",
    "integrator_names",
    "link_registry",
    "ops",
    "register_backend",
    "register_integrator",
    "resolve_integrator",
    "run_ber_point",
    "run_ber_sweep",
    "run_equivalence",
    "split_network",
]
