"""Cross-backend equivalence: the Phase-I validation, mechanized.

The paper validates its behavioral receiver against a golden model:
"we obtained BER curves which perfectly overlapped the Matlab ones".
This harness performs that check between this repository's backends -
the vectorized golden model (:class:`FastsimBackend`) and the AMS
kernel testbench (:class:`KernelBackend` on each execution engine) -
over the *same* seeded noisy waveform:

* the two kernel engines must demodulate **bit-identical** decisions
  (they are the same testbench, differently scheduled);
* the kernel BER must agree with the golden-model BER **within the
  Wilson confidence interval** (the decision paths differ in slot
  gating and ADC policy, so agreement is statistical, exactly as in
  the paper's overlap argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.link.backends import FastsimBackend, KernelBackend, calibrate
from repro.link.spec import LinkSpec
from repro.uwb.channel.awgn import noise_sigma_for_ebn0
from repro.uwb.config import UwbConfig
from repro.uwb.fastsim import wilson_interval
from repro.uwb.modulation import ppm_waveform, random_bits

#: default spec of the equivalence experiment: a light configuration
#: (the check is decision-level, not spectral) with the ideal
#: Phase-II integrator.
DEFAULT_SPEC = LinkSpec(
    config=UwbConfig(fs=8e9, symbol_period=16e-9, pulse_tau=0.225e-9,
                     pulse_order=5, integration_window=2e-9),
    integrator="ideal")


@dataclass
class EquivalenceResult:
    """Outcome of one cross-backend comparison.

    Attributes:
        spec: the link under test.
        ebn0_db: operating point.
        bits: symbols demodulated by every arm.
        fastsim_errors: golden-model error count.
        kernel_errors: error count per kernel engine.
        engines_identical: both engines returned identical decisions.
        confidence: Wilson confidence level of the agreement test.
    """

    spec: LinkSpec
    ebn0_db: float
    bits: int
    fastsim_errors: int
    kernel_errors: dict[str, int] = field(default_factory=dict)
    engines_identical: bool = True
    confidence: float = 0.95

    @property
    def fastsim_ber(self) -> float:
        return self.fastsim_errors / max(self.bits, 1)

    def kernel_ber(self, engine: str) -> float:
        return self.kernel_errors[engine] / max(self.bits, 1)

    def interval(self, errors: int) -> tuple[float, float]:
        return wilson_interval(errors, self.bits, self.confidence)

    def agrees(self, engine: str) -> bool:
        """Wilson intervals of the golden model and *engine* overlap."""
        lo_f, hi_f = self.interval(self.fastsim_errors)
        lo_k, hi_k = self.interval(self.kernel_errors[engine])
        return lo_f <= hi_k and lo_k <= hi_f

    def all_agree(self) -> bool:
        """Every engine agrees with the golden model and the engines
        are bit-identical among themselves."""
        return self.engines_identical and all(
            self.agrees(engine) for engine in self.kernel_errors)

    def format_report(self) -> str:
        lines = ["Cross-backend equivalence - fastsim vs AMS kernel "
                 f"(Eb/N0 = {self.ebn0_db:g} dB, {self.bits} bits, "
                 f"integrator: {self.spec.integrator})"]
        lo, hi = self.interval(self.fastsim_errors)
        lines.append(f"  {'fastsim':<20s} BER {self.fastsim_ber:.4f} "
                     f"({self.fastsim_errors:4d} errors)  "
                     f"CI [{lo:.4f}, {hi:.4f}]")
        for engine, errors in sorted(self.kernel_errors.items()):
            lo, hi = self.interval(errors)
            mark = "agrees" if self.agrees(engine) else "DISAGREES"
            lines.append(f"  {'kernel/' + engine:<20s} BER "
                         f"{self.kernel_ber(engine):.4f} "
                         f"({errors:4d} errors)  "
                         f"CI [{lo:.4f}, {hi:.4f}]  {mark}")
        lines.append(f"  engines bit-identical: {self.engines_identical}")
        lines.append(f"  all backends agree:    {self.all_agree()}")
        return "\n".join(lines)


def run_equivalence(spec: LinkSpec | None = None,
                    ebn0_db: float = 6.0,
                    bits: int = 150,
                    seed: int = 23,
                    engines: tuple[str, ...] = ("compiled", "reference"),
                    confidence: float = 0.95) -> EquivalenceResult:
    """Demodulate one seeded noisy burst on every backend.

    The stimulus (bits, noise, band-pass, drive scaling) is generated
    once, so all arms decide on the *same* samples - the comparison is
    substitute-and-play at the decision level, not merely statistical
    across independent runs.
    """
    spec = spec if spec is not None else DEFAULT_SPEC
    cfg = spec.config
    cache = calibrate(spec)
    rng = np.random.default_rng(seed)
    tx = random_bits(bits, rng)
    n_sym = cfg.samples_per_symbol
    wave = ppm_waveform(tx, cfg)
    if cache.channel is not None:
        wave = cache.channel.apply(wave)[
            cache.channel.delay_samples:
            cache.channel.delay_samples + bits * n_sym]
    sigma = noise_sigma_for_ebn0(cache.eb, float(ebn0_db), cfg.fs)
    noisy = wave + rng.normal(0.0, sigma, size=len(wave))
    driven = (spec.frontend.squarer_drive / cache.peak) \
        * cache.bpf(noisy)[:bits * n_sym]

    golden = FastsimBackend().packet(spec, driven)
    result = EquivalenceResult(
        spec=spec, ebn0_db=float(ebn0_db), bits=bits,
        fastsim_errors=int(np.count_nonzero(golden.bits != tx)),
        confidence=confidence)
    engine_bits = {}
    for engine in engines:
        run = KernelBackend(engine=engine).packet(spec, driven)
        engine_bits[engine] = run.bits
        result.kernel_errors[engine] = int(
            np.count_nonzero(run.bits != tx[:len(run.bits)]))
    decisions = list(engine_bits.values())
    result.engines_identical = all(
        np.array_equal(decisions[0], other) for other in decisions[1:])
    return result
