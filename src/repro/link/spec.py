"""Declarative link description: the one front door's vocabulary.

The paper's methodology hinges on *one unchanged testbench* driven
across refinement phases by substituting implementations.  A
:class:`LinkSpec` is that testbench's declarative description for this
repository: the link configuration, the channel, the analog front end
and the integrator selection (by registry name) in one frozen,
hashable, serializable value.  Every backend
(:mod:`repro.link.backends`) consumes the same spec, so an experiment
written against a spec runs unchanged on the vectorized golden model,
the AMS kernel testbench, or any future backend.

Multi-user scenarios compose on top: an :class:`InterfererSpec`
describes one interfering transmitter (received power relative to the
victim, timing offset, its own channel), and a :class:`NetworkSpec`
bundles a victim :class:`LinkSpec` with any number of interferers -
the declarative input of the multi-user-interference / coexistence
workloads (``FastsimBackend.ber_point`` / ``ber_curve`` accept it
wherever they accept a ``LinkSpec``).

Specs round-trip through :mod:`repro.core.serialization` (they are
plain frozen dataclasses), so campaign content addresses and cache
keys can be built directly from them via :meth:`LinkSpec.key` /
:meth:`NetworkSpec.key`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.phases import Phase
from repro.uwb.config import UwbConfig

#: channel selections understood by the backends.
CHANNEL_KINDS = ("none", "cm1")
#: ADC policies: "auto" lets the backend pick its native default
#: (fastsim BER: unquantized; kernel harvest: auto-ranged converter),
#: "config" builds the converter from ``UwbConfig.adc_bits/adc_vref``,
#: "none" disables quantization outright.
ADC_MODES = ("auto", "config", "none")
#: AGC policies of the packet-level receiver.
AGC_MODES = ("single", "two_stage")


class SpecCodec:
    """Identity / persistence helpers shared by the declarative specs
    (:class:`LinkSpec`, :class:`NetworkSpec`): stable content hashing
    for campaign cache keys and self-contained JSON round-trips."""

    def key(self) -> str:
        """Stable content hash of this spec (campaign cache keys)."""
        from repro.core.serialization import stable_hash

        return stable_hash(self)

    def to_json(self, *, indent: int | None = None) -> str:
        """Self-contained JSON encoding (see
        :mod:`repro.core.serialization`)."""
        from repro.core.serialization import to_jsonable

        return json.dumps(to_jsonable(self), indent=indent,
                          sort_keys=True)

    @classmethod
    def from_json(cls, text: str):
        """Inverse of :meth:`to_json`."""
        from repro.core.serialization import from_jsonable

        spec = from_jsonable(json.loads(text))
        if not isinstance(spec, cls):
            raise ValueError(f"not a serialized {cls.__name__}: "
                             f"{type(spec).__name__}")
        return spec


@dataclass(frozen=True)
class ChannelSpec:
    """Propagation channel selection.

    Attributes:
        kind: ``"none"`` (ideal delay-only link) or ``"cm1"`` (the TG4a
            residential-LOS multipath model the paper uses).
        distance: link distance in meters (drives path loss and flight
            time; the paper's TWR experiment sits at 9.9 m).
        realization_seed: seed of the deterministic CM1 realization
            drawn for BER sweeps (ranging draws fresh realizations from
            the run's generator instead).
    """

    kind: str = "none"
    distance: float = 9.9
    realization_seed: int = 1234

    def __post_init__(self) -> None:
        if self.kind not in CHANNEL_KINDS:
            raise ValueError(f"unknown channel kind {self.kind!r}; "
                             f"choose from {CHANNEL_KINDS}")
        if self.distance <= 0:
            raise ValueError("distance must be positive")


@dataclass(frozen=True)
class FrontEndSpec:
    """Analog front end and receiver policies.

    Attributes:
        band: explicit (low, high) BPF corners in Hz; ``None`` derives
            the band from the configured pulse spectrum.
        bpf_order: Butterworth order per corner.
        squarer_drive: peak voltage presented to the squarer input by
            the BER stimulus (the AGC operating point; the integrator's
            ~100 mV linear range makes this the overdrive knob).
        adc: one of :data:`ADC_MODES`.
        agc: one of :data:`AGC_MODES` (packet-level receiver only).
        agc_fill: ADC full-scale fill fraction targeted by the AGC.
        agc_amp_target: squarer-output amplitude target of the
            two-stage AGC's first stage (V).
        detection_factor: preamble-sense threshold in noise std-devs.
        toa_threshold_fraction: ADC-referred TOA crossing fraction.
        t_dump / t_hold: Integrate & Dump slot timing - the reset
            interval at the head of each slot and the hold interval at
            its tail.  Both backends' ``packet`` operation honors this
            gate, which is what makes their decisions comparable
            sample for sample (Phase-I overlap).
    """

    band: tuple[float, float] | None = None
    bpf_order: int = 4
    squarer_drive: float = 0.05
    adc: str = "auto"
    agc: str = "single"
    agc_fill: float = 0.85
    agc_amp_target: float = 0.08
    detection_factor: float = 6.0
    toa_threshold_fraction: float = 0.10
    t_dump: float = 2e-9
    t_hold: float = 2e-9

    def __post_init__(self) -> None:
        if self.band is not None:
            low, high = self.band
            if not 0.0 < low < high:
                raise ValueError("band needs 0 < low < high")
            object.__setattr__(self, "band", (float(low), float(high)))
        if self.bpf_order < 1:
            raise ValueError("bpf_order must be >= 1")
        if self.squarer_drive <= 0:
            raise ValueError("squarer_drive must be positive")
        if self.adc not in ADC_MODES:
            raise ValueError(f"unknown adc mode {self.adc!r}; "
                             f"choose from {ADC_MODES}")
        if self.agc not in AGC_MODES:
            raise ValueError(f"unknown agc mode {self.agc!r}; "
                             f"choose from {AGC_MODES}")
        if not 0.0 < self.agc_fill <= 1.0:
            raise ValueError("agc_fill must be in (0, 1]")
        if self.agc_amp_target <= 0:
            raise ValueError("agc_amp_target must be positive")
        if not 0.0 < self.toa_threshold_fraction < 1.0:
            raise ValueError("toa_threshold_fraction must be in (0, 1)")
        if self.t_dump < 0 or self.t_hold < 0:
            raise ValueError("t_dump and t_hold must be non-negative")


@dataclass(frozen=True)
class LinkSpec(SpecCodec):
    """The one declarative description of a simulated link.

    Attributes:
        config: link timing/sampling configuration.
        channel: propagation channel selection.
        frontend: front-end and receiver policies.
        integrator: integrator model by registry name (see
            :mod:`repro.link.registry`): ``"ideal"`` (Phase II),
            ``"two_pole"`` (Phase IV), ``"surrogate"`` / ``"circuit"``
            (Phase III), or any name registered via
            :func:`repro.link.registry.register_integrator`.
        integrator_params: constructor overrides of the named model as
            a sorted tuple of ``(name, value)`` pairs (a mapping is
            accepted and normalized), e.g. ``{"fp2_hz": 3e9}`` for the
            noise-shaping sweep.
        phase: optional explicit :class:`Phase` selection when a name
            carries bindings at several phases; ``None`` picks the
            name's most refined registered phase.
    """

    config: UwbConfig = UwbConfig()
    channel: ChannelSpec = ChannelSpec()
    frontend: FrontEndSpec = FrontEndSpec()
    integrator: str = "ideal"
    integrator_params: tuple[tuple[str, Any], ...] = ()
    phase: Phase | None = None

    def __post_init__(self) -> None:
        self.config.validate()
        if self.frontend.t_dump + self.frontend.t_hold >= self.config.slot:
            raise ValueError("t_dump + t_hold must fit inside a slot")
        if not isinstance(self.integrator, str) or not self.integrator:
            raise TypeError("integrator must be a registry name; pass "
                            "model *instances* as the integrator= "
                            "override of the backend operations")
        params = self.integrator_params
        if isinstance(params, Mapping):
            params = params.items()
        normalized = tuple(sorted((str(k), v) for k, v in params))
        object.__setattr__(self, "integrator_params", normalized)
        if self.phase is not None:
            object.__setattr__(self, "phase", Phase(self.phase))

    # -- derived views -------------------------------------------------

    def params_dict(self) -> dict[str, Any]:
        """``integrator_params`` as a keyword mapping."""
        return dict(self.integrator_params)

    # -- evolution helpers ---------------------------------------------

    def with_(self, **changes: Any) -> "LinkSpec":
        """Copy with top-level fields changed."""
        return replace(self, **changes)

    def with_config(self, **changes: Any) -> "LinkSpec":
        """Copy with :class:`UwbConfig` fields changed."""
        return replace(self, config=self.config.scaled(**changes))

    def with_channel(self, **changes: Any) -> "LinkSpec":
        """Copy with :class:`ChannelSpec` fields changed."""
        return replace(self, channel=replace(self.channel, **changes))

    def with_frontend(self, **changes: Any) -> "LinkSpec":
        """Copy with :class:`FrontEndSpec` fields changed."""
        return replace(self, frontend=replace(self.frontend, **changes))

    # -- identity / persistence: key/to_json/from_json via SpecCodec --


@dataclass(frozen=True)
class InterfererSpec:
    """One interfering transmitter of a multi-user scenario.

    The interferer transmits the same 2-PPM signaling as the victim
    (same pulse, same symbol timing base) with independent random
    payload bits, entering the victim's receiver through the
    :class:`~repro.link.pipeline.CombineStage`.

    Attributes:
        rel_power_db: received interferer power relative to the
            victim's received power, in dB (the negated
            signal-to-interference ratio: ``rel_power_db = -SIR``).
            The backend calibrates the interferer's amplitude against
            both pilots' post-channel, post-band-pass energies, so the
            value is an exact *received* power ratio regardless of the
            channels involved.  ``None`` switches to *physical*
            power accounting: the interferer transmits at the victim's
            unit amplitude and its received power emerges from its own
            channel's path loss - the near-far configuration, where
            relative power is set by the two distances through
            :func:`repro.uwb.channel.ieee802154a.path_loss_db`.
        timing_offset: offset of the interferer's symbol clock relative
            to the victim's, in seconds (positive = interferer late).
            Applied as a circular shift within each Monte-Carlo chunk;
            an offset of 0 means chip-aligned transmitters.
        channel: the interferer's own propagation channel.  With kind
            ``"cm1"`` an *independent* CM1 realization is drawn from
            ``channel.realization_seed``, so victim and interferers
            never share fading.
    """

    rel_power_db: float | None = 0.0
    timing_offset: float = 0.0
    channel: ChannelSpec = ChannelSpec()

    def __post_init__(self) -> None:
        if self.rel_power_db is not None:
            object.__setattr__(self, "rel_power_db",
                               float(self.rel_power_db))
        object.__setattr__(self, "timing_offset",
                           float(self.timing_offset))
        if not isinstance(self.channel, ChannelSpec):
            raise TypeError("channel must be a ChannelSpec, got "
                            f"{type(self.channel).__name__}")

    @property
    def sir_db(self) -> float | None:
        """Signal-to-interference ratio implied by ``rel_power_db``
        (``None`` in the physical / near-far configuration)."""
        if self.rel_power_db is None:
            return None
        return -self.rel_power_db


@dataclass(frozen=True)
class NetworkSpec(SpecCodec):
    """A victim link plus N interfering transmitters.

    The declarative input of the multi-user-interference and
    coexistence workloads: ``FastsimBackend.ber_point`` /
    ``ber_curve`` (and the campaign op
    :func:`repro.link.ops.mui_ber_curve`) accept a ``NetworkSpec``
    wherever they accept a :class:`LinkSpec`, grading the victim's
    bits while every interferer's waveform is summed into the chunk.
    With an empty interferer tuple the network degenerates to its
    victim link exactly (bit-identical counters).

    Attributes:
        victim: the link under test (its Eb/N0 defines the noise, its
            frontend/integrator the receiver).
        interferers: interfering transmitters, in synthesis order
            (their bit draws consume the scenario generator in this
            order, so the tuple order is part of the content identity).
    """

    victim: LinkSpec = LinkSpec()
    interferers: tuple[InterfererSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.victim, LinkSpec):
            raise TypeError("victim must be a LinkSpec, got "
                            f"{type(self.victim).__name__}")
        interferers = tuple(self.interferers)
        for intf in interferers:
            if not isinstance(intf, InterfererSpec):
                raise TypeError("interferers must be InterfererSpec "
                                f"values, got {type(intf).__name__}")
        object.__setattr__(self, "interferers", interferers)

    @property
    def n_interferers(self) -> int:
        return len(self.interferers)

    # -- evolution helpers ---------------------------------------------

    def with_victim(self, victim: LinkSpec) -> "NetworkSpec":
        """Copy with the victim link replaced."""
        return replace(self, victim=victim)

    def with_interferers(self, *interferers: InterfererSpec
                         ) -> "NetworkSpec":
        """Copy with the interferer set replaced."""
        return replace(self, interferers=tuple(interferers))
