"""Sizing parameters for the Integrate & Dump circuit.

The default design follows the paper's description of the figure-3
circuit:

* source-follower input stage with an aspect ratio "on the order of 20",
* output-stage mirror ratio "of about 2",
* LV (low-threshold) transistors for headroom,
* 1 pF nominal integrating capacitor,
* no cascodes in the output stage (hence the ~21 dB DC gain).

The numeric sizes were calibrated against this repository's level-1
process (:func:`repro.spice.library.generic_018`) so the AC response hits
the paper's figure-4 targets: DC gain about 21 dB, dominant pole below
1 MHz, parasitic pole in the GHz range, integrator behaviour across
10 MHz - 1 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class MosSize:
    """Width/length/model of one transistor position."""

    w: float
    l: float
    model: str

    def scaled(self, factor: float) -> "MosSize":
        """Same device with width scaled by *factor* (mirror ratios)."""
        return replace(self, w=self.w * factor)


@dataclass(frozen=True)
class IntegrateDumpDesign:
    """Complete sizing of the Integrate & Dump unit.

    Attributes:
        vdd: supply voltage.
        c_int: integrating capacitor (paper: 1 pF nominal).
        input_cm: nominal input common-mode voltage the bias design
            assumes (the squarer / AGC interface must deliver this).
        output_cm: target output common-mode voltage (CMFB reference).
        follower: input source followers (M1p/M1m), aspect ratio ~20.
        diode: mirror master diodes (M2p/M2m); their gm sets the
            composite transconductance.
        mirror_ratio: output-stage mirror ratio (paper: about 2).
        pulldown_margin: extra ratio on the cross-coupled pull-down
            mirrors so the CMFB pull-ups have current authority.
        mirror_up_p: PMOS diode/slave pair of the pull-up path (the NMOS
            slaves are exact ratioed copies of ``diode``).
        cmfb_*: common-mode feedback network sizing.
        tg_*: transmission-gate switch sizing.
    """

    vdd: float = 1.8
    c_int: float = 1.0e-12
    input_cm: float = 1.27
    output_cm: float = 0.90

    # transconductance amplifier
    follower: MosSize = MosSize(3.6e-6, 0.18e-6, "nch_lv")
    diode: MosSize = MosSize(0.05e-6, 0.20e-6, "nch_lv")
    mirror_ratio: float = 2.0
    pulldown_margin: float = 1.25
    mirror_up_p: MosSize = MosSize(1.44e-6, 0.18e-6, "pch")

    # common-mode feedback
    cmfb_pullup: MosSize = MosSize(0.9e-6, 0.35e-6, "pch")
    cmfb_sense: MosSize = MosSize(2.0e-6, 0.18e-6, "nch_lv")
    cmfb_pair: MosSize = MosSize(1.0e-6, 0.36e-6, "nch_lv")
    cmfb_load: MosSize = MosSize(2.0e-6, 0.36e-6, "pch")
    cmfb_sense_res: float = 50e3
    cmfb_tail_res: float = 15e3
    cmfb_comp_cap: float = 47e-12

    # integration switches (full transmission gates + local inverters)
    tg_n: MosSize = MosSize(1.0e-6, 0.18e-6, "nch")
    tg_p: MosSize = MosSize(2.0e-6, 0.18e-6, "pch")
    inv_n: MosSize = MosSize(0.5e-6, 0.18e-6, "nch")
    inv_p: MosSize = MosSize(1.0e-6, 0.18e-6, "pch")

    def with_cap(self, c_int: float) -> "IntegrateDumpDesign":
        return replace(self, c_int=c_int)


def default_design() -> IntegrateDumpDesign:
    """The calibrated baseline design used throughout the repository."""
    return IntegrateDumpDesign()
