"""Common-mode feedback network of the I&D unit.

The paper calls the CMFB "fundamental because the output nodes of the
transconductance amplifier have a high impedance ... causing the output
to float", and mentions "two auto-biasing networks" providing the
references.  Our transistor-level realization:

* two matched NMOS source followers sense the output common mode into a
  shared resistor tail (node ``s``),
* a third, identical dummy follower level-shifts the reference produced
  by a resistive divider the same way (auto-bias network 1),
* a differential pair with PMOS mirror load compares the two shifted
  levels (its tail current is set by a degeneration resistor - auto-bias
  network 2) and drives ``vcmfb``,
* ``vcmfb`` gates two PMOS pull-ups that trim the output-stage current
  balance; a compensation capacitor keeps the CM loop crossover well
  below the integrator's dominant pole.
"""

from __future__ import annotations

from repro.circuits.sizing import IntegrateDumpDesign, MosSize
from repro.spice.devices import Capacitor, Mosfet, Resistor
from repro.spice.netlist import Circuit


def _mos(name: str, d: str, g: str, s: str, b: str, size: MosSize) -> Mosfet:
    return Mosfet(name, d, g, s, b, size.model, w=size.w, l=size.l)


def add_cmfb(ckt: Circuit, design: IntegrateDumpDesign, *,
             outp: str, outm: str, vdd: str, gnd: str,
             prefix: str = "") -> None:
    """Add the 9-transistor CMFB network regulating *outp*/*outm*.

    Nodes created (prefixed): ``s`` (sensed CM), ``sref`` (shifted
    reference), ``vcmref`` (divider), ``vcmfb`` (control), ``x1``
    (mirror diode), ``tail``.
    """
    p = prefix
    s = f"{p}s"
    sref = f"{p}sref"
    vcmref = f"{p}vcmref"
    vcmfb = f"{p}vcmfb"
    x1 = f"{p}x1"
    tail = f"{p}tail"

    # Output CM sensing: follower pair into a shared tail resistor.
    ckt.add(
        _mos(f"{p}ms1", vdd, outp, s, gnd, design.cmfb_sense),
        _mos(f"{p}ms2", vdd, outm, s, gnd, design.cmfb_sense),
        Resistor(f"{p}rs", s, gnd, design.cmfb_sense_res),
        # Matched dummy follower shifts the reference identically; it
        # carries half the sense current, hence the doubled resistor.
        _mos(f"{p}ms3", vdd, vcmref, sref, gnd, design.cmfb_sense),
        Resistor(f"{p}rsref", sref, gnd, 2.0 * design.cmfb_sense_res),
    )

    # Reference divider (vcmref = output_cm by ratio).
    r_total = 400e3
    r_low = r_total * design.output_cm / design.vdd
    ckt.add(
        Resistor(f"{p}rd1", vdd, vcmref, r_total - r_low),
        Resistor(f"{p}rd2", vcmref, gnd, r_low),
    )

    # Error amplifier: resistor-tailed differential pair, PMOS mirror
    # load, compensated output driving the pull-up gates.
    ckt.add(
        _mos(f"{p}mc1", x1, s, tail, gnd, design.cmfb_pair),
        _mos(f"{p}mc2", vcmfb, sref, tail, gnd, design.cmfb_pair),
        Resistor(f"{p}rt", tail, gnd, design.cmfb_tail_res),
        _mos(f"{p}mc3", x1, x1, vdd, vdd, design.cmfb_load),
        _mos(f"{p}mc4", vcmfb, x1, vdd, vdd, design.cmfb_load),
        Capacitor(f"{p}cc", vcmfb, gnd, design.cmfb_comp_cap),
        # Controlled pull-ups closing the loop on the amplifier outputs.
        _mos(f"{p}m8p", outp, vcmfb, vdd, vdd, design.cmfb_pullup),
        _mos(f"{p}m8m", outm, vcmfb, vdd, vdd, design.cmfb_pullup),
    )
