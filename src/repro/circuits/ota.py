"""The current-mode transconductance amplifier of the I&D unit.

Topology (per the paper's description): each input drives an NMOS source
follower whose current flows through a diode-connected mirror master; the
current is then mirrored and amplified (ratio ~2) into the output stage.
The pull-up path goes through an NMOS slave into a PMOS diode/slave pair;
the pull-down path is the cross-coupled NMOS slave from the opposite
side, so each output is pushed by its own side and pulled by the other -
a fully differential output current proportional to the differential
input voltage.

The composite transconductance is ``gm1*gm2/(gm1+gm2) ~ gm2`` (the diode
dominates because the follower aspect ratio of ~20 makes ``gm1`` large),
and the output resistance is set by the un-cascoded mirror devices -
exactly the mechanism the paper invokes for the 21 dB DC gain and the
sub-MHz dominant pole with the 1 pF load.
"""

from __future__ import annotations

from repro.circuits.sizing import IntegrateDumpDesign, MosSize
from repro.spice.devices import Mosfet
from repro.spice.netlist import Circuit


def _mos(name: str, d: str, g: str, s: str, b: str, size: MosSize) -> Mosfet:
    return Mosfet(name, d, g, s, b, size.model, w=size.w, l=size.l)


def add_ota(ckt: Circuit, design: IntegrateDumpDesign, *,
            inp: str, inm: str, outp: str, outm: str,
            vdd: str, gnd: str, prefix: str = "") -> None:
    """Add the 12-transistor transconductance amplifier to *ckt*.

    Args:
        inp/inm: differential inputs.
        outp/outm: amplifier output nodes (internal ``Outp``/``Outm`` of
            figure 3; the integration switches attach here).
        vdd/gnd: supply rails.
        prefix: device/node name prefix for multiple instances.
    """
    p = prefix
    ratio = design.mirror_ratio
    margin = design.pulldown_margin
    # Mirror slaves are exact ratioed copies of the diode master so the
    # mirror ratios hold by construction.
    slave_up = design.diode.scaled(ratio)
    slave_down = design.diode.scaled(ratio * margin)

    for side, inx, out_own, out_other in (
            ("p", inp, outp, outm), ("m", inm, outm, outp)):
        node_a = f"{p}a{side}"
        node_pdio = f"{p}pdio{side}"
        ckt.add(
            # input source follower (aspect ratio ~20)
            _mos(f"{p}m1{side}", vdd, inx, node_a, gnd, design.follower),
            # diode-connected mirror master: sets the composite gm
            _mos(f"{p}m2{side}", node_a, node_a, gnd, gnd, design.diode),
            # ratio-2 NMOS slave feeding the PMOS pull-up mirror
            _mos(f"{p}m4{side}", node_pdio, node_a, gnd, gnd, slave_up),
            # cross-coupled ratio-2(+margin) pull-down on the other output
            _mos(f"{p}m5{side}", out_other, node_a, gnd, gnd, slave_down),
            # PMOS diode + slave push the mirrored current into own output
            _mos(f"{p}m6{side}", node_pdio, node_pdio, vdd, vdd,
                 design.mirror_up_p),
            _mos(f"{p}m7{side}", out_own, node_pdio, vdd, vdd,
                 design.mirror_up_p),
        )
