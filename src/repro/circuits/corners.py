"""Process / supply corner analysis of the Integrate & Dump.

The paper motivates the CMFB network by the output nodes being "subject
to temperature and power supply voltage variations causing the output to
float", and specifies a 0-90 C operating range on the UMC process.  This
module provides the corresponding verification machinery:

* :func:`corner_models` - FF/SS/FS/SF/TT model-card sets derived from the
  generic 0.18 um library by shifting VTO and KP (the level-1 knobs that
  dominate corner behaviour),
* :func:`corner_sweep` - figure-4 characterization (gain + poles) of the
  I&D at every corner and supply point,
* :func:`cmfb_regulation` - output common-mode error versus supply
  voltage (what the CMFB must keep small).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.circuits.integrate_dump import build_id_testbench
from repro.circuits.sizing import IntegrateDumpDesign, default_design
from repro.spice.devices.mosfet import MosModel
from repro.spice.library import generic_018

#: (vto shift in volts for NMOS / sign-mirrored for PMOS, kp scale)
CORNER_SHIFTS: dict[str, tuple[float, float, float, float]] = {
    # name: (nmos dvto, nmos kp x, pmos dvto, pmos kp x)
    "tt": (0.0, 1.00, 0.0, 1.00),
    "ff": (-0.05, 1.10, -0.05, 1.10),
    "ss": (+0.05, 0.90, +0.05, 0.90),
    "fs": (-0.05, 1.10, +0.05, 0.90),
    "sf": (+0.05, 0.90, -0.05, 1.10),
}


def corner_models(corner: str) -> dict[str, MosModel]:
    """The generic-0.18 um library shifted to *corner* (tt/ff/ss/fs/sf).

    NMOS cards get ``(dvto_n, kp*x_n)``; PMOS cards mirror the VTO shift
    (a "fast" PMOS has a *less negative* threshold).
    """
    try:
        dvto_n, kp_n, dvto_p, kp_p = CORNER_SHIFTS[corner.lower()]
    except KeyError:
        raise ValueError(f"unknown corner {corner!r}; pick one of "
                         f"{sorted(CORNER_SHIFTS)}") from None
    cards = {}
    for name, card in generic_018().items():
        if card.mtype == "n":
            cards[name] = replace(card, vto=card.vto + dvto_n,
                                  kp=card.kp * kp_n)
        else:
            cards[name] = replace(card, vto=card.vto - dvto_p,
                                  kp=card.kp * kp_p)
    return cards


def _swap_models(circuit, cards: dict[str, MosModel]) -> None:
    for name, card in cards.items():
        circuit.models[name] = card


@dataclass
class CornerPoint:
    """One corner/supply characterization result."""

    corner: str
    vdd: float
    gain_db: float
    fp1_hz: float
    fp2_hz: float
    output_cm: float


def corner_sweep(design: IntegrateDumpDesign | None = None,
                 corners=("tt", "ff", "ss", "fs", "sf"),
                 vdd_points=(1.62, 1.8, 1.98)) -> list[CornerPoint]:
    """Characterize the I&D across corners and +/-10 % supply.

    Returns one :class:`CornerPoint` per (corner, vdd) combination.
    """
    from repro.core.characterize import ID_OP_GUESS, fit_two_pole
    from repro.spice import ac_analysis, operating_point
    from repro.spice.analysis.ac import logspace_freqs
    from repro.spice.devices.sources import VoltageSource

    design = design or default_design()
    freqs = logspace_freqs(1e3, 50e9, 6)
    results = []
    for corner in corners:
        cards = corner_models(corner)
        for vdd in vdd_points:
            tb = build_id_testbench(design, mode="integrate", ac=True)
            _swap_models(tb, cards)
            tb.replace_device(VoltageSource("vdd", "vdd", "0", dc=vdd))
            op = operating_point(tb, initial_guess=ID_OP_GUESS)
            ac = ac_analysis(tb, freqs, op=op)
            fit = fit_two_pole(freqs, ac.mag_db("out_intp", "out_intm"))
            cm = 0.5 * (op.v("x1.outp") + op.v("x1.outm"))
            results.append(CornerPoint(
                corner=corner, vdd=vdd, gain_db=fit.gain_db,
                fp1_hz=fit.fp1_hz, fp2_hz=fit.fp2_hz, output_cm=cm))
    return results


def cmfb_regulation(design: IntegrateDumpDesign | None = None,
                    vdd_points=(1.6, 1.7, 1.8, 1.9, 2.0)
                    ) -> list[tuple[float, float]]:
    """Output common-mode voltage versus supply (CMFB at work).

    Returns ``(vdd, output_cm)`` pairs; a working CMFB keeps the output
    CM near ``design.output_cm`` across the sweep, which is precisely
    why the paper calls the block "fundamental".
    """
    from repro.core.characterize import ID_OP_GUESS
    from repro.spice import operating_point
    from repro.spice.devices.sources import VoltageSource

    design = design or default_design()
    out = []
    for vdd in vdd_points:
        tb = build_id_testbench(design, mode="integrate")
        tb.replace_device(VoltageSource("vdd", "vdd", "0", dc=vdd))
        op = operating_point(tb, initial_guess=ID_OP_GUESS)
        cm = 0.5 * (op.v("x1.outp") + op.v("x1.outm"))
        out.append((vdd, cm))
    return out


def format_corner_table(points: list[CornerPoint]) -> str:
    """Human-readable corner report."""
    lines = [f"{'corner':<7s} {'vdd':>5s} {'gain':>8s} {'fp1':>10s} "
             f"{'fp2':>9s} {'out CM':>7s}"]
    for p in points:
        lines.append(
            f"{p.corner:<7s} {p.vdd:>4.2f} {p.gain_db:>6.2f}dB "
            f"{p.fp1_hz / 1e6:>7.2f}MHz {p.fp2_hz / 1e9:>6.2f}GHz "
            f"{p.output_cm:>6.3f}V")
    return "\n".join(lines)
