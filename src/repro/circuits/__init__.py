"""Transistor-level designs from the paper.

The centerpiece is the current-mode Integrate & Dump unit of figure 3
(:mod:`repro.circuits.integrate_dump`), assembled from:

* the transconductance amplifier (:mod:`repro.circuits.ota`) with its
  source-follower input stage and ratio-2 mirror output stage,
* the common-mode feedback network (:mod:`repro.circuits.cmfb`),
* the integration/dump transmission-gate switches
  (:mod:`repro.circuits.switches`).

All blocks are parameterized by :class:`repro.circuits.sizing.IntegrateDumpDesign`
so tests and calibration sweeps can explore the sizing space.
"""

from repro.circuits.sizing import IntegrateDumpDesign, MosSize, default_design
from repro.circuits.integrate_dump import (
    ID_INTERFACE_PORTS,
    build_integrate_dump,
    build_id_testbench,
    count_transistors,
)
from repro.circuits.corners import (
    CornerPoint,
    cmfb_regulation,
    corner_models,
    corner_sweep,
    format_corner_table,
)


def builtin_circuits():
    """Named factories of every shipped netlist, for ``python -m repro
    lint <name>`` and the circuit-QA certification tests.

    Returns:
        ``{name: factory}`` where each zero-argument factory yields a
        :class:`~repro.spice.netlist.Circuit` (testbenches) or a
        :class:`~repro.spice.netlist.Subckt` (linted stand-alone with
        its ports treated as externally driven).
    """
    return {
        "int_spice": build_integrate_dump,
        "id_testbench": build_id_testbench,
        "id_testbench_hold": lambda: build_id_testbench(mode="hold"),
        "id_testbench_dump": lambda: build_id_testbench(mode="dump"),
        "id_testbench_ac": lambda: build_id_testbench(ac=True),
    }

__all__ = [
    "CornerPoint",
    "ID_INTERFACE_PORTS",
    "IntegrateDumpDesign",
    "MosSize",
    "build_id_testbench",
    "build_integrate_dump",
    "builtin_circuits",
    "cmfb_regulation",
    "corner_models",
    "corner_sweep",
    "count_transistors",
    "default_design",
    "format_corner_table",
]
