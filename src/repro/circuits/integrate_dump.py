"""The complete Integrate & Dump unit (paper figure 3) and testbenches.

``build_integrate_dump`` assembles the transconductance amplifier, the
CMFB network, the integration switches and the 1 pF integrating
capacitor into a :class:`~repro.spice.netlist.Subckt` whose interface
matches the paper's component declaration::

    component int_spice
      port ( terminal Inp, Inm: electrical;
             terminal Controlp, Controlm, Vdd, Gnd,
                      Out_intp, Out_intm: electrical);

(The paper counts 31 transistors for the ELDO integrator; so does this
netlist - checked by a regression test.)
"""

from __future__ import annotations

from repro.circuits.cmfb import add_cmfb
from repro.circuits.ota import add_ota
from repro.circuits.sizing import IntegrateDumpDesign, default_design
from repro.circuits.switches import add_integration_switches
from repro.spice.devices import Capacitor, Mosfet, Pulse, VoltageSource
from repro.spice.library import generic_018
from repro.spice.netlist import Circuit, Subckt

#: Interface terminals, in the order of the paper's VHDL-AMS component.
ID_INTERFACE_PORTS = ("inp", "inm", "controlp", "controlm", "vdd", "gnd",
                      "out_intp", "out_intm")


def build_integrate_dump(design: IntegrateDumpDesign | None = None,
                         name: str = "int_spice") -> Subckt:
    """Build the I&D subcircuit.

    Args:
        design: sizing; :func:`~repro.circuits.sizing.default_design`
            if omitted.
        name: subckt name (paper: ``int_spice``).
    """
    design = design or default_design()
    inner = Circuit(f"subckt {name}", models=generic_018().values())
    add_ota(inner, design, inp="inp", inm="inm", outp="outp", outm="outm",
            vdd="vdd", gnd="gnd")
    add_cmfb(inner, design, outp="outp", outm="outm", vdd="vdd", gnd="gnd")
    add_integration_switches(
        inner, design, outp="outp", outm="outm",
        out_intp="out_intp", out_intm="out_intm",
        controlp="controlp", controlm="controlm", vdd="vdd", gnd="gnd")
    inner.add(Capacitor("c_int", "out_intp", "out_intm", design.c_int))
    return Subckt(name=name, ports=ID_INTERFACE_PORTS, circuit=inner)


def count_transistors(circuit: Circuit) -> int:
    """Number of MOSFETs in a (flattened) circuit."""
    return len(circuit.devices_of(Mosfet))


def build_id_testbench(design: IntegrateDumpDesign | None = None, *,
                       mode: str = "integrate",
                       diff_dc: float = 0.0,
                       diff_wave=None,
                       ac: bool = False,
                       control_waves: tuple | None = None) -> Circuit:
    """System-free testbench around the I&D subckt.

    Sources:
        ``vdd``: supply.
        ``vinp``/``vinm``: inputs at ``design.input_cm`` +/- half the
            differential drive.  With ``ac=True`` they carry +/-0.5 AC
            magnitudes so the differential AC input is exactly 1 (making
            ``vdiff(out_intp, out_intm)`` the transfer function of
            figure 4 directly).
        ``vctlp``/``vctlm``: integration / dump controls.  ``mode``
            presets them: ``"integrate"`` (ctlp high), ``"hold"`` (both
            low), ``"dump"`` (ctlm high); *control_waves* overrides with
            ``(Pulse|None, Pulse|None)`` transient waveforms.

    Args:
        diff_dc: static differential input voltage.
        diff_wave: optional ``Waveform`` for the differential input;
            it is split symmetrically between the two inputs.
    """
    design = design or default_design()
    ckt = Circuit("id_testbench", models=generic_018().values())
    ckt.add_subckt(build_integrate_dump(design))
    ckt.add(VoltageSource("vdd", "vdd", "0", dc=design.vdd))

    half = diff_dc / 2.0
    wave_p = wave_m = None
    if diff_wave is not None:
        wave_p = _HalfWave(diff_wave, design.input_cm, +0.5)
        wave_m = _HalfWave(diff_wave, design.input_cm, -0.5)
    ckt.add(VoltageSource("vinp", "inp", "0", dc=design.input_cm + half,
                          ac_mag=0.5 if ac else 0.0, ac_phase=0.0,
                          wave=wave_p))
    ckt.add(VoltageSource("vinm", "inm", "0", dc=design.input_cm - half,
                          ac_mag=0.5 if ac else 0.0, ac_phase=180.0,
                          wave=wave_m))

    if control_waves is not None:
        wave_ctlp, wave_ctlm = control_waves
        ckt.add(VoltageSource("vctlp", "controlp", "0",
                              dc=0.0, wave=wave_ctlp))
        ckt.add(VoltageSource("vctlm", "controlm", "0",
                              dc=0.0, wave=wave_ctlm))
    else:
        levels = {"integrate": (design.vdd, 0.0),
                  "hold": (0.0, 0.0),
                  "dump": (0.0, design.vdd)}
        try:
            ctlp, ctlm = levels[mode]
        except KeyError:
            raise ValueError(f"unknown mode {mode!r}; pick one of "
                             f"{sorted(levels)}") from None
        ckt.add(VoltageSource("vctlp", "controlp", "0", dc=ctlp))
        ckt.add(VoltageSource("vctlm", "controlm", "0", dc=ctlm))

    ckt.instantiate("x1", "int_spice",
                    ["inp", "inm", "controlp", "controlm", "vdd", "0",
                     "out_intp", "out_intm"])
    return ckt


class _HalfWave:
    """Waveform adapter: common mode + signed half of a differential
    waveform."""

    def __init__(self, wave, common_mode: float, factor: float):
        self._wave = wave
        self._cm = common_mode
        self._factor = factor

    def value(self, t: float) -> float:
        return self._cm + self._factor * self._wave.value(t)


def integrate_hold_dump_waves(t_int_start: float, t_int: float,
                              t_hold: float, t_dump: float,
                              vdd: float = 1.8, period: float | None = None,
                              t_edge: float = 0.2e-9) -> tuple[Pulse, Pulse]:
    """Control waveforms for the figure-5 integrate/hold/dump sequence.

    Returns ``(controlp_wave, controlm_wave)``: controlp is high during
    the integration window, controlm goes high for the dump window after
    the hold, optionally repeating with *period*.
    """
    import math

    per = period if period is not None else math.inf
    ctlp = Pulse(0.0, vdd, td=t_int_start, tr=t_edge, tf=t_edge,
                 pw=t_int, per=per)
    ctlm = Pulse(0.0, vdd, td=t_int_start + t_int + t_hold, tr=t_edge,
                 tf=t_edge, pw=t_dump, per=per)
    return ctlp, ctlm
