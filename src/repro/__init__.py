"""repro: reproduction of the DATE'07 AMS top-down UWB SoC methodology.

Subpackages
-----------

``repro.core``
    The paper's contribution: the four-phase top-down refinement flow
    (model registry, substitute-and-play, Phase-IV auto-characterization,
    metric comparison).
``repro.ams``
    A VHDL-AMS-like mixed-signal simulation kernel (event-driven digital
    + fixed-step analog, hierarchical entities, Spice co-simulation).
``repro.spice``
    An MNA circuit simulator (the ELDO substitute): OP / DC / AC /
    transient with a level-1 MOSFET model and a Spice netlist parser.
``repro.circuits``
    Transistor-level designs from the paper, chiefly the 31-transistor
    current-mode Integrate & Dump of figure 3.
``repro.uwb``
    The UWB energy-detection transceiver substrate: pulses, 2-PPM
    packets, IEEE 802.15.4a CM1 channel, front end, AGC, synchronizer,
    demodulator, two-way ranging, and a vectorized BER engine.
``repro.link``
    The one front door: declarative ``LinkSpec`` + pluggable
    ``Backend`` (vectorized golden model / AMS-kernel testbench) with
    integrator selection routed through the model registry.
``repro.experiments``
    Harnesses that regenerate every table and figure of the paper,
    self-registered for ``python -m repro run``.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
