"""Shared configuration of the UWB system simulations."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

SPEED_OF_LIGHT = 299_792_458.0  # m/s


@dataclass(frozen=True)
class UwbConfig:
    """Parameters of the 2-PPM energy-detection link.

    The defaults follow the paper's setup where stated (0.05 ns
    simulation step -> 20 GS/s; TG4a CM1 channel; 2-PPM with energy
    detection) and its companion papers' typical choices elsewhere.

    Attributes:
        fs: sample rate of the waveform-level simulation (Hz).  The
            paper simulates with a fixed 0.05 ns step, i.e. 20 GS/s.
        symbol_period: 2-PPM symbol period Ts; a '0' pulse sits in
            [0, Ts/2), a '1' pulse in [Ts/2, Ts).
        pulse_tau: Gaussian pulse shape parameter (s).
        pulse_order: Gaussian-derivative order (5 keeps the 20 GS/s
            spectrum inside the FCC indoor mask at full scale).
        integration_window: energy-integration window per slot (s); also
            the synchronizer search resolution.
        preamble_symbols: non-modulated preamble length (all pulses in
            slot 0).
        payload_bits: payload length used by packet-level simulations.
        adc_bits / adc_vref: ADC resolution and full-scale input.
        agc_steps_db / agc_range_db: VGA gain quantization (DAC-driven)
            and range.
        noise_temp_windows: windows used by the noise-estimation (NE)
            phase.
        sync_symbols: preamble symbols used by the synchronizer's energy
            search.
    """

    fs: float = 20e9
    symbol_period: float = 16e-9
    pulse_tau: float = 0.09e-9
    pulse_order: int = 5
    integration_window: float = 2e-9
    preamble_symbols: int = 16
    payload_bits: int = 64
    adc_bits: int = 5
    adc_vref: float = 1.0
    agc_steps_db: float = 2.0
    agc_range_db: float = 40.0
    noise_est_windows: int = 32
    sync_symbols: int = 8

    @property
    def dt(self) -> float:
        """Simulation time step (paper: 0.05 ns)."""
        return 1.0 / self.fs

    @property
    def slot(self) -> float:
        """PPM slot duration Ts/2."""
        return self.symbol_period / 2.0

    @property
    def samples_per_symbol(self) -> int:
        return int(round(self.symbol_period * self.fs))

    @property
    def samples_per_slot(self) -> int:
        return self.samples_per_symbol // 2

    @property
    def samples_per_window(self) -> int:
        return max(1, int(round(self.integration_window * self.fs)))

    def scaled(self, **changes) -> "UwbConfig":
        """Copy with changed fields (e.g. a faster test configuration)."""
        return replace(self, **changes)

    def validate(self) -> None:
        if self.fs <= 0 or self.symbol_period <= 0:
            raise ValueError("fs and symbol_period must be positive")
        if self.samples_per_symbol % 2:
            raise ValueError("symbol period must hold an even number of "
                             "samples (two PPM slots)")
        if self.integration_window > self.slot:
            raise ValueError("integration window cannot exceed the slot")


#: A light configuration for unit tests (shorter symbols, lower rate).
TEST_CONFIG = UwbConfig(
    fs=8e9,
    symbol_period=32e-9,
    pulse_tau=0.8e-9,
    pulse_order=2,
    integration_window=4e-9,
    preamble_symbols=8,
    payload_bits=32,
)
