"""Quantizing ADC model.

Phase II "modeled the effects which have a relevant impact on the
system-level performance (quantization effects of the ADC ...)"; this is
that model: a uniform mid-rise quantizer with saturation.
"""

from __future__ import annotations

import numpy as np


class Adc:
    """Uniform N-bit ADC over ``[0, vref]`` (unipolar: integrated
    energies are non-negative).

    Args:
        bits: resolution.
        vref: full-scale input.
    """

    def __init__(self, bits: int = 5, vref: float = 1.0):
        if bits < 1:
            raise ValueError("bits must be >= 1")
        if vref <= 0:
            raise ValueError("vref must be positive")
        self.bits = int(bits)
        self.vref = float(vref)

    @property
    def levels(self) -> int:
        return 1 << self.bits

    @property
    def lsb(self) -> float:
        return self.vref / self.levels

    def convert(self, value):
        """Quantize to integer codes ``0 .. 2**bits - 1`` (saturating)."""
        codes = np.floor(np.asarray(value, dtype=float) / self.lsb)
        codes = np.clip(codes, 0, self.levels - 1)
        if np.isscalar(value) or np.ndim(value) == 0:
            return int(codes)
        return codes.astype(np.int64)

    def to_voltage(self, code):
        """Mid-step reconstruction voltage of a code."""
        return (np.asarray(code) + 0.5) * self.lsb

    def quantize(self, value):
        """Round-trip convert + reconstruct (the analog-visible effect)."""
        return self.to_voltage(self.convert(value))
