"""IEEE 802.15.4a (TG4a) multipath channel model, CM1 residential LOS.

The TG4a final report specifies a modified Saleh-Valenzuela model:
Poisson cluster arrivals with exponential cluster decay, mixed-Poisson
ray arrivals with exponential intra-cluster decay, Nakagami-m small-scale
fading per ray, lognormal cluster shadowing, and a distance power law for
the path loss.  CM1 is the residential line-of-sight environment the
paper uses for its TWR experiments ("the TG4a UWB channel model employed
is the CM1 LOS with the recommended path loss") and for extracting the
integrator design constraints ("100 UWB TG4a CM1 waveform realizations").

Parameter values below are the CM1 column of the TG4a report (Molisch et
al., IEEE 802.15-04-0662).  The LOS first path is deterministic and the
model is band-limited only by the simulation sample rate, which matches
how behavioral UWB simulators consume it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.uwb.config import SPEED_OF_LIGHT


@dataclass(frozen=True)
class SalehValenzuelaParameters:
    """Modified S-V parameters (TG4a notation, times in seconds).

    Attributes:
        cluster_rate: cluster arrival rate Lambda (1/s).
        ray_rate_1 / ray_rate_2 / beta: mixed-Poisson ray arrival rates
            lambda_1, lambda_2 and mixture probability beta.
        cluster_decay: inter-cluster decay constant Gamma (s).
        ray_decay: intra-cluster decay constant gamma (s).
        cluster_shadowing_db: std-dev of the lognormal cluster shadowing.
        nakagami_m_mean_db / nakagami_m_std_db: lognormal distribution of
            the Nakagami m-factor.
        mean_clusters: average number of clusters L-bar.
        k_los: power ratio of the deterministic LOS first path relative
            to the total diffuse power (linear).
        pl0_db: path loss at 1 m (dB).
        pl_exponent: path-loss exponent n.
    """

    cluster_rate: float
    ray_rate_1: float
    ray_rate_2: float
    beta: float
    cluster_decay: float
    ray_decay: float
    cluster_shadowing_db: float
    nakagami_m_mean_db: float
    nakagami_m_std_db: float
    mean_clusters: float
    k_los: float
    pl0_db: float
    pl_exponent: float


#: CM1: residential LOS, 7-20 m (TG4a report table values).
CM1_PARAMETERS = SalehValenzuelaParameters(
    cluster_rate=0.047e9,
    ray_rate_1=1.54e9,
    ray_rate_2=0.15e9,
    beta=0.095,
    cluster_decay=22.61e-9,
    ray_decay=12.53e-9,
    cluster_shadowing_db=2.75,
    nakagami_m_mean_db=0.67,
    nakagami_m_std_db=0.28,
    mean_clusters=3.0,
    k_los=1.0,
    pl0_db=43.9,
    pl_exponent=1.79,
)


def path_loss_db(distance: float,
                 params: SalehValenzuelaParameters = CM1_PARAMETERS) -> float:
    """Distance power-law path loss ``PL0 + 10 n log10(d / 1m)``."""
    if distance <= 0:
        raise ValueError("distance must be positive")
    return params.pl0_db + 10.0 * params.pl_exponent * math.log10(distance)


@dataclass
class ChannelRealization:
    """A sampled channel impulse response plus its propagation delay.

    Attributes:
        taps: impulse-response tap gains at the simulation rate.
        delay_samples: integer propagation delay (line-of-sight flight
            time) preceding the first tap.
        fs: sample rate the taps are defined at.
        distance: link distance (m).
    """

    taps: np.ndarray
    delay_samples: int
    fs: float
    distance: float

    def apply(self, waveform: np.ndarray, extra_tail: int = 0) -> np.ndarray:
        """Convolve *waveform* with the channel (delay included).

        The output is ``delay_samples`` zeros, then the full linear
        convolution ``waveform * taps`` (whose multipath ringing
        extends ``len(taps) - 1`` samples past the input), then
        ``extra_tail`` literal zeros - total length ``delay_samples +
        len(waveform) + len(taps) - 1 + extra_tail``.

        ``extra_tail`` exists for consumers that slice a *fixed-size*
        window out of the result: a chunked receiver reading
        ``out[delay_samples : delay_samples + n]`` needs ``n <=
        len(waveform) + len(taps) - 1`` to stay in bounds, and padding
        the tail keeps such slices valid when ``n`` runs past the
        convolution (e.g. a listening window longer than the chunk, as
        in the ranging exchange).  The padding is appended *after* the
        ringing, so it never truncates or overlaps multipath energy -
        ``apply(w, extra_tail=k)[:-k]`` equals ``apply(w)`` exactly.
        """
        out = np.convolve(waveform, self.taps)
        pad = np.zeros(self.delay_samples)
        tail = np.zeros(extra_tail)
        return np.concatenate([pad, out, tail])

    @property
    def delay_seconds(self) -> float:
        return self.delay_samples / self.fs

    def energy_gain(self) -> float:
        """Total multipath energy gain ``sum |h|^2``."""
        return float(np.sum(self.taps ** 2))

    def rms_delay_spread(self) -> float:
        """RMS delay spread of the tap power profile (s)."""
        power = self.taps ** 2
        total = power.sum()
        if total == 0:
            return 0.0
        t = np.arange(len(self.taps)) / self.fs
        mean = (t * power).sum() / total
        return math.sqrt(((t - mean) ** 2 * power).sum() / total)


class Cm1Channel:
    """Generator of CM1 channel realizations.

    Args:
        fs: simulation sample rate.
        params: S-V parameter set (CM1 by default).
        apply_path_loss: scale taps by the recommended distance power
            law (the paper's TWR runs use "the recommended path loss").
        max_excess_delay: truncation of the power-delay profile.
    """

    def __init__(self, fs: float,
                 params: SalehValenzuelaParameters = CM1_PARAMETERS,
                 apply_path_loss: bool = True,
                 max_excess_delay: float = 120e-9):
        self.fs = float(fs)
        self.params = params
        self.apply_path_loss = apply_path_loss
        self.max_excess_delay = max_excess_delay

    def _nakagami_amplitude(self, rng: np.random.Generator,
                            mean_power: float) -> float:
        p = self.params
        m_db = rng.normal(p.nakagami_m_mean_db, p.nakagami_m_std_db)
        m = max(0.5, 10.0 ** (m_db / 10.0))
        # Nakagami-m amplitude == sqrt of Gamma(m, mean_power/m).
        return math.sqrt(rng.gamma(m, mean_power / m))

    def realize(self, distance: float,
                rng: np.random.Generator, *,
                rel_delay: float = 0.0) -> ChannelRealization:
        """Draw one channel realization at *distance* meters.

        Args:
            distance: link distance (drives the flight-time delay and,
                when enabled, the path loss).
            rng: entropy source of the stochastic tap draw.
            rel_delay: extra delay (s) added on top of the flight
                time, folded into ``delay_samples``.  May be negative
                as long as the total delay stays non-negative.  Note
                the scope: this shifts the realization's *absolute*
                arrival time, so it matters to consumers that keep the
                delay (packet-level receivers, ranging).  The BER
                pipeline trims every transmitter by its own
                ``delay_samples`` (symbol-synchronous alignment) and
                applies timing offsets as a circular shift instead -
                see ``InterfererSpec.timing_offset`` /
                ``InterfererPath.offset_samples``.
        """
        if distance <= 0:
            raise ValueError("distance must be positive")
        total_delay = distance / SPEED_OF_LIGHT + rel_delay
        if total_delay < 0:
            raise ValueError(
                "rel_delay must not advance the signal before t=0 "
                f"(flight time {distance / SPEED_OF_LIGHT:.3e}s + "
                f"rel_delay {rel_delay:.3e}s < 0)")
        p = self.params
        n_taps = int(round(self.max_excess_delay * self.fs)) + 1
        taps = np.zeros(n_taps)

        n_clusters = max(1, rng.poisson(p.mean_clusters))
        cluster_times = [0.0]
        while len(cluster_times) < n_clusters:
            cluster_times.append(
                cluster_times[-1] + rng.exponential(1.0 / p.cluster_rate))

        for t_cluster in cluster_times:
            if t_cluster >= self.max_excess_delay:
                break
            cluster_gain = (math.exp(-t_cluster / p.cluster_decay)
                            * 10.0 ** (rng.normal(0.0,
                                                  p.cluster_shadowing_db)
                                       / 20.0))
            t_ray = 0.0
            while t_cluster + t_ray < self.max_excess_delay:
                mean_power = cluster_gain ** 2 * math.exp(
                    -t_ray / p.ray_decay)
                amp = self._nakagami_amplitude(rng, mean_power)
                sign = 1.0 if rng.random() < 0.5 else -1.0
                idx = int(round((t_cluster + t_ray) * self.fs))
                if idx < n_taps:
                    taps[idx] += sign * amp
                rate = p.ray_rate_1 if rng.random() < p.beta else p.ray_rate_2
                t_ray += rng.exponential(1.0 / rate)

        # Deterministic LOS first path carrying k_los times the diffuse
        # energy (CM1 is line-of-sight).
        diffuse_energy = float(np.sum(taps ** 2))
        taps[0] += math.sqrt(p.k_los * max(diffuse_energy, 1e-30))

        # Normalize to unit energy, then apply the distance power law.
        energy = float(np.sum(taps ** 2))
        taps /= math.sqrt(energy)
        if self.apply_path_loss:
            taps *= 10.0 ** (-path_loss_db(distance, p) / 20.0)

        delay = int(round(total_delay * self.fs))
        return ChannelRealization(taps=taps, delay_samples=delay,
                                  fs=self.fs, distance=distance)
