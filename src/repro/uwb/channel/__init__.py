"""UWB channel models: IEEE 802.15.4a CM1 and AWGN."""

from repro.uwb.channel.awgn import AwgnChannel, noise_sigma_for_ebn0
from repro.uwb.channel.ieee802154a import (
    CM1_PARAMETERS,
    ChannelRealization,
    Cm1Channel,
    SalehValenzuelaParameters,
    path_loss_db,
)

__all__ = [
    "AwgnChannel",
    "CM1_PARAMETERS",
    "ChannelRealization",
    "Cm1Channel",
    "SalehValenzuelaParameters",
    "noise_sigma_for_ebn0",
    "path_loss_db",
]
