"""Additive white Gaussian noise and Eb/N0 bookkeeping.

In a sampled simulation at rate ``fs``, white noise of two-sided PSD
``N0/2`` appears as i.i.d. Gaussian samples with variance
``sigma^2 = N0 * fs / 2`` - the standard waveform-level convention used
here and by the vectorized BER engine.
"""

from __future__ import annotations

import math

import numpy as np


def noise_sigma_for_ebn0(eb: float, ebn0_db: float, fs: float) -> float:
    """Per-sample noise standard deviation for a target Eb/N0.

    Args:
        eb: received energy per bit (V^2 s).
        ebn0_db: target Eb/N0 in dB.
        fs: sample rate.
    """
    if eb <= 0:
        raise ValueError("energy per bit must be positive")
    n0 = eb / (10.0 ** (ebn0_db / 10.0))
    return math.sqrt(n0 * fs / 2.0)


class AwgnChannel:
    """Stateless AWGN channel with a fixed per-sample sigma."""

    def __init__(self, sigma: float, rng: np.random.Generator):
        if sigma < 0:
            raise ValueError("sigma must be >= 0")
        self.sigma = float(sigma)
        self.rng = rng

    def __call__(self, waveform: np.ndarray) -> np.ndarray:
        if self.sigma == 0.0:
            return np.array(waveform, dtype=float, copy=True)
        return waveform + self.rng.normal(0.0, self.sigma,
                                          size=len(waveform))
