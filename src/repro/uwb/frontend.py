"""Behavioral RF front end: LNA and DAC-stepped VGA.

Phase-II style models: linear gain with saturation ("saturation in the
various stages" is one of the effects the paper keeps even in the ideal
architecture), optional bandwidth limit, and for the VGA a gain that is
quantized in DAC steps because "its gain is controlled in steps using a
DA converter within the AGC block".
"""

from __future__ import annotations

import math

import numpy as np

from repro.ams.equations import OnePoleState


class Lna:
    """Low-noise amplifier: fixed gain, optional input-referred noise
    and output clipping.

    Args:
        gain_db: voltage gain in dB.
        sat: output saturation (V); ``None`` disables clipping.
        noise_sigma: input-referred noise added per sample (V rms).
    """

    def __init__(self, gain_db: float = 20.0, sat: float | None = 0.9,
                 noise_sigma: float = 0.0,
                 rng: np.random.Generator | None = None):
        self.gain = 10.0 ** (gain_db / 20.0)
        self.sat = sat
        self.noise_sigma = float(noise_sigma)
        self.rng = rng

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if self.noise_sigma > 0.0:
            if self.rng is None:
                raise ValueError("noise_sigma set but no rng provided")
            x = x + self.rng.normal(0.0, self.noise_sigma, size=x.shape)
        y = self.gain * x
        if self.sat is not None:
            y = np.clip(y, -self.sat, self.sat)
        return y


class Vga:
    """Variable-gain amplifier with DAC-quantized gain steps.

    Args:
        step_db: gain quantum (the AGC DAC's LSB).
        min_db / max_db: programmable range.
        sat: output saturation (V).
    """

    def __init__(self, step_db: float = 2.0, min_db: float = 0.0,
                 max_db: float = 40.0, sat: float | None = 0.9):
        if step_db <= 0:
            raise ValueError("step_db must be positive")
        if max_db < min_db:
            raise ValueError("max_db must be >= min_db")
        self.step_db = float(step_db)
        self.min_db = float(min_db)
        self.max_db = float(max_db)
        self.sat = sat
        self._code = 0

    @property
    def n_codes(self) -> int:
        return int(math.floor((self.max_db - self.min_db)
                              / self.step_db)) + 1

    @property
    def code(self) -> int:
        return self._code

    @property
    def gain_db(self) -> float:
        return self.min_db + self._code * self.step_db

    @property
    def gain(self) -> float:
        return 10.0 ** (self.gain_db / 20.0)

    def set_code(self, code: int) -> None:
        """Program the DAC code (clamped to the valid range)."""
        self._code = int(np.clip(code, 0, self.n_codes - 1))

    def set_gain_db(self, gain_db: float) -> None:
        """Program the nearest achievable gain (quantized!)."""
        code = round((gain_db - self.min_db) / self.step_db)
        self.set_code(code)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        y = self.gain * np.asarray(x, dtype=float)
        if self.sat is not None:
            y = np.clip(y, -self.sat, self.sat)
        return y
