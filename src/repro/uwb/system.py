"""Mixed-signal receiver testbench on the AMS kernel (Phases II-IV).

This is the system-level testbench of the methodology: the receiver
back end (VGA -> squarer -> Integrate & Dump -> ADC -> demodulator) built
from kernel blocks, with the integrator slot accepting any of:

* ``"ideal"``       - Phase II behavioral model,
* ``"two_pole"``    - Phase IV behavioral model (optionally with the
  extracted nonlinearity),
* ``"circuit"``     - Phase III: the transistor netlist co-simulated in
  the loop (the ADMS/Eldo substitute-and-play),
* any :class:`~repro.uwb.integrator.WindowIntegrator` instance.

The same testbench, waveform and timing are reused across phases, which
is exactly the property the paper exploits to compare implementations -
and what the Table-1 CPU benchmark measures.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.ams import (
    AnalogBlock,
    CallbackBlock,
    Recorder,
    Signal,
    Simulator,
    SpiceBlock,
)
from repro.circuits import IntegrateDumpDesign, build_id_testbench, \
    default_design
from repro.uwb.adc import Adc
from repro.uwb.config import UwbConfig
from repro.uwb.integrator import WindowIntegrator

MODE_DUMP = 0
MODE_INTEGRATE = 1
MODE_HOLD = 2


class WaveformSource(AnalogBlock):
    """Plays a sampled waveform into a quantity, one sample per step."""

    def __init__(self, name: str, samples: np.ndarray, out) -> None:
        super().__init__(name, outputs=[out])
        # Own, frozen copy: step_block hands out views of this array,
        # so an in-place downstream callback must fail loudly instead
        # of corrupting the stimulus (or the caller's array).
        self.samples = np.array(samples, dtype=float)
        self.samples.setflags(write=False)
        self._idx = 0

    def step(self, t: float, dt: float) -> None:
        if self._idx < len(self.samples):
            self.outputs[0].value = float(self.samples[self._idx])
        else:
            self.outputs[0].value = 0.0
        self._idx += 1

    def step_block(self, t0: float, dt: float, n: int, inputs):
        idx = self._idx
        end = idx + n
        self._idx = end
        samples = self.samples
        if end <= len(samples):
            return (samples[idx:end],)
        out = np.zeros(n)
        avail = len(samples) - idx
        if avail > 0:
            out[:avail] = samples[idx:]
        return (out,)

    def reset(self) -> None:
        self._idx = 0


class BehavioralIntegratorBlock(AnalogBlock):
    """Gated integrator around a streaming state (Phase II / IV).

    The mode signal only changes at digital events, so within an
    inter-event segment the gate is constant and the whole window can be
    integrated at once - provided the state implements the vectorized
    ``integrate_block`` (both kernel ODE states do; a custom state
    without it simply keeps this block lock-step).
    """

    def __init__(self, name: str, state, vin, vout, mode: Signal):
        super().__init__(name, inputs=[vin], outputs=[vout])
        self.state = state
        self.mode = mode
        vectorizable = getattr(state, "vectorizable", None)
        if not hasattr(state, "integrate_block") or (
                vectorizable is not None and not vectorizable()):
            self.step_block = None  # instance-level opt-out

    def step(self, t: float, dt: float) -> None:
        mode = self.mode.value
        if mode == MODE_INTEGRATE:
            out = self.state.integrate(self.inputs[0].value, dt)
        elif mode == MODE_HOLD:
            out = self.state.hold()
        else:
            out = self.state.dump()
        self.outputs[0].value = float(out)

    def step_block(self, t0: float, dt: float, n: int, inputs):
        mode = self.mode.value
        if mode == MODE_INTEGRATE:
            return (self.state.integrate_block(inputs[0], dt),)
        if mode == MODE_HOLD:
            return (np.full(n, float(self.state.hold())),)
        return (np.full(n, float(self.state.dump())),)

    def reset(self) -> None:
        self.state.dump()


@dataclass
class AmsRunResult:
    """Result of one AMS receiver run.

    Attributes:
        bits: demodulated payload bits (one per full symbol simulated).
        slot_values: raw ADC input voltages per slot (n_symbols, 2).
        cpu_time: wall-clock seconds spent in the kernel loop.
        steps: analog steps executed.
        recorder: optional waveform recorder (when tracing was enabled).
    """

    bits: np.ndarray
    slot_values: np.ndarray
    cpu_time: float
    steps: int
    recorder: Recorder | None = None


def _resolve_integrator(kind: str | WindowIntegrator
                        ) -> WindowIntegrator | str:
    """Resolve an integrator spec through the link registry: pass
    through instances, build registered names, keep ``"circuit"``
    symbolic (it becomes a co-simulation block)."""
    # Imported lazily: repro.link's backends import this module.
    from repro.link.registry import resolve_integrator

    return resolve_integrator(kind, cosim=True)


def make_integrator(kind: str | WindowIntegrator,
                    design: IntegrateDumpDesign | None = None
                    ) -> WindowIntegrator | str:
    """Deprecated string dispatch, absorbed by the link registry.

    .. deprecated::
        Use :func:`repro.link.registry.resolve_integrator` (or select
        integrators by name in a :class:`repro.link.LinkSpec`).
    """
    warnings.warn(
        "repro.uwb.system.make_integrator is deprecated; resolve "
        "integrators through repro.link.registry.resolve_integrator",
        DeprecationWarning, stacklevel=2)
    return _resolve_integrator(kind)


def build_ams_receiver(config: UwbConfig,
                       integrator: str | WindowIntegrator,
                       waveform: np.ndarray, *,
                       gain: float = 1.0,
                       design: IntegrateDumpDesign | None = None,
                       adc: Adc | None = None,
                       cosim_substeps: int = 1,
                       record: bool = False,
                       t_hold: float | None = None,
                       t_dump: float | None = None,
                       engine: str = "compiled",
                       preflight: bool = True,
                       ) -> tuple[Simulator, "_Harvest"]:
    """Assemble the receiver testbench; see :func:`run_ams_receiver`."""
    config.validate()
    design = design or default_design()
    sim = Simulator(dt=config.dt, engine=engine)

    rx = sim.quantity("rx")
    vga_out = sim.quantity("vga_out")
    sq_out = sim.quantity("sq_out")
    int_out = sim.quantity("int_out")
    mode = sim.signal("id_mode", init=MODE_DUMP)

    sim.add_block(WaveformSource("rx_source", waveform, rx))
    sim.add_block(CallbackBlock("vga", lambda v: gain * v,
                                inputs=[rx], outputs=[vga_out],
                                vectorized=True))
    sim.add_block(CallbackBlock("squarer", lambda v: v * v,
                                inputs=[vga_out], outputs=[sq_out],
                                vectorized=True))

    resolved = _resolve_integrator(integrator)
    if resolved == "circuit":
        tb = build_id_testbench(design, mode="hold")
        cm = design.input_cm
        vdd = design.vdd

        def ctlp() -> float:
            return vdd if mode.value == MODE_INTEGRATE else 0.0

        def ctlm() -> float:
            return vdd if mode.value == MODE_DUMP else 0.0

        block = SpiceBlock(
            "integrate_dump_spice", tb, config.dt,
            inputs={
                "vinp": lambda: cm + 0.5 * sq_out.value,
                "vinm": lambda: cm - 0.5 * sq_out.value,
                "vctlp": ctlp,
                "vctlm": ctlm,
            },
            outputs={int_out: lambda st: st.vdiff("out_intp", "out_intm")},
            substeps=cosim_substeps,
            initial_guess={"x1.outp": 0.9, "x1.outm": 0.9,
                           "out_intp": 0.9, "out_intm": 0.9,
                           "vdd": vdd, "inp": cm, "inm": cm},
            preflight=preflight)
        sim.add_block(block)
    else:
        sim.add_block(BehavioralIntegratorBlock(
            "integrate_dump", resolved.make_state(), sq_out, int_out, mode))

    harvest = _Harvest(sim, config, adc, mode, int_out,
                       t_hold=t_hold if t_hold is not None else 2e-9,
                       t_dump=t_dump if t_dump is not None else 2e-9)
    recorder = None
    if record:
        recorder = Recorder(sim, [rx, vga_out, sq_out, int_out])
    harvest.recorder = recorder
    return sim, harvest


class _Harvest:
    """Slot timing + ADC sampling + demodulation processes."""

    def __init__(self, sim: Simulator, config: UwbConfig, adc: Adc | None,
                 mode: Signal, int_out, t_hold: float, t_dump: float):
        self.sim = sim
        self.config = config
        self.adc = adc
        self.mode = mode
        self.int_out = int_out
        self.slot_values: list[float] = []
        self.recorder: Recorder | None = None
        sim.on_reset(self.clear)
        slot = config.slot
        if t_hold + t_dump >= slot:
            raise ValueError("hold + dump must fit inside a slot")

        def slot_tick(s: Simulator) -> None:
            # Slot layout: dump -> integrate -> hold(+sample).
            self.mode.assign(MODE_DUMP)
            s.schedule(t_dump, lambda: self.mode.assign(MODE_INTEGRATE))
            s.schedule(slot - t_hold,
                       lambda: self.mode.assign(MODE_HOLD))
            s.schedule(slot - s.dt, self._sample)

        sim.every(slot, slot_tick, start=0.0)

    def _sample(self) -> None:
        self.slot_values.append(float(self.int_out.value))

    def clear(self) -> None:
        """Drop harvested samples (wired into ``Simulator.reset``)."""
        self.slot_values.clear()

    def result(self) -> AmsRunResult:
        values = np.asarray(self.slot_values, dtype=float)
        n_pairs = len(values) // 2
        pairs = values[:2 * n_pairs].reshape(n_pairs, 2)
        adc = self.adc
        if adc is None:
            # Auto-ranged ADC: full scale tracks the observed slot peak,
            # standing in for a converged AGC (the explicit AGC loop is
            # exercised by the packet-level receiver).
            peak = float(np.max(pairs)) if pairs.size else 1.0
            adc = Adc(bits=self.config.adc_bits,
                      vref=max(peak, 1e-12) * 1.05)
        quantized = adc.quantize(np.maximum(pairs, 0.0))
        bits = (quantized[:, 1] > quantized[:, 0]).astype(np.int8)
        return AmsRunResult(bits=bits, slot_values=pairs,
                            cpu_time=self.sim.cpu_time,
                            steps=self.sim.steps,
                            recorder=self.recorder)


def _run_ams_receiver(config: UwbConfig,
                      integrator: str | WindowIntegrator,
                      waveform: np.ndarray, *,
                      gain: float = 1.0,
                      design: IntegrateDumpDesign | None = None,
                      adc: Adc | None = None,
                      cosim_substeps: int = 1,
                      record: bool = False,
                      t_stop: float | None = None,
                      engine: str = "compiled") -> AmsRunResult:
    """Run the mixed-signal receiver over *waveform*.

    Args:
        config: link configuration (sets the kernel dt = 1/fs).
        integrator: ``"ideal"`` / ``"two_pole"`` / ``"surrogate"`` /
            ``"circuit"`` or a model instance.
        waveform: received waveform samples at ``config.fs`` (already
            including noise/channel); it reaches the squarer through a
            fixed-gain VGA.
        gain: VGA gain (linear).
        cosim_substeps: circuit-level steps per kernel step (Phase III).
        record: attach a waveform recorder (rx, vga, squarer, integrator).
        t_stop: simulation span (default: the waveform duration rounded
            down to whole symbols).
        engine: kernel execution engine (``"compiled"`` vectorizes the
            behavioral back ends between digital events; ``"reference"``
            is the lock-step oracle; circuit co-simulation always runs
            lock-step regardless).

    Returns:
        An :class:`AmsRunResult` with demodulated bits, per-slot ADC
        inputs, and the kernel CPU time (Table-1 metric).
    """
    sim, harvest = build_ams_receiver(
        config, integrator, waveform, gain=gain, design=design, adc=adc,
        cosim_substeps=cosim_substeps, record=record, engine=engine)
    if t_stop is None:
        n_symbols = len(waveform) // config.samples_per_symbol
        t_stop = n_symbols * config.symbol_period
    sim.run(t_stop)
    return harvest.result()


def run_ams_receiver(*args, **kwargs) -> AmsRunResult:
    """Deprecated front door; see :func:`_run_ams_receiver` for the
    signature.

    .. deprecated::
        Build a :class:`repro.link.LinkSpec` and call
        ``KernelBackend(engine=...).packet(spec, waveform)`` (or the
        campaign-friendly :func:`repro.link.ops.run_testbench`).
    """
    warnings.warn(
        "repro.uwb.system.run_ams_receiver is deprecated; go through "
        "repro.link (LinkSpec + KernelBackend.packet / "
        "repro.link.ops.run_testbench)",
        DeprecationWarning, stacklevel=2)
    return _run_ams_receiver(*args, **kwargs)
