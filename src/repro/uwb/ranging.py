"""Two-Way Ranging (TWR) over the CM1 channel.

"The TWR consists in a distance estimation through the Round-Trip-Time
(RTT) of UWB signals exchanged between two transceivers.  A request
packet is sent by a first transceiver and is replied by a second after a
known processing time (PT).  The replied packet is received again by the
first transceiver which estimates the RTT by subtracting the PT."

The distance estimate is ``d = c * (RTT - PT) / 2``; its error is
``c * (e_A + e_B) / 2`` where ``e_X`` is each receiver's time-of-arrival
estimation error.  Each TWR iteration therefore simulates two one-way
packet receptions (request and reply) through fresh noise (and, per
iteration, a fresh CM1 realization), using the full receiver chain -
including the installed integrator model, which is how the ideal-vs-ELDO
comparison of the paper's table 2 is reproduced.

The ``counter`` block of figure 1 is modeled by quantizing timestamps to
the counter clock (default: the synchronizer window, which is also the
resolution the receiver's TOA carries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.uwb.channel.ieee802154a import Cm1Channel
from repro.uwb.config import SPEED_OF_LIGHT, UwbConfig
from repro.uwb.modulation import Packet, packet_waveform, random_bits
from repro.uwb.receiver import EnergyDetectionReceiver


@dataclass
class RangingResult:
    """Statistics of a TWR campaign.

    Attributes:
        distances: per-iteration distance estimates (m).
        true_distance: the actual link distance (m).
    """

    distances: np.ndarray
    true_distance: float

    @property
    def mean(self) -> float:
        return float(np.mean(self.distances))

    @property
    def variance(self) -> float:
        return float(np.var(self.distances, ddof=1)) if len(
            self.distances) > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def offset(self) -> float:
        """Mean estimation bias (m)."""
        return self.mean - self.true_distance

    def summary(self) -> dict[str, float]:
        return {"mean_m": self.mean, "variance_m2": self.variance,
                "std_m": self.std, "offset_m": self.offset,
                "true_m": self.true_distance,
                "iterations": float(len(self.distances))}


class TwoWayRanging:
    """TWR simulator between two identical transceivers.

    Args:
        config: link configuration.
        receiver_factory: builds a fresh receiver per reception (so AGC
            state does not leak across iterations); receives no
            arguments.
        distance: true link distance (m) - the paper uses 9.9 m.
        tx_amplitude: transmitted pulse peak amplitude (V).
        noise_sigma: receiver input noise per sample (V rms).
        channel: CM1 generator; ``None`` uses an ideal (delay-only)
            channel.
        static_channel: draw one CM1 realization up front and reuse it
            for every iteration ("10 TWR iterations at a single distance
            point": the geometry is fixed, only noise varies).  Requires
            *channel*.
        processing_time: the known PT between reception and reply (s).
        idle_time: idle head before each packet (for the NE phase).
        counter_period: RTT counter resolution (s); default one
            simulation sample (the TOA itself is window-quantized).
    """

    def __init__(self, config: UwbConfig,
                 receiver_factory: Callable[[], EnergyDetectionReceiver],
                 distance: float = 9.9,
                 tx_amplitude: float = 1.0,
                 noise_sigma: float = 1e-4,
                 channel: Cm1Channel | None = None,
                 static_channel: bool = False,
                 static_channel_seed: int = 1234,
                 processing_time: float = 2e-6,
                 idle_time: float | None = None,
                 counter_period: float | None = None):
        config.validate()
        if distance <= 0:
            raise ValueError("distance must be positive")
        self.config = config
        self.receiver_factory = receiver_factory
        self.distance = float(distance)
        self.tx_amplitude = float(tx_amplitude)
        self.noise_sigma = float(noise_sigma)
        self.channel = channel
        self._fixed_realization = None
        if static_channel:
            if channel is None:
                raise ValueError("static_channel requires a channel model")
            self._fixed_realization = channel.realize(
                distance, np.random.default_rng(static_channel_seed))
        self.processing_time = float(processing_time)
        if idle_time is None:
            idle_time = (config.noise_est_windows + 8) \
                * config.integration_window
        self.idle_time = float(idle_time)
        self.counter_period = counter_period or config.dt

    # ------------------------------------------------------------------
    def _one_way_toa_error(self, rng: np.random.Generator) -> float | None:
        """Simulate one packet flight; return ``toa_hat - toa_true`` (s)
        or None if the receiver missed the packet."""
        cfg = self.config
        packet = Packet(cfg.preamble_symbols,
                        random_bits(cfg.payload_bits, rng))
        wave = packet_waveform(packet, cfg, amplitude=self.tx_amplitude)

        idle = int(round(self.idle_time * cfg.fs))
        if self.channel is not None:
            realization = (self._fixed_realization
                           if self._fixed_realization is not None
                           else self.channel.realize(self.distance, rng))
            rx = realization.apply(wave, extra_tail=cfg.samples_per_symbol)
            delay_samples = realization.delay_samples
        else:
            delay_samples = int(round(
                self.distance / SPEED_OF_LIGHT * cfg.fs))
            rx = np.concatenate([np.zeros(delay_samples), wave,
                                 np.zeros(cfg.samples_per_symbol)])
        rx = np.concatenate([np.zeros(idle), rx])
        rx = rx + rng.normal(0.0, self.noise_sigma, size=len(rx))

        receiver = self.receiver_factory()
        result = receiver.process(rx, payload_bits=cfg.payload_bits)
        if not result.detected or result.toa is None:
            return None
        # True TOA: center of the first preamble pulse after flight.
        true_toa = (idle + delay_samples) / cfg.fs \
            + (cfg.samples_per_slot // 2) * cfg.dt
        return result.toa - true_toa

    def run(self, iterations: int,
            rng: np.random.Generator) -> RangingResult:
        """Run *iterations* TWR exchanges; failed detections are
        retried with fresh noise (they would be retransmissions)."""
        tick = self.counter_period
        estimates = []
        attempts = 0
        max_attempts = iterations * 10
        while len(estimates) < iterations and attempts < max_attempts:
            attempts += 1
            err_request = self._one_way_toa_error(rng)
            err_reply = self._one_way_toa_error(rng)
            if err_request is None or err_reply is None:
                continue
            rtt_error = err_request + err_reply
            # Counter quantization of the measured RTT.
            rtt_error = round(rtt_error / tick) * tick
            d_hat = self.distance + SPEED_OF_LIGHT * rtt_error / 2.0
            estimates.append(d_hat)
        if len(estimates) < iterations:
            raise RuntimeError(
                f"TWR: only {len(estimates)}/{iterations} exchanges "
                f"detected after {attempts} attempts - link budget too "
                "weak for the configured noise")
        return RangingResult(distances=np.array(estimates),
                             true_distance=self.distance)
