"""Automatic gain control.

The paper's AGC programs the VGA "in steps using a DA converter" so that
"the input dynamics of the ADC is fully exploited"; its section-5 finding
is that a single gain cannot simultaneously match the *amplitude* to the
integrator's ~100 mV linear input range and the *energy* to the ADC full
scale - the real integrator compresses, the integrated value drops, and
ranging inherits an offset.  The proposed fix is a two-stage control:
amplitude matching up front, energy matching after the integrator.

Both controllers are implemented here:

* :class:`Agc` - the original single-stage policy (energy matching via
  the *ideal* integrator gain, i.e. blind to compression),
* :class:`TwoStageAgc` - the paper's proposed fix (used by the ablation
  benchmark).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.uwb.adc import Adc
from repro.uwb.frontend import Vga


@dataclass(frozen=True)
class AgcDecision:
    """Outcome of an AGC calibration.

    Attributes:
        code: VGA DAC code to program.
        post_gain: gain applied between integrator output and ADC (the
            second stage of the two-stage scheme; 1.0 for the classic
            single-stage AGC).
    """

    code: int
    post_gain: float


class Agc:
    """Single-stage AGC: energy matching assuming the ideal integrator.

    Args:
        vga: the VGA under control (provides the step/range quantization).
        adc: the ADC whose range must be filled.
        integrator_k: the *assumed* ideal integration constant K; the
            flaw modeled here is precisely that the real integrator does
            not realize this K at large inputs.
        fill: fraction of the ADC full scale targeted by a nominal
            preamble symbol energy.
    """

    def __init__(self, vga: Vga, adc: Adc, integrator_k: float,
                 fill: float = 0.85):
        if not 0.0 < fill <= 1.0:
            raise ValueError("fill must be in (0, 1]")
        # A missing or degenerate gain must fail loudly: energy
        # matching against a wrong K silently mis-scales every
        # downstream decision (and the old 7e7 magic default did
        # exactly that for custom integrators).
        if integrator_k is None:
            raise ValueError(
                "Agc requires the integrator's nominal integration "
                "constant (integrator_k); derive it from the installed "
                "model's ideal_k")
        k = float(integrator_k)
        if not math.isfinite(k) or k <= 0:
            raise ValueError(
                f"integrator_k must be positive and finite, got {k!r}")
        self.vga = vga
        self.adc = adc
        self.integrator_k = k
        self.fill = float(fill)

    def _target_vout(self) -> float:
        return self.fill * self.adc.vref

    def decide(self, peak_amplitude: float,
               window_energy: float) -> AgcDecision:
        """Compute the gain from unity-gain preamble measurements.

        Args:
            peak_amplitude: measured peak |v| at the VGA input (unused by
                the single-stage policy; kept for interface symmetry).
            window_energy: measured ``integral v^2 dt`` over the pulse
                integration window at unity VGA gain.

        Returns:
            The DAC code achieving (as nearly as the steps allow)
            ``K * g^2 * window_energy = fill * vref``.
        """
        if window_energy <= 0:
            return AgcDecision(code=0, post_gain=1.0)
        g_squared = self._target_vout() / (self.integrator_k * window_energy)
        gain_db = 10.0 * math.log10(max(g_squared, 1e-30))
        code = round((gain_db - self.vga.min_db) / self.vga.step_db)
        code = max(0, min(self.vga.n_codes - 1, code))
        return AgcDecision(code=code, post_gain=1.0)

    def apply(self, decision: AgcDecision) -> None:
        self.vga.set_code(decision.code)


class TwoStageAgc(Agc):
    """The paper's proposed two-stage AGC.

    Stage 1 programs the VGA for *amplitude* matching: the squared signal
    presented to the integrator stays inside its linear input range.
    Stage 2 is a post-integrator gain restoring *energy* matching for the
    ADC.

    Args:
        amp_target: target peak amplitude at the squarer output (V),
            chosen inside the integrator's linear range.
    """

    def __init__(self, vga: Vga, adc: Adc, integrator_k: float,
                 fill: float = 0.85, amp_target: float = 0.08):
        super().__init__(vga, adc, integrator_k, fill=fill)
        if amp_target <= 0:
            raise ValueError("amp_target must be positive")
        self.amp_target = float(amp_target)

    def decide(self, peak_amplitude: float,
               window_energy: float) -> AgcDecision:
        if peak_amplitude <= 0 or window_energy <= 0:
            return AgcDecision(code=0, post_gain=1.0)
        # Stage 1: the squarer output peak is (g*peak)^2 -> keep it at
        # amp_target.
        g = math.sqrt(self.amp_target) / peak_amplitude
        gain_db = 20.0 * math.log10(max(g, 1e-30))
        code = round((gain_db - self.vga.min_db) / self.vga.step_db)
        code = max(0, min(self.vga.n_codes - 1, code))
        g_actual = 10.0 ** ((self.vga.min_db + code * self.vga.step_db)
                            / 20.0)
        # Stage 2: make the *ideal* integrated energy at this reduced
        # gain fill the ADC range.
        vout_nominal = (self.integrator_k * g_actual ** 2 * window_energy)
        post_gain = self._target_vout() / max(vout_nominal, 1e-30)
        return AgcDecision(code=code, post_gain=post_gain)
