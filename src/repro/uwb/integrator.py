"""Integrate & Dump model family across the methodology phases.

Each model exposes two complementary APIs:

* **vectorized**: :meth:`WindowIntegrator.window_outputs` integrates a
  batch of windows (any leading shape, samples on the last axis), each
  from a dumped (zero) state - the workhorse of the Monte-Carlo BER
  engine;
* **streaming**: :meth:`WindowIntegrator.make_state` returns a
  per-sample integrate/hold/dump state for the AMS kernel path.

Models:

========================  ======  =============================================
class                     phase   description
========================  ======  =============================================
IdealIntegrator           II      ``vo' = K vin`` (the paper's IDEAL listing)
TwoPoleIntegrator         IV      gain + two poles (the paper's VHDL-AMS model)
CircuitSurrogateIntegrator III*   two poles + the *measured* static input
                                  nonlinearity of the transistor circuit -
                                  the fast stand-in for ELDO-in-the-loop
                                  used by BER/TWR sweeps (true co-simulation
                                  lives in ``repro.uwb.system``)
========================  ======  =============================================
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np
from scipy import signal as _signal

from repro.ams.equations import (
    GatedIntegratorState,
    TwoPoleGatedIntegratorState,
)


def nominal_gain(integrator) -> float | None:
    """The nominal (ideal-equivalent) integration constant of a model:
    ``ideal_k`` if exposed, else ``k``, else ``None``.  The single
    lookup every AGC-sizing path shares."""
    k = getattr(integrator, "ideal_k", None)
    if k is None:
        k = getattr(integrator, "k", None)
    return float(k) if k is not None else None


class WindowIntegrator:
    """Common interface of the behavioral integrator models."""

    #: methodology phase the model belongs to (for reports).
    phase = "II"
    name = "integrator"

    def window_outputs(self, x: np.ndarray, dt: float) -> np.ndarray:
        """Integrator output at the end of each window.

        Args:
            x: input windows, samples along the last axis.
            dt: sample period.

        Returns:
            Array of ``x.shape[:-1]`` final values.
        """
        raise NotImplementedError

    def response(self, x: np.ndarray, dt: float) -> np.ndarray:
        """Full output trajectory over each window (same shape as x)."""
        raise NotImplementedError

    def make_state(self):
        """A streaming integrate/hold/dump state for the AMS path."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__} (phase {self.phase})"


class IdealIntegrator(WindowIntegrator):
    """Phase-II ideal gated integrator ``vo' = K * vin``.

    Args:
        k: integration constant (1/s).  ``K = gain * 2*pi*fp1`` makes it
            the ideal limit of the two-pole model.
    """

    phase = "II"
    name = "ideal"

    #: Default K equals the two-pole model's ``gain * 2*pi*fp1`` so the
    #: phase-II and phase-IV models agree in their common linear regime
    #: (window << 1/fp1) and AGC policies target the same level.
    DEFAULT_K = 10.0 ** (21.0 / 20.0) * 2.0 * math.pi * 0.886e6

    def __init__(self, k: float | None = None):
        if k is None:
            k = self.DEFAULT_K
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = float(k)

    @property
    def ideal_k(self) -> float:
        """Uniform accessor shared with the two-pole models."""
        return self.k

    def window_outputs(self, x: np.ndarray, dt: float) -> np.ndarray:
        return self.k * dt * np.sum(x, axis=-1)

    def response(self, x: np.ndarray, dt: float) -> np.ndarray:
        return self.k * dt * np.cumsum(x, axis=-1)

    def make_state(self) -> GatedIntegratorState:
        return GatedIntegratorState(self.k)


class TwoPoleIntegrator(WindowIntegrator):
    """Phase-IV behavioral model: DC gain + two real poles.

    This is the paper's pair of coupled differential equations::

        vin - 1/(2 pi fp1) vq' - vq == 0
        G vq - 1/(2 pi fp2) vo' - vo == 0

    discretized with the bilinear transform for the vectorized API and
    with trapezoidal one-pole states for the streaming API (identical
    mathematics).

    Args:
        gain: DC gain (linear; paper: 10**(21/20)).
        fp1_hz / fp2_hz: pole frequencies (paper: 0.886 MHz, 5.895 GHz).
        input_nonlinearity: optional static pre-distortion f(vin)
            (vectorized callable); used by the circuit surrogate.
    """

    phase = "IV"
    name = "two_pole"

    def __init__(self, gain: float = 10.0 ** (21.0 / 20.0),
                 fp1_hz: float = 0.886e6, fp2_hz: float = 5.895e9,
                 input_nonlinearity: Callable[[np.ndarray], np.ndarray]
                 | None = None):
        if gain <= 0 or fp1_hz <= 0 or fp2_hz <= 0:
            raise ValueError("gain and poles must be positive")
        self.gain = float(gain)
        self.fp1_hz = float(fp1_hz)
        self.fp2_hz = float(fp2_hz)
        self.input_nonlinearity = input_nonlinearity
        self._filter_cache: dict[float, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def ideal_k(self) -> float:
        """The equivalent ideal integration constant ``G * 2 pi fp1``."""
        return self.gain * 2.0 * math.pi * self.fp1_hz

    def __getstate__(self) -> dict:
        # The lazily-built filter cache is derived state: dropping it
        # keeps pickles small for process fan-out and, more
        # importantly, keeps the campaign content hash of a model
        # independent of whether it has been run yet.
        state = dict(self.__dict__)
        state["_filter_cache"] = {}
        return state

    def _coeffs(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        try:
            return self._filter_cache[dt]
        except KeyError:
            pass
        w1 = 2.0 * math.pi * self.fp1_hz
        w2 = 2.0 * math.pi * self.fp2_hz
        num = [self.gain * w1 * w2]
        den = [1.0, w1 + w2, w1 * w2]
        b, a = _signal.bilinear(num, den, fs=1.0 / dt)
        self._filter_cache[dt] = (b, a)
        return b, a

    def _pre(self, x: np.ndarray) -> np.ndarray:
        if self.input_nonlinearity is None:
            return x
        return self.input_nonlinearity(x)

    def window_outputs(self, x: np.ndarray, dt: float) -> np.ndarray:
        b, a = self._coeffs(dt)
        y = _signal.lfilter(b, a, self._pre(x), axis=-1)
        return y[..., -1]

    def response(self, x: np.ndarray, dt: float) -> np.ndarray:
        b, a = self._coeffs(dt)
        return _signal.lfilter(b, a, self._pre(x), axis=-1)

    def make_state(self) -> TwoPoleGatedIntegratorState:
        return TwoPoleGatedIntegratorState(
            self.gain, self.fp1_hz, self.fp2_hz,
            input_nonlinearity=self.input_nonlinearity)


class SoftLimiter:
    """Tanh-like soft input limiter ``f(v) = s * tanh(v / s)``.

    A picklable callable (unlike a closure), so integrator models using
    it can cross process boundaries in :class:`~repro.core.scenario`
    sweeps.
    """

    #: accepts NumPy arrays - safe for segment-vectorized execution.
    vectorized = True

    def __init__(self, scale: float):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def __call__(self, v: np.ndarray) -> np.ndarray:
        return self.scale * np.tanh(np.asarray(v) / self.scale)

    def __repr__(self) -> str:
        return f"SoftLimiter(scale={self.scale:g})"


class TabulatedNonlinearity:
    """Interpolating static nonlinearity from measured points (clamping
    outside the measured range).  Picklable callable."""

    #: accepts NumPy arrays - safe for segment-vectorized execution.
    vectorized = True

    def __init__(self, vin: np.ndarray, f_of_vin: np.ndarray):
        vin = np.asarray(vin, dtype=float)
        f_of_vin = np.asarray(f_of_vin, dtype=float)
        if vin.ndim != 1 or vin.shape != f_of_vin.shape:
            raise ValueError("vin and f_of_vin must be matching 1-D "
                             "arrays")
        if np.any(np.diff(vin) <= 0):
            raise ValueError("vin grid must be strictly increasing")
        self.vin = vin
        self.f_of_vin = f_of_vin

    def __call__(self, v: np.ndarray) -> np.ndarray:
        return np.interp(v, self.vin, self.f_of_vin)

    def __repr__(self) -> str:
        return f"TabulatedNonlinearity({len(self.vin)} points)"


class CircuitSurrogateIntegrator(TwoPoleIntegrator):
    """Circuit-calibrated behavioral model (the fast ELDO stand-in).

    Identical structure to :class:`TwoPoleIntegrator` but *always*
    carries an input compression nonlinearity - by default the tanh-like
    soft limit of the paper's ~100 mV linear input range, or, better, a
    table extracted from a DC sweep of the transistor netlist via
    :func:`repro.core.characterize.extract_nonlinearity`.

    Args:
        vin_linear: input range scale of the default soft limiter (V).
    """

    phase = "III"
    name = "circuit"

    def __init__(self, gain: float = 10.0 ** (21.0 / 20.0),
                 fp1_hz: float = 0.886e6, fp2_hz: float = 5.895e9,
                 input_nonlinearity: Callable[[np.ndarray], np.ndarray]
                 | None = None,
                 vin_linear: float = 0.1):
        if input_nonlinearity is None:
            input_nonlinearity = SoftLimiter(float(vin_linear))
        super().__init__(gain=gain, fp1_hz=fp1_hz, fp2_hz=fp2_hz,
                         input_nonlinearity=input_nonlinearity)
        self.vin_linear = float(vin_linear)


def tabulated_nonlinearity(vin: np.ndarray, f_of_vin: np.ndarray
                           ) -> Callable[[np.ndarray], np.ndarray]:
    """Build an interpolating static nonlinearity from measured points
    (clamping outside the measured range; picklable)."""
    return TabulatedNonlinearity(vin, f_of_vin)
