"""UWB energy-detection transceiver substrate.

Everything the paper's case study needs, built from scratch:

* impulse-radio pulses (:mod:`repro.uwb.pulse`) and 2-PPM packets
  (:mod:`repro.uwb.modulation`),
* the IEEE 802.15.4a CM1 channel (:mod:`repro.uwb.channel`),
* behavioral front end with AGC (:mod:`repro.uwb.frontend`,
  :mod:`repro.uwb.agc`),
* the integrator model family across methodology phases
  (:mod:`repro.uwb.integrator`),
* ADC, synchronizer (NE/PS), demodulator,
* a sampled-waveform receiver (:mod:`repro.uwb.receiver`) and a
  vectorized Monte-Carlo BER engine (:mod:`repro.uwb.fastsim`) - the
  "Matlab golden model" of Phase I,
* a mixed-signal receiver built on the AMS kernel
  (:mod:`repro.uwb.system`) - the Phase II-IV testbench,
* two-way ranging (:mod:`repro.uwb.ranging`).
"""

from repro.uwb.config import UwbConfig
from repro.uwb.pulse import (
    fcc_indoor_mask_dbm_per_mhz,
    gaussian_derivative,
    pulse_energy,
    pulse_psd,
    sampled_pulse,
)
from repro.uwb.modulation import Packet, ppm_waveform, random_bits
from repro.uwb.channel import AwgnChannel, Cm1Channel, ChannelRealization
from repro.uwb.integrator import (
    CircuitSurrogateIntegrator,
    IdealIntegrator,
    TwoPoleIntegrator,
    WindowIntegrator,
)
from repro.uwb.adc import Adc
from repro.uwb.frontend import Lna, Vga
from repro.uwb.agc import Agc, TwoStageAgc
from repro.uwb.receiver import EnergyDetectionReceiver, ReceiverResult
from repro.uwb.fastsim import (
    AdaptiveStopping,
    BerResult,
    ber_curve,
    simulate_ber_point,
    wilson_interval,
)
from repro.uwb.ranging import RangingResult, TwoWayRanging

__all__ = [
    "AdaptiveStopping",
    "Adc",
    "Agc",
    "AwgnChannel",
    "BerResult",
    "ChannelRealization",
    "CircuitSurrogateIntegrator",
    "Cm1Channel",
    "EnergyDetectionReceiver",
    "IdealIntegrator",
    "Lna",
    "Packet",
    "RangingResult",
    "ReceiverResult",
    "TwoPoleIntegrator",
    "TwoStageAgc",
    "TwoWayRanging",
    "UwbConfig",
    "Vga",
    "WindowIntegrator",
    "ber_curve",
    "fcc_indoor_mask_dbm_per_mhz",
    "gaussian_derivative",
    "ppm_waveform",
    "pulse_energy",
    "pulse_psd",
    "random_bits",
    "sampled_pulse",
    "simulate_ber_point",
    "wilson_interval",
]
