"""Sampled-waveform energy-detection receiver (packet level).

Implements the receive phases the paper describes:

1. **NE** - noise estimation: window energies while the channel is idle
   set the detection threshold,
2. **PS** - preamble sense: energy exceeding the threshold flags an
   incoming packet,
3. **AGC** - gain calibration from preamble measurements,
4. **Synchronization** - fold the windowed integrator outputs over the
   symbol period and lock onto the preamble pulse phase,
5. **Demodulation** - per symbol, integrate both PPM slots and compare
   (through the ADC).

The windowed energies are produced by the *installed integrator model*,
so swapping the ideal / two-pole / circuit-surrogate integrator changes
synchronization and demodulation fidelity exactly as the methodology
intends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.uwb.adc import Adc
from repro.uwb.agc import Agc, AgcDecision
from repro.uwb.bpf import BandPassFilter
from repro.uwb.config import UwbConfig
from repro.uwb.frontend import Vga
from repro.uwb.integrator import (
    IdealIntegrator,
    WindowIntegrator,
    nominal_gain,
)


@dataclass
class ReceiverResult:
    """Outcome of processing one captured waveform.

    Attributes:
        detected: preamble sense fired.
        toa: estimated time of the first preamble pulse *center* (s),
            quantized to the synchronizer window grid; None if not
            detected.
        bits: demodulated payload bits.
        agc: the AGC decision taken.
        noise_mean / noise_std: NE-phase statistics (per window).
        sync_profile: folded energy profile the synchronizer peaked on.
        sync_phase: winning window phase index.
    """

    detected: bool
    toa: float | None
    bits: np.ndarray
    agc: AgcDecision | None
    noise_mean: float
    noise_std: float
    sync_profile: np.ndarray
    sync_phase: int


class EnergyDetectionReceiver:
    """Packet receiver around a pluggable integrator model.

    Args:
        config: link configuration.
        integrator: integrator model (phase II / IV / circuit surrogate).
        vga / adc: front-end blocks (defaults built from *config*).
        agc: gain controller (default: single-stage :class:`Agc`).
        bpf: receiver band-pass (default: derived from the pulse).
        detection_factor: threshold in noise std-devs above the mean.
    """

    def __init__(self, config: UwbConfig,
                 integrator: WindowIntegrator | None = None,
                 vga: Vga | None = None,
                 adc: Adc | None = None,
                 agc: Agc | None = None,
                 bpf: BandPassFilter | None = None,
                 detection_factor: float = 6.0,
                 toa_threshold_fraction: float = 0.10):
        config.validate()
        self.config = config
        self.integrator = integrator or IdealIntegrator()
        self.vga = vga or Vga(step_db=config.agc_steps_db,
                              max_db=config.agc_range_db)
        self.adc = adc or Adc(bits=config.adc_bits, vref=config.adc_vref)
        if agc is None:
            # The default AGC needs the nominal (ideal-equivalent)
            # integration constant of the installed model.  There is
            # no sane silent fallback - a wrong K mis-scales the whole
            # decision path - so a model without one must bring its
            # own AGC.
            k = nominal_gain(self.integrator)
            if k is None:
                raise ValueError(
                    f"integrator {type(self.integrator).__name__} "
                    "exposes no ideal_k/k integration constant; pass "
                    "an explicit agc= (the default Agc cannot size "
                    "the gain without it)")
            agc = Agc(self.vga, self.adc, integrator_k=k)
        self.agc = agc
        self.bpf = bpf if bpf is not None else BandPassFilter.for_pulse(
            config.fs, config.pulse_tau, config.pulse_order)
        self.detection_factor = float(detection_factor)
        if not 0.0 < toa_threshold_fraction < 1.0:
            raise ValueError("toa_threshold_fraction must be in (0, 1)")
        self.toa_threshold_fraction = float(toa_threshold_fraction)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _window_view(self, x: np.ndarray) -> np.ndarray:
        """Reshape a waveform into contiguous synchronizer windows."""
        n_win = self.config.samples_per_window
        usable = (len(x) // n_win) * n_win
        return x[:usable].reshape(-1, n_win)

    def window_energies(self, x: np.ndarray) -> np.ndarray:
        """Raw ``integral x^2 dt`` per synchronizer window."""
        view = self._window_view(x)
        return np.sum(view * view, axis=1) * self.config.dt

    # ------------------------------------------------------------------
    # main entry
    # ------------------------------------------------------------------
    def process(self, waveform: np.ndarray,
                payload_bits: int | None = None) -> ReceiverResult:
        """Run NE -> PS -> AGC -> sync -> demodulate on *waveform*.

        The waveform must contain idle noise at its start (the NE
        windows) followed by the packet.

        Args:
            payload_bits: payload length to demodulate (default: the
                configured ``payload_bits``).
        """
        cfg = self.config
        if payload_bits is None:
            payload_bits = cfg.payload_bits
        filtered = self.bpf(np.asarray(waveform, dtype=float))

        # --- Phase NE: noise statistics on the leading idle windows.
        energies = self.window_energies(filtered)
        n_ne = cfg.noise_est_windows
        if len(energies) <= n_ne:
            raise ValueError("waveform too short for noise estimation")
        noise_mean = float(np.mean(energies[:n_ne]))
        noise_std = float(np.std(energies[:n_ne])) or 1e-30

        # --- Phase PS: first window exceeding the threshold, confirmed
        # by a second hit within the following symbol.
        threshold = noise_mean + self.detection_factor * noise_std
        wins_per_symbol = max(1, cfg.samples_per_symbol
                              // cfg.samples_per_window)
        hot = np.nonzero(energies[n_ne:] > threshold)[0]
        detect_win = None
        for idx in hot:
            k = n_ne + int(idx)
            lookahead = energies[k + 1:k + 1 + wins_per_symbol]
            if np.any(lookahead > threshold):
                detect_win = k
                break
        if detect_win is None:
            return ReceiverResult(
                detected=False, toa=None, bits=np.zeros(0, np.int8),
                agc=None, noise_mean=noise_mean, noise_std=noise_std,
                sync_profile=np.zeros(0), sync_phase=-1)

        # --- AGC: unity-gain measurements over a few preamble symbols.
        n_win = cfg.samples_per_window
        meas_start = detect_win * n_win
        meas_len = 4 * cfg.samples_per_symbol
        segment = filtered[meas_start:meas_start + meas_len]
        peak_amplitude = float(np.max(np.abs(segment))) if len(segment) else 0.0
        window_energy = float(np.max(
            self.window_energies(segment))) if len(segment) else 0.0
        decision = self.agc.decide(peak_amplitude, window_energy)
        self.agc.apply(decision)

        # --- Synchronization: fold integrator outputs of the squared,
        # amplified signal over the symbol grid.
        sync_start = meas_start
        sync_len = cfg.sync_symbols * cfg.samples_per_symbol
        sync_seg = filtered[sync_start:sync_start + sync_len]
        if len(sync_seg) < sync_len:
            raise ValueError("waveform too short for synchronization")
        squared = np.square(self.vga(sync_seg))
        windows = squared.reshape(cfg.sync_symbols,
                                  wins_per_symbol, n_win)
        values = self.integrator.window_outputs(windows, cfg.dt)
        profile = np.sum(values, axis=0)
        phase = int(np.argmax(profile))

        # TOA: ADC-referred leading edge.  Within the first symbols after
        # preamble sense, the first window whose *quantized* integrator
        # output crosses a fixed fraction of the ADC full scale marks the
        # arrival.  The bounded search keeps distant noise spikes out;
        # the absolute (ADC-referred) threshold keeps the estimate
        # sensitive to the integrator's output *level*.  This is where
        # the installed integrator's fidelity matters: a compressed
        # (lower) output voltage crosses the threshold later - the
        # mechanism behind the paper's table-2 ranging offset.
        codes = self.adc.convert(
            np.maximum(decision.post_gain * values.reshape(-1), 0.0))
        toa_code = max(1, int(math.ceil(
            self.toa_threshold_fraction * (self.adc.levels - 1))))
        search_span = 2 * wins_per_symbol
        crossing = np.nonzero(codes[:search_span] >= toa_code)[0]
        toa_win = int(crossing[0]) if len(crossing) else phase
        toa = ((sync_start + toa_win * n_win) + 0.5 * n_win) * cfg.dt

        # --- Demodulation: packet symbol boundaries from the TOA (the
        # preamble pulse sits at the center of slot 0).
        pulse_offset = cfg.samples_per_slot // 2
        first_symbol_start = (sync_start + phase * n_win
                              + n_win // 2 - pulse_offset)
        payload_start = (first_symbol_start
                         + cfg.preamble_symbols * cfg.samples_per_symbol)
        bits = self._demodulate(filtered, payload_start, payload_bits,
                                decision.post_gain)
        return ReceiverResult(
            detected=True, toa=toa, bits=bits, agc=decision,
            noise_mean=noise_mean, noise_std=noise_std,
            sync_profile=profile, sync_phase=phase)

    def _demodulate(self, filtered: np.ndarray, payload_start: int,
                    n_bits: int, post_gain: float) -> np.ndarray:
        cfg = self.config
        n_sym = cfg.samples_per_symbol
        n_slot = cfg.samples_per_slot
        end = payload_start + n_bits * n_sym
        if payload_start < 0 or end > len(filtered):
            n_bits = max(0, (len(filtered) - payload_start) // n_sym)
            end = payload_start + n_bits * n_sym
        if n_bits == 0:
            return np.zeros(0, np.int8)
        segment = filtered[payload_start:end]
        squared = np.square(self.vga(segment)).reshape(n_bits, 2, n_slot)
        values = self.integrator.window_outputs(squared, cfg.dt)
        quantized = self.adc.quantize(post_gain * values)
        return (quantized[:, 1] > quantized[:, 0]).astype(np.int8)
