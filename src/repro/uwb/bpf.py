"""Receiver band-pass filter (the ``BPF`` block of figure 1).

The energy-detection receiver band-limits the antenna signal before the
squarer; without it the squarer would fold the full front-end noise
bandwidth into the decision statistic.  A Butterworth band-pass designed
around the transmitted pulse's occupied band is used, with the band
derivable automatically from the pulse spectrum.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as _signal

from repro.uwb.pulse import pulse_psd, sampled_pulse


def pulse_band(pulse: np.ndarray, fs: float,
               threshold_db: float = -6.0) -> tuple[float, float]:
    """Occupied band of a pulse: frequencies within *threshold_db* of
    the spectral peak."""
    freqs, esd = pulse_psd(pulse, fs)
    esd_db = 10.0 * np.log10(np.maximum(esd, 1e-300))
    above = np.nonzero(esd_db >= np.max(esd_db) + threshold_db)[0]
    return float(freqs[above[0]]), float(freqs[above[-1]])


class BandPassFilter:
    """Butterworth band-pass applied with second-order sections.

    Args:
        band: (low, high) corner frequencies in Hz.
        fs: sample rate.
        order: filter order (per corner).
    """

    def __init__(self, band: tuple[float, float], fs: float, order: int = 4):
        low, high = band
        nyq = fs / 2.0
        if not 0.0 < low < high:
            raise ValueError("need 0 < low < high")
        if high >= nyq:
            raise ValueError("high corner must be below Nyquist")
        self.band = (float(low), float(high))
        self.fs = float(fs)
        self.order = int(order)
        self.sos = _signal.butter(order, [low / nyq, high / nyq],
                                  btype="bandpass", output="sos")

    @classmethod
    def for_pulse(cls, fs: float, tau: float, pulse_order: int = 5,
                  threshold_db: float = -6.0,
                  order: int = 4) -> "BandPassFilter":
        """Filter matched to the occupied band of the configured pulse."""
        pulse = sampled_pulse(fs, tau, pulse_order)
        low, high = pulse_band(pulse, fs, threshold_db)
        low = max(low, 0.02 * fs / 2.0)
        high = min(high, 0.90 * fs / 2.0)
        return cls((low, high), fs, order=order)

    @property
    def noise_bandwidth(self) -> float:
        """Approximate equivalent noise bandwidth (Hz)."""
        return self.band[1] - self.band[0]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return _signal.sosfilt(self.sos, x, axis=-1)
