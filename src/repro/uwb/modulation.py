"""2-PPM modulation and the packet structure.

"In a 2-PPM modulated signal the symbol repetition period Ts is divided
in two slots of duration Ts/2.  In case of a transmission of a '0' the
UWB pulse appears in slot [0, Ts/2], in case of a '1' the pulse lays in
[Ts/2, Ts]" - and a packet is "a non-modulated sequence of pulses, i.e.
the preamble, followed by the modulated data, i.e. the payload".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.uwb.config import UwbConfig
from repro.uwb.pulse import sampled_pulse


@lru_cache(maxsize=64)
def _pulse_template(fs: float, tau: float, order: int) -> np.ndarray:
    """Memoized read-only pulse samples (the waveform synthesizer runs
    once per Monte-Carlo chunk; re-evaluating the Hermite polynomial
    every chunk is pure waste)."""
    pulse = sampled_pulse(fs, tau, order)
    pulse.setflags(write=False)
    return pulse


def random_bits(n: int, rng: np.random.Generator) -> np.ndarray:
    """*n* equiprobable bits as an int8 array."""
    return rng.integers(0, 2, size=n).astype(np.int8)


@dataclass(frozen=True)
class Packet:
    """A UWB packet: preamble (all pulses in slot 0) + payload bits."""

    preamble_symbols: int
    payload: np.ndarray

    def __post_init__(self):
        payload = np.asarray(self.payload, dtype=np.int8)
        if payload.ndim != 1:
            raise ValueError("payload must be a 1-D bit array")
        if np.any((payload != 0) & (payload != 1)):
            raise ValueError("payload bits must be 0/1")
        object.__setattr__(self, "payload", payload)
        if self.preamble_symbols < 0:
            raise ValueError("preamble_symbols must be >= 0")

    @property
    def symbols(self) -> np.ndarray:
        """Per-symbol slot choices: preamble zeros then payload bits."""
        return np.concatenate([
            np.zeros(self.preamble_symbols, dtype=np.int8), self.payload])

    @property
    def n_symbols(self) -> int:
        return self.preamble_symbols + len(self.payload)

    def duration(self, config: UwbConfig) -> float:
        return self.n_symbols * config.symbol_period


def ppm_positions(symbols: np.ndarray, config: UwbConfig) -> np.ndarray:
    """Sample index of each pulse center.

    The pulse of symbol *k* with slot choice ``b`` is centered in the
    middle of slot ``b`` of symbol period *k*.
    """
    symbols = np.asarray(symbols, dtype=np.int64)
    n_sym = config.samples_per_symbol
    n_slot = config.samples_per_slot
    base = np.arange(len(symbols), dtype=np.int64) * n_sym
    return base + symbols * n_slot + n_slot // 2


def ppm_waveform(symbols: np.ndarray, config: UwbConfig,
                 amplitude: float = 1.0,
                 extra_samples: int = 0) -> np.ndarray:
    """Synthesize the 2-PPM pulse train for *symbols*.

    Args:
        symbols: slot choice (0/1) per symbol.
        amplitude: peak pulse amplitude.
        extra_samples: trailing zero padding (lets channel tails ring
            out).

    Returns:
        Waveform array of ``len(symbols) * samples_per_symbol +
        extra_samples`` samples.
    """
    config.validate()
    pulse = _pulse_template(config.fs, config.pulse_tau,
                            config.pulse_order)
    half = len(pulse) // 2
    total = len(symbols) * config.samples_per_symbol + extra_samples
    # Pad by half a pulse on each side so early/late pulses stay intact,
    # then strip the head pad so sample 0 corresponds to t = 0.
    wave = np.zeros(total + len(pulse))
    centers = ppm_positions(symbols, config)
    if len(centers):
        idx = centers[:, None] + np.arange(len(pulse))
        contrib = np.broadcast_to(amplitude * pulse, idx.shape).ravel()
        if len(centers) == 1 or int(np.min(np.diff(centers))) >= len(pulse):
            # Disjoint pulse supports (the 2-PPM slot spacing exceeds
            # the pulse length): a flat scatter assignment.
            wave[idx.ravel()] = contrib
        else:
            # Overlapping supports accumulate in center order, exactly
            # like the historic per-pulse loop.
            np.add.at(wave, idx.ravel(), contrib)
    return wave[half:half + total]


def packet_waveform(packet: Packet, config: UwbConfig,
                    amplitude: float = 1.0,
                    extra_samples: int = 0) -> np.ndarray:
    """Waveform of a full packet (preamble + payload)."""
    return ppm_waveform(packet.symbols, config, amplitude=amplitude,
                        extra_samples=extra_samples)
