"""Vectorized Monte-Carlo BER engine (the Phase-I "Matlab" golden model).

Phase I of the methodology validates the behavioral receiver against a
high-level golden model ("the coherence with another high level
description language (Matlab) was checked ... we obtained BER curves
which perfectly overlapped the Matlab ones").  This module is that golden
model: a chunked, fully vectorized waveform-level simulation of the
2-PPM energy-detection link with an ideal synchronizer, used for the
figure-6 BER curves and the Phase-I overlap benchmark.

The signal chain per chunk of symbols:

    2-PPM pulse train -> [CM1 channel] -> [+ interferers] ->
    AWGN (per Eb/N0) -> BPF -> drive scaling -> squarer ->
    integrator model per slot -> [ADC] -> larger-slot decision

The chunk computation itself lives in the staged
:mod:`repro.link.pipeline` (Tx -> Channel -> Combine -> AnalogFrontEnd
-> Decision); this module keeps the Monte-Carlo bookkeeping (stopping
rules, Wilson intervals, curve assembly) and the pilot calibration.
Multi-user scenarios enter through the ``interferers`` argument
(resolved :class:`repro.link.pipeline.InterfererPath` values, normally
produced from a :class:`repro.link.spec.NetworkSpec` by the fastsim
backend).

Swapping the integrator model (ideal / two-pole / circuit surrogate)
reproduces the paper's ideal-versus-ELDO BER comparison.
"""

from __future__ import annotations

import importlib
import math
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.obs import trace as _trace
from repro.uwb.adc import Adc
from repro.uwb.bpf import BandPassFilter
from repro.uwb.channel.awgn import noise_sigma_for_ebn0
from repro.uwb.channel.ieee802154a import ChannelRealization
from repro.uwb.config import UwbConfig
from repro.uwb.integrator import IdealIntegrator, WindowIntegrator
from repro.uwb.modulation import ppm_waveform


#: memoized two-sided z-scores per confidence level: wilson_interval
#: sits inside the adaptive-stopping hot loop (called after every
#: Monte-Carlo chunk), so the inverse-normal lookup must not re-enter
#: scipy's import machinery per call.
_Z_SCORES: dict[float, float] = {}

#: scipy-free fallback for the default confidence level; the value is
#: ``float(scipy.special.ndtri(0.975))`` verbatim, so both code paths
#: produce bit-identical intervals.
_Z_FALLBACK = {0.95: 1.959963984540054}

#: lazily-bound repro.link.pipeline module.  It cannot be imported at
#: module top (repro.link.backends imports this module, so a top-level
#: import of repro.link would cycle), and re-importing per BER point
#: re-enters the import machinery for nothing - so the module object
#: is resolved once and memoized here.
_PIPELINE = None


def _link_pipeline():
    """The :mod:`repro.link.pipeline` module, imported once."""
    global _PIPELINE
    if _PIPELINE is None:
        _PIPELINE = importlib.import_module("repro.link.pipeline")
    return _PIPELINE


def _wilson_z(confidence: float) -> float:
    """Two-sided z-score of *confidence*, memoized per level."""
    z = _Z_SCORES.get(confidence)
    if z is None:
        try:
            from scipy.special import ndtri
        except ImportError:
            z = _Z_FALLBACK.get(confidence)
            if z is None:
                raise RuntimeError(
                    f"confidence {confidence} needs scipy for the "
                    "inverse normal CDF (only "
                    f"{sorted(_Z_FALLBACK)} ship a built-in z-score)"
                ) from None
        else:
            z = float(ndtri(0.5 + confidence / 2.0))
        _Z_SCORES[confidence] = z
    return z


def wilson_interval(errors: int, bits: int,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score confidence interval of a bit-error probability.

    The Wilson interval stays meaningful at the extremes Monte-Carlo
    BER estimation lives in - zero observed errors still yields a
    nonzero upper bound, which is exactly what an adaptive stopping
    rule needs at deep SNR.

    Args:
        errors / bits: the error counters.
        confidence: two-sided confidence level in (0, 1).

    Returns:
        ``(lower, upper)`` bounds on the error probability;
        ``(0.0, 1.0)`` when no bits have been observed.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if bits < 0 or errors < 0 or errors > bits:
        raise ValueError("need 0 <= errors <= bits")
    if bits == 0:
        return 0.0, 1.0
    z = _wilson_z(confidence)
    p = errors / bits
    z2 = z * z
    denom = 1.0 + z2 / bits
    center = (p + z2 / (2.0 * bits)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / bits
                                   + z2 / (4.0 * bits * bits))
    lo = 0.0 if errors == 0 else max(0.0, center - half)
    hi = 1.0 if errors == bits else min(1.0, center + half)
    return lo, hi


@dataclass(frozen=True)
class AdaptiveStopping:
    """Sequential stop-when-resolved policy for Monte-Carlo BER points.

    The fixed stopping rule of :func:`simulate_ber_point`
    (``target_errors`` / ``max_bits``) wastes most of its symbol
    budget at deep SNR, where the error count never reaches the
    target.  This policy ends a point early once its estimate is
    *resolved* in either of two ways, checked after every chunk:

    * **precision**: at least ``min_errors`` errors have been counted
      and the Wilson half-width has shrunk below ``rel_half_width``
      times the estimate - the point is known accurately enough;
    * **floor**: the Wilson *upper* bound has dropped below
      ``ber_floor`` - the point is known to be below the BER of
      interest, so counting further (possibly zero) errors is wasted
      work.  ``0`` disables this exit.

    Attributes:
        confidence: two-sided confidence of the Wilson bounds.
        rel_half_width: precision target, relative to the estimate.
        min_errors: minimum error count before the precision exit is
            trusted (guards against lucky early chunks).
        ber_floor: BER resolution floor of the study.
    """

    confidence: float = 0.95
    rel_half_width: float = 0.33
    min_errors: int = 8
    ber_floor: float = 0.0

    def resolved(self, errors: int, bits: int) -> bool:
        """Is ``errors/bits`` resolved under this policy?"""
        if bits <= 0:
            return False
        lo, hi = wilson_interval(errors, bits, self.confidence)
        if errors >= self.min_errors:
            p = errors / bits
            if (hi - lo) / 2.0 <= self.rel_half_width * p:
                return True
        return 0.0 < self.ber_floor and hi < self.ber_floor


@dataclass
class BerResult:
    """BER curve data.

    Attributes:
        ebn0_db: the Eb/N0 grid.
        ber: estimated bit-error rate per point.
        errors / bits: raw counters per point.
        label: legend label (integrator name by default).
        ci_low / ci_high: Wilson confidence bounds per point.
        confidence: confidence level of the bounds.
    """

    ebn0_db: np.ndarray
    ber: np.ndarray
    errors: np.ndarray
    bits: np.ndarray
    label: str = ""
    ci_low: np.ndarray | None = None
    ci_high: np.ndarray | None = None
    confidence: float = 0.95

    def as_rows(self) -> list[tuple[float, float, int, int]]:
        return [(float(e), float(b), int(err), int(n))
                for e, b, err, n in zip(self.ebn0_db, self.ber,
                                        self.errors, self.bits)]

    def format_table(self) -> str:
        """Per-point table including the Wilson bounds."""
        lines = [f"{'Eb/N0':>7s} {'BER':>12s} {'errors':>8s} "
                 f"{'bits':>9s} {'CI':>24s}"]
        for i, (e, b) in enumerate(zip(self.ebn0_db, self.ber)):
            ci = ""
            if self.ci_low is not None and self.ci_high is not None:
                ci = (f"[{self.ci_low[i]:.3e}, "
                      f"{self.ci_high[i]:.3e}]")
            lines.append(f"{e:>7.1f} {b:>12.4e} "
                         f"{int(self.errors[i]):>8d} "
                         f"{int(self.bits[i]):>9d} {ci:>24s}")
        return "\n".join(lines)


class _LinkCache:
    """Per-configuration precomputation shared across Eb/N0 points."""

    def __init__(self, config: UwbConfig,
                 channel: ChannelRealization | None,
                 bpf: BandPassFilter | None):
        with _trace.span("link.calibrate"):
            self._init(config, channel, bpf)

    def _init(self, config: UwbConfig,
              channel: ChannelRealization | None,
              bpf: BandPassFilter | None) -> None:
        self.config = config
        self.channel = channel
        self.bpf = bpf if bpf is not None else BandPassFilter.for_pulse(
            config.fs, config.pulse_tau, config.pulse_order)
        # Reference energy per bit and peak amplitude measured on a
        # noiseless filtered pilot (one pulse per bit -> Eb = pulse
        # energy after channel+filter).  The pilot goes through exactly
        # the data-path processing of simulate_ber_point: the channel
        # output is trimmed by the propagation delay and truncated to
        # whole symbols, so delayed-channel energy landing outside the
        # symbol window is not counted toward Eb.
        pilot_bits = np.zeros(8, dtype=np.int8)
        n_samples = len(pilot_bits) * config.samples_per_symbol
        pilot = ppm_waveform(pilot_bits, config)
        if channel is not None:
            pilot = channel.apply(pilot)[
                channel.delay_samples:
                channel.delay_samples + n_samples]
        filtered = self.bpf(pilot)[:n_samples]
        self.eb = float(np.sum(filtered ** 2) * config.dt / len(pilot_bits))
        self.peak = float(np.max(np.abs(filtered)))
        if self.eb <= 0:
            raise ValueError("degenerate link: zero received energy")


def _simulate_ber_point(config: UwbConfig, integrator: WindowIntegrator,
                        ebn0_db: float, rng: np.random.Generator, *,
                        channel: ChannelRealization | None = None,
                        bpf: BandPassFilter | None = None,
                        squarer_drive: float = 0.05,
                        adc: Adc | None = None,
                        target_errors: int = 100,
                        max_bits: int = 200_000,
                        min_bits: int = 2_000,
                        chunk_bits: int = 1_000,
                        adaptive: AdaptiveStopping | None = None,
                        interferers: tuple = (),
                        _cache: _LinkCache | None = None
                        ) -> tuple[int, int]:
    """Monte-Carlo BER at one Eb/N0 point.

    The chunk computation runs through the staged
    :class:`repro.link.pipeline.SignalPipeline`; with no interferers
    it is bit-identical to the historic monolithic loop (same
    generator draw order, same arithmetic - see the pipeline module's
    bit-identity contract).

    Args:
        config: link configuration (ideal synchronizer assumed).
        integrator: integrator model deciding the slot energies.
        ebn0_db: received Eb/N0 in dB.
        channel: optional multipath realization (applied per chunk).
        squarer_drive: peak voltage at the squarer *input*; the signal
            is scaled so the clean filtered peak equals this value.
            This is the AGC operating point: raising it beyond the
            circuit's ~0.1 V linear input range exposes compression.
        adc: optional ADC in the decision path.
        target_errors / max_bits / min_bits: stopping rule.
        chunk_bits: symbols per vectorized chunk.
        adaptive: optional sequential policy ending the point as soon
            as the estimate is resolved (checked after each chunk once
            ``min_bits`` have been simulated); ``target_errors`` /
            ``max_bits`` remain hard caps.
        interferers: resolved
            :class:`repro.link.pipeline.InterfererPath` transmitters
            summed into the chunk before the noise (multi-user
            scenarios; see ``FastsimBackend.ber_point`` over a
            ``NetworkSpec``).

    Returns:
        ``(errors, bits)`` counters.
    """
    pipe = _link_pipeline()
    config.validate()
    cache = _cache or _LinkCache(config, channel, bpf)
    sigma = noise_sigma_for_ebn0(cache.eb, ebn0_db, config.fs)
    scale = squarer_drive / cache.peak
    pipeline = pipe.build_link_pipeline(
        config, integrator=integrator, bpf=cache.bpf, sigma=sigma,
        scale=scale, channel=cache.channel, adc=adc,
        interferers=tuple(interferers))
    return pipe.run_ber_point(pipeline, rng, target_errors=target_errors,
                              max_bits=max_bits, min_bits=min_bits,
                              chunk_bits=chunk_bits, adaptive=adaptive)


def _ber_sweep(config: UwbConfig, integrators, ebn0_grid,
               rng: np.random.Generator, *,
               channel: ChannelRealization | None = None,
               bpf: BandPassFilter | None = None,
               squarer_drive: float = 0.05,
               adc: Adc | None = None,
               target_errors: int = 100,
               max_bits: int = 200_000,
               min_bits: int = 2_000,
               chunk_bits: int = 1_000,
               adaptive: AdaptiveStopping | None = None,
               interferers: tuple = (),
               _cache: _LinkCache | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
    """Scenario-batched Monte-Carlo sweep: every Eb/N0 point of the
    grid x every integrator variant in one chunk loop.

    All scenarios share one generator and one front-end computation
    per chunk (the points of a curve differ only in their noise scale;
    integrator variants differ only past the squarer), so the whole
    sweep runs as a handful of large array ops.  Cell ``(k, j)`` is
    bit-identical to ``_simulate_ber_point(config, integrators[k],
    ebn0_grid[j], rng')`` with ``rng'`` freshly seeded like *rng* -
    the per-run seeding convention under which draws are shared (see
    :func:`repro.link.pipeline.run_ber_sweep`).

    Returns:
        ``(errors, bits)`` int64 arrays of shape
        ``(len(integrators), len(ebn0_grid))``.
    """
    pipe = _link_pipeline()
    config.validate()
    cache = _cache or _LinkCache(config, channel, bpf)
    ebn0_grid = np.asarray(ebn0_grid, dtype=float)
    sigmas = np.array([noise_sigma_for_ebn0(cache.eb, float(p), config.fs)
                       for p in ebn0_grid])
    scale = squarer_drive / cache.peak
    front = pipe.SignalPipeline(stages=(
        pipe.TxStage(config),
        pipe.ChannelStage(config, cache.channel),
        pipe.CombineStage(config, 0.0, tuple(interferers)),
        pipe.AnalogFrontEndStage(config, cache.bpf, scale),
    ))
    deciders = [pipe.DecisionStage(config, integrator, adc)
                for integrator in integrators]
    return pipe.run_ber_sweep(front, deciders, sigmas, rng,
                              target_errors=target_errors,
                              max_bits=max_bits, min_bits=min_bits,
                              chunk_bits=chunk_bits, adaptive=adaptive)


def _curve_result(ebn0_grid: np.ndarray, errors: np.ndarray,
                  bits: np.ndarray, label: str,
                  adaptive: AdaptiveStopping | None) -> BerResult:
    """Assemble per-point counters into a Wilson-bounded curve."""
    ber = errors / np.maximum(bits, 1)
    confidence = adaptive.confidence if adaptive is not None else 0.95
    bounds = np.array([wilson_interval(int(e), int(b), confidence)
                       if b else (0.0, 1.0)
                       for e, b in zip(errors, bits)])
    ci_low = bounds[:, 0] if len(bounds) else np.zeros(0)
    ci_high = bounds[:, 1] if len(bounds) else np.zeros(0)
    return BerResult(ebn0_db=ebn0_grid, ber=ber, errors=errors,
                     bits=bits, label=label, ci_low=ci_low,
                     ci_high=ci_high, confidence=confidence)


def _ber_curve(config: UwbConfig, integrator: WindowIntegrator,
               ebn0_grid, rng: np.random.Generator, *,
               channel: ChannelRealization | None = None,
               bpf: BandPassFilter | None = None,
               squarer_drive: float = 0.05,
               adc: Adc | None = None,
               target_errors: int = 100,
               max_bits: int = 200_000,
               min_bits: int = 2_000,
               chunk_bits: int = 1_000,
               label: str | None = None,
               workers: int | None = None,
               adaptive: AdaptiveStopping | None = None,
               interferers: tuple = (),
               batch_points: bool | None = None,
               _cache: _LinkCache | None = None) -> BerResult:
    """BER versus Eb/N0 for one integrator model (figure-6 workload).

    Args:
        workers: fan the Eb/N0 points out over this many processes.
            Parallel execution gives each point its own stream spawned
            deterministically from *rng*, so results are reproducible
            for a given seed and worker-independent.
        adaptive: optional per-point sequential stopping policy (see
            :class:`AdaptiveStopping`); the returned Wilson bounds use
            its confidence level.
        interferers: resolved interfering transmitters forwarded to
            every point (multi-user scenarios).
        batch_points: ``True`` runs every point of the grid through
            the scenario-batched sweep kernel (one shared generator,
            one front-end computation per chunk; each point is
            bit-identical to a per-point run freshly seeded like
            *rng*).  ``False`` restores the legacy serial loop, which
            walks the points sequentially on the single *rng* stream
            (the pre-batching convention).  Default (``None``):
            batched, unless ``workers > 1`` selected the spawned
            process pool.
    """
    cache = _cache or _LinkCache(config, channel, bpf)
    ebn0_grid = np.asarray(ebn0_grid, dtype=float)
    errors = np.zeros(len(ebn0_grid), dtype=np.int64)
    bits = np.zeros(len(ebn0_grid), dtype=np.int64)
    use_pool = (workers is not None and workers > 1
                and len(ebn0_grid) > 0 and batch_points is not True)
    if batch_points is None:
        batch_points = not use_pool
    if use_pool:
        from repro.core.scenario import Scenario, SweepRunner

        runner = SweepRunner(processes=workers)
        for point, child in zip(ebn0_grid, rng.spawn(len(ebn0_grid))):
            runner.add(Scenario(
                name=f"ebn0={point:g}dB", fn=_simulate_ber_point,
                params=dict(config=config, integrator=integrator,
                            ebn0_db=float(point), rng=child,
                            channel=channel, bpf=bpf,
                            squarer_drive=squarer_drive, adc=adc,
                            target_errors=target_errors,
                            max_bits=max_bits, min_bits=min_bits,
                            chunk_bits=chunk_bits, adaptive=adaptive,
                            interferers=interferers, _cache=cache)))
        for i, result in enumerate(runner.run()):
            errors[i], bits[i] = result.value
    elif batch_points:
        swept_errors, swept_bits = _ber_sweep(
            config, (integrator,), ebn0_grid, rng,
            squarer_drive=squarer_drive, adc=adc,
            target_errors=target_errors, max_bits=max_bits,
            min_bits=min_bits, chunk_bits=chunk_bits,
            adaptive=adaptive, interferers=interferers, _cache=cache)
        errors[:], bits[:] = swept_errors[0], swept_bits[0]
    else:
        for i, point in enumerate(ebn0_grid):
            e, b = _simulate_ber_point(
                config, integrator, float(point), rng, channel=channel,
                bpf=bpf, squarer_drive=squarer_drive, adc=adc,
                target_errors=target_errors, max_bits=max_bits,
                min_bits=min_bits, chunk_bits=chunk_bits,
                adaptive=adaptive,
                interferers=interferers, _cache=cache)
            errors[i] = e
            bits[i] = b
    return _curve_result(ebn0_grid, errors, bits,
                         label or integrator.name, adaptive)


def simulate_ber_point(*args, **kwargs) -> tuple[int, int]:
    """Deprecated front door; see :func:`_simulate_ber_point` for the
    signature.

    .. deprecated::
        Build a :class:`repro.link.LinkSpec` and call
        ``FastsimBackend().ber_point(spec, ebn0_db, rng)`` (or the
        campaign-friendly :func:`repro.link.ops.ber_point`) instead.
    """
    warnings.warn(
        "repro.uwb.fastsim.simulate_ber_point is deprecated; go through "
        "repro.link (LinkSpec + FastsimBackend.ber_point)",
        DeprecationWarning, stacklevel=2)
    return _simulate_ber_point(*args, **kwargs)


def ber_curve(*args, **kwargs) -> BerResult:
    """Deprecated front door; see :func:`_ber_curve` for the signature.

    .. deprecated::
        Build a :class:`repro.link.LinkSpec` and call
        ``FastsimBackend().ber_curve(spec, grid, rng)`` (or the
        campaign-friendly :func:`repro.link.ops.ber_curve`) instead.
    """
    warnings.warn(
        "repro.uwb.fastsim.ber_curve is deprecated; go through "
        "repro.link (LinkSpec + FastsimBackend.ber_curve)",
        DeprecationWarning, stacklevel=2)
    return _ber_curve(*args, **kwargs)


#: memoized scipy.special.erfc (resolved on first use so the module
#: stays importable without eagerly touching scipy.special, but never
#: re-entered per call).
_ERFC = None


def theoretical_ppm_awgn_ber(ebn0_db) -> np.ndarray:
    """Coherent orthogonal 2-PPM reference curve ``Q(sqrt(Eb/N0))``.

    Energy detection is noncoherent and sits to the right of this curve;
    it is plotted as a sanity reference, not as the expected result.
    """
    global _ERFC
    if _ERFC is None:
        from scipy.special import erfc
        _ERFC = erfc

    ebn0 = 10.0 ** (np.asarray(ebn0_db, dtype=float) / 10.0)
    return 0.5 * _ERFC(np.sqrt(ebn0 / 2.0))
