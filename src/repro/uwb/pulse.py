"""Sub-nanosecond UWB pulse shapes.

Impulse-radio UWB transmits carrier-less Gaussian-derivative pulses; the
derivative order and the shape parameter ``tau`` place the spectrum.  The
5th derivative with ``tau ~ 0.3 ns`` is a common choice that meets the
FCC indoor mask (3.1-10.6 GHz released in 2002, as the paper's
introduction recounts) without up-conversion.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import eval_hermite


def gaussian_derivative(t: np.ndarray, tau: float, order: int = 5
                        ) -> np.ndarray:
    """The *order*-th derivative of a Gaussian, peak-normalized.

    Args:
        t: time axis centered on the pulse (s).
        tau: Gaussian width parameter (s).
        order: derivative order >= 0.

    Returns:
        Samples of ``d^n/dt^n exp(-t^2 / (2 tau^2))`` normalized to a
        unit peak magnitude.
    """
    if tau <= 0:
        raise ValueError("tau must be positive")
    if order < 0:
        raise ValueError("order must be >= 0")
    x = np.asarray(t, dtype=float) / tau
    # d^n/dt^n e^{-x^2/2} = (-1)^n He_n(x) e^{-x^2/2} / tau^n with the
    # probabilists' Hermite polynomial He_n; physicists' H_n(x/sqrt(2))
    # relates by He_n(x) = 2^{-n/2} H_n(x / sqrt 2).
    hermite = eval_hermite(order, x / math.sqrt(2.0)) * 2.0 ** (-order / 2.0)
    pulse = (-1.0) ** order * hermite * np.exp(-0.5 * x * x)
    peak = np.max(np.abs(pulse))
    if peak == 0.0:
        raise ValueError("time axis does not cover the pulse")
    return pulse / peak


def sampled_pulse(fs: float, tau: float, order: int = 5,
                  span_sigmas: float = 6.0) -> np.ndarray:
    """A centered, peak-normalized pulse sampled at *fs*.

    The support spans ``+/- span_sigmas * tau``; an odd number of
    samples keeps the pulse symmetric around its array center.
    """
    if fs <= 0:
        raise ValueError("fs must be positive")
    half = max(1, int(math.ceil(span_sigmas * tau * fs)))
    t = np.arange(-half, half + 1) / fs
    return gaussian_derivative(t, tau, order)


def pulse_energy(pulse: np.ndarray, fs: float) -> float:
    """Continuous-time energy of a sampled pulse: ``sum(p^2) / fs``."""
    return float(np.sum(np.square(pulse)) / fs)


def pulse_psd(pulse: np.ndarray, fs: float, nfft: int = 1 << 14
              ) -> tuple[np.ndarray, np.ndarray]:
    """One-sided energy spectral density of a pulse.

    Returns:
        ``(freqs, esd)`` with esd in V^2 s / Hz.
    """
    spectrum = np.fft.rfft(pulse, n=nfft) / fs
    freqs = np.fft.rfftfreq(nfft, d=1.0 / fs)
    esd = 2.0 * np.abs(spectrum) ** 2
    return freqs, esd


def fcc_indoor_mask_dbm_per_mhz(freqs: np.ndarray) -> np.ndarray:
    """FCC Part-15 indoor UWB EIRP mask in dBm/MHz versus frequency."""
    f_ghz = np.asarray(freqs, dtype=float) / 1e9
    mask = np.full_like(f_ghz, -41.3)
    mask[f_ghz < 0.96] = -41.3
    mask[(f_ghz >= 0.96) & (f_ghz < 1.61)] = -75.3
    mask[(f_ghz >= 1.61) & (f_ghz < 1.99)] = -53.3
    mask[(f_ghz >= 1.99) & (f_ghz < 3.1)] = -51.3
    mask[(f_ghz >= 3.1) & (f_ghz <= 10.6)] = -41.3
    mask[f_ghz > 10.6] = -51.3
    return mask


def fractional_bandwidth(pulse: np.ndarray, fs: float,
                         threshold_db: float = -10.0) -> float:
    """Fractional bandwidth ``2 (fh - fl) / (fh + fl)`` at the given
    threshold below the spectral peak (FCC defines UWB as > 0.20, or
    > 500 MHz absolute)."""
    freqs, esd = pulse_psd(pulse, fs)
    esd_db = 10.0 * np.log10(np.maximum(esd, 1e-300))
    peak = np.max(esd_db)
    above = np.nonzero(esd_db >= peak + threshold_db)[0]
    f_low, f_high = freqs[above[0]], freqs[above[-1]]
    if f_high + f_low == 0:
        return 0.0
    return 2.0 * (f_high - f_low) / (f_high + f_low)
