"""Analog block base classes."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.ams.quantity import Quantity


class AnalogBlock:
    """Base class for analog signal-flow blocks.

    A block declares the quantities it reads (*inputs*) and the
    quantities it drives (*outputs*); the kernel executes blocks in
    registration order once per analog step.  Registration order must
    respect signal flow (sources before sinks) - the receiver builders in
    :mod:`repro.uwb` do this for you.  Feedback loops (e.g. the AGC) are
    closed through digital processes or by tolerating one-step delay,
    exactly as a fixed-step VHDL-AMS solve with a short step does.

    Subclasses implement :meth:`step` and may also implement
    :meth:`reset` for reuse across runs.
    """

    def __init__(self, name: str,
                 inputs: Iterable[Quantity] = (),
                 outputs: Iterable[Quantity] = ()):
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        for out in self.outputs:
            out._claim(self)

    def step(self, t: float, dt: float) -> None:
        """Advance the block from ``t - dt`` to ``t`` (update outputs)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (optional)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class CallbackBlock(AnalogBlock):
    """Stateless analog block from a plain function.

    The function receives the input values (floats, in declared order)
    and returns the output value(s)::

        squarer = CallbackBlock("squarer", lambda v: v * v,
                                inputs=[vga_out], outputs=[sq_out])
    """

    def __init__(self, name: str, fn: Callable, *,
                 inputs: Sequence[Quantity], outputs: Sequence[Quantity]):
        super().__init__(name, inputs, outputs)
        self.fn = fn

    def step(self, t: float, dt: float) -> None:
        result = self.fn(*(q.value for q in self.inputs))
        if len(self.outputs) == 1:
            self.outputs[0].value = float(result)
        else:
            for out, val in zip(self.outputs, result):
                out.value = float(val)
