"""Analog block base classes."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.ams.quantity import Quantity


class AnalogBlock:
    """Base class for analog signal-flow blocks.

    A block declares the quantities it reads (*inputs*) and the
    quantities it drives (*outputs*); the kernel executes blocks in
    registration order once per analog step.  Registration order must
    respect signal flow (sources before sinks) - the receiver builders in
    :mod:`repro.uwb` do this for you.  Feedback loops (e.g. the AGC) are
    closed through digital processes or by tolerating one-step delay,
    exactly as a fixed-step VHDL-AMS solve with a short step does.

    Subclasses implement :meth:`step` and may also implement
    :meth:`reset` for reuse across runs.

    **Vectorized protocol.**  A block may additionally implement::

        step_block(t0, dt, n, inputs) -> sequence of output arrays

    advancing the block by *n* consecutive steps at once: ``inputs[i]``
    is the ``(n,)`` array of values of ``self.inputs[i]`` at times
    ``t0 + dt``, ..., ``t0 + n*dt``, and the return value is one ``(n,)``
    array per declared output.  The contract is equivalence with *n*
    sequential :meth:`step` calls; the kernel guarantees digital signals
    are constant over the window.  Blocks that cannot vectorize (e.g.
    Spice co-simulation) leave ``step_block`` as ``None``, which makes
    the compiled engine fall back to lock-step execution.
    """

    #: Optional vectorized protocol; ``None`` means lock-step only.
    step_block = None

    def __init__(self, name: str,
                 inputs: Iterable[Quantity] = (),
                 outputs: Iterable[Quantity] = ()):
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        for out in self.outputs:
            out._claim(self)

    def step(self, t: float, dt: float) -> None:
        """Advance the block from ``t - dt`` to ``t`` (update outputs)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (optional)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class CallbackBlock(AnalogBlock):
    """Stateless analog block from a plain function.

    The function receives the input values (floats, in declared order)
    and returns the output value(s)::

        squarer = CallbackBlock("squarer", lambda v: v * v,
                                inputs=[vga_out], outputs=[sq_out])

    Args:
        vectorized: opt-in declaration that *fn* is a pure elementwise
            function of its inputs that also accepts NumPy arrays
            (true for arithmetic like the VGA gain or the squarer),
            unlocking the compiled engine's segment execution.  The
            default is ``False`` - conservative on purpose: a callback
            with hidden state or side effects (an accumulator closure,
            a read of ``sim.t``) would produce silently wrong physics
            if batched, so lock-step is the contract unless the author
            promises otherwise.  Zero-input callbacks always opt out,
            since their output cannot be proven constant over a
            segment.
    """

    def __init__(self, name: str, fn: Callable, *,
                 inputs: Sequence[Quantity], outputs: Sequence[Quantity],
                 vectorized: bool = False):
        super().__init__(name, inputs, outputs)
        self.fn = fn
        if not (vectorized and self.inputs):
            self.step_block = None  # instance-level opt-out

    def step(self, t: float, dt: float) -> None:
        result = self.fn(*(q.value for q in self.inputs))
        if len(self.outputs) == 1:
            self.outputs[0].value = float(result)
        else:
            for out, val in zip(self.outputs, result):
                out.value = float(val)

    def step_block(self, t0: float, dt: float, n: int, inputs):
        result = self.fn(*inputs)
        # The engine validates shapes and broadcasts scalar results.
        if len(self.outputs) == 1:
            return (result,)
        return result
