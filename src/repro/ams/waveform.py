"""Waveform recording and measurement utilities."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.ams.quantity import Quantity
from repro.ams.signal import Signal


class Trace:
    """A recorded waveform: time array + value array with measurement
    helpers."""

    def __init__(self, name: str, t: np.ndarray, values: np.ndarray):
        self.name = name
        self.t = np.asarray(t, dtype=float)
        self.values = np.asarray(values, dtype=float)

    def at(self, time: float) -> float:
        """Linear-interpolated value at *time*."""
        return float(np.interp(time, self.t, self.values))

    def window(self, t0: float, t1: float) -> "Trace":
        """Sub-trace restricted to ``[t0, t1]``."""
        mask = (self.t >= t0) & (self.t <= t1)
        return Trace(self.name, self.t[mask], self.values[mask])

    def minimum(self) -> float:
        return float(np.min(self.values))

    def maximum(self) -> float:
        return float(np.max(self.values))

    def rms(self) -> float:
        return float(np.sqrt(np.mean(self.values ** 2)))

    def final(self) -> float:
        return float(self.values[-1])

    def crossings(self, level: float, rising: bool = True) -> np.ndarray:
        """Interpolated times where the trace crosses *level*."""
        v = self.values - level
        if rising:
            idx = np.nonzero((v[:-1] < 0) & (v[1:] >= 0))[0]
        else:
            idx = np.nonzero((v[:-1] > 0) & (v[1:] <= 0))[0]
        if len(idx) == 0:
            return np.array([])
        frac = -v[idx] / (v[idx + 1] - v[idx])
        return self.t[idx] + frac * (self.t[idx + 1] - self.t[idx])

    def __len__(self) -> int:
        return len(self.t)

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self)} points)"


class Recorder:
    """Samples quantities/signals after every analog step (optionally
    decimated) and exposes them as :class:`Trace` objects.

    Args:
        sim: the simulator to attach to.
        probes: quantities or signals to record (signal values must be
            numeric for tracing).
        decimate: record every N-th step (1 = every step).
    """

    def __init__(self, sim, probes: Sequence[Quantity | Signal],
                 decimate: int = 1):
        if decimate < 1:
            raise ValueError("decimate must be >= 1")
        self.probes = list(probes)
        self.decimate = decimate
        self._count = 0
        self._times: list[float] = []
        self._data: list[list[float]] = [[] for _ in self.probes]
        sim.add_step_hook(self)
        on_reset = getattr(sim, "on_reset", None)
        if on_reset is not None:
            on_reset(self.clear)

    def __call__(self, t: float) -> None:
        """Per-step hook (reference engine)."""
        self._count += 1
        if self._count % self.decimate:
            return
        self._times.append(t)
        for slot, probe in zip(self._data, self.probes):
            slot.append(float(probe.value))

    def hook_block(self, t: np.ndarray, resolve) -> None:
        """Segment hook (compiled engine): record a whole inter-event
        window at once.  *resolve(probe)* returns the probe's ``(n,)``
        value array over the window."""
        n = len(t)
        base = self._count
        self._count = base + n
        if self.decimate == 1:
            keep = slice(None)
            self._times.extend(t.tolist())
        else:
            idx = np.nonzero((base + 1 + np.arange(n))
                             % self.decimate == 0)[0]
            if len(idx) == 0:
                return
            keep = idx
            self._times.extend(t[idx].tolist())
        for slot, probe in zip(self._data, self.probes):
            values = np.asarray(resolve(probe), dtype=float)
            slot.extend(values[keep].tolist())

    def trace(self, probe_or_name) -> Trace:
        """Trace for a probe object or its name."""
        for idx, probe in enumerate(self.probes):
            if probe is probe_or_name or probe.name == probe_or_name:
                return Trace(probe.name, np.array(self._times),
                             np.array(self._data[idx]))
        raise KeyError(f"no probe named {probe_or_name!r}")

    @property
    def t(self) -> np.ndarray:
        return np.array(self._times)

    def clear(self) -> None:
        self._times.clear()
        for slot in self._data:
            slot.clear()
        self._count = 0
