"""Digital processes: callbacks sensitive to signal events."""

from __future__ import annotations

from typing import Callable, Iterable

from repro.ams.signal import Signal


class Process:
    """A named callback executed whenever a sensitivity-list signal
    changes (VHDL process semantics, callback style).

    The callback receives the owning simulator, so it can read signals
    and quantities, assign signals, and schedule wake-ups::

        def demod(sim):
            if clk.value == 1:
                bit.assign(1 if e1.value > e0.value else 0)

        sim.add_process(Process("demod", demod, sensitivity=[clk]))

    A process may also be scheduled periodically via
    :meth:`repro.ams.kernel.Simulator.every`.
    """

    def __init__(self, name: str, fn: Callable[["object"], None],
                 sensitivity: Iterable[Signal] = ()):
        self.name = name
        self.fn = fn
        self.sensitivity = tuple(sensitivity)

    def __repr__(self) -> str:
        sens = ", ".join(s.name for s in self.sensitivity)
        return f"Process({self.name!r}, sensitivity=[{sens}])"
