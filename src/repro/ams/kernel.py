"""The mixed-signal simulation kernel."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable

from repro.ams.block import AnalogBlock
from repro.ams.engine import ExecutionEngine, get_engine
from repro.ams.process import Process
from repro.ams.quantity import Quantity
from repro.ams.signal import Signal


class Simulator:
    """Fixed-step analog + event-driven digital co-simulation.

    The observable semantics are those of the lock-step scheme: analog
    time advances in steps of *dt* (the paper uses 0.05 ns); after each
    analog step every digital event with a timestamp up to the new time
    executes, including the delta-cycle cascades it triggers.  Digital
    processes therefore observe analog quantities sampled on the analog
    grid, and analog blocks see digital control signals with at most one
    step of latency.

    *How* those semantics are executed is delegated to a pluggable
    :class:`~repro.ams.engine.base.ExecutionEngine`: ``"reference"``
    steps block-by-block (the oracle), ``"compiled"`` vectorizes whole
    inter-event segments with NumPy (see :mod:`repro.ams.engine`).

    Typical use::

        sim = Simulator(dt=50e-12)               # or engine="compiled"
        vin = sim.quantity("vin")
        ...add blocks / processes...
        sim.run(30e-6)
    """

    def __init__(self, dt: float,
                 engine: str | ExecutionEngine = "reference"):
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = float(dt)
        self.t = 0.0
        self.blocks: list[AnalogBlock] = []
        self.processes: list[Process] = []
        self.quantities: dict[str, Quantity] = {}
        self.signals: dict[str, Signal] = {}
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._step_hooks: list[Callable[[float], None]] = []
        self._reset_hooks: list[Callable[[], None]] = []
        self._engine = get_engine(engine)
        # Event registrations made while building the testbench (before
        # the first run) are remembered so reset() can re-arm them.
        self._building = True
        self._armings: list[Callable[[], None]] = []
        self.cpu_time = 0.0
        self.steps = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def engine(self) -> ExecutionEngine:
        """The execution engine (assignable; accepts specs too)."""
        return self._engine

    @engine.setter
    def engine(self, spec: str | ExecutionEngine) -> None:
        self._engine = get_engine(spec)

    def quantity(self, name: str, init: float = 0.0) -> Quantity:
        """Create (or fetch) a named analog quantity."""
        if name in self.quantities:
            return self.quantities[name]
        q = Quantity(name, init)
        self.quantities[name] = q
        return q

    def signal(self, name: str, init: Any = 0) -> Signal:
        """Create (or fetch) a named digital signal."""
        if name in self.signals:
            return self.signals[name]
        s = Signal(name, init)
        s._bind(self)
        self.signals[name] = s
        return s

    def add_block(self, block: AnalogBlock) -> AnalogBlock:
        """Register an analog block; execution follows registration
        order (must respect signal flow)."""
        self.blocks.append(block)
        return block

    def add_process(self, process: Process) -> Process:
        """Register a digital process and hook up its sensitivity list."""
        self.processes.append(process)
        for sig in process.sensitivity:
            sig._bind(self)
            sig.watch(lambda _s, p=process: p.fn(self))
        return process

    def add_step_hook(self, hook: Callable[[float], None]) -> None:
        """Run *hook(t)* after every analog step (recorders use this).

        Hooks that additionally implement the vectorized
        ``hook_block(t_array, resolve)`` protocol (as
        :class:`~repro.ams.waveform.Recorder` does) stay compatible with
        the compiled engine; plain callables force it to fall back to
        lock-step execution.
        """
        self._step_hooks.append(hook)

    def on_reset(self, fn: Callable[[], None]) -> None:
        """Run *fn* during :meth:`reset` - testbench accumulators
        (slot samplers, harvesters) register their clearing here so the
        reset contract covers them too."""
        self._reset_hooks.append(fn)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _push_event(self, delay: float, fn: Callable[[], None]) -> None:
        """Queue *fn* at ``t + delay``; while the testbench is still
        being built, also remember the push so reset() can re-arm it."""
        if self._building:
            self._armings.append(
                lambda: heapq.heappush(
                    self._queue, (self.t + delay, next(self._seq), fn)))
        heapq.heappush(self._queue,
                       (self.t + delay, next(self._seq), fn))

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* at ``t + delay`` (during event processing)."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        self._push_event(delay, fn)

    def every(self, period: float, fn: Callable[["Simulator"], None],
              start: float = 0.0) -> None:
        """Run *fn(sim)* periodically (clock-like process)."""
        if period <= 0:
            raise ValueError("period must be positive")

        def tick():
            fn(self)
            heapq.heappush(self._queue,
                           (self.t + period, next(self._seq), tick))

        self._push_event(start, tick)

    def _schedule_signal(self, sig: Signal, value: Any,
                         after: float) -> None:
        self._push_event(after, lambda: sig._apply(value, self.t))

    def _drain_events(self, up_to: float) -> None:
        queue = self._queue
        while queue and queue[0][0] <= up_to + 1e-21:
            t_ev, _seq, fn = heapq.heappop(queue)
            self.t = max(self.t, t_ev)
            fn()
        self.t = up_to

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Process time-zero events (signal initializations)."""
        self._building = False
        self._drain_events(0.0)

    def run(self, t_stop: float) -> None:
        """Advance the simulation until *t_stop* (via the engine)."""
        self._building = False
        self._engine.run(self, t_stop)

    def run_steps(self, n: int) -> None:
        """Advance exactly *n* analog steps."""
        self.run(self.t + (n + 0.25) * self.dt)

    def reset(self) -> None:
        """Restore the testbench to its pre-run state.

        Time, step/CPU counters and the event queue are cleared; blocks
        get :meth:`~repro.ams.block.AnalogBlock.reset`; quantities and
        signals return to their initial values (silently - watchers do
        not fire); accumulators registered via :meth:`on_reset`
        (recorders, harvesters) are cleared; events registered while
        the testbench was built (``schedule`` / ``every`` /
        ``Signal.assign`` before the first run) are re-armed.  Back-to-back runs of one testbench are
        therefore reproducible.  Limitation: blocks whose ``reset`` is a
        no-op (e.g. Spice co-simulation state) keep their state.
        """
        self.t = 0.0
        self.steps = 0
        self.cpu_time = 0.0
        self._queue.clear()
        for block in self.blocks:
            block.reset()
        for quantity in self.quantities.values():
            quantity.reset()
        for sig in self.signals.values():
            sig.reset()
        for fn in self._reset_hooks:
            fn()
        for push in self._armings:
            push()
