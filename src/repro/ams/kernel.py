"""The mixed-signal simulation kernel."""

from __future__ import annotations

import heapq
import itertools
import time as _time
from typing import Any, Callable, Iterable

from repro.ams.block import AnalogBlock
from repro.ams.process import Process
from repro.ams.quantity import Quantity
from repro.ams.signal import Signal


class Simulator:
    """Fixed-step analog + event-driven digital co-simulation.

    The main loop advances analog time in steps of *dt* (the paper uses
    0.05 ns); after each analog step every digital event with a timestamp
    up to the new time executes, including the delta-cycle cascades it
    triggers.  Digital processes therefore observe analog quantities
    sampled on the analog grid, and analog blocks see digital control
    signals with at most one step of latency - the standard lock-step
    mixed-signal scheme.

    Typical use::

        sim = Simulator(dt=50e-12)
        vin = sim.quantity("vin")
        ...add blocks / processes...
        sim.run(30e-6)
    """

    def __init__(self, dt: float):
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = float(dt)
        self.t = 0.0
        self.blocks: list[AnalogBlock] = []
        self.processes: list[Process] = []
        self.quantities: dict[str, Quantity] = {}
        self.signals: dict[str, Signal] = {}
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._step_hooks: list[Callable[[float], None]] = []
        self.cpu_time = 0.0
        self.steps = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def quantity(self, name: str, init: float = 0.0) -> Quantity:
        """Create (or fetch) a named analog quantity."""
        if name in self.quantities:
            return self.quantities[name]
        q = Quantity(name, init)
        self.quantities[name] = q
        return q

    def signal(self, name: str, init: Any = 0) -> Signal:
        """Create (or fetch) a named digital signal."""
        if name in self.signals:
            return self.signals[name]
        s = Signal(name, init)
        s._bind(self)
        self.signals[name] = s
        return s

    def add_block(self, block: AnalogBlock) -> AnalogBlock:
        """Register an analog block; execution follows registration
        order (must respect signal flow)."""
        self.blocks.append(block)
        return block

    def add_process(self, process: Process) -> Process:
        """Register a digital process and hook up its sensitivity list."""
        self.processes.append(process)
        for sig in process.sensitivity:
            sig._bind(self)
            sig.watch(lambda _s, p=process: p.fn(self))
        return process

    def add_step_hook(self, hook: Callable[[float], None]) -> None:
        """Run *hook(t)* after every analog step (recorders use this)."""
        self._step_hooks.append(hook)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* at ``t + delay`` (during event processing)."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._queue, (self.t + delay, next(self._seq), fn))

    def every(self, period: float, fn: Callable[["Simulator"], None],
              start: float = 0.0) -> None:
        """Run *fn(sim)* periodically (clock-like process)."""
        if period <= 0:
            raise ValueError("period must be positive")

        def tick():
            fn(self)
            heapq.heappush(self._queue,
                           (self.t + period, next(self._seq), tick))

        heapq.heappush(self._queue, (self.t + start, next(self._seq), tick))

    def _schedule_signal(self, sig: Signal, value: Any,
                         after: float) -> None:
        heapq.heappush(
            self._queue,
            (self.t + after, next(self._seq),
             lambda: sig._apply(value, self.t)))

    def _drain_events(self, up_to: float) -> None:
        queue = self._queue
        while queue and queue[0][0] <= up_to + 1e-21:
            t_ev, _seq, fn = heapq.heappop(queue)
            self.t = max(self.t, t_ev)
            fn()
        self.t = up_to

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Process time-zero events (signal initializations)."""
        self._drain_events(0.0)

    def run(self, t_stop: float) -> None:
        """Advance the simulation until *t_stop*."""
        started = _time.perf_counter()
        dt = self.dt
        blocks = self.blocks
        hooks = self._step_hooks
        self._drain_events(self.t)
        while self.t < t_stop - 0.5 * dt:
            t_new = self.t + dt
            for block in blocks:
                block.step(t_new, dt)
            self._drain_events(t_new)
            for hook in hooks:
                hook(t_new)
            self.steps += 1
        self.cpu_time += _time.perf_counter() - started

    def run_steps(self, n: int) -> None:
        """Advance exactly *n* analog steps."""
        self.run(self.t + (n + 0.25) * self.dt)

    def reset(self) -> None:
        """Reset time and block states (quantities/signals keep their
        last values; re-initialize them explicitly if needed)."""
        self.t = 0.0
        self.steps = 0
        self.cpu_time = 0.0
        self._queue.clear()
        for block in self.blocks:
            block.reset()
