"""Segment-vectorized execution of the analog block graph.

The lock-step reference loop pays one Python call per block per 0.05 ns
step - interpreter overhead dominates even the cheapest behavioral
models.  This engine exploits the structure the kernel already
guarantees:

* digital signals change **only** while the event queue drains, so
  between two consecutive events every block sees constant control
  inputs;
* blocks execute in registration order respecting signal flow, so the
  quantity values of a whole inter-event segment can be computed as
  arrays, one block at a time.

``run`` therefore walks from event to event: it computes how many analog
steps fit before the next event fires, asks every block for its whole
segment at once via the optional
:meth:`~repro.ams.block.AnalogBlock.step_block` protocol, commits the
final values to the quantities, and only then drains the queue - exactly
the observable semantics of the reference loop, minus the per-step
interpreter round trips.

A model *compiles* when every block implements ``step_block``, block
order is feed-forward (no input driven by a later block), and every step
hook supports the vectorized ``hook_block`` protocol (the kernel's
:class:`~repro.ams.waveform.Recorder` does).  Otherwise the engine falls
back to the reference loop for the whole run - Spice co-simulation
blocks opt out this way, keeping circuit-in-the-loop runs lock-step.
"""

from __future__ import annotations

import math
import time as _time

import numpy as np

from repro.ams.engine.base import ExecutionEngine
from repro.ams.engine.reference import ReferenceEngine
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

_FLOAT64 = np.dtype(np.float64)

# Always-on engine health counters (see EXPERIMENTS.md, Observability):
# how often the compiled path ran, how often it had to delegate to the
# lock-step reference loop, and how much work the segment loop did.
_RUNS = _metrics.REGISTRY.counter("ams.compiled.runs")
_FALLBACKS = _metrics.REGISTRY.counter("ams.compiled.fallbacks")
_SEGMENTS = _metrics.REGISTRY.counter("ams.compiled.segments")
_STEPS = _metrics.REGISTRY.counter("ams.compiled.steps")


class CompiledEngine(ExecutionEngine):
    """Inter-event segment execution with NumPy array operations.

    Attributes:
        fallback_reason: after :meth:`run`, ``None`` if the model was
            executed segment-vectorized, else a human-readable reason the
            engine delegated to the reference loop.
    """

    name = "compiled"

    #: Max analog steps per pre-computed time-grid chunk (~8 MB of
    #: float64); bounds memory on arbitrarily long runs.
    GRID_CHUNK = 1 << 20

    def __init__(self) -> None:
        self.fallback_reason: str | None = None
        self._reference = ReferenceEngine()

    # ------------------------------------------------------------------
    # graph analysis
    # ------------------------------------------------------------------
    def explain(self, sim) -> str | None:
        """Why *sim* cannot be compiled (``None`` if it can)."""
        driven_later: set = set()
        for block in reversed(sim.blocks):
            if block.step_block is None:
                return (f"block {block.name!r} does not implement "
                        "step_block (lock-step only)")
            # A block's own outputs count: reading one is a one-step-
            # delay self-loop, valid only lock-step.
            for q in block.outputs:
                driven_later.add(q)
            for q in block.inputs:
                if q in driven_later:
                    return (f"block {block.name!r} reads {q.name!r} "
                            "driven by itself or a later block "
                            "(feedback topology)")
        for hook in sim._step_hooks:
            if getattr(hook, "hook_block", None) is None:
                return (f"step hook {hook!r} does not implement "
                        "hook_block")
        return None

    # ------------------------------------------------------------------
    # graph compilation
    # ------------------------------------------------------------------
    @staticmethod
    def _compile(blocks) -> tuple[list, list, dict]:
        """Lower the block list to a slot-indexed execution plan.

        Quantities become integer slots into a flat per-segment array
        table; the plan rows carry the pre-bound ``step_block`` methods
        so the segment loop does no attribute or dict lookups.

        Returns:
            ``(plan, const_slots, slot_of)`` - plan rows are
            ``(block, step_block, in_slots, out_entries)`` with
            ``out_entries = [(slot, quantity), ...]``; ``const_slots``
            lists ``(slot, quantity)`` inputs not driven by any block
            (constant within a segment, refilled from the live value).
        """
        plan: list = []
        const_slots: list = []
        slot_of: dict = {}
        for block in blocks:
            in_slots = []
            for q in block.inputs:
                slot = slot_of.get(q)
                if slot is None:
                    # Not driven by an earlier block; explain() already
                    # rejected later drivers, so this is a constant.
                    slot = len(slot_of)
                    slot_of[q] = slot
                    const_slots.append((slot, q))
                in_slots.append(slot)
            out_entries = []
            for q in block.outputs:
                slot = slot_of.get(q)
                if slot is None:
                    slot = len(slot_of)
                    slot_of[q] = slot
                out_entries.append((slot, q))
            plan.append((block, block.step_block, in_slots, out_entries))
        return plan, const_slots, slot_of

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, sim, t_stop: float) -> None:
        _RUNS.inc()
        self.fallback_reason = self.explain(sim)
        if self.fallback_reason is not None:
            _FALLBACKS.inc()
            with _trace.span("ams.reference.run"):
                self._reference.run(sim, t_stop)
            return

        started = _time.perf_counter()
        dt = sim.dt
        plan, const_slots, slot_of = self._compile(sim.blocks)
        nslots = len(slot_of)
        slot_items = list(slot_of.items())
        hooks = sim._step_hooks
        queue = sim._queue
        run_segment = self._run_segment
        drain = sim._drain_events
        inf = math.inf
        sim._drain_events(sim.t)
        limit = t_stop - 0.5 * dt
        while sim.t < limit:
            # The reference loop advances time by repeated addition; a
            # cumulative sum reproduces that float-for-float, so events
            # land on exactly the same analog step under both engines.
            # The grid is built in bounded chunks (each seeded with the
            # previous chunk's accumulated end time, so the addition
            # chain is unbroken) to keep memory constant on long runs.
            t_chunk = sim.t
            cap = min(int(math.ceil((limit - t_chunk) / dt)) + 2,
                      self.GRID_CHUNK)
            grid = np.empty(cap + 1)
            grid[0] = t_chunk
            grid[1:] = dt
            grid.cumsum(out=grid)
            # grid[i] = time *before* step i+1; a step runs iff that
            # time is below the limit (the reference loop condition).
            total = int(grid[:-1].searchsorted(limit))
            if total == 0:
                break
            g = grid[1:]  # g[i] = time after step i+1
            steps_base = sim.steps
            done = 0
            while done < total:
                t_event = queue[0][0] if queue else inf
                if t_event == inf:
                    n = total - done
                else:
                    # First boundary satisfying the drain condition.
                    n = int(g[done:total].searchsorted(t_event - 1e-21)
                            ) + 1
                    if n > total - done:
                        n = total - done
                t0 = float(grid[done])
                _SEGMENTS.inc()
                _STEPS.inc(n)
                if _trace.ENABLED:
                    with _trace.span("ams.compiled.segment"):
                        arrays = run_segment(plan, const_slots, nslots,
                                             t0, dt, n)
                else:
                    arrays = run_segment(plan, const_slots, nslots,
                                         t0, dt, n)
                done += n
                # Events and hooks at the boundary observe the counter
                # the way the reference loop exposes it: incremented
                # only after the drain + hooks of the landing step.
                sim.steps = steps_base + done - 1
                t_new = g[done - 1].item()
                due = bool(queue) and queue[0][0] <= t_new + 1e-21
                if hooks:
                    if due:
                        snapshot = self._snapshot(sim, slot_of)
                        drain(t_new)
                        # A boundary event may have rewritten any
                        # quantity - undriven inputs or even a
                        # block-driven output; per-step semantics see
                        # that at the last sample only (the reference
                        # loop steps blocks before the drain, and the
                        # driver recomputes next step).  Patch a copy:
                        # a pass-through block may hold the same
                        # ndarray as another slot, whose boundary
                        # sample must keep its own value.
                        for q, slot in slot_items:
                            arr = arrays[slot]
                            if arr[-1] != q.value:
                                arr = arr.copy()
                                arr[-1] = q.value
                                arrays[slot] = arr
                    else:
                        snapshot = {}
                        sim.t = t_new
                    self._call_hooks(hooks, arrays, slot_of, snapshot,
                                     g[done - n:done], n)
                elif due:
                    drain(t_new)
                else:
                    sim.t = t_new
                sim.steps = steps_base + done
        sim.cpu_time += _time.perf_counter() - started

    @staticmethod
    def _run_segment(plan, const_slots, nslots: int,
                     t0: float, dt: float, n: int) -> list:
        """Advance every block by *n* steps; returns the slot-indexed
        value arrays and commits the segment-final quantity values."""
        arrays: list = [None] * nslots
        for slot, q in const_slots:
            # Not driven in this segment: constant by the kernel's
            # event semantics.
            arrays[slot] = np.full(n, q.value)
        shape = (n,)
        ndarray = np.ndarray
        float64 = _FLOAT64
        for block, step_block, in_slots, out_entries in plan:
            outs = step_block(t0, dt, n, [arrays[s] for s in in_slots])
            for (slot, q), arr in zip(out_entries, outs):
                if (type(arr) is not ndarray or arr.shape != shape
                        or arr.dtype != float64):
                    arr = np.asarray(arr, dtype=float)
                    if arr.shape != shape:
                        if arr.ndim == 0:  # scalar callback result
                            arr = np.full(n, float(arr))
                        else:
                            raise ValueError(
                                f"block {block.name!r} returned shape "
                                f"{arr.shape} for output {q.name!r}; "
                                f"expected ({n},)")
                arrays[slot] = arr
                # Plain float, matching the reference path's cast.
                q.value = float(arr[-1])
        return arrays

    @staticmethod
    def _snapshot(sim, slot_of) -> dict:
        """Pre-drain values of everything without a segment array, so
        hooks can reconstruct what a per-step recorder would have seen
        (events at the segment boundary only affect the last sample)."""
        snapshot: dict = {}
        for q in sim.quantities.values():
            if q not in slot_of:
                snapshot[id(q)] = q.value
        for s in sim.signals.values():
            snapshot[id(s)] = s.value
        return snapshot

    @staticmethod
    def _call_hooks(hooks, arrays, slot_of, snapshot, t: np.ndarray,
                    n: int) -> None:
        def resolve(probe) -> np.ndarray:
            slot = slot_of.get(probe)
            if slot is not None:
                return arrays[slot]
            # Constant over the segment except for a boundary event.
            arr = np.full(n, float(snapshot.get(id(probe), probe.value)))
            arr[-1] = float(probe.value)
            return arr

        for hook in hooks:
            hook.hook_block(t, resolve)
