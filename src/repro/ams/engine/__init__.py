"""Pluggable execution engines for the AMS kernel.

See :mod:`repro.ams.engine.base` for the engine contract,
:mod:`repro.ams.engine.reference` for the lock-step oracle and
:mod:`repro.ams.engine.compiled` for the segment-vectorized backend.
"""

from __future__ import annotations

from repro.ams.engine.base import ExecutionEngine
from repro.ams.engine.compiled import CompiledEngine
from repro.ams.engine.reference import ReferenceEngine

#: Engine registry: name -> engine class.
ENGINES: dict[str, type[ExecutionEngine]] = {
    ReferenceEngine.name: ReferenceEngine,
    CompiledEngine.name: CompiledEngine,
}


def get_engine(spec: str | ExecutionEngine | type[ExecutionEngine]
               ) -> ExecutionEngine:
    """Resolve an engine spec: a registry name (``"reference"`` /
    ``"compiled"``), an engine class, or an instance (passed through)."""
    if isinstance(spec, ExecutionEngine):
        return spec
    if isinstance(spec, type) and issubclass(spec, ExecutionEngine):
        return spec()
    try:
        return ENGINES[spec]()
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown engine {spec!r}; known engines: "
            f"{sorted(ENGINES)}") from None


__all__ = [
    "ENGINES",
    "CompiledEngine",
    "ExecutionEngine",
    "ReferenceEngine",
    "get_engine",
]
