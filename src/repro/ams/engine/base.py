"""Execution-engine protocol of the AMS kernel.

The :class:`~repro.ams.kernel.Simulator` owns the model (blocks,
quantities, signals, event queue); an :class:`ExecutionEngine` owns the
*strategy* used to advance it.  Two engines ship with the kernel:

* :class:`~repro.ams.engine.reference.ReferenceEngine` - the original
  lock-step loop (one Python ``block.step`` call per block per analog
  step).  It is the semantic oracle: every other engine must reproduce
  its results.
* :class:`~repro.ams.engine.compiled.CompiledEngine` - analyzes the
  block graph and executes whole inter-event segments as NumPy array
  operations, falling back to the lock-step loop when the model cannot
  be compiled (Spice-in-the-loop blocks, non-vectorizable callbacks,
  feedback topologies, opaque step hooks).
"""

from __future__ import annotations


class ExecutionEngine:
    """Strategy object advancing a :class:`Simulator` to a stop time.

    Engines hold no model state: time, quantities, signals, queue and
    counters all live on the simulator, so a model can be advanced by
    different engines in turn.  An engine may keep per-run diagnostics
    (e.g. :attr:`CompiledEngine.fallback_reason`), which always refer
    to its most recent ``run`` - give each simulator its own engine
    instance (the default when constructing with a name spec) if those
    diagnostics must stay separate.
    """

    #: Registry key of the engine (also accepted by ``Simulator(engine=...)``).
    name = "base"

    def run(self, sim, t_stop: float) -> None:
        """Advance *sim* until *t_stop*, updating ``sim.t``, ``sim.steps``
        and ``sim.cpu_time`` exactly as the reference loop would."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
