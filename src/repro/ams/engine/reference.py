"""The oracle engine: the original per-step lock-step loop."""

from __future__ import annotations

import time as _time

from repro.ams.engine.base import ExecutionEngine
from repro.obs import metrics as _metrics

_RUNS = _metrics.REGISTRY.counter("ams.reference.runs")
_STEPS = _metrics.REGISTRY.counter("ams.reference.steps")


class ReferenceEngine(ExecutionEngine):
    """Fixed-step lock-step execution, one ``block.step`` per block per
    analog step.

    This is the seed kernel's main loop, kept verbatim: analog time
    advances in steps of ``dt``; after each step every digital event with
    a timestamp up to the new time executes (including delta-cycle
    cascades), then the step hooks run.  All other engines are validated
    against this one.
    """

    name = "reference"

    def run(self, sim, t_stop: float) -> None:
        _RUNS.inc()
        started = _time.perf_counter()
        steps_before = sim.steps
        dt = sim.dt
        blocks = sim.blocks
        hooks = sim._step_hooks
        sim._drain_events(sim.t)
        while sim.t < t_stop - 0.5 * dt:
            t_new = sim.t + dt
            for block in blocks:
                block.step(t_new, dt)
            sim._drain_events(t_new)
            for hook in hooks:
                hook(t_new)
            sim.steps += 1
        _STEPS.inc(sim.steps - steps_before)
        sim.cpu_time += _time.perf_counter() - started
