"""Spice co-simulation block: a transistor netlist inside the AMS kernel.

This is the Python equivalent of the paper's Phase III mechanism - the
ADMS ``Eldo_subckt`` component: the system-level testbench stays
behavioral, but one block is backed by a transistor-level netlist solved
by the circuit engine, lock-stepped with the analog kernel step.

At every analog step the block:

1. evaluates its input functions (arbitrary closures over quantities /
   signals) and writes them into the netlist's independent sources,
2. advances the embedded :class:`~repro.spice.analysis.tran.TransientStepper`
   by one (or more) steps,
3. evaluates its output functions against the stepper and writes the
   results into the driven quantities.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.ams.block import AnalogBlock
from repro.ams.quantity import Quantity
from repro.spice.analysis.tran import TransientStepper
from repro.spice.lint import preflight_check
from repro.spice.netlist import Circuit


class SpiceBlock(AnalogBlock):
    """Embed a Spice-level circuit in the mixed-signal simulation.

    Args:
        name: block name.
        circuit: the netlist (complete with supplies and the independent
            sources the inputs drive).
        dt: analog kernel step; the embedded transient uses
            ``dt / substeps``.
        inputs: mapping ``source_name -> fn()`` giving each source's
            value at the current step.
        outputs: mapping ``Quantity -> fn(stepper)`` extracting outputs,
            e.g. ``lambda st: st.vdiff("out_intp", "out_intm")``.
        substeps: circuit-level steps per kernel step (>= 1).
        method: integration method of the embedded transient.
        initial_overrides: source values for the initial DC solve.
        initial_guess: node-voltage hints for the initial DC solve.
        preflight: run the error-level static lint rules
            (:func:`repro.spice.lint.preflight_check`) on the netlist
            before any MNA assembly, so a malformed circuit fails with
            a named rule and nodes instead of an opaque solver error
            deep inside the transient.  Pass ``False`` to opt out
            (e.g. to study a deliberately degenerate netlist that the
            ``gmin`` leakage can still solve).

    A Spice block deliberately does **not** implement the vectorized
    ``step_block`` protocol: its inputs are closures over live kernel
    state and each circuit step needs a Newton solve, so segments with a
    circuit in the loop always run lock-step (the compiled engine falls
    back automatically).
    """

    step_block = None  # circuit-in-the-loop segments stay lock-step

    def __init__(self, name: str, circuit: Circuit, dt: float, *,
                 inputs: Mapping[str, Callable[[], float]],
                 outputs: Mapping[Quantity, Callable[[TransientStepper],
                                                     float]],
                 substeps: int = 1,
                 method: str = "trap",
                 initial_overrides: Mapping[str, float] | None = None,
                 initial_guess: Mapping[str, float] | None = None,
                 preflight: bool = True):
        if substeps < 1:
            raise ValueError("substeps must be >= 1")
        if preflight:
            # Fail fast, before the TransientStepper compiles the MNA
            # system: NetlistLintError names the rule and the nodes.
            preflight_check(circuit)
        super().__init__(name, inputs=(), outputs=tuple(outputs))
        self._input_fns = dict(inputs)
        self._output_fns = [(q, fn) for q, fn in outputs.items()]
        overrides = dict(initial_overrides or {})
        for src, fn in self._input_fns.items():
            overrides.setdefault(src, float(fn()))
        self.stepper = TransientStepper(
            circuit, dt / substeps, method=method,
            overrides=overrides, initial_guess=initial_guess)
        self.substeps = substeps
        self._write_outputs()

    def _write_outputs(self) -> None:
        for quantity, fn in self._output_fns:
            quantity.value = float(fn(self.stepper))

    def step(self, t: float, dt: float) -> None:
        stepper = self.stepper
        for src, fn in self._input_fns.items():
            stepper.set_source(src, float(fn()))
        for _ in range(self.substeps):
            stepper.step()
        self._write_outputs()

    def v(self, node: str) -> float:
        """Convenience probe into the embedded circuit."""
        return self.stepper.v(node)
