"""Reusable ODE states for behavioral analog models.

These helpers implement, with trapezoidal integration, the
"simultaneous statements" the paper writes in VHDL-AMS:

* Phase II ideal gated integrator::

      if sel='1' use vo'Dot == vin*K; else vo == 0.0; end use;

  -> :class:`GatedIntegratorState`

* Phase IV two-pole behavioral model::

      if sel='1' use
        vin - 1/(2*pi*fp1) * vq'Dot - vq == 0;
        G * vq - 1/(2*pi*fp2) * vo'Dot - vo == 0;
      else vq == 0.0; vo == 0.0; end use;

  -> :class:`TwoPoleGatedIntegratorState`

plus a plain :class:`OnePoleState` low-pass used by front-end models.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.signal import lfilter as _lfilter


def saturate(value: float, low: float, high: float) -> float:
    """Clamp *value* into ``[low, high]``."""
    if value < low:
        return low
    if value > high:
        return high
    return value


class OnePoleState:
    """First-order low-pass ``tau*y' + y = gain*x`` (trapezoidal).

    Args:
        pole_hz: pole frequency (``tau = 1 / (2*pi*pole_hz)``).
        gain: DC gain.
    """

    def __init__(self, pole_hz: float, gain: float = 1.0, init: float = 0.0):
        if pole_hz <= 0:
            raise ValueError("pole_hz must be positive")
        self.tau = 1.0 / (2.0 * math.pi * pole_hz)
        self.gain = gain
        self.y = float(init)
        self._x_prev = float(init) / gain if gain else 0.0

    def update(self, x: float, dt: float) -> float:
        """Advance one step with input *x*; returns the new output."""
        # Trapezoidal discretization of tau*y' + y = g*x:
        # (tau/dt + 1/2) y_new = (tau/dt - 1/2) y_old + g (x_new + x_old)/2
        a = self.tau / dt
        y_new = ((a - 0.5) * self.y
                 + 0.5 * self.gain * (x + self._x_prev)) / (a + 0.5)
        self.y = y_new
        self._x_prev = x
        return y_new

    def update_block(self, x: np.ndarray, dt: float) -> np.ndarray:
        """Advance *len(x)* steps at once (same recurrence, evaluated as
        a first-order IIR filter seeded with the current state)."""
        x = np.asarray(x, dtype=float)
        a = self.tau / dt
        denom = a + 0.5
        c1 = (a - 0.5) / denom          # y[k] = c1*y[k-1]
        b0 = 0.5 * self.gain / denom    # + b0*(x[k] + x[k-1])
        zi = np.array([b0 * self._x_prev + c1 * self.y])
        y, _zf = _lfilter([b0, b0], [1.0, -c1], x, zi=zi)
        self.y = float(y[-1])
        self._x_prev = float(x[-1])
        return y

    def reset(self, value: float = 0.0) -> None:
        self.y = value
        self._x_prev = value / self.gain if self.gain else 0.0


class GatedIntegratorState:
    """Phase-II ideal gated integrator: ``vo' = K*vin`` while enabled,
    ``vo = 0`` when dumped, and hold otherwise.

    The three-state control mirrors the circuit's integrate/hold/dump:

    * ``integrate(vin, dt)``: accumulate,
    * ``hold()``: keep the value (ADC conversion window),
    * ``dump()``: reset to zero.
    """

    def __init__(self, k: float):
        self.k = float(k)
        self.vo = 0.0
        self._vin_prev = 0.0

    def integrate(self, vin: float, dt: float) -> float:
        self.vo += 0.5 * self.k * dt * (vin + self._vin_prev)
        self._vin_prev = vin
        return self.vo

    def integrate_block(self, vin: np.ndarray, dt: float) -> np.ndarray:
        """Integrate *len(vin)* consecutive samples at once.

        Reproduces the exact floating-point addition sequence of the
        scalar :meth:`integrate` loop (cumulative sum seeded with the
        running output), so compiled and lock-step runs agree bit for
        bit.
        """
        vin = np.asarray(vin, dtype=float)
        n = len(vin)
        prev = np.empty(n)
        prev[0] = self._vin_prev
        prev[1:] = vin[:-1]
        np.add(prev, vin, out=prev)
        np.multiply(prev, 0.5 * self.k * dt, out=prev)
        out = np.empty(n + 1)
        out[0] = self.vo
        out[1:] = prev
        out.cumsum(out=out)
        self.vo = float(out[-1])
        self._vin_prev = float(vin[-1])
        return out[1:]

    def hold(self) -> float:
        self._vin_prev = 0.0
        return self.vo

    def dump(self) -> float:
        self.vo = 0.0
        self._vin_prev = 0.0
        return self.vo


class TwoPoleGatedIntegratorState:
    """Phase-IV behavioral model: gain + two poles while integrating.

    While enabled the signal path is ``vin -> LP(fp1) -> *gain ->
    LP(fp2)``, which is exactly the paper's pair of coupled first-order
    differential equations; ``dump`` forces both states to zero, and
    ``hold`` freezes them (switches open).

    Optionally an input static nonlinearity (compression of the limited
    linear input range - what the paper's own Phase IV model *omits* and
    what its figure-5 discussion blames for the residual mismatch) can be
    installed via *input_nonlinearity*.
    """

    def __init__(self, gain: float, fp1_hz: float, fp2_hz: float,
                 input_nonlinearity=None):
        self.gain = float(gain)
        self.lp1 = OnePoleState(fp1_hz, gain=1.0)
        self.lp2 = OnePoleState(fp2_hz, gain=self.gain)
        self.input_nonlinearity = input_nonlinearity

    def vectorizable(self) -> bool:
        """Whether :meth:`integrate_block` is safe: the nonlinearity, if
        any, must declare array support via a truthy ``vectorized``
        attribute (scalar-only callables keep the block lock-step)."""
        return (self.input_nonlinearity is None
                or bool(getattr(self.input_nonlinearity, "vectorized",
                                False)))

    @property
    def vo(self) -> float:
        return self.lp2.y

    def integrate(self, vin: float, dt: float) -> float:
        if self.input_nonlinearity is not None:
            vin = self.input_nonlinearity(vin)
        vq = self.lp1.update(vin, dt)
        return self.lp2.update(vq, dt)

    def integrate_block(self, vin: np.ndarray, dt: float) -> np.ndarray:
        """Integrate *len(vin)* consecutive samples at once (the two
        one-pole recurrences run as IIR filters seeded with the current
        states; the nonlinearity, if any, must be vectorized)."""
        vin = np.asarray(vin, dtype=float)
        if self.input_nonlinearity is not None:
            vin = self.input_nonlinearity(vin)
        vq = self.lp1.update_block(vin, dt)
        return self.lp2.update_block(vq, dt)

    def hold(self) -> float:
        return self.lp2.y

    def dump(self) -> float:
        self.lp1.reset(0.0)
        self.lp2.reset(0.0)
        return 0.0
