"""Mixed-signal simulation kernel (the repo's VHDL-AMS/ADMS substitute).

The kernel provides the two semantics the paper's methodology relies on:

* **digital**: event-driven :class:`Signal` updates with delta cycles and
  :class:`Process` callbacks (VHDL side),
* **analog**: fixed-step :class:`Quantity` evaluation through an ordered
  chain of :class:`AnalogBlock` objects, each integrating its own
  differential equations with the trapezoidal rule (VHDL-AMS
  simultaneous statements), including Spice co-simulation blocks
  (:mod:`repro.ams.cosim`) that embed a transistor netlist in the system
  testbench - the ADMS/Eldo substitute-and-play mechanism.

Both sides share one clock: every analog step advances time by ``dt``
(the paper uses a fixed 0.05 ns step) and then drains the digital event
queue up to the new time.
"""

from repro.ams.signal import Signal
from repro.ams.quantity import Quantity
from repro.ams.process import Process
from repro.ams.block import AnalogBlock, CallbackBlock
from repro.ams.kernel import Simulator
from repro.ams.equations import (
    GatedIntegratorState,
    OnePoleState,
    TwoPoleGatedIntegratorState,
    saturate,
)
from repro.ams.waveform import Recorder, Trace
from repro.ams.cosim import SpiceBlock
from repro.ams.engine import (
    CompiledEngine,
    ExecutionEngine,
    ReferenceEngine,
    get_engine,
)

__all__ = [
    "AnalogBlock",
    "CallbackBlock",
    "CompiledEngine",
    "ExecutionEngine",
    "ReferenceEngine",
    "get_engine",
    "GatedIntegratorState",
    "OnePoleState",
    "Process",
    "Quantity",
    "Recorder",
    "Signal",
    "Simulator",
    "SpiceBlock",
    "Trace",
    "TwoPoleGatedIntegratorState",
    "saturate",
]
