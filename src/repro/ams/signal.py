"""Digital signals (the VHDL side of the kernel)."""

from __future__ import annotations

from typing import Any, Callable


class Signal:
    """An event-driven signal carrying an arbitrary Python value.

    Signals are owned by a :class:`~repro.ams.kernel.Simulator` once any
    process or assignment touches them.  Assignments are scheduled through
    the simulator's event queue (``after`` models VHDL's ``after``
    clause); immediate assignments still go through a delta cycle so all
    processes triggered in the same instant observe a consistent value.
    """

    def __init__(self, name: str, init: Any = 0):
        self.name = name
        self._init = init
        self._value = init
        self._last_change: float = 0.0
        self._watchers: list[Callable[["Signal"], None]] = []
        self._sim = None  # set on registration

    def reset(self) -> None:
        """Restore the initial value silently (watchers do not fire) -
        the kernel reset contract."""
        self._value = self._init
        self._last_change = 0.0

    # -- value access ---------------------------------------------------
    @property
    def value(self) -> Any:
        return self._value

    @property
    def last_change(self) -> float:
        """Time of the most recent value change."""
        return self._last_change

    def __bool__(self) -> bool:
        return bool(self._value)

    # -- simulator plumbing ----------------------------------------------
    def _bind(self, sim) -> None:
        if self._sim is not None and self._sim is not sim:
            raise RuntimeError(
                f"signal {self.name!r} already belongs to another simulator")
        self._sim = sim

    def watch(self, callback: Callable[["Signal"], None]) -> None:
        """Run *callback(signal)* on every value change (used by
        processes; also handy for ad-hoc probes in tests)."""
        self._watchers.append(callback)

    def assign(self, value: Any, after: float = 0.0) -> None:
        """Schedule ``signal <= value after <delay>`` (delta cycle for
        ``after=0``)."""
        if self._sim is None:
            raise RuntimeError(
                f"signal {self.name!r} is not registered with a simulator")
        self._sim._schedule_signal(self, value, after)

    def force(self, value: Any, t: float = 0.0) -> None:
        """Set the value immediately, firing watchers (initialization /
        testbench use)."""
        changed = value != self._value
        self._value = value
        if changed:
            self._last_change = t
            for watcher in list(self._watchers):
                watcher(self)

    def _apply(self, value: Any, t: float) -> None:
        if value == self._value:
            return
        self._value = value
        self._last_change = t
        for watcher in list(self._watchers):
            watcher(self)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, value={self._value!r})"
