"""Analog quantities (the VHDL-AMS side of the kernel)."""

from __future__ import annotations


class Quantity:
    """A continuous-valued node updated once per analog step.

    Exactly one :class:`~repro.ams.block.AnalogBlock` may drive a
    quantity; any number of blocks and processes may read it.  The kernel
    checks single-driver ownership at registration time.
    """

    __slots__ = ("name", "value", "init", "_driver")

    def __init__(self, name: str, init: float = 0.0):
        self.name = name
        self.init = float(init)
        self.value = float(init)
        self._driver = None

    def reset(self) -> None:
        """Restore the initial value (kernel reset contract)."""
        self.value = self.init

    def _claim(self, driver) -> None:
        if self._driver is not None and self._driver is not driver:
            raise RuntimeError(
                f"quantity {self.name!r} already driven by "
                f"{self._driver!r}; cannot also be driven by {driver!r}")
        self._driver = driver

    @property
    def driver(self):
        return self._driver

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Quantity({self.name!r}, value={self.value:.6g})"
