"""Legacy setuptools shim (metadata lives in pyproject.toml).

``pip install -e .`` is the supported path; this shim additionally
keeps ``python setup.py develop`` working in offline environments that
lack the ``wheel`` package, so the src/ layout is importable without
``PYTHONPATH=src``.
"""

from setuptools import setup

setup()
