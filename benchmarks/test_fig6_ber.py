"""Benchmark: regenerate Figure 6 (BER vs Eb/N0, ideal vs circuit)."""

from benchmarks.conftest import (
    assert_no_throughput_regression,
    assert_no_wall_regression,
    full_scale,
    write_bench_artifact,
)
from repro.experiments import run_fig6
from repro.obs import trace


def test_fig6_ber_curves(benchmark, report_sink):
    quick = not full_scale()
    grid = (0, 2, 4, 6, 8, 10, 12, 14) if full_scale() \
        else (2, 6, 10, 14)
    result = benchmark.pedantic(
        lambda: run_fig6(ebn0_grid=grid, quick=quick, seed=7),
        rounds=1, iterations=1)
    wall = benchmark.stats.stats.total  # the single pedantic round
    report_sink(result.format_report())
    cmp_ = result.comparison
    benchmark.extra_info["ber_ideal"] = [float(x) for x in cmp_.ber_a]
    benchmark.extra_info["ber_circuit"] = [float(x) for x in cmp_.ber_b]
    benchmark.extra_info["winner_high_snr"] = cmp_.wins_at_high_snr()
    # Throughput metric of the batched sweep engine: BER points
    # resolved per wall second (both curves of the figure count).
    points = len(grid) * 2
    pps = points / wall if wall > 0 else 0.0
    # Stage attribution from a separate traced run *outside* the timed
    # region, so the headline wall stays an untraced measurement; the
    # breakdown lets the regression guard name the offending stage.
    with trace.collect("fig6") as root:
        run_fig6(ebn0_grid=grid, quick=quick, seed=7)
    stage_walls = {name: round(w, 4)
                   for name, w in sorted(root.leaf_walls().items())}
    write_bench_artifact("fig6", {
        "wall_seconds": round(wall, 4),
        "points": points,
        "points_per_second": round(pps, 2),
        "stage_walls": stage_walls,
        "traced_wall_seconds": round(root.total_s, 4),
        "ebn0_db": [float(x) for x in cmp_.ebn0_db],
        "ber_ideal": [float(x) for x in cmp_.ber_a],
        "ber_circuit": [float(x) for x in cmp_.ber_b],
        "winner_high_snr": cmp_.wins_at_high_snr(),
    })
    # Shape: monotone decrease; circuit at or below ideal at the top
    # grid point (paired noise).
    assert result.monotone
    assert cmp_.ber_b[-1] <= cmp_.ber_a[-1] * 1.10
    # The batched sweep engine must not cost fig6 wall-clock or
    # throughput: >10% against a comparable committed baseline fails
    # the bench (with a 0.25 s jitter floor for sub-second fast-scale
    # runs).
    assert_no_wall_regression("fig6", wall, stage_walls=stage_walls)
    assert_no_throughput_regression("fig6", pps,
                                    stage_walls=stage_walls)
