"""Benchmark: regenerate Table 1 (CPU time per integrator model)."""

from benchmarks.conftest import full_scale, write_bench_artifact
from repro.experiments import run_table1


def test_table1_cpu_time(benchmark, report_sink):
    # Paper simulates 30 us; the ratios stabilize after a few symbols.
    span = 30e-6 if full_scale() else 0.3e-6
    result = benchmark.pedantic(
        lambda: run_table1(simulated_time=span), rounds=1, iterations=1)
    report_sink(result.format_report())
    entries = result.report.entries
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in entries.items()})
    benchmark.extra_info["eldo_over_ideal"] = round(
        entries["ELDO"] / entries["IDEAL"], 2)
    benchmark.extra_info["paper_eldo_over_ideal"] = 6.5
    speedup = result.engine_speedup("IDEAL")
    benchmark.extra_info["compiled_speedup_ideal"] = round(speedup, 2)
    write_bench_artifact("table1", {
        "simulated_time_s": span,
        "engine": result.engine,
        "cpu_seconds": {k: round(v, 6) for k, v in entries.items()},
        "ideal_reference_seconds": round(
            result.reference_times["IDEAL"], 6),
        "compiled_speedup_ideal": round(speedup, 2),
        "engines_identical_bits": result.engines_agree(),
        "eldo_over_ideal": round(entries["ELDO"] / entries["IDEAL"], 2),
    })
    # Shape: circuit-in-the-loop dominates by a large multiple.
    assert result.cosim_dominates()
    assert entries["ELDO"] / entries["IDEAL"] > 4.0
    # Engine acceptance: the compiled engine demodulates identical bits
    # and beats the lock-step oracle on the ideal row.  The recorded
    # best-of-N speedup (target >= 5x, see BENCH_table1.json) tracks
    # the real margin; the assertion only guards the direction, so a
    # noisy shared CI runner cannot flake the suite.
    assert result.engines_agree()
    assert speedup > 1.5
