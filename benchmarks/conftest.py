"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper, prints the
report (run pytest with ``-s`` to see them), stores the headline numbers
in ``benchmark.extra_info`` and asserts the qualitative claim.
Paper-scale (slow) variants are enabled with ``REPRO_FULL=1``.
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture
def report_sink(capsys):
    """Print a report so it survives pytest's capture with -s."""

    def sink(text: str) -> None:
        print("\n" + text)

    return sink
