"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper, prints the
report (run pytest with ``-s`` to see them), stores the headline numbers
in ``benchmark.extra_info`` and asserts the qualitative claim.
Paper-scale (slow) variants are enabled with ``REPRO_FULL=1``.

Timing-relevant benchmarks additionally write machine-readable
``BENCH_<name>.json`` artifacts (via :func:`write_bench_artifact`) so
the performance trajectory is tracked PR-over-PR.  By default they land
in the gitignored ``.benchmarks/`` directory, keeping plain test runs
from dirtying the tracked ``BENCH_*.json`` copies at the repo root; to
refresh those intentionally, run with ``REPRO_BENCH_DIR=.``.
"""

import json
import os
import pathlib
import platform

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


def write_bench_artifact(name: str, payload: dict) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` with the given headline numbers.

    Relative ``REPRO_BENCH_DIR`` values resolve against the repo root
    (not the pytest CWD), so ``REPRO_BENCH_DIR=.`` refreshes the
    committed copies no matter where pytest was launched from.
    """
    override = os.environ.get("REPRO_BENCH_DIR")
    if override is None:
        out_dir = _REPO_ROOT / ".benchmarks"
    else:
        out_dir = _REPO_ROOT / override  # absolute overrides win
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    record = {
        "benchmark": name,
        "full_scale": full_scale(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    record.update(payload)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def committed_baseline(name: str) -> dict | None:
    """The committed ``BENCH_<name>.json`` record at the repo root, if
    it is comparable to this run.

    Wall-clock numbers only mean something against a baseline produced
    under like conditions, so the record is returned only when the
    machine architecture, the python major.minor and the
    ``REPRO_FULL`` scale all match; otherwise ``None`` (callers skip
    the comparison).
    """
    path = _REPO_ROOT / f"BENCH_{name}.json"
    if not path.exists():
        return None
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if record.get("machine") != platform.machine():
        return None
    mm = ".".join(platform.python_version().split(".")[:2])
    if ".".join(str(record.get("python", "")).split(".")[:2]) != mm:
        return None
    if record.get("full_scale") != full_scale():
        return None
    return record


def _stage_attribution(baseline: dict,
                       stage_walls: dict | None) -> str:
    """Name the per-stage breakdown's biggest regression, so a guard
    failure says *which stage* slowed down, not just that the total
    did.  Empty when either side lacks a breakdown or nothing grew."""
    base_stages = baseline.get("stage_walls") or {}
    if not stage_walls or not base_stages:
        return ""
    deltas = {name: float(wall) - float(base_stages.get(name, 0.0))
              for name, wall in stage_walls.items()}
    worst = max(deltas, key=lambda n: deltas[n])
    if deltas[worst] <= 0:
        return ""
    return (f"; biggest stage regression: {worst} "
            f"{float(base_stages.get(worst, 0.0)):.3f}s -> "
            f"{float(stage_walls[worst]):.3f}s "
            f"(+{deltas[worst]:.3f}s)")


def assert_no_wall_regression(name: str, wall: float,
                              rel: float = 0.10,
                              abs_slack: float = 0.25,
                              stage_walls: dict | None = None) -> None:
    """Fail when *wall* regresses more than *rel* against the
    committed comparable baseline.

    ``abs_slack`` is a jitter floor for sub-second baselines: a pure
    10% band around 0.3 s flakes on scheduler noise alone, so the
    budget is ``max(base * (1 + rel), base + abs_slack)`` - the
    relative band governs once the baseline clears
    ``abs_slack / rel`` seconds, the absolute floor below that.

    ``stage_walls`` (this run's per-stage breakdown, from
    ``repro.obs.trace``) is compared against the baseline's to name
    the stage that regressed most in the failure message.
    """
    baseline = committed_baseline(name)
    if baseline is None:
        return
    base_wall = baseline.get("wall_seconds")
    if not base_wall:
        return
    budget = max(base_wall * (1.0 + rel), base_wall + abs_slack)
    assert wall <= budget, (
        f"{name} wall-clock regressed: {wall:.3f}s against the "
        f"committed baseline {base_wall:.3f}s (budget {budget:.3f}s)"
        f"{_stage_attribution(baseline, stage_walls)}; "
        "if the slowdown is intended, regenerate the artifact with "
        "REPRO_BENCH_DIR=. and commit it")


def assert_no_throughput_regression(name: str, points_per_second: float,
                                    rel: float = 0.10,
                                    abs_slack: float = 0.25,
                                    stage_walls: dict | None = None
                                    ) -> None:
    """Fail when *points_per_second* regresses more than *rel* against
    the committed comparable baseline.

    The exact throughput twin of :func:`assert_no_wall_regression`:
    the wall budget ``max(base_wall * (1 + rel), base_wall +
    abs_slack)`` translates into a throughput floor of ``base_points /
    budget``, so the two guards can never disagree on the same
    workload.  Baselines recorded before the metric existed (no
    ``points_per_second``) are skipped.
    """
    baseline = committed_baseline(name)
    if baseline is None:
        return
    base_pps = baseline.get("points_per_second")
    base_wall = baseline.get("wall_seconds")
    if not base_pps or not base_wall:
        return
    budget = max(base_wall * (1.0 + rel), base_wall + abs_slack)
    floor = base_pps * base_wall / budget
    assert points_per_second >= floor, (
        f"{name} throughput regressed: {points_per_second:.2f} "
        f"points/s against the committed baseline {base_pps:.2f} "
        f"points/s (floor {floor:.2f})"
        f"{_stage_attribution(baseline, stage_walls)}; "
        "if the slowdown is intended, "
        "regenerate the artifact with REPRO_BENCH_DIR=. and commit it")


@pytest.fixture
def report_sink(capsys):
    """Print a report so it survives pytest's capture with -s."""

    def sink(text: str) -> None:
        print("\n" + text)

    return sink
