"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper, prints the
report (run pytest with ``-s`` to see them), stores the headline numbers
in ``benchmark.extra_info`` and asserts the qualitative claim.
Paper-scale (slow) variants are enabled with ``REPRO_FULL=1``.

Timing-relevant benchmarks additionally write machine-readable
``BENCH_<name>.json`` artifacts (via :func:`write_bench_artifact`) so
the performance trajectory is tracked PR-over-PR.  By default they land
in the gitignored ``.benchmarks/`` directory, keeping plain test runs
from dirtying the tracked ``BENCH_*.json`` copies at the repo root; to
refresh those intentionally, run with ``REPRO_BENCH_DIR=.``.
"""

import json
import os
import pathlib
import platform

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


def write_bench_artifact(name: str, payload: dict) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` with the given headline numbers.

    Relative ``REPRO_BENCH_DIR`` values resolve against the repo root
    (not the pytest CWD), so ``REPRO_BENCH_DIR=.`` refreshes the
    committed copies no matter where pytest was launched from.
    """
    override = os.environ.get("REPRO_BENCH_DIR")
    if override is None:
        out_dir = _REPO_ROOT / ".benchmarks"
    else:
        out_dir = _REPO_ROOT / override  # absolute overrides win
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    record = {
        "benchmark": name,
        "full_scale": full_scale(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    record.update(payload)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def report_sink(capsys):
    """Print a report so it survives pytest's capture with -s."""

    def sink(text: str) -> None:
        print("\n" + text)

    return sink
