"""Benchmark: the paper's proposed two-stage AGC removes the TWR
offset caused by integrator input-range compression."""

from benchmarks.conftest import full_scale
from repro.experiments import run_agc_ablation


def test_two_stage_agc_ablation(benchmark, report_sink):
    iterations = 20 if full_scale() else 8
    result = benchmark.pedantic(
        lambda: run_agc_ablation(iterations=iterations, seed=42),
        rounds=1, iterations=1)
    report_sink(result.format_report())
    benchmark.extra_info["single_offset_m"] = round(
        result.single_stage.offset, 3)
    benchmark.extra_info["two_stage_offset_m"] = round(
        result.two_stage.offset, 3)
    # The fix must not worsen the offset, and typically reduces it.
    assert abs(result.two_stage.offset) <= abs(
        result.single_stage.offset) + 0.05
