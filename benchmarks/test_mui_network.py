"""Benchmark: multi-user interference study over ``NetworkSpec``.

The network-level claim of record: the non-coherent 2-PPM
energy-detection receiver degrades monotonically as same-band
interferers are added at fixed Eb/N0, and a near-far aggressor
closing in (received power following the TG4a path-loss law) drives
the link interference-limited.
"""

from benchmarks.conftest import (
    assert_no_throughput_regression,
    full_scale,
    write_bench_artifact,
)
from repro.experiments import run_mui
from repro.obs import trace


def test_mui_network_ber(benchmark, report_sink):
    quick = not full_scale()
    result = benchmark.pedantic(
        lambda: run_mui(quick=quick, seed=11),
        rounds=1, iterations=1)
    wall = benchmark.stats.stats.total  # the single pedantic round
    report_sink(result.format_report())

    sweeps = {f"ber_top_sir{sir:g}":
              [ber for _n, ber in result.count_sweep(sir)]
              for sir in result.sir_grid}
    near_far = {f"{d:g}": float(curve.ber[0])
                for d, curve in sorted(result.near_far.items())}
    benchmark.extra_info["counts"] = list(result.counts)
    benchmark.extra_info.update(sweeps)
    # Throughput metric of the batched sweep engine: BER points
    # resolved per wall second across every scenario of the campaign.
    points = (sum(len(c.ber) for c in result.curves.values())
              + len(result.near_far))
    pps = points / wall if wall > 0 else 0.0
    # Stage attribution from a separate traced run outside the timed
    # region (see the fig6 benchmark).
    with trace.collect("mui") as root:
        run_mui(quick=quick, seed=11)
    stage_walls = {name: round(w, 4)
                   for name, w in sorted(root.leaf_walls().items())}
    write_bench_artifact("mui", {
        "wall_seconds": round(wall, 4),
        "points": points,
        "points_per_second": round(pps, 2),
        "stage_walls": stage_walls,
        "traced_wall_seconds": round(root.total_s, 4),
        "ebn0_db": list(result.ebn0_grid),
        "counts": list(result.counts),
        "sir_db": list(result.sir_grid),
        **sweeps,
        "near_far_ebn0_db": result.near_far_ebn0,
        "near_far_ber": near_far,
    })

    # The acceptance claims: more interferers always hurt, and so does
    # a closer aggressor.
    assert result.monotone_in_interferers
    assert result.near_far_monotone
    distances = sorted(result.near_far)
    closest = float(result.near_far[distances[0]].ber[0])
    farthest = float(result.near_far[distances[-1]].ber[0])
    assert closest > farthest
    assert_no_throughput_regression("mui", pps,
                                    stage_walls=stage_walls)
