"""Benchmark: regenerate Table 2 (TWR @ 9.9 m, ideal vs circuit)."""

from benchmarks.conftest import full_scale
from repro.experiments import run_table2


def test_table2_twr(benchmark, report_sink):
    iterations = 30 if full_scale() else 10  # paper: 10
    result = benchmark.pedantic(
        lambda: run_table2(iterations=iterations, seed=42),
        rounds=1, iterations=1)
    report_sink(result.format_report())
    for label, res in result.comparison.entries.items():
        benchmark.extra_info[f"{label}_mean_m"] = round(res.mean, 3)
        benchmark.extra_info[f"{label}_variance"] = round(res.variance, 3)
    benchmark.extra_info["paper"] = \
        "ideal 10.10/0.49, circuit 11.16/0.10"
    comparison = result.comparison
    # Shape: both near 9.9 m; the circuit model shows the larger offset.
    for res in comparison.entries.values():
        assert 9.0 < res.mean < 13.5
    assert comparison.offset_increased("ideal", "circuit")
