"""Benchmark: Phase-I validation (AMS kernel vs golden model BER)."""

from benchmarks.conftest import full_scale
from repro.experiments import run_phase1_overlap


def test_phase1_overlap(benchmark, report_sink):
    bits = 300 if full_scale() else 60
    result = benchmark.pedantic(
        lambda: run_phase1_overlap(bits_per_point=bits, seed=23),
        rounds=1, iterations=1)
    report_sink(result.format_report())
    benchmark.extra_info["agreement"] = round(
        result.decision_agreement, 4)
    benchmark.extra_info["max_ber_gap"] = round(result.max_ber_gap, 4)
    # Paper: "BER curves which perfectly overlapped the Matlab ones".
    assert result.decision_agreement > 0.9
    assert result.max_ber_gap < 0.08
