"""Benchmark: regenerate Figure 5 (integrate/hold/dump transient)."""

from benchmarks.conftest import full_scale
from repro.experiments import run_fig5, run_fig5_drive_sweep


def test_fig5_transient(benchmark, report_sink):
    dt = 0.05e-9 if full_scale() else 0.2e-9  # paper step: 0.05 ns
    result = benchmark.pedantic(lambda: run_fig5(dt=dt),
                                rounds=1, iterations=1)
    report_sink(result.format_report())
    benchmark.extra_info["held_circuit_mv"] = \
        result.held_value(result.circuit) * 1e3
    benchmark.extra_info["held_model_mv"] = \
        result.held_value(result.model) * 1e3
    benchmark.extra_info["mismatch_pct"] = \
        result.model_vs_circuit_mismatch * 100
    assert result.held_value(result.circuit) > 0.1
    assert result.model_vs_circuit_mismatch < 0.25
    assert result.reset_works(tol=1e-2)


def test_fig5_distortion_at_large_drive(benchmark, report_sink):
    """The paper's figure-5 commentary: the pole-only model misses the
    input-range distortion, visible at larger drives (declared as one
    drive-level sweep over the scenario runner)."""
    result = benchmark.pedantic(
        lambda: run_fig5_drive_sweep(drives=(0.02, 0.15), dt=0.4e-9),
        rounds=1, iterations=1)
    small, large = result
    report_sink(
        "Figure 5 distortion check:\n"
        f"  mismatch at 20 mV : {small.model_vs_circuit_mismatch:.3f}\n"
        f"  mismatch at 150 mV: {large.model_vs_circuit_mismatch:.3f}")
    benchmark.extra_info["mismatch_small"] = \
        small.model_vs_circuit_mismatch
    benchmark.extra_info["mismatch_large"] = \
        large.model_vs_circuit_mismatch
    assert (large.model_vs_circuit_mismatch
            > small.model_vs_circuit_mismatch)
