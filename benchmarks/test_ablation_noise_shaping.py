"""Benchmark: BER sensitivity to the integrator's second pole (the
noise-shaping mechanism the paper cites for figure 6 / table 2)."""

from benchmarks.conftest import full_scale
from repro.experiments import run_noise_shaping_ablation


def test_noise_shaping_ablation(benchmark, report_sink):
    quick = not full_scale()
    result = benchmark.pedantic(
        lambda: run_noise_shaping_ablation(ebn0_db=12.0, quick=quick,
                                           seed=7),
        rounds=1, iterations=1)
    report_sink(result.format_report())
    benchmark.extra_info["ber_ideal"] = float(result.ber_ideal)
    benchmark.extra_info["ber_vs_fp2"] = [
        float(x) for x in result.ber_shaped]
    # A pole far above the squared-noise band is equivalent to ideal;
    # all variants stay within a factor ~2 (the integration window is
    # itself the dominant noise filter - see EXPERIMENTS.md).
    assert result.ber_shaped[-1] <= result.ber_ideal * 1.5
    assert all(b <= result.ber_ideal * 2.0 for b in result.ber_shaped)
