"""Benchmark: regenerate Figure 4 (integrator AC response)."""

from benchmarks.conftest import full_scale
from repro.experiments import run_fig4


def test_fig4_ac_response(benchmark, report_sink):
    points = 20 if full_scale() else 10
    result = benchmark.pedantic(
        lambda: run_fig4(points_per_decade=points), rounds=1, iterations=1)
    report_sink(result.format_report())
    benchmark.extra_info["gain_db"] = result.fit.gain_db
    benchmark.extra_info["fp1_mhz"] = result.fit.fp1_hz / 1e6
    benchmark.extra_info["fp2_ghz"] = result.fit.fp2_hz / 1e9
    benchmark.extra_info["overlap_rms_db"] = result.overlap_rms_db
    benchmark.extra_info["paper"] = "21 dB, 0.886 MHz, 5.895 GHz"
    # Figure-4 shape assertions.
    assert abs(result.fit.gain_db - 21.0) < 2.5
    assert 0.4e6 < result.fit.fp1_hz < 2e6
    assert 3e9 < result.fit.fp2_hz < 15e9
    assert abs(result.slope_db_per_decade(10e6, 1e9) + 20.0) < 1.0
    assert result.overlap_rms_db < 0.5
