"""The ``mui`` experiment harness: grid, report, caching, registry."""

import numpy as np
import pytest

from repro.campaign.store import ResultStore
from repro.experiments import (
    default_victim,
    interference_network,
    near_far_network,
    run_mui,
)
from repro.experiments.registry import get_experiment
from repro.link import LinkSpec, NetworkSpec
from repro.uwb.channel.ieee802154a import path_loss_db
from repro.uwb.config import TEST_CONFIG

#: a light victim for harness tests (TEST_CONFIG rates, pulse-derived
#: band - the fig6 wide band does not fit TEST_CONFIG's Nyquist).
VICTIM = LinkSpec(config=TEST_CONFIG)

FAST = dict(victim=VICTIM, ebn0_grid=(8.0, 14.0), counts=(0, 1, 2),
            sir_grid=(0.0,), near_far_distances=(3.0, 9.9),
            near_far_ebn0=12.0, seed=5,
            budget=dict(target_errors=40, max_bits=4_000,
                        min_bits=2_000))


class TestNetworkBuilders:
    def test_interference_network_grid(self):
        net = interference_network(VICTIM, 3, sir_db=6.0)
        assert isinstance(net, NetworkSpec)
        assert net.n_interferers == 3
        assert all(i.rel_power_db == -6.0 for i in net.interferers)
        offsets = [i.timing_offset for i in net.interferers]
        assert len(set(offsets)) == 3
        assert all(0 < off < VICTIM.config.slot for off in offsets)

    def test_near_far_power_mapping(self):
        """Near-far maps distances onto rel_power_db through the TG4a
        path-loss law."""
        net = near_far_network(VICTIM, 3.0)
        (aggressor,) = net.interferers
        expected = path_loss_db(VICTIM.channel.distance) \
            - path_loss_db(3.0)
        assert aggressor.rel_power_db == pytest.approx(expected)
        assert expected > 0  # closer than the victim's 9.9m -> hotter
        even = near_far_network(VICTIM, VICTIM.channel.distance)
        assert even.interferers[0].rel_power_db == pytest.approx(0.0)

    def test_default_victim_follows_fig6_conventions(self):
        victim = default_victim()
        assert victim.integrator == "ideal"
        assert victim.frontend.band is not None


class TestRunMui:
    def test_result_shape_and_claims(self):
        result = run_mui(**FAST)
        assert set(result.curves) == {"n0", "n1-sir0", "n2-sir0"}
        assert set(result.near_far) == {3.0, 9.9}
        sweep = result.count_sweep(0.0)
        assert [n for n, _ in sweep] == [0, 1, 2]
        assert result.monotone_in_interferers
        assert result.near_far_monotone

    def test_report_mentions_every_scenario(self):
        result = run_mui(**FAST)
        report = result.format_report()
        for token in ("n0", "n1-sir0", "n2-sir0", "SIR 0 dB",
                      "near-far", "d=  3.0 m", "path_loss_db"):
            assert token in report

    def test_campaign_cached_and_resumable(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_mui(store=store, **FAST)
        assert store.misses > 0 and store.hits == 0
        store.hits = store.misses = 0
        second = run_mui(store=store, **FAST)
        assert store.misses == 0 and store.hits > 0
        for name in first.curves:
            assert np.array_equal(first.curves[name].errors,
                                  second.curves[name].errors)
            assert np.array_equal(first.curves[name].bits,
                                  second.curves[name].bits)

    def test_registered_in_cli_registry(self):
        exp = get_experiment("mui")
        assert exp.name == "mui"
        assert "interferer" in exp.description
