"""Bit-identity of the scenario-batched sweep engine.

The batched kernel (``repro.link.pipeline.run_ber_sweep``) runs every
(integrator, Eb/N0) cell of a campaign from one shared entropy stream:
victim bits, interferer bits and the unit noise wave are drawn once per
chunk and only the noise *scale* differs per scenario row.  Under the
repository's per-run seeding convention - every BER point starts from
a generator freshly seeded with the run seed - that is exactly what
the per-point loop already computes, so cell ``(k, j)`` must equal
``_simulate_ber_point(config, integrators[k], grid[j], fresh_rng)``
**bit for bit**, in both fixed-n and adaptive modes, with and without
interferers.  Cached campaign results and the committed BENCH
artifacts are only valid if these tests hold.
"""

import numpy as np
import pytest

from repro.link import FastsimBackend, LinkSpec, NetworkSpec, ops
from repro.link.backends import (
    _CALIBRATION_MEMO,
    _REALIZATION_MEMO,
    build_channel_realization,
    calibrate,
)
from repro.link.pipeline import run_ber_sweep
from repro.link.spec import ChannelSpec, FrontEndSpec, InterfererSpec
from repro.uwb.config import TEST_CONFIG
from repro.uwb.fastsim import AdaptiveStopping, _simulate_ber_point
from repro.uwb.integrator import IdealIntegrator
from repro.uwb.modulation import ppm_positions, ppm_waveform
from repro.uwb.pulse import sampled_pulse

BUDGET = dict(target_errors=40, max_bits=4_000, min_bits=1_000,
              chunk_bits=500)

#: fig6-convention link (BER drive, pulse-derived band-pass) on the
#: small test configuration.
SPEC = LinkSpec(config=TEST_CONFIG,
                frontend=FrontEndSpec(squarer_drive=0.05))

GRID = (2.0, 6.0, 10.0, 14.0)


def _pointwise(spec, grid, seed, integrator=None, adaptive=None,
               **budget):
    """The per-point oracle: each point from its own freshly seeded
    generator (the sharing convention the batched kernel exploits)."""
    backend = FastsimBackend()
    return [backend.ber_point(spec, p, np.random.default_rng(seed),
                              integrator=integrator, adaptive=adaptive,
                              **budget)
            for p in grid]


class TestCurveParity:
    @pytest.mark.parametrize("adaptive", [None,
                                          AdaptiveStopping(ber_floor=1e-2)],
                             ids=["fixed-n", "adaptive"])
    def test_fig6_grid_matches_pointwise(self, adaptive):
        curve = FastsimBackend().ber_curve(
            SPEC, GRID, np.random.default_rng(7), batch_points=True,
            adaptive=adaptive, **BUDGET)
        expected = _pointwise(SPEC, GRID, 7, adaptive=adaptive,
                              **BUDGET)
        assert list(zip(curve.errors.tolist(),
                        curve.bits.tolist())) == expected

    def test_cm1_channel_grid_matches_pointwise(self):
        spec = LinkSpec(config=TEST_CONFIG,
                        channel=ChannelSpec(kind="cm1", distance=3.0))
        curve = FastsimBackend().ber_curve(
            spec, GRID[:2], np.random.default_rng(3),
            batch_points=True, **BUDGET)
        expected = _pointwise(spec, GRID[:2], 3, **BUDGET)
        assert list(zip(curve.errors.tolist(),
                        curve.bits.tolist())) == expected

    @pytest.mark.parametrize("adaptive", [None,
                                          AdaptiveStopping(ber_floor=1e-2)],
                             ids=["fixed-n", "adaptive"])
    def test_mui_grid_matches_pointwise(self, adaptive):
        slot = TEST_CONFIG.slot
        network = NetworkSpec(
            victim=SPEC,
            interferers=(
                InterfererSpec(rel_power_db=-6.0,
                               timing_offset=0.21 * slot),
                InterfererSpec(rel_power_db=-6.0,
                               timing_offset=0.41 * slot)))
        curve = ops.mui_ber_curve(
            network, GRID[:3], np.random.default_rng(11),
            batch_points=True, adaptive=adaptive, **BUDGET)
        expected = _pointwise(network, GRID[:3], 11,
                              adaptive=adaptive, **BUDGET)
        assert list(zip(curve.errors.tolist(),
                        curve.bits.tolist())) == expected

    def test_batched_default_when_serial(self):
        """``batch_points=None`` selects the batched kernel unless a
        worker pool was requested."""
        a = FastsimBackend().ber_curve(
            SPEC, GRID[:2], np.random.default_rng(7), **BUDGET)
        b = FastsimBackend().ber_curve(
            SPEC, GRID[:2], np.random.default_rng(7),
            batch_points=True, **BUDGET)
        assert np.array_equal(a.errors, b.errors)
        assert np.array_equal(a.bits, b.bits)


class TestMultiIntegratorSweep:
    def test_sweep_matches_standalone_curves(self):
        """One sweep over two integrators == two standalone batched
        curves: the shared front end changes nothing."""
        sweep = FastsimBackend().sweep(
            SPEC, GRID, np.random.default_rng(7),
            integrators=("ideal", "circuit"), **BUDGET)
        assert list(sweep) == ["ideal", "circuit"]
        for name in ("ideal", "circuit"):
            solo = FastsimBackend().ber_curve(
                SPEC, GRID, np.random.default_rng(7), integrator=name,
                batch_points=True, **BUDGET)
            assert np.array_equal(sweep[name].errors, solo.errors)
            assert np.array_equal(sweep[name].bits, solo.bits)

    def test_ops_ber_sweep_rejects_sweepless_backend(self):
        with pytest.raises(TypeError, match="no batched sweep"):
            ops.ber_sweep(SPEC, GRID, np.random.default_rng(7),
                          backend="kernel")

    def test_kernel_curve_rejects_batch_points(self):
        from repro.link import KernelBackend

        with pytest.raises(ValueError, match="no batched sweep"):
            KernelBackend().ber_curve(SPEC, GRID,
                                      np.random.default_rng(7),
                                      batch_points=True)
        # falsy values are accepted silently (ops forwards False).
        KernelBackend().ber_curve(SPEC, (), np.random.default_rng(7),
                                  batch_points=False)

    def test_sweep_label_validation(self):
        with pytest.raises(ValueError, match="labels"):
            FastsimBackend().sweep(SPEC, GRID, np.random.default_rng(7),
                                   integrators=("ideal", "circuit"),
                                   labels=("only-one",), **BUDGET)
        with pytest.raises(ValueError, match="duplicate"):
            FastsimBackend().sweep(SPEC, GRID, np.random.default_rng(7),
                                   integrators=("ideal", "circuit"),
                                   labels=("x", "x"), **BUDGET)


class TestRetirement:
    def test_resolved_cells_retire_without_perturbing_survivors(self):
        """Adaptive stopping drops resolved cells from the batch; the
        surviving cells' counters must equal their standalone runs
        (which never saw the retired scenarios at all)."""
        adaptive = AdaptiveStopping(ber_floor=1e-2)
        curve = FastsimBackend().ber_curve(
            SPEC, GRID, np.random.default_rng(13), batch_points=True,
            adaptive=adaptive, **BUDGET)
        standalone = _pointwise(SPEC, GRID, 13, adaptive=adaptive,
                                **BUDGET)
        # the policy actually retired something mid-sweep (low-SNR
        # cells resolve fast, deep-SNR cells keep the batch alive)...
        assert len(set(curve.bits.tolist())) > 1
        # ...and every cell still matches its solo run bit for bit.
        assert list(zip(curve.errors.tolist(),
                        curve.bits.tolist())) == standalone

    def test_grid_subset_is_a_row_subset(self):
        """Removing scenarios from the batch does not move the
        survivors: a sweep over a sub-grid equals the matching rows of
        the full-grid sweep."""
        full = FastsimBackend().ber_curve(
            SPEC, GRID, np.random.default_rng(7), batch_points=True,
            **BUDGET)
        sub = FastsimBackend().ber_curve(
            SPEC, GRID[1:3], np.random.default_rng(7),
            batch_points=True, **BUDGET)
        assert np.array_equal(sub.errors, full.errors[1:3])
        assert np.array_equal(sub.bits, full.bits[1:3])


class TestValidation:
    def _front_and_decider(self):
        from repro.uwb.fastsim import _LinkCache
        from repro.link import pipeline as pipe

        cache = _LinkCache(TEST_CONFIG, None, None)
        front = pipe.SignalPipeline(stages=(
            pipe.TxStage(TEST_CONFIG),
            pipe.ChannelStage(TEST_CONFIG, None),
            pipe.CombineStage(TEST_CONFIG, 0.0, ()),
            pipe.AnalogFrontEndStage(TEST_CONFIG, cache.bpf, 1.0)))
        return front, pipe.DecisionStage(TEST_CONFIG,
                                         IdealIntegrator(), None)

    @pytest.mark.parametrize("bad", [dict(chunk_bits=0),
                                     dict(max_bits=0),
                                     dict(min_bits=-1),
                                     dict(target_errors=0)])
    def test_nonsensical_budgets_raise(self, bad):
        front, decider = self._front_and_decider()
        budget = dict(BUDGET)
        budget.update(bad)
        with pytest.raises(ValueError):
            run_ber_sweep(front, [decider], np.array([1e-4]),
                          np.random.default_rng(0), **budget)

    def test_negative_sigma_raises(self):
        front, decider = self._front_and_decider()
        with pytest.raises(ValueError):
            run_ber_sweep(front, [decider], np.array([1e-4, -1.0]),
                          np.random.default_rng(0), **BUDGET)

    def test_empty_batch_returns_zero_counters(self):
        front, decider = self._front_and_decider()
        errors, bits = run_ber_sweep(front, [decider], np.zeros(0),
                                     np.random.default_rng(0), **BUDGET)
        assert errors.shape == (1, 0) and bits.shape == (1, 0)

    def test_cli_rejects_nonsensical_chunk_bits(self, capsys):
        from repro.campaign.cli import build_parser

        parser = build_parser()
        for bad in ("0", "-3", "many"):
            with pytest.raises(SystemExit):
                parser.parse_args(["run", "fig6", "--chunk-bits", bad])
        args = parser.parse_args(["run", "fig6", "--chunk-bits", "250",
                                  "--no-batch-points"])
        assert args.chunk_bits == 250 and args.batch_points is False
        capsys.readouterr()


class TestMemoization:
    def test_calibration_memoized_per_spec(self):
        _CALIBRATION_MEMO.clear()
        a = calibrate(SPEC)
        b = calibrate(SPEC)
        assert a is b
        other = calibrate(LinkSpec(
            config=TEST_CONFIG,
            channel=ChannelSpec(kind="cm1", distance=3.0)))
        assert other is not a

    def test_explicit_channel_bypasses_memo(self):
        _CALIBRATION_MEMO.clear()
        spec = LinkSpec(config=TEST_CONFIG,
                        channel=ChannelSpec(kind="cm1", distance=3.0))
        channel = build_channel_realization(spec)
        assert calibrate(spec, channel=channel) \
            is not calibrate(spec, channel=channel)

    def test_realization_memoized_on_seeded_path(self):
        _REALIZATION_MEMO.clear()
        spec = LinkSpec(config=TEST_CONFIG,
                        channel=ChannelSpec(kind="cm1", distance=3.0))
        a = build_channel_realization(spec)
        b = build_channel_realization(spec)
        assert a is b
        # an explicit generator draws fresh (per-run realizations must
        # stay independent)
        c = build_channel_realization(spec, np.random.default_rng(1))
        assert c is not a


class TestVectorizedPpmWaveform:
    @staticmethod
    def _legacy(symbols, config, amplitude=1.0, extra_samples=0):
        """Verbatim copy of the pre-vectorization per-pulse loop."""
        config.validate()
        pulse = sampled_pulse(config.fs, config.pulse_tau,
                              config.pulse_order)
        half = len(pulse) // 2
        total = (len(symbols) * config.samples_per_symbol
                 + extra_samples)
        wave = np.zeros(total + len(pulse))
        for center in ppm_positions(symbols, config):
            wave[int(center):int(center) + len(pulse)] += \
                amplitude * pulse
        return wave[half:half + total]

    @pytest.mark.parametrize("amplitude", [1.0, 0.37])
    @pytest.mark.parametrize("extra", [0, 57])
    def test_disjoint_pulses_match_legacy(self, amplitude, extra):
        rng = np.random.default_rng(5)
        symbols = rng.integers(0, 2, size=64).astype(np.int8)
        got = ppm_waveform(symbols, TEST_CONFIG, amplitude=amplitude,
                           extra_samples=extra)
        want = self._legacy(symbols, TEST_CONFIG, amplitude=amplitude,
                            extra_samples=extra)
        assert np.array_equal(got, want)

    def test_overlapping_pulses_match_legacy(self):
        """A pulse longer than the slot makes neighboring supports
        overlap - the scatter must accumulate like the loop did."""
        import dataclasses

        config = dataclasses.replace(TEST_CONFIG,
                                     pulse_tau=TEST_CONFIG.pulse_tau * 8)
        pulse = sampled_pulse(config.fs, config.pulse_tau,
                              config.pulse_order)
        assert len(pulse) > config.samples_per_slot  # really overlaps
        rng = np.random.default_rng(6)
        symbols = rng.integers(0, 2, size=32).astype(np.int8)
        got = ppm_waveform(symbols, config)
        want = self._legacy(symbols, config)
        assert np.array_equal(got, want)

    def test_empty_symbols(self):
        got = ppm_waveform(np.zeros(0, dtype=np.int8), TEST_CONFIG,
                           extra_samples=13)
        assert np.array_equal(got, np.zeros(13))
