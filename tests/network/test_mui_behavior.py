"""Behavioral tests of the multi-user pipeline path.

Physics-level expectations: interference hurts a non-coherent energy
detector, weaker interference hurts less, SIR calibration lands exact
received ratios, the combine stage sums what it says it sums, and the
kernel backend refuses what it cannot synthesize.
"""

import numpy as np
import pytest

from repro.link import (
    CombineStage,
    FastsimBackend,
    InterfererPath,
    InterfererSpec,
    KernelBackend,
    LinkSpec,
    NetworkSpec,
    build_interferer_paths,
    build_link_pipeline,
    calibrate,
    ops,
)
from repro.uwb.config import TEST_CONFIG
from repro.uwb.fastsim import BerResult
from repro.uwb.integrator import IdealIntegrator
from repro.uwb.modulation import ppm_waveform, random_bits

BUDGET = dict(target_errors=100, max_bits=8_000, min_bits=4_000)
SPEC = LinkSpec(config=TEST_CONFIG)
EBN0 = 14.0


def _ber(network_or_spec, seed=21):
    errors, bits = FastsimBackend().ber_point(
        network_or_spec, EBN0, np.random.default_rng(seed), **BUDGET)
    return errors / bits


def _offset(fraction):
    return fraction * TEST_CONFIG.slot


class TestInterferenceBehavior:
    def test_equal_power_interferer_degrades_ber(self):
        clean = _ber(SPEC)
        jammed = _ber(NetworkSpec(victim=SPEC, interferers=(
            InterfererSpec(rel_power_db=0.0,
                           timing_offset=_offset(0.5)),)))
        assert jammed > max(clean * 5, 0.05)

    def test_weak_interferer_is_benign(self):
        clean = _ber(SPEC)
        faint = _ber(NetworkSpec(victim=SPEC, interferers=(
            InterfererSpec(rel_power_db=-30.0,
                           timing_offset=_offset(0.3)),)))
        assert faint <= max(clean * 2.0, 0.02)

    def test_more_interferers_hurt_more(self):
        def net(n):
            return NetworkSpec(victim=SPEC, interferers=tuple(
                InterfererSpec(rel_power_db=-3.0,
                               timing_offset=_offset(0.2 + 0.15 * i))
                for i in range(n)))

        one, four = _ber(net(1)), _ber(net(4))
        assert four > one

    def test_sir_calibration_exact(self):
        """rel_power_db is an exact received energy ratio: the
        calibrated amplitude reproduces it on the pilots."""
        network = NetworkSpec(victim=SPEC, interferers=(
            InterfererSpec(rel_power_db=-6.0),))
        cache = calibrate(SPEC)
        (path,) = build_interferer_paths(network, cache=cache)
        # The interferer's pilot energy through the victim's band-pass,
        # scaled by the calibrated amplitude, sits exactly 6 dB under
        # the victim's pilot energy.
        from repro.uwb.fastsim import _LinkCache

        pilot = _LinkCache(TEST_CONFIG, None, cache.bpf)
        ratio_db = 10 * np.log10(path.amplitude ** 2 * pilot.eb
                                 / cache.eb)
        assert ratio_db == pytest.approx(-6.0, abs=1e-9)

    def test_near_far_mode_uses_unit_amplitude(self):
        network = NetworkSpec(victim=SPEC, interferers=(
            InterfererSpec(rel_power_db=None),))
        (path,) = build_interferer_paths(network)
        assert path.amplitude == 1.0

    def test_independent_cm1_realizations(self):
        """Interferers draw their own channel, not the victim's."""
        spec = SPEC.with_channel(kind="cm1", distance=9.9,
                                 realization_seed=1234)
        network = NetworkSpec(victim=spec, interferers=(
            InterfererSpec(rel_power_db=None,
                           channel=spec.channel),
            InterfererSpec(rel_power_db=None,
                           channel=spec.channel.__class__(
                               kind="cm1", distance=9.9,
                               realization_seed=4321)),))
        same_seed, other_seed = build_interferer_paths(network)
        from repro.link import build_channel_realization

        victim_real = build_channel_realization(spec)
        assert np.array_equal(same_seed.channel.taps, victim_real.taps)
        assert not np.array_equal(other_seed.channel.taps,
                                  victim_real.taps)


class TestCombineStage:
    def test_sums_scaled_rolled_interferers(self):
        """The combined waveform is victim + sum(amp * roll(intf))
        with bits drawn victim-first, interferer order next."""
        cfg = TEST_CONFIG
        n = 16
        path = InterfererPath(amplitude=0.5, offset_samples=37)
        pipeline = build_link_pipeline(
            cfg, integrator=IdealIntegrator(),
            bpf=calibrate(LinkSpec(config=cfg)).bpf,
            sigma=0.0, scale=1.0, interferers=(path,))
        state = pipeline.run_chunk(n, np.random.default_rng(77))

        replay = np.random.default_rng(77)
        victim_bits = random_bits(n, replay)
        intf_bits = random_bits(n, replay)
        expected = ppm_waveform(victim_bits, cfg) + 0.5 * np.roll(
            ppm_waveform(intf_bits, cfg), 37)
        assert np.array_equal(state.bits, victim_bits)
        assert np.array_equal(state.interferer_bits[0], intf_bits)
        assert np.array_equal(state.waveform, expected)
        # sigma=0: the noise draw adds nothing.
        np.testing.assert_allclose(state.noisy, expected)

    def test_zero_interferers_leave_waveform_untouched(self):
        stage = CombineStage(TEST_CONFIG, sigma=0.0)
        assert stage.interferers == ()

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            CombineStage(TEST_CONFIG, sigma=-1.0)


class TestBackendSurface:
    def test_kernel_backend_rejects_networks(self):
        network = NetworkSpec(victim=SPEC)
        backend = KernelBackend(engine="reference")
        with pytest.raises(TypeError, match="NetworkSpec"):
            backend.ber_point(network, 8.0, np.random.default_rng(1))
        with pytest.raises(TypeError, match="NetworkSpec"):
            backend.packet(network, np.zeros(64))

    def test_ranging_rejects_networks(self):
        with pytest.raises(TypeError, match="NetworkSpec"):
            FastsimBackend().ranging(NetworkSpec(victim=SPEC), 3,
                                     np.random.default_rng(1))

    def test_ops_mui_ber_curve(self):
        network = NetworkSpec(victim=SPEC, interferers=(
            InterfererSpec(rel_power_db=0.0,
                           timing_offset=_offset(0.3)),))
        curve = ops.mui_ber_curve(network, (6.0, 14.0),
                                  np.random.default_rng(9),
                                  target_errors=50, max_bits=4_000,
                                  min_bits=2_000, label="jammed")
        assert isinstance(curve, BerResult)
        assert curve.label == "jammed"
        assert len(curve.ber) == 2
        assert curve.bits.sum() > 0

    def test_ops_mui_rejects_plain_link(self):
        with pytest.raises(TypeError, match="NetworkSpec"):
            ops.mui_ber_curve(SPEC, (8.0,), np.random.default_rng(1))

    def test_curve_workers_consistent_with_serial_spawning(self):
        """The network curve honors the spawned-stream seeding
        contract: workers>1 equals the spawned serial execution."""
        network = NetworkSpec(victim=SPEC, interferers=(
            InterfererSpec(rel_power_db=0.0,
                           timing_offset=_offset(0.3)),))
        backend = FastsimBackend()
        kwargs = dict(target_errors=30, max_bits=2_000, min_bits=1_000)
        parallel = backend.ber_curve(network, (6.0, 10.0),
                                     np.random.default_rng(3),
                                     workers=2, **kwargs)
        # Serial spawned replay: one child stream per point.
        from repro.link import build_interferer_paths
        from repro.uwb.fastsim import _simulate_ber_point

        rng = np.random.default_rng(3)
        paths = build_interferer_paths(network)
        cache = calibrate(SPEC)
        for i, (point, child) in enumerate(zip((6.0, 10.0),
                                               rng.spawn(2))):
            e, b = _simulate_ber_point(
                TEST_CONFIG, IdealIntegrator(), point, child,
                interferers=paths, _cache=cache, **kwargs)
            assert (parallel.errors[i], parallel.bits[i]) == (e, b)
