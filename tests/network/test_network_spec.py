"""InterfererSpec / NetworkSpec: validation, hashing, serialization."""

import dataclasses

import pytest

from repro.core.phases import Phase
from repro.core.serialization import (
    from_jsonable,
    stable_hash,
    to_jsonable,
)
from repro.link import (
    ChannelSpec,
    InterfererSpec,
    LinkSpec,
    NetworkSpec,
)
from repro.uwb.config import TEST_CONFIG


class TestInterfererSpec:
    def test_defaults(self):
        intf = InterfererSpec()
        assert intf.rel_power_db == 0.0
        assert intf.sir_db == 0.0
        assert intf.timing_offset == 0.0
        assert intf.channel.kind == "none"

    def test_sir_convention(self):
        assert InterfererSpec(rel_power_db=-6.0).sir_db == 6.0
        assert InterfererSpec(rel_power_db=10).rel_power_db == 10.0

    def test_near_far_mode(self):
        intf = InterfererSpec(rel_power_db=None,
                              channel=ChannelSpec(kind="cm1",
                                                  distance=3.0))
        assert intf.rel_power_db is None
        assert intf.sir_db is None

    def test_channel_type_enforced(self):
        with pytest.raises(TypeError):
            InterfererSpec(channel="cm1")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            InterfererSpec().timing_offset = 1e-9


class TestNetworkSpec:
    def test_defaults_degenerate(self):
        net = NetworkSpec()
        assert net.victim == LinkSpec()
        assert net.interferers == ()
        assert net.n_interferers == 0

    def test_interferers_normalized_to_tuple(self):
        net = NetworkSpec(interferers=[InterfererSpec(),
                                       InterfererSpec(rel_power_db=-6)])
        assert isinstance(net.interferers, tuple)
        assert net.n_interferers == 2

    def test_type_validation(self):
        with pytest.raises(TypeError):
            NetworkSpec(victim="link")
        with pytest.raises(TypeError):
            NetworkSpec(interferers=(LinkSpec(),))

    def test_hashable_and_order_sensitive(self):
        a = InterfererSpec(rel_power_db=-6.0)
        b = InterfererSpec(rel_power_db=0.0)
        assert hash(NetworkSpec(interferers=(a, b)))
        # Interferer order is part of the identity (it fixes the
        # generator draw order).
        assert NetworkSpec(interferers=(a, b)) \
            != NetworkSpec(interferers=(b, a))

    def test_with_helpers(self):
        net = NetworkSpec()
        two = net.with_interferers(InterfererSpec(),
                                   InterfererSpec(rel_power_db=-3))
        assert two.n_interferers == 2
        assert net.n_interferers == 0
        retuned = two.with_victim(LinkSpec(integrator="two_pole"))
        assert retuned.victim.integrator == "two_pole"
        assert retuned.interferers == two.interferers


def _network():
    victim = LinkSpec(config=TEST_CONFIG, integrator="two_pole",
                      integrator_params={"fp2_hz": 3e9},
                      phase=Phase.IV)
    return NetworkSpec(
        victim=victim,
        interferers=(
            InterfererSpec(rel_power_db=-6.0, timing_offset=1.7e-9),
            InterfererSpec(rel_power_db=None,
                           channel=ChannelSpec(kind="cm1",
                                               distance=3.0,
                                               realization_seed=99)),
        ))


class TestSerialization:
    def test_json_round_trip(self):
        net = _network()
        assert NetworkSpec.from_json(net.to_json()) == net

    def test_jsonable_round_trip_preserves_types(self):
        net = _network()
        decoded = from_jsonable(to_jsonable(net))
        assert isinstance(decoded, NetworkSpec)
        assert isinstance(decoded.interferers[0], InterfererSpec)
        assert decoded.victim.phase is Phase.IV
        assert decoded == net

    def test_from_json_rejects_other_types(self):
        with pytest.raises(ValueError):
            NetworkSpec.from_json(LinkSpec().to_json())
        with pytest.raises(ValueError):
            LinkSpec.from_json(NetworkSpec().to_json())

    def test_stable_hash_is_stable_and_discriminates(self):
        net = _network()
        assert net.key() == stable_hash(net)
        assert net.key() == _network().key()
        assert net.key() != NetworkSpec(victim=net.victim).key()
        nudged = net.with_interferers(
            InterfererSpec(rel_power_db=-6.001, timing_offset=1.7e-9),
            net.interferers[1])
        assert nudged.key() != net.key()

    def test_hash_differs_from_bare_victim(self):
        """An interferer-free network and its victim link hash apart
        (different campaign content addresses by design)."""
        net = NetworkSpec()
        assert net.key() != LinkSpec().key()
