"""Bit-identity of the staged pipeline against the pre-refactor loop.

The staged ``repro.link.pipeline`` replaced the monolithic chunk loop
inside ``_simulate_ber_point``; cached campaign results and committed
BENCH artifacts are only valid if the refactor changed *nothing* about
the numbers.  ``_legacy_simulate_ber_point`` below is a verbatim copy
of the pre-refactor loop (PR 3 state); every test asserts exact
equality of the ``(errors, bits)`` counters at fixed seeds.
"""

import numpy as np
import pytest

from repro.link import FastsimBackend, LinkSpec, NetworkSpec
from repro.uwb.adc import Adc
from repro.uwb.channel.awgn import noise_sigma_for_ebn0
from repro.uwb.channel.ieee802154a import Cm1Channel
from repro.uwb.config import TEST_CONFIG
from repro.uwb.fastsim import (
    AdaptiveStopping,
    _LinkCache,
    _simulate_ber_point,
)
from repro.uwb.integrator import (
    CircuitSurrogateIntegrator,
    IdealIntegrator,
    TwoPoleIntegrator,
)
from repro.uwb.modulation import ppm_waveform, random_bits


def _legacy_simulate_ber_point(config, integrator, ebn0_db, rng, *,
                               channel=None, bpf=None,
                               squarer_drive=0.05, adc=None,
                               target_errors=100, max_bits=200_000,
                               min_bits=2_000, chunk_bits=1_000,
                               adaptive=None, _cache=None):
    """Verbatim copy of the pre-refactor monolithic chunk loop."""
    config.validate()
    cache = _cache or _LinkCache(config, channel, bpf)
    sigma = noise_sigma_for_ebn0(cache.eb, ebn0_db, config.fs)
    scale = squarer_drive / cache.peak

    n_sym = config.samples_per_symbol
    n_slot = config.samples_per_slot
    errors = 0
    bits_done = 0
    while bits_done < max_bits and (errors < target_errors
                                    or bits_done < min_bits):
        if (adaptive is not None and bits_done >= min_bits
                and adaptive.resolved(errors, bits_done)):
            break
        n = min(chunk_bits, max_bits - bits_done)
        bits = random_bits(n, rng)
        wave = ppm_waveform(bits, config)
        if cache.channel is not None:
            wave = cache.channel.apply(wave)[
                cache.channel.delay_samples:
                cache.channel.delay_samples + n * n_sym]
        noisy = wave + rng.normal(0.0, sigma, size=len(wave))
        filtered = cache.bpf(noisy)[:n * n_sym]
        driven = scale * filtered
        squared = np.square(driven).reshape(n, 2, n_slot)
        values = integrator.window_outputs(squared, config.dt)
        if adc is not None:
            values = adc.quantize(values)
        decided = (values[:, 1] > values[:, 0]).astype(np.int8)
        errors += int(np.count_nonzero(decided != bits))
        bits_done += n
    return errors, bits_done


def _integrators():
    return [
        pytest.param(IdealIntegrator, id="ideal"),
        pytest.param(TwoPoleIntegrator, id="two_pole"),
        pytest.param(CircuitSurrogateIntegrator, id="surrogate"),
    ]


BUDGET = dict(target_errors=40, max_bits=4_000, min_bits=1_000,
              chunk_bits=500)


class TestBitIdentity:
    @pytest.mark.parametrize("integrator_cls", _integrators())
    @pytest.mark.parametrize("with_adc", [False, True],
                             ids=["no-adc", "adc"])
    @pytest.mark.parametrize("with_cm1", [False, True],
                             ids=["awgn", "cm1"])
    def test_counters_match_legacy(self, integrator_cls, with_adc,
                                   with_cm1):
        config = TEST_CONFIG
        integrator = integrator_cls()
        channel = None
        if with_cm1:
            channel = Cm1Channel(config.fs).realize(
                3.0, np.random.default_rng(42))
        adc = Adc(bits=5, vref=0.01) if with_adc else None
        for ebn0 in (4.0, 10.0):
            legacy = _legacy_simulate_ber_point(
                config, integrator, ebn0, np.random.default_rng(7),
                channel=channel, adc=adc, **BUDGET)
            staged = _simulate_ber_point(
                config, integrator, ebn0, np.random.default_rng(7),
                channel=channel, adc=adc, **BUDGET)
            assert staged == legacy

    @pytest.mark.parametrize("ber_floor", [0.0, 1e-2])
    def test_adaptive_stopping_path_matches(self, ber_floor):
        """The adaptive early-exit decisions (and therefore the bit
        totals) are preserved chunk for chunk."""
        config = TEST_CONFIG
        adaptive = AdaptiveStopping(ber_floor=ber_floor)
        legacy = _legacy_simulate_ber_point(
            config, IdealIntegrator(), 12.0, np.random.default_rng(3),
            adaptive=adaptive, **BUDGET)
        staged = _simulate_ber_point(
            config, IdealIntegrator(), 12.0, np.random.default_rng(3),
            adaptive=adaptive, **BUDGET)
        assert staged == legacy

    def test_backend_point_matches_legacy(self):
        """Spec-level entry: FastsimBackend.ber_point is the legacy
        loop for a plain LinkSpec."""
        spec = LinkSpec(config=TEST_CONFIG)
        staged = FastsimBackend().ber_point(
            spec, 8.0, np.random.default_rng(11), **BUDGET)
        legacy = _legacy_simulate_ber_point(
            TEST_CONFIG, IdealIntegrator(), 8.0,
            np.random.default_rng(11),
            squarer_drive=spec.frontend.squarer_drive, **BUDGET)
        assert staged == legacy

    def test_empty_network_degenerates_to_link(self):
        """NetworkSpec with no interferers is the victim link,
        bit for bit (the generator sees no extra draws)."""
        spec = LinkSpec(config=TEST_CONFIG)
        backend = FastsimBackend()
        plain = backend.ber_point(spec, 8.0, np.random.default_rng(5),
                                  **BUDGET)
        network = backend.ber_point(NetworkSpec(victim=spec), 8.0,
                                    np.random.default_rng(5), **BUDGET)
        assert network == plain

    def test_curve_matches_legacy_pointwise(self):
        """The serial curve draws every point from one stream, exactly
        as before the refactor."""
        config = TEST_CONFIG
        grid = (4.0, 8.0, 12.0)
        rng = np.random.default_rng(13)
        # The curve path keeps the point loop's default chunk size, so
        # the oracle must too (chunk_bits is not a curve knob).
        point_budget = {k: v for k, v in BUDGET.items()
                        if k != "chunk_bits"}
        expected = []
        cache = _LinkCache(config, None, None)
        for point in grid:
            expected.append(_legacy_simulate_ber_point(
                config, IdealIntegrator(), point, rng,
                _cache=cache, **point_budget))
        curve = FastsimBackend().ber_curve(
            LinkSpec(config=config), grid, np.random.default_rng(13),
            batch_points=False, **point_budget)
        got = list(zip(curve.errors.tolist(), curve.bits.tolist()))
        assert got == expected
