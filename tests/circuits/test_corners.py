"""Process/supply corner analysis of the I&D circuit."""

import pytest

from repro.circuits.corners import (
    cmfb_regulation,
    corner_models,
    corner_sweep,
    format_corner_table,
)


class TestCornerModels:
    def test_tt_is_nominal(self):
        from repro.spice.library import generic_018

        assert corner_models("tt") == generic_018()

    def test_ff_shifts(self):
        cards = corner_models("ff")
        assert cards["nch"].vto == pytest.approx(0.40)
        assert cards["nch"].kp == pytest.approx(280e-6 * 1.1)
        # PMOS fast: threshold less negative
        assert cards["pch"].vto == pytest.approx(-0.40)

    def test_ss_shifts(self):
        cards = corner_models("ss")
        assert cards["nch"].vto == pytest.approx(0.50)
        assert cards["pch"].vto == pytest.approx(-0.50)

    def test_unknown_corner(self):
        with pytest.raises(ValueError):
            corner_models("zz")


class TestCornerSweep:
    @pytest.fixture(scope="class")
    def points(self):
        # Nominal supply, three process corners: enough to bound the
        # spread without long runtimes.
        return corner_sweep(corners=("tt", "ff", "ss"),
                            vdd_points=(1.8,))

    def test_gain_stays_in_band(self, points):
        """The integrator's DC gain holds within a few dB across
        corners (no cascodes to collapse)."""
        for p in points:
            assert 17.0 < p.gain_db < 26.0, (p.corner, p.gain_db)

    def test_dominant_pole_stays_sub_2mhz(self, points):
        for p in points:
            assert 0.2e6 < p.fp1_hz < 3e6

    def test_cmfb_holds_cm_at_corners(self, points):
        """The CMFB keeps the output common mode near target at every
        corner - the property the paper calls 'fundamental'."""
        for p in points:
            assert p.output_cm == pytest.approx(0.90, abs=0.12), p.corner

    def test_table_format(self, points):
        text = format_corner_table(points)
        assert "corner" in text and "tt" in text


class TestSupplyRegulation:
    def test_cmfb_vs_supply(self):
        """Across +/-10 % supply the output CM stays locked to the
        (ratiometric) divider reference vdd/2: the loop error is small
        even though the high-impedance outputs would otherwise float
        (the paper's motivation for the CMFB)."""
        pairs = cmfb_regulation(vdd_points=(1.62, 1.8, 1.98))
        for vdd, cm in pairs:
            assert cm == pytest.approx(vdd / 2.0, abs=0.05), vdd
