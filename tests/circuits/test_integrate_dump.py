"""The 31-transistor Integrate & Dump circuit (paper figure 3)."""

import numpy as np
import pytest

from repro.circuits import (
    ID_INTERFACE_PORTS,
    build_id_testbench,
    build_integrate_dump,
    count_transistors,
    default_design,
)
from repro.circuits.integrate_dump import integrate_hold_dump_waves
from repro.core.characterize import ID_OP_GUESS
from repro.spice import operating_point, transient
from repro.spice.devices import Mosfet


class TestStructure:
    def test_transistor_count_matches_paper(self):
        """Paper: 'The ELDO integrator, which includes 31 transistors'."""
        sub = build_integrate_dump()
        assert count_transistors(sub.circuit) == 31

    def test_interface_ports(self):
        """The VHDL-AMS component declaration of section 5 (ground is
        collapsed onto the global reference by the netlist layer)."""
        sub = build_integrate_dump()
        expected = tuple("0" if p == "gnd" else p
                         for p in ID_INTERFACE_PORTS)
        assert tuple(sub.ports) == expected

    def test_fully_differential(self):
        """Every p-side device has an m-side twin."""
        sub = build_integrate_dump()
        names = {d.name for d in sub.circuit.devices_of(Mosfet)}
        for name in list(names):
            if name.endswith("p") and name[:-1] + "m" in names:
                continue
            if name.endswith("m") and name[:-1] + "p" in names:
                continue
            # CMFB error amp / sense devices are shared - allowed set:
            assert name in {"ms1", "ms2", "ms3", "mc1", "mc2", "mc3",
                            "mc4", "minv1n", "minv1p", "minv2n",
                            "minv2p", "mtg1n", "mtg1p", "mtg2n",
                            "mtg2p", "mtg3n", "mtg3p"}, name

    def test_integrating_cap_value(self):
        sub = build_integrate_dump()
        cap = sub.circuit.device("c_int")
        assert cap.value == pytest.approx(1e-12)

    def test_custom_cap(self):
        design = default_design().with_cap(2e-12)
        sub = build_integrate_dump(design)
        assert sub.circuit.device("c_int").value == pytest.approx(2e-12)


class TestOperatingPoint:
    def test_all_core_devices_saturated(self):
        tb = build_id_testbench()
        op = operating_point(tb, initial_guess=ID_OP_GUESS)
        info = op.mos_info()
        for name in ["x1.m1p", "x1.m2p", "x1.m4p", "x1.m5p", "x1.m6p",
                     "x1.m7p", "x1.m8p"]:
            assert info[name]["region"] == 2, f"{name} not saturated"

    def test_cmfb_regulates_output_cm(self, id_design):
        tb = build_id_testbench(id_design)
        op = operating_point(tb, initial_guess=ID_OP_GUESS)
        cm = 0.5 * (op.v("x1.outp") + op.v("x1.outm"))
        assert cm == pytest.approx(id_design.output_cm, abs=0.05)

    def test_balanced_outputs_at_zero_input(self):
        tb = build_id_testbench()
        op = operating_point(tb, initial_guess=ID_OP_GUESS)
        assert op.vdiff("out_intp", "out_intm") == pytest.approx(
            0.0, abs=1e-3)

    def test_modes_have_valid_op(self):
        for mode in ("integrate", "hold", "dump"):
            tb = build_id_testbench(mode=mode)
            op = operating_point(tb, initial_guess=ID_OP_GUESS)
            assert abs(op.v("x1.vcmfb")) < 1.8

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            build_id_testbench(mode="resetting")


class TestAcResponse:
    """Figure-4 targets (see also experiments/fig4)."""

    def test_dc_gain_near_21db(self, id_characterization):
        fit, _freqs, _mag = id_characterization
        assert 19.0 < fit.gain_db < 23.5

    def test_pole_positions(self, id_characterization):
        fit, _freqs, _mag = id_characterization
        assert 0.4e6 < fit.fp1_hz < 2.0e6     # paper: 0.886 MHz
        assert 3.0e9 < fit.fp2_hz < 15.0e9    # paper: 5.895 GHz

    def test_ideal_integrator_band(self, id_characterization):
        """-20 dB/dec between 10 MHz and 1 GHz."""
        _fit, freqs, mag = id_characterization
        logf = np.log10(freqs)
        m10m = np.interp(7.0, logf, mag)
        m1g = np.interp(9.0, logf, mag)
        slope = (m1g - m10m) / 2.0
        assert slope == pytest.approx(-20.0, abs=1.0)

    def test_model_overlap(self, id_characterization):
        """The extracted two-pole model overlaps the circuit AC curve
        (paper: 'perfectly overlaps')."""
        fit, freqs, mag = id_characterization
        assert fit.rms_error_db < 0.5


class TestTransient:
    def test_integrate_hold_dump_cycle(self):
        waves = integrate_hold_dump_waves(10e-9, 40e-9, 20e-9, 15e-9)
        tb = build_id_testbench(diff_dc=0.05, control_waves=waves)
        res = transient(tb, 100e-9, 0.2e-9,
                        probes=["out_intp", "out_intm"],
                        initial_guess=ID_OP_GUESS)
        vd = res.vdiff("out_intp", "out_intm")
        t = res.t
        ramp_mid = vd[np.searchsorted(t, 30e-9)]
        held = vd[np.searchsorted(t, 65e-9)]
        after_dump = vd[-1]
        assert ramp_mid > 0.02
        assert held > ramp_mid
        assert abs(after_dump) < 5e-3

    def test_hold_leakage_small(self):
        waves = integrate_hold_dump_waves(10e-9, 40e-9, 30e-9, 10e-9)
        tb = build_id_testbench(diff_dc=0.05, control_waves=waves)
        res = transient(tb, 85e-9, 0.2e-9,
                        probes=["out_intp", "out_intm"],
                        initial_guess=ID_OP_GUESS)
        vd = res.vdiff("out_intp", "out_intm")
        t = res.t
        start_hold = vd[np.searchsorted(t, 52e-9)]
        end_hold = vd[np.searchsorted(t, 78e-9)]
        assert abs(end_hold - start_hold) < 0.05 * abs(start_hold) + 2e-3

    def test_polarity(self):
        waves = integrate_hold_dump_waves(10e-9, 30e-9, 10e-9, 10e-9)
        tb = build_id_testbench(diff_dc=-0.05, control_waves=waves)
        res = transient(tb, 45e-9, 0.2e-9,
                        probes=["out_intp", "out_intm"],
                        initial_guess=ID_OP_GUESS)
        assert res.vdiff("out_intp", "out_intm")[-1] < -0.02


class TestLinearRange:
    def test_compression_beyond_linear_range(self, id_design):
        """The DC transfer compresses for large differential inputs
        (paper: linear input range around 100 mV)."""
        from repro.core.characterize import extract_nonlinearity

        vin, f_of_vin, gain0 = extract_nonlinearity(id_design,
                                                    v_max=0.25, points=21)
        assert gain0 > 5.0
        # unit slope at origin
        mid = len(vin) // 2
        slope0 = ((f_of_vin[mid + 1] - f_of_vin[mid - 1])
                  / (vin[mid + 1] - vin[mid - 1]))
        assert slope0 == pytest.approx(1.0, abs=0.15)
        # strong compression at 0.25 V
        edge_slope = ((f_of_vin[-1] - f_of_vin[-2])
                      / (vin[-1] - vin[-2]))
        assert edge_slope < 0.5

    def test_output_swing(self, id_design):
        """Differential output reaches +/-1.2 V and beyond (paper:
        1.6 V swing)."""
        from repro.core.characterize import extract_nonlinearity

        vin, f_of_vin, gain0 = extract_nonlinearity(id_design,
                                                    v_max=0.3, points=13)
        vout = f_of_vin * gain0
        assert vout[-1] > 1.2
        assert vout[0] < -1.2
