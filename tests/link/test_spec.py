"""LinkSpec: validation, hashing, serialization, registry resolution."""

import dataclasses

import numpy as np
import pytest

from repro.core.phases import Phase
from repro.core.registry import ModelRegistry
from repro.core.serialization import stable_hash
from repro.link import (
    ChannelSpec,
    FrontEndSpec,
    LinkSpec,
    default_link_registry,
    integrator_names,
    register_integrator,
    resolve_integrator,
)
from repro.link.registry import COSIM
from repro.uwb.config import TEST_CONFIG, UwbConfig
from repro.uwb.integrator import (
    CircuitSurrogateIntegrator,
    IdealIntegrator,
    TwoPoleIntegrator,
)


class TestSpecConstruction:
    def test_defaults_validate(self):
        spec = LinkSpec()
        assert spec.integrator == "ideal"
        assert spec.channel.kind == "none"
        assert spec.frontend.adc == "auto"

    def test_frozen_and_hashable(self):
        spec = LinkSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.integrator = "two_pole"
        assert spec == LinkSpec()
        assert hash(spec) == hash(LinkSpec())
        assert spec != spec.with_(integrator="two_pole")

    def test_integrator_params_normalized(self):
        a = LinkSpec(integrator="two_pole",
                     integrator_params={"fp2_hz": 3e9, "gain": 2.0})
        b = LinkSpec(integrator="two_pole",
                     integrator_params=(("gain", 2.0), ("fp2_hz", 3e9)))
        assert a == b
        assert a.params_dict() == {"fp2_hz": 3e9, "gain": 2.0}

    def test_phase_coerced_to_enum(self):
        spec = LinkSpec(phase=2)
        assert spec.phase is Phase.II

    def test_instance_integrator_rejected(self):
        with pytest.raises(TypeError):
            LinkSpec(integrator=IdealIntegrator())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(config=UwbConfig(fs=-1.0))

    def test_channel_validation(self):
        with pytest.raises(ValueError):
            ChannelSpec(kind="cm9")
        with pytest.raises(ValueError):
            ChannelSpec(distance=0.0)

    def test_frontend_validation(self):
        with pytest.raises(ValueError):
            FrontEndSpec(band=(5e9, 2e9))
        with pytest.raises(ValueError):
            FrontEndSpec(adc="maybe")
        with pytest.raises(ValueError):
            FrontEndSpec(agc="three_stage")
        with pytest.raises(ValueError):
            FrontEndSpec(squarer_drive=0.0)

    def test_with_helpers(self):
        spec = LinkSpec()
        assert spec.with_config(fs=8e9).config.fs == 8e9
        assert spec.with_channel(kind="cm1").channel.kind == "cm1"
        assert spec.with_frontend(agc="two_stage").frontend.agc \
            == "two_stage"
        # originals untouched
        assert spec.config.fs == 20e9 and spec.channel.kind == "none"


class TestSpecIdentity:
    def test_key_stable_across_equal_specs(self):
        a = LinkSpec(config=TEST_CONFIG, integrator="two_pole")
        b = LinkSpec(config=TEST_CONFIG, integrator="two_pole")
        assert a.key() == b.key() == stable_hash(b)

    def test_key_sensitive_to_every_layer(self):
        base = LinkSpec()
        for other in (base.with_(integrator="two_pole"),
                      base.with_(phase=Phase.II),
                      base.with_config(fs=8e9, symbol_period=32e-9),
                      base.with_channel(kind="cm1"),
                      base.with_frontend(squarer_drive=0.2),
                      base.with_(integrator_params={"k": 1e8})):
            assert other.key() != base.key()

    def test_json_roundtrip(self):
        spec = LinkSpec(config=TEST_CONFIG,
                        channel=ChannelSpec(kind="cm1", distance=3.0),
                        frontend=FrontEndSpec(band=(2e9, 3.5e9),
                                              agc="two_stage"),
                        integrator="two_pole",
                        integrator_params={"fp2_hz": 3e9},
                        phase=Phase.IV)
        back = LinkSpec.from_json(spec.to_json())
        assert back == spec
        assert back.phase is Phase.IV
        assert back.key() == spec.key()

    def test_from_json_rejects_foreign_payload(self):
        import json

        from repro.core.serialization import to_jsonable

        with pytest.raises(ValueError):
            LinkSpec.from_json(json.dumps(to_jsonable(TEST_CONFIG)))


class TestRegistryResolution:
    def test_builtin_names(self):
        assert set(integrator_names()) >= {"ideal", "two_pole",
                                           "surrogate", "circuit"}

    def test_names_resolve_to_models(self):
        assert isinstance(resolve_integrator("ideal"), IdealIntegrator)
        assert isinstance(resolve_integrator("two_pole"),
                          TwoPoleIntegrator)
        assert isinstance(resolve_integrator("surrogate"),
                          CircuitSurrogateIntegrator)

    def test_circuit_resolution_depends_on_cosim(self):
        assert resolve_integrator("circuit", cosim=True) == COSIM
        assert isinstance(resolve_integrator("circuit", cosim=False),
                          CircuitSurrogateIntegrator)

    def test_instance_passthrough(self):
        inst = TwoPoleIntegrator()
        assert resolve_integrator(inst) is inst

    def test_params_forwarded_to_factory(self):
        model = resolve_integrator("two_pole",
                                   params={"fp2_hz": 3e9, "gain": 4.0})
        assert model.fp2_hz == 3e9 and model.gain == 4.0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown integrator"):
            resolve_integrator("quantum")

    def test_wrong_phase_rejected(self):
        with pytest.raises(ValueError, match="no Phase"):
            resolve_integrator("ideal", phase=Phase.IV)

    def test_explicit_phase_selection(self):
        assert isinstance(resolve_integrator("ideal", phase=Phase.II),
                          IdealIntegrator)

    def test_custom_registration_in_fresh_registry(self):
        registry = default_link_registry()
        register_integrator("boosted", Phase.IV,
                            lambda **kw: IdealIntegrator(k=2e8, **kw),
                            description="custom", registry=registry)
        model = resolve_integrator("boosted", registry=registry)
        assert isinstance(model, IdealIntegrator) and model.k == 2e8
        assert "boosted" in integrator_names(registry)

    def test_interface_check_enforced(self):
        registry = default_link_registry()
        with pytest.raises(TypeError, match="WindowIntegrator"):
            register_integrator("bogus", Phase.II, lambda: object(),
                                registry=registry)

    def test_duplicate_binding_rejected(self):
        registry = default_link_registry()
        with pytest.raises(KeyError):
            register_integrator("ideal", Phase.II, IdealIntegrator,
                                registry=registry)

    def test_registry_is_a_model_registry(self):
        # The front door genuinely routes through the core registry.
        assert isinstance(default_link_registry(), ModelRegistry)
