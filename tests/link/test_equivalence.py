"""Cross-backend agreement: the Phase-I validation (satellite of the
front-door redesign).

One seeded BER point must agree between the golden model and the AMS
kernel testbench within the Wilson interval, and the two kernel
engines must demodulate bit-identical decisions.
"""

import numpy as np
import pytest

from repro.link import (
    FastsimBackend,
    KernelBackend,
    LinkSpec,
    run_equivalence,
)
from repro.link.equivalence import DEFAULT_SPEC
from repro.uwb.fastsim import wilson_interval


@pytest.fixture(scope="module")
def result():
    return run_equivalence(bits=150, seed=23)


class TestEquivalenceHarness:
    def test_engines_bit_identical(self, result):
        assert result.engines_identical

    def test_fastsim_within_kernel_wilson_interval(self, result):
        for engine in ("compiled", "reference"):
            assert result.agrees(engine), result.format_report()
        assert result.all_agree()

    def test_report_text(self, result):
        text = result.format_report()
        assert "fastsim" in text and "kernel/compiled" in text
        assert "bit-identical: True" in text

    def test_interval_is_wilson(self, result):
        assert result.interval(result.fastsim_errors) == \
            wilson_interval(result.fastsim_errors, result.bits, 0.95)

    def test_seeded_reproducibility(self, result):
        again = run_equivalence(bits=150, seed=23)
        assert again.fastsim_errors == result.fastsim_errors
        assert again.kernel_errors == result.kernel_errors

    def test_different_seed_changes_noise(self, result):
        other = run_equivalence(bits=150, seed=24)
        assert (other.fastsim_errors != result.fastsim_errors
                or other.kernel_errors != result.kernel_errors)


class TestBerPointAgreement:
    def test_seeded_phase12_point_agrees(self):
        """One seeded Phase-I/II BER point: FastsimBackend and
        KernelBackend (both engines) agree within the Wilson
        interval."""
        spec = DEFAULT_SPEC
        ebn0 = 8.0
        fast_e, fast_b = FastsimBackend().ber_point(
            spec, ebn0, np.random.default_rng(11),
            target_errors=10 ** 9, max_bits=400, min_bits=400,
            chunk_bits=100)
        lo_f, hi_f = wilson_interval(fast_e, fast_b)
        for engine in ("compiled", "reference"):
            kern_e, kern_b = KernelBackend(engine=engine).ber_point(
                spec, ebn0, np.random.default_rng(11),
                target_errors=10 ** 9, max_bits=400, min_bits=400,
                chunk_bits=100)
            lo_k, hi_k = wilson_interval(kern_e, kern_b)
            assert lo_f <= hi_k and lo_k <= hi_f, (
                f"{engine}: fastsim {fast_e}/{fast_b} vs kernel "
                f"{kern_e}/{kern_b}")

    def test_kernel_engines_identical_counters(self):
        spec = DEFAULT_SPEC
        counts = [
            KernelBackend(engine=engine).ber_point(
                spec, 8.0, np.random.default_rng(11),
                target_errors=10 ** 9, max_bits=200, min_bits=200,
                chunk_bits=100)
            for engine in ("compiled", "reference")]
        assert counts[0] == counts[1]


class TestEquivalenceAcrossModels:
    @pytest.mark.parametrize("name", ["two_pole", "surrogate"])
    def test_phase_iv_models_also_agree(self, name):
        res = run_equivalence(DEFAULT_SPEC.with_(integrator=name),
                              bits=120, seed=29)
        assert res.engines_identical
        assert res.all_agree(), res.format_report()
