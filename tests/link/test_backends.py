"""Backend protocol: construction, operations, builder fidelity."""

import numpy as np
import pytest

from repro.link import (
    Backend,
    ChannelSpec,
    FastsimBackend,
    FrontEndSpec,
    KernelBackend,
    LinkSpec,
    build_bpf,
    build_channel_realization,
    build_receiver,
    calibrate,
    get_backend,
    ops,
    register_backend,
)
from repro.uwb.agc import Agc, TwoStageAgc
from repro.uwb.config import UwbConfig
from repro.uwb.integrator import (
    CircuitSurrogateIntegrator,
    IdealIntegrator,
    TwoPoleIntegrator,
    WindowIntegrator,
)
from repro.uwb.modulation import ppm_waveform, random_bits

FAST = UwbConfig(fs=8e9, symbol_period=16e-9, pulse_tau=0.225e-9,
                 pulse_order=5, integration_window=2e-9)
SPEC = LinkSpec(config=FAST)


class TestGetBackend:
    def test_by_name(self):
        assert isinstance(get_backend("fastsim"), FastsimBackend)
        kernel = get_backend("kernel", engine="reference")
        assert isinstance(kernel, KernelBackend)
        assert kernel.engine == "reference"

    def test_instance_passthrough(self):
        b = FastsimBackend()
        assert get_backend(b) is b

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("eldo")

    def test_register_backend_duplicate_rejected(self):
        with pytest.raises(KeyError):
            register_backend("fastsim", FastsimBackend)


class TestBuilders:
    def test_bpf_from_band_and_pulse(self):
        explicit = build_bpf(SPEC.with_frontend(band=(1e9, 3e9)))
        assert explicit.band == (1e9, 3e9)
        derived = build_bpf(SPEC)
        assert 0 < derived.band[0] < derived.band[1] < FAST.fs / 2

    def test_channel_realization_deterministic(self):
        spec = SPEC.with_channel(kind="cm1", distance=4.0)
        a = build_channel_realization(spec)
        b = build_channel_realization(spec)
        assert np.array_equal(a.taps, b.taps)
        assert a.delay_samples == b.delay_samples
        assert build_channel_realization(SPEC) is None

    def test_calibrate_positive_energy(self):
        cache = calibrate(SPEC)
        assert cache.eb > 0 and cache.peak > 0

    def test_receiver_wiring_from_spec(self):
        spec = SPEC.with_frontend(agc="two_stage", agc_amp_target=0.06,
                                  detection_factor=8.0,
                                  toa_threshold_fraction=0.5)
        rx = build_receiver(spec)
        assert isinstance(rx.agc, TwoStageAgc)
        assert rx.agc.amp_target == 0.06
        assert rx.detection_factor == 8.0
        assert rx.toa_threshold_fraction == 0.5
        assert isinstance(rx.integrator, IdealIntegrator)
        single = build_receiver(SPEC)
        assert type(single.agc) is Agc

    def test_receiver_integrator_override(self):
        model = TwoPoleIntegrator()
        rx = build_receiver(SPEC, integrator=model)
        assert rx.integrator is model

    def test_receiver_rejects_gainless_integrator(self):
        class Opaque(WindowIntegrator):
            def window_outputs(self, x, dt):
                return np.sum(x, axis=-1) * dt

            def make_state(self):  # pragma: no cover - unused
                raise NotImplementedError

        with pytest.raises(ValueError, match="ideal_k"):
            build_receiver(SPEC, integrator=Opaque())


class TestFastsimBackend:
    def test_ber_point_matches_legacy_entry_point(self):
        """The backend and the deprecated front door are the same
        computation: identical seed, identical counters."""
        from repro.uwb.fastsim import simulate_ber_point

        budget = dict(target_errors=20, max_bits=3000, min_bits=500)
        spec = SPEC.with_frontend(band=(1.0e9, 3.5e9))
        via_backend = FastsimBackend().ber_point(
            spec, 8.0, np.random.default_rng(5), **budget)
        with pytest.deprecated_call():
            legacy = simulate_ber_point(
                FAST, IdealIntegrator(), 8.0, np.random.default_rng(5),
                bpf=build_bpf(spec), **budget)
        assert via_backend == legacy

    def test_ber_curve_decreases_with_snr(self):
        curve = FastsimBackend().ber_curve(
            SPEC, [2.0, 8.0, 14.0], np.random.default_rng(3),
            target_errors=40, max_bits=8000, min_bits=800)
        assert curve.ber[0] > curve.ber[1] > curve.ber[2]
        assert curve.label == "ideal"

    def test_integrator_params_reach_model(self):
        spec = SPEC.with_(integrator="two_pole",
                          integrator_params={"fp2_hz": 2.5e9})
        curve = FastsimBackend().ber_curve(
            spec, [8.0], np.random.default_rng(3),
            target_errors=10, max_bits=1000, min_bits=400)
        assert curve.label == "two_pole"

    def test_circuit_resolves_to_surrogate(self):
        spec = SPEC.with_(integrator="circuit")
        e, b = FastsimBackend().ber_point(
            spec, 10.0, np.random.default_rng(4),
            target_errors=10, max_bits=1000, min_bits=400)
        assert b >= 400

    def test_packet_demodulates_clean_burst(self):
        bits = np.array([1, 0, 0, 1, 1, 0], dtype=np.int8)
        sig = _conditioned(bits)
        res = FastsimBackend().packet(SPEC, sig)
        assert np.array_equal(res.bits, bits)
        assert res.slot_values.shape == (len(bits), 2)

    def test_ranging_smoke(self):
        spec = LinkSpec(
            config=UwbConfig(preamble_symbols=16, payload_bits=16,
                             adc_vref=2e-3, agc_range_db=80.0),
            channel=ChannelSpec(kind="cm1", distance=3.0),
            frontend=FrontEndSpec(detection_factor=8.0,
                                  toa_threshold_fraction=0.5),
            integrator="ideal")
        res = FastsimBackend().ranging(spec, 2,
                                       np.random.default_rng(1),
                                       noise_sigma=9e-5)
        assert len(res.distances) == 2
        assert 1.0 < res.mean < 6.0


class TestKernelBackend:
    def test_packet_matches_fastsim_on_clean_burst(self):
        bits = np.array([1, 0, 1, 1, 0], dtype=np.int8)
        sig = _conditioned(bits)
        kernel = KernelBackend().packet(SPEC, sig)
        golden = FastsimBackend().packet(SPEC, sig)
        assert np.array_equal(kernel.bits, bits)
        assert np.array_equal(golden.bits, bits)

    def test_packet_engines_bit_identical(self):
        bits = np.array([0, 1, 1, 0], dtype=np.int8)
        sig = _conditioned(bits)
        ref = KernelBackend(engine="reference").packet(SPEC, sig)
        com = KernelBackend(engine="compiled").packet(SPEC, sig)
        assert np.array_equal(ref.bits, com.bits)
        assert np.array_equal(ref.slot_values, com.slot_values)

    def test_adc_none_disables_quantization_on_both_backends(self):
        """adc="none" must mean the same thing per backend: raw slot
        values decide, no converter in the path."""
        spec = SPEC.with_frontend(adc="none")
        bits = np.array([1, 0, 1, 0], dtype=np.int8)
        sig = _conditioned(bits)
        kernel = KernelBackend().packet(spec, sig)
        golden = FastsimBackend().packet(spec, sig)
        assert np.array_equal(kernel.bits, bits)
        assert np.array_equal(golden.bits, bits)
        # Unquantized: kernel decisions equal a raw comparison of its
        # own slot values (no ADC reconstruction in between).
        raw = (kernel.slot_values[:, 1]
               > kernel.slot_values[:, 0]).astype(np.int8)
        assert np.array_equal(kernel.bits, raw)

    def test_circuit_with_params_fails_with_intent(self):
        spec = SPEC.with_(integrator="circuit",
                          integrator_params={"fp2_hz": 3e9})
        with pytest.raises(ValueError, match="no integrator_params"):
            KernelBackend().packet(
                SPEC.with_(integrator="circuit",
                           integrator_params={"fp2_hz": 3e9}),
                _conditioned(np.array([1, 0], dtype=np.int8)))
        # the behavioral stand-in accepts the same spec
        e, b = FastsimBackend().ber_point(
            spec, 10.0, np.random.default_rng(4),
            target_errors=5, max_bits=500, min_bits=200)
        assert b >= 200

    def test_ber_point_reproducible(self):
        budget = dict(target_errors=5, max_bits=60, min_bits=30,
                      chunk_bits=30)
        a = KernelBackend().ber_point(SPEC, 8.0,
                                      np.random.default_rng(7), **budget)
        b = KernelBackend().ber_point(SPEC, 8.0,
                                      np.random.default_rng(7), **budget)
        assert a == b and a[1] >= 30

    def test_ber_curve_shape(self):
        curve = KernelBackend().ber_curve(
            SPEC, [4.0, 12.0], np.random.default_rng(9),
            target_errors=5, max_bits=40, min_bits=20, chunk_bits=20)
        assert len(curve.ber) == 2
        assert curve.ci_high[0] >= curve.ber[0] >= curve.ci_low[0]

    def test_ranging_uses_behavioral_model(self):
        # "circuit" in the packet-level receiver means the surrogate.
        spec = LinkSpec(
            config=UwbConfig(preamble_symbols=16, payload_bits=16,
                             adc_vref=2e-3, agc_range_db=80.0),
            channel=ChannelSpec(kind="cm1", distance=3.0),
            frontend=FrontEndSpec(detection_factor=8.0,
                                  toa_threshold_fraction=0.5),
            integrator="circuit")
        res = KernelBackend().ranging(spec, 1,
                                      np.random.default_rng(2),
                                      noise_sigma=9e-5)
        assert len(res.distances) == 1


class TestOps:
    def test_ops_are_campaign_safe(self):
        """spec-driven op params pickle and content-address."""
        import pickle

        from repro.campaign.store import ResultStore
        from repro.core.scenario import Scenario

        scenario = Scenario(
            name="x", fn=ops.ber_curve, seed=3, rng_param="rng",
            params=dict(spec=SPEC, ebn0_grid=[8.0], target_errors=5,
                        max_bits=500, min_bits=200))
        pickle.loads(pickle.dumps(scenario))
        key = ResultStore("/tmp/unused-root").scenario_key(scenario)
        assert key is not None and len(key) == 64

    def test_ops_ber_curve_and_testbench(self):
        curve = ops.ber_curve(SPEC, [10.0], np.random.default_rng(2),
                              target_errors=10, max_bits=1000,
                              min_bits=400)
        assert curve.bits[0] >= 400
        bits = np.array([1, 0], dtype=np.int8)
        res = ops.run_testbench(SPEC, _conditioned(bits))
        assert np.array_equal(res.bits, bits)
        assert res.cpu_time > 0

    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            Backend()


def _conditioned(bits: np.ndarray) -> np.ndarray:
    """A clean filtered burst at a fixed drive (the packet-op input
    contract: post-BPF, pre-squarer)."""
    wave = ppm_waveform(np.asarray(bits, dtype=np.int8), FAST,
                        amplitude=1.0)
    sig = build_bpf(SPEC)(wave)
    return 0.25 * sig / np.max(np.abs(sig))


class TestKernelPreflight:
    """The static lint gate in front of the co-simulated netlist."""

    def _sabotaged_testbench(self, *args, **kwargs):
        from repro.circuits import build_id_testbench

        tb = build_id_testbench(*args, **kwargs)
        from repro.spice import Resistor

        tb.add(Resistor("rmut", "out_intp", "mut_dangling", 1e3))
        return tb

    def test_packet_refuses_broken_netlist(self, monkeypatch):
        import repro.uwb.system as system
        from repro.spice import NetlistLintError

        monkeypatch.setattr(system, "build_id_testbench",
                            self._sabotaged_testbench)
        sig = _conditioned(np.array([1, 0], dtype=np.int8))
        spec = SPEC.with_(integrator="circuit")
        with pytest.raises(NetlistLintError, match="SP-FLOAT-001") as exc:
            KernelBackend(cosim_substeps=1).packet(spec, sig)
        assert "mut_dangling" in str(exc.value)

    def test_opt_out_builds_the_sim(self, monkeypatch):
        import repro.uwb.system as system

        monkeypatch.setattr(system, "build_id_testbench",
                            self._sabotaged_testbench)
        config = FAST
        sim, _harvest = system.build_ams_receiver(
            config, "circuit", np.zeros(32), preflight=False)
        assert sim is not None

    def test_flag_threads_through_constructor(self):
        assert KernelBackend().preflight is True
        assert KernelBackend(preflight=False).preflight is False
