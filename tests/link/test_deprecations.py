"""Deprecation shims: old front doors still work, but warn - and the
internal pipeline never touches them.

The CI deprecation job runs the internal suites under
``-W error::DeprecationWarning``; these tests pin the shim contract
itself (warn + delegate) and prove the migrated paths are silent.
"""

import warnings

import numpy as np
import pytest

from repro.link import FastsimBackend, LinkSpec, build_bpf, ops
from repro.uwb.config import UwbConfig
from repro.uwb.integrator import IdealIntegrator, TwoPoleIntegrator
from repro.uwb.modulation import ppm_waveform

FAST = UwbConfig(fs=8e9, symbol_period=16e-9, pulse_tau=0.225e-9,
                 pulse_order=5, integration_window=2e-9)
SPEC = LinkSpec(config=FAST)
BUDGET = dict(target_errors=10, max_bits=1000, min_bits=400)


def clean_signal(bits):
    wave = ppm_waveform(np.asarray(bits, dtype=np.int8), FAST,
                        amplitude=1.0)
    sig = build_bpf(SPEC)(wave)
    return 0.25 * sig / np.max(np.abs(sig))


class TestShimsWarnAndDelegate:
    def test_simulate_ber_point(self):
        from repro.uwb.fastsim import simulate_ber_point

        with pytest.deprecated_call(match="repro.link"):
            legacy = simulate_ber_point(FAST, IdealIntegrator(), 8.0,
                                        np.random.default_rng(5),
                                        **BUDGET)
        fresh = FastsimBackend().ber_point(SPEC, 8.0,
                                           np.random.default_rng(5),
                                           **BUDGET)
        assert legacy == fresh

    def test_ber_curve(self):
        from repro.uwb.fastsim import ber_curve

        with pytest.deprecated_call(match="repro.link"):
            legacy = ber_curve(FAST, IdealIntegrator(), [8.0],
                               np.random.default_rng(5), **BUDGET)
        fresh = FastsimBackend().ber_curve(SPEC, [8.0],
                                           np.random.default_rng(5),
                                           **BUDGET)
        assert np.array_equal(legacy.errors, fresh.errors)
        assert np.array_equal(legacy.bits, fresh.bits)

    def test_run_ams_receiver(self):
        from repro.uwb.system import run_ams_receiver

        bits = np.array([1, 0, 1], dtype=np.int8)
        sig = clean_signal(bits)
        with pytest.deprecated_call(match="repro.link"):
            legacy = run_ams_receiver(FAST, "ideal", sig)
        fresh = ops.run_testbench(SPEC, sig)
        assert np.array_equal(legacy.bits, fresh.bits)
        assert np.array_equal(legacy.slot_values, fresh.slot_values)

    def test_make_integrator(self):
        from repro.uwb.system import make_integrator

        with pytest.deprecated_call(match="resolve_integrator"):
            assert isinstance(make_integrator("two_pole"),
                              TwoPoleIntegrator)
        with pytest.deprecated_call():
            assert make_integrator("circuit") == "circuit"
        inst = TwoPoleIntegrator()
        with pytest.deprecated_call():
            assert make_integrator(inst) is inst
        with pytest.deprecated_call():
            with pytest.raises(ValueError):
                make_integrator("quantum")

    def test_make_twr_and_run_twr_arm(self):
        from repro.experiments.table2_twr import (
            TWR_CONFIG,
            make_twr,
            run_twr_arm,
        )
        from repro.uwb import UwbConfig as Cfg

        with pytest.deprecated_call(match="twr_spec"):
            twr = make_twr(Cfg(**TWR_CONFIG), IdealIntegrator(),
                           distance=3.0)
        assert twr.distance == 3.0
        with pytest.deprecated_call(match="twr_spec"):
            res = run_twr_arm(IdealIntegrator(), 3.0, 1,
                              np.random.default_rng(1),
                              noise_sigma=9e-5)
        assert len(res.distances) == 1


class TestInternalPipelineIsWarningFree:
    """The migrated harnesses must never route through a shim."""

    def test_experiments_emit_no_deprecation_warnings(self):
        from repro.experiments import (
            run_fig6,
            run_phase1_overlap,
            run_table1,
            run_table2,
        )

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_fig6(ebn0_grid=(8.0,), quick=True, seed=7)
            run_table1(simulated_time=0.05e-6, measure_reference=False)
            run_table2(iterations=1, seed=42)
            run_phase1_overlap(ebn0_grid=(8.0,), bits_per_point=20)

    def test_backends_emit_no_deprecation_warnings(self):
        from repro.link import KernelBackend, run_equivalence

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            FastsimBackend().ber_point(SPEC, 8.0,
                                       np.random.default_rng(1),
                                       **BUDGET)
            KernelBackend().packet(
                SPEC, clean_signal(np.array([1, 0], dtype=np.int8)))
            run_equivalence(bits=20, seed=3)
