"""ResultStore: content addressing, persistence, robustness."""

import json

import numpy as np
import pytest

from repro.campaign.store import ResultStore, default_salt
from repro.core.scenario import Scenario, SweepResult, _execute
from repro.uwb.modulation import random_bits


def bits_scenario(n=8, seed=5, name="bits"):
    return Scenario(name=name, fn=random_bits, seed=seed,
                    rng_param="rng", params={"n": n})


class TestKeys:
    def test_stable_across_instances(self, tmp_path):
        a = ResultStore(tmp_path, salt="s")
        b = ResultStore(tmp_path, salt="s")
        assert a.scenario_key(bits_scenario()) == \
            b.scenario_key(bits_scenario())

    def test_name_does_not_matter_content_does(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        base = store.scenario_key(bits_scenario(name="x"))
        assert base == store.scenario_key(bits_scenario(name="y"))
        assert base != store.scenario_key(bits_scenario(n=9))
        assert base != store.scenario_key(bits_scenario(seed=6))

    def test_salt_partitions(self, tmp_path):
        assert ResultStore(tmp_path, salt="a").scenario_key(
            bits_scenario()) != ResultStore(
            tmp_path, salt="b").scenario_key(bits_scenario())

    def test_default_salt_tracks_version(self, tmp_path):
        from repro import __version__

        assert __version__ in ResultStore(tmp_path).salt
        assert ResultStore(tmp_path).salt == default_salt()

    def test_uncacheable_scenarios(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        # entropy injection without a seed
        assert store.scenario_key(Scenario(
            name="u", fn=random_bits, rng_param="rng",
            params={"n": 4})) is None
        # lambda: no import path
        assert store.scenario_key(Scenario(
            name="l", fn=lambda: 1)) is None
        # explicit opt-out
        assert store.scenario_key(Scenario(
            name="t", fn=random_bits, seed=1, rng_param="rng",
            params={"n": 4}, cache=False)) is None

    def test_deterministic_seedless_scenario_is_cacheable(self, tmp_path):
        """seed=None without rng/seed injection is deterministic on
        paper (the Table-1 convention) and caches."""
        from repro.uwb.channel.ieee802154a import path_loss_db

        store = ResultStore(tmp_path, salt="s")
        sc = Scenario(name="d", fn=path_loss_db,
                      params={"distance": 2.0})
        assert store.scenario_key(sc) is not None


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        result = _execute(sc)
        key = store.put(sc, result)
        assert key is not None
        assert store.contains(sc)
        back = store.get(bits_scenario())
        assert back is not None and back.cached
        assert np.array_equal(back.value, result.value)
        assert back.wall_time == result.wall_time
        assert store.hits == 1

    def test_get_miss_counts(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        assert store.get(bits_scenario()) is None
        assert store.misses == 1 and store.hits == 0

    def test_npz_payload_written_for_arrays(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        key = store.put(sc, _execute(sc))
        assert (store.objects_dir / f"{key}.json").exists()
        assert (store.objects_dir / f"{key}.npz").exists()
        assert store.index_path.exists()

    def test_scalar_value_has_no_npz(self, tmp_path):
        from repro.uwb.channel.ieee802154a import path_loss_db

        store = ResultStore(tmp_path, salt="s")
        sc = Scenario(name="s", fn=path_loss_db,
                      params={"distance": 1.0})
        key = store.put(sc, _execute(sc))
        assert not (store.objects_dir / f"{key}.npz").exists()
        back = store.get(sc)
        assert back.value == pytest.approx(43.9)

    def test_entries_and_clear(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        for n in (4, 8):
            sc = bits_scenario(n=n)
            store.put(sc, _execute(sc))
        entries = store.entries()
        assert len(entries) == 2
        assert all(e.has_arrays for e in entries)
        # clear() accounts for every byte it frees: the object
        # records, the npz payloads and the index journal.
        expected = sum(e.size_bytes for e in entries) \
            + store.index_path.stat().st_size
        removed, freed = store.clear()
        assert removed == 2
        assert freed == expected
        assert store.entries() == []
        assert not store.index_path.exists()
        assert store.clear() == (0, 0)


class TestRobustness:
    def test_corrupted_object_treated_as_miss(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        key = store.put(sc, _execute(sc))
        (store.objects_dir / f"{key}.json").write_text("{ not json")
        assert store.get(sc) is None

    def test_missing_payload_treated_as_miss(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        key = store.put(sc, _execute(sc))
        (store.objects_dir / f"{key}.npz").unlink()
        assert store.get(sc) is None

    def test_stale_import_path_treated_as_miss(self, tmp_path):
        """Entries written against since-renamed code must fall back
        to re-execution, not crash the campaign."""
        store = ResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        key = store.put(sc, _execute(sc))
        path = store.objects_dir / f"{key}.json"
        record = json.loads(path.read_text())
        record["value"] = {"__dataclass__": "repro.gone:Missing",
                           "fields": {}}
        path.write_text(json.dumps(record))
        assert store.get(sc) is None

    def test_index_journal_appends_only(self, tmp_path):
        """A checkpoint appends one journal line - it never rewrites
        what is already there, so its cost cannot grow with the store
        size (the O(1)-checkpoint contract)."""
        store = ResultStore(tmp_path, salt="s")
        previous = ""
        for n in (4, 8, 16, 32):
            sc = bits_scenario(n=n)
            store.put(sc, _execute(sc))
            text = store.index_path.read_text()
            assert text.startswith(previous)  # strict append
            previous = text
        lines = previous.splitlines()
        assert len(lines) == 5  # header + one line per checkpoint
        assert json.loads(lines[0])["format"] == "repro.index/2"
        assert len(store.index_entries()) == 4

    def test_index_extended_across_instances(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        for n in (4, 8):
            sc = bits_scenario(n=n)
            store.put(sc, _execute(sc))
        # a fresh store instance keeps extending the on-disk journal
        other = ResultStore(tmp_path, salt="s")
        sc = bits_scenario(n=16)
        other.put(sc, _execute(sc))
        assert len(store.index_entries()) == 3

    def test_corrupt_index_lines_skipped_and_compacted(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        sc = bits_scenario(n=4)
        store.put(sc, _execute(sc))
        with open(store.index_path, "a") as fh:
            fh.write("{ torn li")  # no trailing newline: a torn write
        other = ResultStore(tmp_path, salt="s")
        sc2 = bits_scenario(n=8)
        other.put(sc2, _execute(sc2))
        # the reader skips garbage (and the line it damaged) ...
        assert len(store.index_entries()) >= 1
        # ... and entries() compacts the journal back to pristine
        entries = store.entries()
        assert len(entries) == 2
        assert len(store.index_entries()) == 2
        for line in store.index_path.read_text().splitlines():
            json.loads(line)

    def test_entries_compacts_duplicate_checkpoints(self, tmp_path):
        """Re-putting a key appends another journal line; compaction
        folds them back to one line per live object."""
        store = ResultStore(tmp_path, salt="s")
        sc = bits_scenario(n=4)
        for _ in range(3):
            store.put(sc, _execute(sc))
        assert len(store.index_path.read_text().splitlines()) == 4
        assert len(store.entries()) == 1
        assert len(store.index_path.read_text().splitlines()) == 2

    def test_reexecution_repairs_entry(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        key = store.put(sc, _execute(sc))
        (store.objects_dir / f"{key}.json").write_text("garbage")
        store.put(sc, _execute(sc))
        assert store.get(sc) is not None

    def test_object_file_is_readable_json(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        key = store.put(sc, _execute(sc))
        record = json.loads((store.objects_dir / f"{key}.json").read_text())
        assert record["scenario"]["fn"] == \
            "repro.uwb.modulation:random_bits"
        assert record["salt"] == "s"

    def test_reports(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        store.save_report("fig6", "hello")
        assert list(store.load_reports()) == [("fig6", "hello")]
        # clear() keeps rendered reports
        store.clear()
        assert list(store.load_reports()) == [("fig6", "hello")]
