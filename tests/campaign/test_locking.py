"""FileLock: mutual exclusion, timeouts, crash release."""

import multiprocessing
import os
import time

import pytest

from repro.campaign.locking import FileLock, LockTimeout


def hold_lock(path, hold_for, acquired):
    with FileLock(path):
        acquired.set()
        time.sleep(hold_for)


def crash_holding_lock(path, acquired):
    FileLock(path).acquire()
    acquired.set()
    os._exit(1)  # die without releasing


def spawn(target, *args):
    proc = multiprocessing.Process(target=target, args=args)
    proc.start()
    return proc


class TestBasics:
    def test_context_manager_acquires_and_releases(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        assert not lock.held
        with lock:
            assert lock.held
            assert (tmp_path / "x.lock").exists()
        assert not lock.held

    def test_release_is_idempotent(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        lock.acquire()
        lock.release()
        lock.release()

    def test_not_reentrant(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            with pytest.raises(RuntimeError, match="reentrant"):
                lock.acquire()

    def test_creates_parent_directories(self, tmp_path):
        with FileLock(tmp_path / "deep" / "er" / "x.lock"):
            pass

    def test_reacquirable_after_release(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        for _ in range(3):
            with lock:
                pass

    def test_two_instances_same_process_contend(self, tmp_path):
        a = FileLock(tmp_path / "x.lock")
        b = FileLock(tmp_path / "x.lock", timeout=0.05)
        with a:
            with pytest.raises(LockTimeout):
                b.acquire()
        with b:  # released by a -> acquirable again
            pass


class TestAcrossProcesses:
    def test_waiter_blocks_until_holder_releases(self, tmp_path):
        path = tmp_path / "x.lock"
        acquired = multiprocessing.Event()
        proc = spawn(hold_lock, path, 0.4, acquired)
        try:
            assert acquired.wait(5.0)
            start = time.monotonic()
            with FileLock(path, timeout=10.0):
                waited = time.monotonic() - start
            # We must have actually waited for the holder (minus some
            # scheduling slack), not slipped past the lock.
            assert waited > 0.1
        finally:
            proc.join(timeout=5.0)

    def test_timeout_while_held_elsewhere(self, tmp_path):
        path = tmp_path / "x.lock"
        acquired = multiprocessing.Event()
        proc = spawn(hold_lock, path, 1.0, acquired)
        try:
            assert acquired.wait(5.0)
            with pytest.raises(LockTimeout, match="could not lock"):
                FileLock(path, timeout=0.05).acquire()
        finally:
            proc.join(timeout=5.0)

    def test_lock_released_when_holder_dies(self, tmp_path):
        """A crashed worker must never wedge the store: the OS drops
        advisory locks with the process."""
        path = tmp_path / "x.lock"
        acquired = multiprocessing.Event()
        proc = spawn(crash_holding_lock, path, acquired)
        try:
            assert acquired.wait(5.0)
            proc.join(timeout=5.0)
            with FileLock(path, timeout=2.0):
                pass
        finally:
            if proc.is_alive():  # pragma: no cover - cleanup
                proc.terminate()
