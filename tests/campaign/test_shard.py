"""ShardedResultStore: contract parity, concurrency, merge, GC."""

import json
import multiprocessing

import numpy as np

from repro.campaign import ResultStore, ShardedResultStore
from repro.campaign.shard import is_sharded_layout
from repro.core.scenario import Scenario, _execute
from repro.uwb.modulation import random_bits


def bits_scenario(n=8, seed=5, name="bits"):
    return Scenario(name=name, fn=random_bits, seed=seed,
                    rng_param="rng", params={"n": n})


def fill(store, ns):
    """Execute-and-put one scenario per n; returns their keys."""
    keys = []
    for n in ns:
        sc = bits_scenario(n=n, name=f"bits{n}")
        keys.append(store.put(sc, _execute(sc)))
    return keys


class TestContractParity:
    """The sharded store honors the exact ResultStore contract."""

    def test_put_get_round_trip(self, tmp_path):
        store = ShardedResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        result = _execute(sc)
        key = store.put(sc, result)
        assert key is not None
        assert store.contains(sc)
        back = store.get(bits_scenario())
        assert back is not None and back.cached
        assert np.array_equal(back.value, result.value)
        assert store.hits == 1

    def test_keys_match_classic_store(self, tmp_path):
        """Same salt -> same content address in both flavors, so a
        campaign can switch store flavor without losing its cache."""
        classic = ResultStore(tmp_path / "a", salt="s")
        sharded = ShardedResultStore(tmp_path / "b", salt="s")
        sc = bits_scenario()
        assert classic.scenario_key(sc) == sharded.scenario_key(sc)

    def test_objects_bucketed_by_key_prefix(self, tmp_path):
        store = ShardedResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        key = store.put(sc, _execute(sc))
        expected = tmp_path / "shards" / key[:2] / "objects"
        assert (expected / f"{key}.json").exists()
        assert (expected / f"{key}.npz").exists()
        assert (tmp_path / "shards" / key[:2] / "index.jsonl").exists()
        assert is_sharded_layout(tmp_path)

    def test_entries_and_clear(self, tmp_path):
        store = ShardedResultStore(tmp_path, salt="s")
        fill(store, (4, 8, 16))
        entries = store.entries()
        assert len(entries) == 3
        assert {e.name for e in entries} == {"bits4", "bits8", "bits16"}
        removed, freed = store.clear()
        assert removed == 3 and freed > 0
        assert store.entries() == []

    def test_runner_accepts_sharded_store(self, tmp_path):
        from repro.campaign import CampaignRunner

        store = ShardedResultStore(tmp_path, salt="s")
        runner = CampaignRunner(store=store)
        for n in (4, 8):
            runner.add(bits_scenario(n=n, name=f"bits{n}"))
        first = runner.run()
        assert (first.executed, first.cached) == (2, 0)
        runner2 = CampaignRunner(store=store)
        for n in (4, 8):
            runner2.add(bits_scenario(n=n, name=f"bits{n}"))
        second = runner2.run()
        assert (second.executed, second.cached) == (0, 2)

    def test_truncated_object_is_a_miss(self, tmp_path):
        store = ShardedResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        key = store.put(sc, _execute(sc))
        path = store._object_path(key)
        path.write_text(path.read_text()[:20])  # torn write
        assert store.get(sc) is None

    def test_truncated_payload_is_a_miss(self, tmp_path):
        store = ShardedResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        key = store.put(sc, _execute(sc))
        payload = store._payload_path(key)
        payload.write_bytes(payload.read_bytes()[:8])
        assert store.get(sc) is None

    def test_reports_shared_with_classic_layout(self, tmp_path):
        ShardedResultStore(tmp_path, salt="s").save_report("fig6", "hi")
        assert list(ResultStore(tmp_path, salt="s").load_reports()) == \
            [("fig6", "hi")]


def put_batch(root, salt, ns, barrier):
    """Concurrent-writer worker: waits on the barrier, then puts."""
    store = ShardedResultStore(root, salt=salt)
    barrier.wait(timeout=10.0)
    for n in ns:
        sc = bits_scenario(n=n, name=f"bits{n}")
        store.put(sc, _execute(sc))


class TestConcurrency:
    N_WORKERS = 4

    def _run_workers(self, root, per_worker_ns):
        barrier = multiprocessing.Barrier(self.N_WORKERS)
        procs = [multiprocessing.Process(
            target=put_batch, args=(root, "s", ns, barrier))
            for ns in per_worker_ns]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60.0)
        assert all(p.exitcode == 0 for p in procs)

    def test_concurrent_puts_distinct_keys(self, tmp_path):
        """Four processes, disjoint keys: no lost entries, no torn
        per-shard index."""
        per_worker = [range(10 + 10 * w, 20 + 10 * w)
                      for w in range(self.N_WORKERS)]
        self._run_workers(tmp_path, per_worker)
        store = ShardedResultStore(tmp_path, salt="s")
        assert len(store.entries()) == 10 * self.N_WORKERS
        # every journal line across every shard is intact JSON
        journal_keys = set(store.index_entries())
        assert len(journal_keys) == 10 * self.N_WORKERS
        # and every entry is readable
        for w in range(self.N_WORKERS):
            for n in per_worker[w]:
                assert store.get(bits_scenario(n=n)) is not None

    def test_concurrent_puts_same_keys(self, tmp_path):
        """Four processes hammering the SAME keys: last write wins,
        the store stays readable, the index is not torn."""
        per_worker = [range(4, 12)] * self.N_WORKERS
        self._run_workers(tmp_path, per_worker)
        store = ShardedResultStore(tmp_path, salt="s")
        assert len(store.entries()) == 8
        for n in range(4, 12):
            back = store.get(bits_scenario(n=n))
            assert back is not None
            assert len(back.value) == n


class TestMerge:
    def test_merge_unions_disjoint_stores(self, tmp_path):
        a = ShardedResultStore(tmp_path / "a", salt="s")
        b = ShardedResultStore(tmp_path / "b", salt="s")
        fill(a, (4, 8))
        fill(b, (16, 32))
        assert a.merge(b) == 2
        assert len(a.entries()) == 4
        for n in (4, 8, 16, 32):
            assert a.get(bits_scenario(n=n)) is not None

    def test_merged_store_reruns_zero(self, tmp_path):
        """The acceptance contract: merging two independently-filled
        shard stores yields a store whose re-run executes nothing."""
        from repro.campaign import CampaignRunner

        a = ShardedResultStore(tmp_path / "a", salt="s")
        b = ShardedResultStore(tmp_path / "b", salt="s")
        fill(a, (4, 8))
        fill(b, (16, 32))
        a.merge(b)
        runner = CampaignRunner(store=a)
        for n in (4, 8, 16, 32):
            runner.add(bits_scenario(n=n, name=f"bits{n}"))
        report = runner.run()
        assert (report.executed, report.cached) == (0, 4)

    def test_merge_is_idempotent(self, tmp_path):
        a = ShardedResultStore(tmp_path / "a", salt="s")
        b = ShardedResultStore(tmp_path / "b", salt="s")
        fill(b, (4, 8))
        assert a.merge(b) == 2
        assert a.merge(b) == 0  # second merge adopts nothing
        assert len(a.entries()) == 2

    def test_merge_newest_created_wins(self, tmp_path):
        a = ShardedResultStore(tmp_path / "a", salt="s")
        b = ShardedResultStore(tmp_path / "b", salt="s")
        (key,) = fill(a, (4,))
        fill(b, (4,))

        def set_created(store, stamp):
            path = store._object_path(key)
            record = json.loads(path.read_text())
            record["created"] = stamp
            path.write_text(json.dumps(record))

        set_created(a, 100.0)
        set_created(b, 200.0)
        assert a.merge(b) == 1  # b is newer -> adopted
        assert json.loads(
            a._object_path(key).read_text())["created"] == 200.0
        set_created(b, 50.0)
        assert a.merge(b) == 0  # b is older -> kept ours

    def test_merge_from_classic_store(self, tmp_path):
        classic = ResultStore(tmp_path / "classic", salt="s")
        sc = bits_scenario()
        classic.put(sc, _execute(sc))
        sharded = ShardedResultStore(tmp_path / "sharded", salt="s")
        assert sharded.merge(classic) == 1
        assert sharded.get(bits_scenario()) is not None

    def test_merge_skips_torn_source_records(self, tmp_path):
        a = ShardedResultStore(tmp_path / "a", salt="s")
        b = ShardedResultStore(tmp_path / "b", salt="s")
        keys = fill(b, (4, 8))
        b._object_path(keys[0]).write_text("{ torn")
        b._payload_path(keys[1]).unlink()  # record without its arrays
        assert a.merge(b) == 0
        assert a.entries() == []


class TestGc:
    def _aged_store(self, root, stamps):
        """A store whose entries carry pinned created stamps."""
        store = ShardedResultStore(root, salt="s")
        keys = fill(store, sorted(stamps))
        for n, key in zip(sorted(stamps), keys):
            path = store._object_path(key)
            record = json.loads(path.read_text())
            record["created"] = stamps[n]
            path.write_text(json.dumps(record))
        return store, keys

    def test_gc_noop_without_limits(self, tmp_path):
        store = ShardedResultStore(tmp_path, salt="s")
        fill(store, (4, 8))
        assert store.gc() == (0, 0)
        assert len(store.entries()) == 2

    def test_gc_max_age_evicts_old_entries(self, tmp_path):
        store, _ = self._aged_store(
            tmp_path, {4: 100.0, 8: 200.0, 16: 300.0})
        evicted, freed = store.gc(max_age=150.0, now=400.0)
        assert evicted == 2 and freed > 0
        remaining = store.entries()
        assert [e.name for e in remaining] == ["bits16"]
        # journals compacted: no ghost keys left behind
        assert set(store.index_entries()) == {remaining[0].key}

    def test_gc_max_bytes_evicts_oldest_first(self, tmp_path):
        store, _ = self._aged_store(
            tmp_path, {4: 100.0, 8: 200.0, 16: 300.0})
        entries = {e.name: e for e in store.entries()}
        budget = entries["bits8"].size_bytes + entries["bits16"].size_bytes
        evicted, freed = store.gc(max_bytes=budget)
        assert evicted == 1
        assert freed == entries["bits4"].size_bytes
        assert {e.name for e in store.entries()} == {"bits8", "bits16"}
        total = sum(e.size_bytes for e in store.entries())
        assert total <= budget

    def test_gc_to_zero_bytes_empties_the_store(self, tmp_path):
        store = ShardedResultStore(tmp_path, salt="s")
        fill(store, (4, 8))
        evicted, _freed = store.gc(max_bytes=0)
        assert evicted == 2
        assert store.entries() == []

    def test_evicted_entry_reads_as_clean_miss(self, tmp_path):
        """A reader racing GC sees a miss, never a torn object: the
        record is deleted before the payload."""
        store = ShardedResultStore(tmp_path, salt="s")
        sc = bits_scenario()
        store.put(sc, _execute(sc))
        store.gc(max_bytes=0)
        assert store.get(sc) is None  # miss, no exception
        # re-put repairs the entry
        store.put(sc, _execute(sc))
        assert store.get(sc) is not None

    def test_gc_concurrent_with_readers(self, tmp_path):
        """GC in one thread, reads hammering in another: every get()
        returns a result or a miss - never raises, and an entry is
        only ever missing because GC evicted it."""
        import threading

        store = ShardedResultStore(tmp_path, salt="s")
        fill(store, range(4, 24))
        reader = ShardedResultStore(tmp_path, salt="s")
        failures = []

        def read_loop():
            for _ in range(5):
                for n in range(4, 24):
                    try:
                        reader.get(bits_scenario(n=n))
                    except Exception as exc:  # pragma: no cover
                        failures.append(exc)

        thread = threading.Thread(target=read_loop)
        thread.start()
        store.gc(max_bytes=0)
        thread.join(timeout=30.0)
        assert failures == []
