"""CampaignProgress delivery contracts (repro.campaign.runner).

The observer-side guarantees: ticks arrive in completion order with
monotonic counters, a broken user hook warns instead of aborting the
campaign, progress keeps flowing up to a preemption, the ETA stays
``None`` until the wall-time history can support a projection, and
``stage_walls`` rides the tick exactly when tracing is enabled.
"""

import warnings

import pytest

from repro.campaign import CampaignPreempted, CampaignRunner, ResultStore
from repro.campaign.runner import CampaignProgress, _ProgressTracker
from repro.core.scenario import Scenario, SweepResult
from repro.obs import trace
from repro.uwb.modulation import random_bits


def build_runner(store, processes=None, ns=(4, 8, 16), **kwargs):
    runner = CampaignRunner(processes=processes, store=store, **kwargs)
    for n in ns:
        runner.add(Scenario(name=f"bits{n}", fn=random_bits, seed=5,
                            rng_param="rng", params={"n": n}))
    return runner


def _result(name="s", wall=0.5):
    scenario = Scenario(name=name, fn=random_bits, rng_param="rng",
                        params={"n": 4})
    return SweepResult(scenario=scenario, value=1, wall_time=wall)


class TestOrdering:
    def test_serial_ticks_follow_submission_order(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        ticks = []
        store.progress_hook = ticks.append
        build_runner(store).run()
        assert [t.last_name for t in ticks] == ["bits4", "bits8",
                                                "bits16"]
        assert [t.done for t in ticks] == [1, 2, 3]
        assert [t.remaining for t in ticks] == [2, 1, 0]

    def test_counters_are_monotonic_under_fanout(self, tmp_path):
        """Parallel completion order is nondeterministic, but every
        tick still carries consistent, monotonically growing
        counters."""
        store = ResultStore(tmp_path, salt="s")
        ticks = []
        store.progress_hook = ticks.append
        build_runner(store, processes=2).run()
        assert [t.done for t in ticks] == [1, 2, 3]
        for t in ticks:
            assert t.executed + t.cached == t.done
            assert t.total == 3
        assert {t.last_name for t in ticks} == {"bits4", "bits8",
                                                "bits16"}

    def test_mixed_cache_and_executed_ticks(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        build_runner(store, ns=(4,)).run()  # checkpoint one scenario
        ticks = []
        store.progress_hook = ticks.append
        build_runner(store).run()
        # The cache hit ticks first (hits are served during intake),
        # then the two executions.
        assert [(t.cached, t.executed) for t in ticks] == [
            (1, 0), (1, 1), (1, 2)]


class TestHookExceptions:
    def test_broken_hook_warns_and_campaign_completes(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        calls = []

        def hook(progress):
            calls.append(progress)
            raise ValueError("observer bug")

        store.progress_hook = hook
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = build_runner(store).run()
        assert report.executed == 3  # the campaign was not aborted
        assert len(calls) == 3       # the hook kept being invoked
        hook_warnings = [w for w in caught
                         if issubclass(w.category, RuntimeWarning)
                         and "progress hook" in str(w.message)]
        assert len(hook_warnings) == 3
        assert "observer bug" in str(hook_warnings[0].message)
        # All three results were checkpointed despite the noisy hook.
        assert len(store.entries()) == 3

    def test_broken_hook_does_not_poison_the_cache(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        store.progress_hook = lambda p: 1 / 0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            build_runner(store).run()
        store.progress_hook = None
        replay = build_runner(store).run()
        assert (replay.executed, replay.cached) == (0, 3)


class TestProgressUnderPreemption:
    def test_ticks_flow_until_the_preemption_point(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        ticks = []
        store.progress_hook = ticks.append
        store.preempt_hook = lambda: len(ticks) >= 2
        with pytest.raises(CampaignPreempted) as info:
            build_runner(store).run()
        # Both completed scenarios ticked before the stop, and the
        # exception's accounting matches the delivered progress.
        assert [t.done for t in ticks] == [1, 2]
        assert info.value.checkpointed == 2
        assert info.value.remaining == ["bits16"]

    def test_resumed_campaign_continues_the_done_count(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        ticks = []
        store.progress_hook = ticks.append
        store.preempt_hook = lambda: len(ticks) >= 1
        with pytest.raises(CampaignPreempted):
            build_runner(store).run()
        store.preempt_hook = None
        ticks.clear()
        build_runner(store).run()
        # The checkpointed scenario arrives as a cached tick; done
        # still counts to the full campaign total.
        assert [t.done for t in ticks] == [1, 2, 3]
        assert ticks[0].cached == 1 and ticks[-1].executed == 2


class TestEta:
    def test_no_samples_projects_nothing(self):
        tracker = _ProgressTracker(total=5, hook=None)
        assert tracker.eta_seconds() is None

    def test_single_sample_projects_nothing(self):
        tracker = _ProgressTracker(total=5, hook=None)
        tracker.tick(_result(wall=2.0), cached=False)
        assert tracker.eta_seconds() is None

    def test_two_samples_project_mean_times_remaining(self):
        tracker = _ProgressTracker(total=5, hook=None)
        tracker.tick(_result(wall=1.0), cached=False)
        tracker.tick(_result(wall=3.0), cached=True)
        # mean 2.0s over 3 remaining scenarios
        assert tracker.eta_seconds() == pytest.approx(6.0)

    def test_finished_campaign_projects_zero(self):
        tracker = _ProgressTracker(total=2, hook=None)
        tracker.tick(_result(wall=1.0), cached=False)
        tracker.tick(_result(wall=1.0), cached=False)
        assert tracker.eta_seconds() == 0.0


class TestStageWalls:
    def test_stage_walls_none_while_tracing_disabled(self, tmp_path):
        assert not trace.ENABLED
        store = ResultStore(tmp_path, salt="s")
        ticks = []
        store.progress_hook = ticks.append
        build_runner(store).run()
        assert all(t.stage_walls is None for t in ticks)

    def test_stage_walls_ride_ticks_while_tracing(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        ticks = []
        store.progress_hook = ticks.append
        with trace.collect("campaign"):
            build_runner(store).run()
        assert all(isinstance(t.stage_walls, dict) for t in ticks)

    def test_progress_is_a_frozen_value_object(self):
        progress = CampaignProgress(done=1, total=4, executed=1,
                                    cached=0, eta_seconds=None)
        assert progress.remaining == 3
        with pytest.raises(Exception):
            progress.done = 2
