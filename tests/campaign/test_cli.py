"""The ``python -m repro`` command line (in-process via cli.main)."""

import numpy as np
import pytest

from repro.campaign.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestCacheCommands:
    def test_ls_empty(self, tmp_path, capsys):
        code, out = run_cli(capsys, "cache", "ls",
                            "--cache-dir", str(tmp_path))
        assert code == 0 and "empty" in out

    def test_clear_empty(self, tmp_path, capsys):
        code, out = run_cli(capsys, "cache", "clear",
                            "--cache-dir", str(tmp_path))
        assert code == 0 and "removed 0" in out

    def test_report_without_runs(self, tmp_path, capsys):
        code, out = run_cli(capsys, "report",
                            "--cache-dir", str(tmp_path))
        assert code == 1 and "no saved reports" in out

    def test_report_rejects_unknown_experiment(self, tmp_path, capsys):
        code, out = run_cli(capsys, "report", "nope",
                            "--cache-dir", str(tmp_path))
        assert code == 2 and "unknown experiment" in out


class TestListCommand:
    def test_list_enumerates_registered_experiments(self, capsys):
        from repro.experiments.registry import experiment_names

        code, out = run_cli(capsys, "run", "--list")
        assert code == 0
        names = experiment_names()
        # The five canonical CLI experiments plus everything registered.
        for name in ("fig6", "table1", "fig5", "table2", "ablations"):
            assert name in names
        for name in names:
            assert f"  {name:<12s}" in out
        assert f"{len(names)} experiments" in out

    def test_run_without_experiments_errors(self, capsys):
        code, out = run_cli(capsys, "run")
        assert code == 2 and "--list" in out

    def test_run_unknown_experiment_errors(self, capsys):
        code, out = run_cli(capsys, "run", "nope")
        assert code == 2 and "unknown experiment" in out


class TestRunCommand:
    def test_run_table2_twice_hits_cache(self, tmp_path, capsys):
        argv = ("run", "table2", "--fast",
                "--cache-dir", str(tmp_path))
        code, first = run_cli(capsys, *argv)
        assert code == 0
        assert "Table 2 - TWR" in first
        assert "executed=2 cached=0" in first
        code, second = run_cli(capsys, *argv)
        assert code == 0
        assert "executed=0 cached=2" in second
        # identical report modulo the campaign accounting line
        strip = lambda text: "\n".join(
            l for l in text.splitlines() if not l.startswith("campaign["))
        assert strip(first) == strip(second)

    def test_run_populates_cache_and_report(self, tmp_path, capsys):
        run_cli(capsys, "run", "table2", "--fast",
                "--cache-dir", str(tmp_path))
        code, out = run_cli(capsys, "cache", "ls",
                            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "repro.link.ops:ranging" in out and "2 results" in out
        code, out = run_cli(capsys, "report", "table2",
                            "--cache-dir", str(tmp_path))
        assert code == 0 and "Table 2 - TWR" in out

    def test_no_cache_flag(self, tmp_path, capsys):
        code, out = run_cli(capsys, "run", "table2", "--fast",
                            "--no-cache", "--cache-dir", str(tmp_path))
        assert code == 0 and "uncached" in out
        code, out = run_cli(capsys, "cache", "ls",
                            "--cache-dir", str(tmp_path))
        assert "empty" in out

    def test_seed_override_changes_results(self, tmp_path, capsys):
        _, a = run_cli(capsys, "run", "table2", "--fast", "--seed", "1",
                       "--cache-dir", str(tmp_path / "a"))
        _, b = run_cli(capsys, "run", "table2", "--fast", "--seed", "2",
                       "--cache-dir", str(tmp_path / "b"))
        # different seeds must not share cache entries
        assert "executed=2" in a and "executed=2" in b

    def test_module_invocation(self, tmp_path):
        """python -m repro works end-to-end (the acceptance path)."""
        import os
        import pathlib
        import subprocess
        import sys

        repo = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", "table2", "--fast",
             "--cache-dir", str(tmp_path)],
            capture_output=True, text=True, timeout=300, env=env)
        assert proc.returncode == 0, proc.stderr
        assert "campaign[table2]" in proc.stdout
