"""The ``python -m repro`` command line (in-process via cli.main)."""

import numpy as np
import pytest

from repro.campaign.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestCacheCommands:
    def test_ls_empty(self, tmp_path, capsys):
        code, out = run_cli(capsys, "cache", "ls",
                            "--cache-dir", str(tmp_path))
        assert code == 0 and "empty" in out

    def test_clear_empty(self, tmp_path, capsys):
        code, out = run_cli(capsys, "cache", "clear",
                            "--cache-dir", str(tmp_path))
        assert code == 0 and "removed 0" in out

    def test_report_without_runs(self, tmp_path, capsys):
        code, out = run_cli(capsys, "report",
                            "--cache-dir", str(tmp_path))
        assert code == 1 and "no saved reports" in out

    def test_report_rejects_unknown_experiment(self, tmp_path, capsys):
        code, out = run_cli(capsys, "report", "nope",
                            "--cache-dir", str(tmp_path))
        assert code == 2 and "unknown experiment" in out


class TestCacheGcAndMerge:
    def _fill(self, capsys, cache_dir, *extra):
        run_cli(capsys, "run", "table2", "--fast",
                "--cache-dir", str(cache_dir), *extra)

    def test_gc_requires_sharded_store(self, tmp_path, capsys):
        self._fill(capsys, tmp_path)  # classic layout
        code, out = run_cli(capsys, "cache", "gc", "--max-bytes", "0",
                            "--cache-dir", str(tmp_path))
        assert code == 2 and "sharded" in out

    def test_gc_requires_a_limit(self, tmp_path, capsys):
        code, out = run_cli(capsys, "cache", "gc",
                            "--cache-dir", str(tmp_path), "--sharded")
        assert code == 2 and "--max-bytes" in out

    def test_gc_evicts_and_reports(self, tmp_path, capsys):
        self._fill(capsys, tmp_path, "--sharded")
        code, out = run_cli(capsys, "cache", "gc", "--max-bytes", "0",
                            "--cache-dir", str(tmp_path))
        assert code == 0 and "evicted 2 stored results" in out
        code, out = run_cli(capsys, "cache", "ls",
                            "--cache-dir", str(tmp_path))
        assert "empty" in out

    def test_merge_unions_another_cache(self, tmp_path, capsys):
        self._fill(capsys, tmp_path / "src")  # classic source
        code, out = run_cli(capsys, "cache", "merge",
                            str(tmp_path / "src"),
                            "--cache-dir", str(tmp_path / "dst"),
                            "--sharded")
        assert code == 0 and "merged 2 entries" in out
        # the merged store satisfies a re-run outright
        code, out = run_cli(capsys, "run", "table2", "--fast",
                            "--cache-dir", str(tmp_path / "dst"))
        assert code == 0 and "executed=0 cached=2" in out

    def test_merge_needs_sharded_destination(self, tmp_path, capsys):
        self._fill(capsys, tmp_path / "dst")  # classic destination
        code, out = run_cli(capsys, "cache", "merge",
                            str(tmp_path / "src"),
                            "--cache-dir", str(tmp_path / "dst"))
        assert code == 2 and "sharded destination" in out

    def test_clear_reports_entries_and_bytes(self, tmp_path, capsys):
        self._fill(capsys, tmp_path)
        code, out = run_cli(capsys, "cache", "clear",
                            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "removed 2 stored results" in out and "KiB" in out


class TestQueueCommands:
    def _dirs(self, tmp_path):
        return ("--queue-dir", str(tmp_path / "q"),
                "--cache-dir", str(tmp_path / "cache"))

    def test_submit_validates_names(self, tmp_path, capsys):
        code, out = run_cli(capsys, "queue", "submit", "nope",
                            "--queue-dir", str(tmp_path / "q"))
        assert code == 2 and "unknown experiment" in out

    def test_submit_status_drain(self, tmp_path, capsys):
        code, out = run_cli(capsys, "queue", "submit", "table2", "fig6",
                            "--queue-dir", str(tmp_path / "q"))
        assert code == 0
        assert out.count("submitted ") == 2
        assert "pending=2" in out
        code, out = run_cli(capsys, "queue", "status",
                            "--queue-dir", str(tmp_path / "q"))
        assert code == 0
        assert "pending: 2" in out
        assert "[table2]" in out and "[fig6]" in out
        code, out = run_cli(capsys, "queue", "drain",
                            "--queue-dir", str(tmp_path / "q"))
        assert code == 0 and "drained 2 job(s)" in out

    def test_work_runs_submitted_jobs(self, tmp_path, capsys):
        run_cli(capsys, "queue", "submit", "table2",
                "--queue-dir", str(tmp_path / "q"))
        code, out = run_cli(capsys, "queue", "work", "--worker-id", "t",
                            *self._dirs(tmp_path))
        assert code == 0
        assert "done executed=2 cached=0" in out
        assert "worker t: 1 job(s) (done=1 failed=0 preempted=0)" in out
        # queue work defaults fresh cache dirs to the sharded flavor
        assert (tmp_path / "cache" / "shards").is_dir()
        code, out = run_cli(capsys, "queue", "status",
                            *("--queue-dir", str(tmp_path / "q")))
        assert "done: 1" in out and "executed=2" in out

    def test_work_empty_queue(self, tmp_path, capsys):
        code, out = run_cli(capsys, "queue", "work", "--worker-id", "t",
                            *self._dirs(tmp_path))
        assert code == 0 and "0 job(s)" in out

    def test_failed_job_exits_nonzero(self, tmp_path, capsys):
        from repro.campaign import JobQueue, JobSpec

        # a spec whose experiment only exists job-side: never importable
        JobQueue(tmp_path / "q").submit(JobSpec(
            experiment="ghost", modules=("no_such_module",)))
        code, out = run_cli(capsys, "queue", "work", "--worker-id", "t",
                            *self._dirs(tmp_path))
        assert code == 1
        assert "failed=1" in out and "no_such_module" in out


class TestListCommand:
    def test_list_enumerates_registered_experiments(self, capsys):
        from repro.experiments.registry import experiment_names

        code, out = run_cli(capsys, "run", "--list")
        assert code == 0
        names = experiment_names()
        # The five canonical CLI experiments plus everything registered.
        for name in ("fig6", "table1", "fig5", "table2", "ablations"):
            assert name in names
        for name in names:
            assert f"  {name:<12s}" in out
        assert f"{len(names)} experiments" in out

    def test_run_without_experiments_errors(self, capsys):
        code, out = run_cli(capsys, "run")
        assert code == 2 and "--list" in out

    def test_run_unknown_experiment_errors(self, capsys):
        code, out = run_cli(capsys, "run", "nope")
        assert code == 2 and "unknown experiment" in out


class TestRunCommand:
    def test_run_table2_twice_hits_cache(self, tmp_path, capsys):
        argv = ("run", "table2", "--fast",
                "--cache-dir", str(tmp_path))
        code, first = run_cli(capsys, *argv)
        assert code == 0
        assert "Table 2 - TWR" in first
        assert "executed=2 cached=0" in first
        code, second = run_cli(capsys, *argv)
        assert code == 0
        assert "executed=0 cached=2" in second
        # identical report modulo the campaign accounting line
        strip = lambda text: "\n".join(
            l for l in text.splitlines() if not l.startswith("campaign["))
        assert strip(first) == strip(second)

    def test_run_populates_cache_and_report(self, tmp_path, capsys):
        run_cli(capsys, "run", "table2", "--fast",
                "--cache-dir", str(tmp_path))
        code, out = run_cli(capsys, "cache", "ls",
                            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "repro.link.ops:ranging" in out and "2 results" in out
        code, out = run_cli(capsys, "report", "table2",
                            "--cache-dir", str(tmp_path))
        assert code == 0 and "Table 2 - TWR" in out

    def test_no_cache_flag(self, tmp_path, capsys):
        code, out = run_cli(capsys, "run", "table2", "--fast",
                            "--no-cache", "--cache-dir", str(tmp_path))
        assert code == 0 and "uncached" in out
        code, out = run_cli(capsys, "cache", "ls",
                            "--cache-dir", str(tmp_path))
        assert "empty" in out

    def test_seed_override_changes_results(self, tmp_path, capsys):
        _, a = run_cli(capsys, "run", "table2", "--fast", "--seed", "1",
                       "--cache-dir", str(tmp_path / "a"))
        _, b = run_cli(capsys, "run", "table2", "--fast", "--seed", "2",
                       "--cache-dir", str(tmp_path / "b"))
        # different seeds must not share cache entries
        assert "executed=2" in a and "executed=2" in b

    def test_module_invocation(self, tmp_path):
        """python -m repro works end-to-end (the acceptance path)."""
        import os
        import pathlib
        import subprocess
        import sys

        repo = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", "table2", "--fast",
             "--cache-dir", str(tmp_path)],
            capture_output=True, text=True, timeout=300, env=env)
        assert proc.returncode == 0, proc.stderr
        assert "campaign[table2]" in proc.stdout


BROKEN_NETLIST = """* broken fixture
v1 in 0 dc 1
r1 in out 1k
c1 out 0 1p
rdang hang out 1k
.end
"""

CLEAN_NETLIST = """* clean fixture
v1 in 0 dc 1
r1 in out 1k
r2 out 0 1k
.end
"""


class TestLintCommand:
    def test_list_shows_builtins_and_rules(self, capsys):
        code, out = run_cli(capsys, "lint", "--list")
        assert code == 0
        assert "id_testbench" in out
        assert "SP-FLOAT-001" in out
        assert "SP-DCPATH-001" in out

    def test_no_targets_errors(self, capsys):
        code, out = run_cli(capsys, "lint")
        assert code == 2 and "--list" in out

    def test_unknown_target_errors(self, capsys):
        code, out = run_cli(capsys, "lint", "no_such_thing")
        assert code == 2 and "unknown target" in out

    def test_builtin_lints_clean(self, capsys):
        code, out = run_cli(capsys, "lint", "id_testbench")
        assert code == 0
        assert "result: CLEAN" in out

    def test_builtin_subckt_lints_clean(self, capsys):
        code, out = run_cli(capsys, "lint", "int_spice")
        assert code == 0
        assert "result: CLEAN" in out

    def test_broken_file_fails_with_named_rule(self, tmp_path, capsys):
        path = tmp_path / "broken.cir"
        path.write_text(BROKEN_NETLIST)
        code, out = run_cli(capsys, "lint", str(path))
        assert code == 1
        assert "SP-FLOAT-001" in out
        assert "hang" in out
        assert "result: FAIL" in out

    def test_clean_file_passes(self, tmp_path, capsys):
        path = tmp_path / "clean.cir"
        path.write_text(CLEAN_NETLIST)
        code, out = run_cli(capsys, "lint", str(path))
        assert code == 0 and "result: CLEAN" in out

    def test_json_output_round_trips(self, tmp_path, capsys):
        from repro.spice.lint import LintReport, Severity

        path = tmp_path / "broken.cir"
        path.write_text(BROKEN_NETLIST)
        code, out = run_cli(capsys, "lint", str(path), "--format", "json")
        assert code == 1
        report = LintReport.from_json(out)
        assert not report.ok
        assert report.errors[0].severity is Severity.ERROR
        assert {f.rule_id for f in report.errors} == {"SP-FLOAT-001"}

    def test_fail_on_warn_tightens_gate(self, tmp_path, capsys):
        path = tmp_path / "warny.cir"
        # A shorted resistor: warn-level only.
        path.write_text("* warn fixture\n"
                        "v1 a 0 dc 1\nr1 a 0 1k\nrs a a 1k\n")
        code, _ = run_cli(capsys, "lint", str(path))
        assert code == 0
        code, _ = run_cli(capsys, "lint", str(path), "--fail-on", "warn")
        assert code == 1

    def test_parse_error_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.cir"
        path.write_text("* bad\nq1 a b c\n")
        code, out = run_cli(capsys, "lint", str(path))
        assert code == 2 and "parse error" in out

    def test_multiple_targets_worst_wins(self, tmp_path, capsys):
        clean = tmp_path / "clean.cir"
        clean.write_text(CLEAN_NETLIST)
        broken = tmp_path / "broken.cir"
        broken.write_text(BROKEN_NETLIST)
        code, out = run_cli(capsys, "lint", str(clean), str(broken))
        assert code == 1
        assert out.count("lint ") == 2

    def test_no_title_line_mode(self, tmp_path, capsys):
        path = tmp_path / "headless.cir"
        path.write_text("v1 in 0 dc 1\nr1 in 0 1k\n")
        code, out = run_cli(capsys, "lint", str(path),
                            "--no-title-line")
        assert code == 0 and "result: CLEAN" in out


class TestTraceCommand:
    def test_unknown_experiment_errors(self, capsys):
        code, out = run_cli(capsys, "trace", "nope")
        assert code == 2 and "unknown experiment" in out

    def test_text_trace_shows_tree_and_coverage(self, capsys):
        code, out = run_cli(capsys, "trace", "fig6", "--fast")
        assert code == 0
        assert "trace: fig6" in out
        # The five pipeline stages appear in the flame tree, and the
        # trailing line quantifies how much wall the leaves explain.
        for stage in ("link.tx", "link.combine", "link.afe",
                      "link.decision"):
            assert stage in out
        assert "coverage:" in out and "explained by leaf spans" in out

    def test_json_trace_round_trips_with_tight_coverage(self, capsys):
        """The acceptance path: `repro trace fig6 --fast --format json`
        emits a repro.trace/1 document whose per-stage walls sum to
        within 10% of the traced total wall."""
        from repro.obs.export import TraceReport

        code, out = run_cli(capsys, "trace", "fig6", "--fast",
                            "--format", "json")
        assert code == 0
        report = TraceReport.from_json(out)
        assert report.experiment == "fig6"
        assert report.wall_s > 0
        explained = sum(report.stage_walls.values())
        assert explained >= 0.90 * report.wall_s
        assert explained <= report.wall_s * 1.001
        # The metrics snapshot rode along (fastsim fig6 with no store
        # touches no counters, so it round-trips empty).
        from repro.obs.metrics import MetricsSnapshot

        assert isinstance(report.metrics, MetricsSnapshot)

    def test_trace_leaves_tracing_disabled(self, capsys):
        from repro.obs import trace

        run_cli(capsys, "trace", "table2", "--fast")
        assert not trace.ENABLED


class TestStatsCommand:
    def test_empty_stats(self, tmp_path, capsys):
        code, out = run_cli(capsys, "stats",
                            "--cache-dir", str(tmp_path / "cache"),
                            "--queue-dir", str(tmp_path / "q"))
        assert code == 0
        assert "0 results" in out and "0 B" in out
        assert "pending=0" in out

    def test_stats_aggregates_store_and_queue(self, tmp_path, capsys):
        cache = ("--cache-dir", str(tmp_path / "cache"))
        queue = ("--queue-dir", str(tmp_path / "q"))
        run_cli(capsys, "queue", "submit", "table2", *queue)
        run_cli(capsys, "queue", "work", "--worker-id", "t",
                *queue, *cache)
        code, out = run_cli(capsys, "stats", *cache, *queue)
        assert code == 0
        assert "2 results" in out
        assert "repro.link.ops:ranging" in out
        assert "done=1" in out and "executed=2" in out

    def test_stats_json_round_trips(self, tmp_path, capsys):
        from repro.campaign.cli import STATS_FORMAT
        from repro.core.serialization import load_tagged

        run_cli(capsys, "run", "table2", "--fast",
                "--cache-dir", str(tmp_path / "cache"))
        capsys.readouterr()
        code, out = run_cli(capsys, "stats",
                            "--cache-dir", str(tmp_path / "cache"),
                            "--queue-dir", str(tmp_path / "q"),
                            "--format", "json")
        assert code == 0
        payload = load_tagged(STATS_FORMAT, out)
        assert payload["store"]["results"] == 2
        assert payload["store"]["bytes"] > 0
        fn, = payload["store"]["by_fn"]
        assert fn == "repro.link.ops:ranging"
        assert payload["queue"]["counts"]["pending"] == 0


class TestQueueStatusEta:
    def _claimed_job(self, tmp_path):
        from repro.campaign import JobQueue, JobSpec

        queue = JobQueue(tmp_path / "q")
        queue.submit(JobSpec(experiment="table2"))
        job_id, _spec = queue.claim("w0")
        return queue, job_id

    def test_unknown_eta_renders_dashes(self, tmp_path, capsys):
        from repro.campaign.runner import CampaignProgress

        queue, job_id = self._claimed_job(tmp_path)
        queue.heartbeat(job_id, worker="w0",
                        progress=CampaignProgress(
                            done=1, total=3, executed=1, cached=0,
                            eta_seconds=None))
        code, out = run_cli(capsys, "queue", "status",
                            "--queue-dir", str(queue.root))
        assert code == 0 and "eta=--" in out

    def test_known_eta_and_stages_render(self, tmp_path, capsys):
        from repro.campaign.runner import CampaignProgress

        queue, job_id = self._claimed_job(tmp_path)
        queue.heartbeat(job_id, worker="w0",
                        progress=CampaignProgress(
                            done=2, total=3, executed=2, cached=0,
                            eta_seconds=4.25,
                            stage_walls={"link.afe": 0.5,
                                         "link.tx": 0.125}))
        code, out = run_cli(capsys, "queue", "status",
                            "--queue-dir", str(queue.root))
        assert code == 0
        assert "eta=4.2s" in out and "done=2/3" in out
        # stages render biggest-wall-first
        assert "stages: link.afe=0.500s link.tx=0.125s" in out


class TestFormatBytes:
    def test_units_and_precision(self):
        from repro.obs.export import format_bytes

        assert format_bytes(0) == "0 B"
        assert format_bytes(512) == "512 B"
        assert format_bytes(1023) == "1023 B"
        assert format_bytes(1024) == "1.0 KiB"
        assert format_bytes(1536) == "1.5 KiB"
        assert format_bytes(3 * 1024 ** 2) == "3.0 MiB"
        assert format_bytes(5.5 * 1024 ** 3) == "5.5 GiB"
        assert format_bytes(2 * 1024 ** 4) == "2.0 TiB"

    def test_cache_clear_and_gc_share_the_formatter(self, tmp_path,
                                                    capsys):
        run_cli(capsys, "run", "table2", "--fast",
                "--cache-dir", str(tmp_path / "classic"))
        code, out = run_cli(capsys, "cache", "clear",
                            "--cache-dir", str(tmp_path / "classic"))
        assert code == 0
        assert "removed 2 stored results (" in out
        assert "KiB)" in out
        run_cli(capsys, "run", "table2", "--fast", "--sharded",
                "--cache-dir", str(tmp_path / "sharded"))
        code, out = run_cli(capsys, "cache", "gc", "--max-bytes", "0",
                            "--cache-dir", str(tmp_path / "sharded"))
        assert code == 0
        assert "evicted 2 stored results (" in out
        assert "KiB)" in out
