"""JobQueue + workers: specs, claims, heartbeats, preemption."""

import multiprocessing
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import JobQueue, JobSpec, ShardedResultStore
from repro.campaign.queue import (
    JOB_FORMAT,
    default_queue_dir,
    open_store,
    run_job,
    work_loop,
)
from repro.campaign.runner import CampaignProgress
from repro.campaign.store import ResultStore
from repro.core.serialization import dump_tagged

REPO = pathlib.Path(__file__).resolve().parents[2]


def spec(experiment="table2", **kwargs):
    return JobSpec(experiment=experiment, **kwargs)


class TestJobSpec:
    def test_json_round_trip(self):
        original = spec(full=True, seed=3, processes=2, chunk_bits=64,
                        batch_points=False, modules=("a", "b"))
        back = JobSpec.from_json(original.to_json())
        assert back == original

    def test_wrong_format_tag_rejected(self):
        with pytest.raises(ValueError):
            JobSpec.from_json(dump_tagged("repro.other/1", spec()))

    def test_non_spec_payload_rejected(self):
        with pytest.raises(ValueError, match="not JobSpec"):
            JobSpec.from_json(dump_tagged(JOB_FORMAT, {"experiment": "x"}))

    def test_default_queue_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "qq"))
        assert default_queue_dir() == tmp_path / "qq"
        assert JobQueue().root == tmp_path / "qq"


class TestOpenStore:
    def test_fresh_dir_follows_default(self, tmp_path):
        assert isinstance(
            open_store(tmp_path / "a", default_sharded=True),
            ShardedResultStore)
        classic = open_store(tmp_path / "b", default_sharded=False)
        assert isinstance(classic, ResultStore)
        assert not isinstance(classic, ShardedResultStore)

    def test_existing_layouts_autodetect(self, tmp_path):
        (tmp_path / "a" / "shards").mkdir(parents=True)
        (tmp_path / "b" / "objects").mkdir(parents=True)
        assert isinstance(open_store(tmp_path / "a", default_sharded=False),
                          ShardedResultStore)
        assert not isinstance(
            open_store(tmp_path / "b", default_sharded=True),
            ShardedResultStore)

    def test_explicit_flag_beats_autodetect(self, tmp_path):
        (tmp_path / "objects").mkdir(parents=True)
        assert isinstance(open_store(tmp_path, sharded=True),
                          ShardedResultStore)


class TestLifecycle:
    def test_submit_claim_finish(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit(spec())
        assert queue.counts() == {"pending": 1, "claimed": 0,
                                  "done": 0, "failed": 0}
        loaded = queue.load("pending", job_id)
        assert loaded.experiment == "table2"
        assert loaded.submitted > 0

        claimed = queue.claim("w1")
        assert claimed is not None
        got_id, got_spec = claimed
        assert got_id == job_id and got_spec.experiment == "table2"
        assert queue.counts()["claimed"] == 1
        beat = queue.read_heartbeat(job_id)
        assert beat["worker"] == "w1" and beat["note"] == "claimed"

        queue.finish(job_id, {"experiment": "table2", "executed": 2})
        assert queue.counts() == {"pending": 0, "claimed": 0,
                                  "done": 1, "failed": 0}
        outcome = queue.outcome(job_id)
        assert outcome["state"] == "done" and outcome["executed"] == 2
        assert queue.read_heartbeat(job_id) is None

    def test_claim_empty_queue(self, tmp_path):
        assert JobQueue(tmp_path).claim("w") is None

    def test_claims_oldest_first(self, tmp_path):
        queue = JobQueue(tmp_path)
        first = queue.submit(spec("table2"))
        time.sleep(0.002)  # distinct millisecond timestamps
        second = queue.submit(spec("fig6"))
        assert first < second  # ids sort oldest-first
        assert queue.claim("w")[0] == first
        assert queue.claim("w")[0] == second

    def test_fail_records_error(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit(spec())
        queue.claim("w")
        queue.fail(job_id, {"experiment": "table2", "error": "boom"})
        outcome = queue.outcome(job_id)
        assert outcome["state"] == "failed" and outcome["error"] == "boom"

    def test_requeue_returns_job_to_pending(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit(spec())
        queue.claim("w")
        assert queue.requeue(job_id)
        assert queue.counts()["pending"] == 1
        assert queue.read_heartbeat(job_id) is None
        assert not queue.requeue(job_id)  # already back

    def test_torn_spec_parked_in_failed(self, tmp_path):
        queue = JobQueue(tmp_path)
        pending = queue.state_dir("pending")
        pending.mkdir(parents=True)
        (pending / "000-bad-deadbeef.json").write_text("{ torn")
        assert queue.claim("w") is None
        assert queue.counts()["failed"] == 1
        outcome = queue.outcome("000-bad-deadbeef")
        assert "unreadable" in outcome["error"]

    def test_reclaim_stale_by_heartbeat_age(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit(spec())
        queue.claim("w")  # heartbeat stamped now
        assert queue.reclaim_stale(stale_after=300.0) == []
        reclaimed = queue.reclaim_stale(
            stale_after=300.0, now=time.time() + 1000.0)
        assert reclaimed == [job_id]
        assert queue.counts()["pending"] == 1

    def test_reclaim_stale_without_heartbeat(self, tmp_path):
        """A worker that died between claim-rename and first heartbeat
        is recovered via the claim file's mtime."""
        queue = JobQueue(tmp_path)
        job_id = queue.submit(spec())
        queue.claim("w")
        (queue.heartbeats_dir / f"{job_id}.json").unlink()
        assert queue.reclaim_stale(
            stale_after=300.0, now=time.time() + 1000.0) == [job_id]

    def test_drain_empties_every_state(self, tmp_path):
        queue = JobQueue(tmp_path)
        done_id = queue.submit(spec())
        queue.claim("w")
        queue.finish(done_id, {"experiment": "table2"})
        claimed_id = queue.submit(spec())
        queue.claim("w")
        assert queue.counts()["claimed"] == 1 and claimed_id
        queue.submit(spec())  # left pending
        removed = queue.drain()
        assert removed == {"pending": 1, "claimed": 1, "done": 1,
                           "failed": 0}
        assert queue.counts() == {state: 0 for state in
                                  ("pending", "claimed", "done", "failed")}

    def test_heartbeat_carries_progress(self, tmp_path):
        queue = JobQueue(tmp_path)
        progress = CampaignProgress(done=3, total=8, executed=2, cached=1,
                                    eta_seconds=1.5, last_name="nap2")
        queue.heartbeat("some-job", worker="w9", progress=progress)
        beat = queue.read_heartbeat("some-job")
        assert beat["worker"] == "w9" and beat["pid"] == os.getpid()
        assert (beat["done"], beat["total"]) == (3, 8)
        assert beat["eta_seconds"] == 1.5
        assert beat["last_name"] == "nap2"


def claim_all(queue_root, worker, barrier, out_queue):
    """Contention worker: claim until the queue is empty."""
    queue = JobQueue(queue_root)
    barrier.wait(timeout=10.0)
    while True:
        claimed = queue.claim(worker)
        if claimed is None:
            break
        out_queue.put(claimed[0])


def fleet_worker(queue_root, store_root, worker):
    """End-to-end fleet worker: claim, run campaigns, conclude."""
    queue = JobQueue(queue_root)
    store = open_store(store_root, default_sharded=True)
    work_loop(queue, store, worker=worker)


class TestContention:
    def test_each_job_claimed_exactly_once(self, tmp_path):
        queue = JobQueue(tmp_path)
        submitted = {queue.submit(spec()) for _ in range(6)}
        barrier = multiprocessing.Barrier(3)
        out_queue = multiprocessing.Queue()
        procs = [multiprocessing.Process(
            target=claim_all,
            args=(tmp_path, f"w{i}", barrier, out_queue))
            for i in range(3)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30.0)
        assert all(p.exitcode == 0 for p in procs)
        claims = []
        while not out_queue.empty():
            claims.append(out_queue.get())
        assert sorted(claims) == sorted(submitted)  # no dup, no loss
        assert queue.counts()["claimed"] == 6


class TestRunJob:
    def test_end_to_end_then_cached_rerun(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        store = ShardedResultStore(tmp_path / "cache")
        job_id = queue.submit(spec("table2"))
        _, job_spec = queue.claim("w")
        outcome = run_job(queue, job_id, job_spec, store, worker="w")
        assert outcome["state"] == "done"
        assert (outcome["executed"], outcome["cached"]) == (2, 0)
        assert queue.counts()["done"] == 1
        assert dict(store.load_reports())["table2"].startswith("Table 2")
        assert store.progress_hook is None  # detached after the job

        rerun_id = queue.submit(spec("table2"))
        _, rerun_spec = queue.claim("w")
        outcome = run_job(queue, rerun_id, rerun_spec, store, worker="w")
        assert (outcome["executed"], outcome["cached"]) == (0, 2)

    def test_unknown_experiment_fails_job(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        store = ShardedResultStore(tmp_path / "cache")
        job_id = queue.submit(spec("no_such_experiment"))
        _, job_spec = queue.claim("w")
        outcome = run_job(queue, job_id, job_spec, store, worker="w")
        assert outcome["state"] == "failed"
        assert "no_such_experiment" in outcome["error"]
        assert queue.counts()["failed"] == 1

    def test_work_loop_runs_all_jobs_and_logs(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        store = ShardedResultStore(tmp_path / "cache")
        queue.submit(spec("table2", seed=1))
        queue.submit(spec("table2", seed=2))
        lines = []
        outcomes = work_loop(queue, store, worker="solo",
                             log=lines.append)
        assert [o["state"] for o in outcomes] == ["done", "done"]
        assert sum(o["executed"] for o in outcomes) == 4
        assert queue.counts()["done"] == 2
        assert all("done executed=2 cached=0" in line for line in lines)
        assert store.preempt_hook is None

    def test_work_loop_preempt_before_claiming(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        store = ShardedResultStore(tmp_path / "cache")
        queue.submit(spec("table2"))
        outcomes = work_loop(queue, store, worker="w",
                             preempt=lambda: True)
        assert outcomes == []
        assert queue.counts()["pending"] == 1  # untouched

    def test_work_loop_max_jobs(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        store = ShardedResultStore(tmp_path / "cache")
        queue.submit(spec("table2", seed=1))
        queue.submit(spec("table2", seed=2))
        outcomes = work_loop(queue, store, worker="w", max_jobs=1)
        assert len(outcomes) == 1
        assert queue.counts() == {"pending": 1, "claimed": 0,
                                  "done": 1, "failed": 0}


class TestFleet:
    def test_two_workers_complete_each_scenario_exactly_once(
            self, tmp_path):
        """The acceptance contract: a two-worker fleet over two jobs
        finishes every scenario exactly once, and re-submitting both
        campaigns executes nothing."""
        queue_root, store_root = tmp_path / "q", tmp_path / "cache"
        queue = JobQueue(queue_root)
        submitted = [queue.submit(spec("table2", seed=s)) for s in (1, 2)]
        procs = [multiprocessing.Process(
            target=fleet_worker, args=(queue_root, store_root, f"w{i}"))
            for i in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=300.0)
        assert all(p.exitcode == 0 for p in procs)

        assert queue.counts() == {"pending": 0, "claimed": 0,
                                  "done": 2, "failed": 0}
        outcomes = [queue.outcome(job_id) for job_id in submitted]
        # 2 scenarios per seeded campaign, each executed exactly once
        assert sum(o["executed"] for o in outcomes) == 4
        assert sum(o["cached"] for o in outcomes) == 0
        store = open_store(store_root)
        assert len(store.entries()) == 4

        # resubmission: the shared store satisfies everything
        for s in (1, 2):
            queue.submit(spec("table2", seed=s))
        outcomes = work_loop(queue, store, worker="rerun")
        assert sum(o["executed"] for o in outcomes) == 0
        assert sum(o["cached"] for o in outcomes) == 4


SLEEPY_MODULE = '''\
"""Test fixture: an experiment of slow scenarios (for preemption)."""
import time

from repro.campaign import CampaignRunner
from repro.core.scenario import Scenario
from repro.experiments.registry import experiment


def nap(duration, index, rng=None):
    time.sleep(duration)
    return index


@experiment("sleepy", description="napping scenarios (test fixture)")
def sleepy_experiment(ctx):
    runner = CampaignRunner(store=ctx.store)
    for index in range(8):
        runner.add(Scenario(name=f"nap{index}", fn=nap, seed=7,
                            rng_param="rng",
                            params={"duration": 0.25, "index": index}))
    report = runner.run()
    return f"sleepy: {report.executed + report.cached}/8 naps"
'''


class TestGracefulPreemption:
    def test_sigint_checkpoints_and_requeues(self, tmp_path):
        """SIGINT mid-campaign: zero completed results are lost, the
        job goes back to pending, and a second worker finishes only
        the remainder."""
        mods = tmp_path / "mods"
        mods.mkdir()
        (mods / "sleepy_exp.py").write_text(SLEEPY_MODULE)
        queue_root = tmp_path / "q"
        store_root = tmp_path / "cache"
        queue = JobQueue(queue_root)
        job_id = queue.submit(JobSpec(experiment="sleepy",
                                      modules=("sleepy_exp",)))

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO / "src"), str(mods),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        argv = [sys.executable, "-m", "repro", "queue", "work",
                "--queue-dir", str(queue_root),
                "--cache-dir", str(store_root)]
        proc = subprocess.Popen(argv, env=env, text=True,
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE,
                                start_new_session=True)
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                beat = queue.read_heartbeat(job_id) or {}
                if beat.get("done", 0) >= 1:
                    break
                time.sleep(0.02)
            else:  # pragma: no cover - diagnostics only
                proc.kill()
                pytest.fail(f"no progress heartbeat; stderr:\n"
                            f"{proc.communicate()[1]}")
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
        assert proc.returncode == 0, err
        assert "preempted" in out

        # the job went back to pending with its progress checkpointed
        assert queue.counts() == {"pending": 1, "claimed": 0,
                                  "done": 0, "failed": 0}
        store = open_store(store_root)
        checkpointed = len(store.entries())
        assert 1 <= checkpointed < 8  # something done, not everything

        # a fresh worker completes exactly the remainder
        done = subprocess.run(argv, env=env, text=True,
                              capture_output=True, timeout=120.0)
        assert done.returncode == 0, done.stderr
        assert queue.counts()["done"] == 1
        outcome = queue.outcome(job_id)
        assert outcome["state"] == "done"
        assert outcome["executed"] == 8 - checkpointed
        assert outcome["cached"] == checkpointed
        assert len(store.entries()) == 8
