"""CampaignRunner: cache hits, resume, fan-out, harness integration."""

import numpy as np
import pytest

from repro.campaign import (
    CampaignError,
    CampaignPreempted,
    CampaignReport,
    CampaignRunner,
    ResultStore,
)
from repro.core.scenario import Scenario, SweepRunner
from repro.uwb.modulation import random_bits


def build_runner(store, processes=None, ns=(4, 8, 16)):
    runner = CampaignRunner(processes=processes, store=store)
    for n in ns:
        runner.add(Scenario(name=f"bits{n}", fn=random_bits, seed=5,
                            rng_param="rng", params={"n": n}))
    return runner


class TestCaching:
    def test_second_run_executes_zero(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        first = build_runner(store).run()
        assert (first.executed, first.cached) == (3, 0)
        second = build_runner(store).run()
        assert (second.executed, second.cached) == (0, 3)
        assert store.misses == 3 and store.hits == 3
        for a, b in zip(first, second):
            assert np.array_equal(a.value, b.value)
            assert b.cached and not a.cached

    def test_interrupted_campaign_resumes(self, tmp_path):
        """Only the missing scenarios execute after an 'interrupt'
        (simulated by a first run over a prefix of the campaign)."""
        store = ResultStore(tmp_path, salt="s")
        build_runner(store, ns=(4,)).run()          # checkpointed part
        resumed = build_runner(store).run()          # full campaign
        assert (resumed.executed, resumed.cached) == (2, 1)
        # values equal a fresh uncached run of the full campaign
        fresh = build_runner(None).run()
        for a, b in zip(resumed, fresh):
            assert np.array_equal(a.value, b.value)

    def test_no_store_passthrough(self):
        report = build_runner(None).run()
        assert isinstance(report, CampaignReport)
        assert (report.executed, report.cached) == (3, 0)
        plain = SweepRunner(
            [Scenario(name=f"bits{n}", fn=random_bits, seed=5,
                      rng_param="rng", params={"n": n})
             for n in (4, 8, 16)]).run()
        for a, b in zip(report, plain):
            assert np.array_equal(a.value, b.value)

    def test_report_interface_preserved(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        report = build_runner(store).run()
        assert len(report) == 3
        assert set(report.by_name()) == {"bits4", "bits8", "bits16"}
        assert "bits4" in report.format_table()
        report2 = build_runner(store).run()
        assert "(cached)" in report2.format_table()
        assert report2.executed_wall_time == 0.0

    def test_uncacheable_scenarios_always_execute(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        def build():
            r = CampaignRunner(store=store)
            r.add(Scenario(name="u", fn=random_bits, rng_param="rng",
                           params={"n": 4}))
            return r
        assert build().run().executed == 1
        assert build().run().executed == 1
        assert store.entries() == []


def _flaky(n, fail):
    if fail:
        raise RuntimeError("boom")
    return n * 2


class TestFailureCheckpointing:
    def build(self, store, fail_first, processes=None):
        runner = CampaignRunner(processes=processes, store=store)
        runner.add(Scenario(name="bad", fn=_flaky,
                            params={"n": 1, "fail": fail_first}))
        runner.add(Scenario(name="good", fn=_flaky,
                            params={"n": 2, "fail": False}))
        return runner

    @pytest.mark.parametrize("processes", [None, 2])
    def test_sibling_results_survive_a_failure(self, tmp_path, processes):
        """One failing scenario must not discard completed siblings'
        checkpoints (the 'loses at most the run in flight' contract).
        Serial execution fails fast, so only earlier scenarios are
        checkpointed; the pool drains every completed future."""
        store = ResultStore(tmp_path, salt="s")
        with pytest.raises(CampaignError, match="boom"):
            self.build(store, fail_first=True, processes=processes).run()
        resumed = self.build(store, fail_first=False,
                             processes=processes).run()
        if processes:
            # the pool finished 'good' before the failure surfaced
            assert resumed.cached == 1 and resumed.executed == 1
        assert resumed.by_name() == {"bad": 2, "good": 4}

    @pytest.mark.parametrize("processes", [None, 2])
    def test_error_names_scenario_and_checkpoints(self, tmp_path,
                                                  processes):
        """CampaignError carries context: which scenario failed, the
        original exception as __cause__, and how many sibling results
        were still checkpointed."""
        store = ResultStore(tmp_path, salt="s")
        with pytest.raises(CampaignError) as info:
            self.build(store, fail_first=True, processes=processes).run()
        exc = info.value
        assert [name for name, _ in exc.failures] == ["bad"]
        assert isinstance(exc.failures[0][1], RuntimeError)
        assert isinstance(exc.__cause__, RuntimeError)
        assert "bad" in str(exc) and "checkpointed" in str(exc)
        if processes:
            # the pool drained 'good' before raising
            assert exc.checkpointed == 1
        # the message count matches what is really in the store
        assert len(store.entries()) == exc.checkpointed

    def test_plain_runtime_error_still_catchable(self, tmp_path):
        """CampaignError subclasses RuntimeError, so pre-existing
        harness code catching RuntimeError keeps working."""
        store = ResultStore(tmp_path, salt="s")
        with pytest.raises(RuntimeError, match="boom"):
            self.build(store, fail_first=True).run()


class TestProgressAndPreemption:
    def test_progress_reported_per_scenario(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        ticks = []
        store.progress_hook = ticks.append
        build_runner(store).run()
        assert [t.done for t in ticks] == [1, 2, 3]
        assert all(t.total == 3 for t in ticks)
        assert ticks[-1].executed == 3 and ticks[-1].cached == 0
        # one sample is no basis for a projection; from the second
        # sample on the history yields an ETA
        assert ticks[0].eta_seconds is None
        assert all(t.eta_seconds is not None for t in ticks[1:])
        assert ticks[-1].eta_seconds == 0.0
        assert ticks[0].last_name == "bits4"

    def test_cache_hits_feed_the_eta_history(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        build_runner(store).run()
        ticks = []
        store.progress_hook = ticks.append
        build_runner(store).run()
        assert [t.cached for t in ticks] == [1, 2, 3]
        # hits carry the original run's wall time into the estimate
        # (the first tick has a single sample and stays unknown)
        assert ticks[0].eta_seconds is None
        assert all(t.eta_seconds is not None for t in ticks[1:])

    def test_explicit_progress_argument_wins(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        store.progress_hook = lambda p: (_ for _ in ()).throw(
            AssertionError("store hook must not fire"))
        ticks = []
        runner = CampaignRunner(store=store, progress=ticks.append)
        runner.add(Scenario(name="bits4", fn=random_bits, seed=5,
                            rng_param="rng", params={"n": 4}))
        runner.run()
        assert len(ticks) == 1

    def test_preempt_serial_checkpoints_and_requeues(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        fired = []

        def preempt():
            # allow exactly one scenario through, then preempt
            return len(fired) >= 1

        store.progress_hook = fired.append
        store.preempt_hook = preempt
        with pytest.raises(CampaignPreempted) as info:
            build_runner(store).run()
        assert info.value.checkpointed == 1
        assert info.value.remaining == ["bits8", "bits16"]
        assert len(store.entries()) == 1
        # resuming with hooks removed completes only the remainder
        store.progress_hook = store.preempt_hook = None
        resumed = build_runner(store).run()
        assert (resumed.executed, resumed.cached) == (2, 1)

    def test_preempt_parallel_drains_in_flight(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        done = []
        store.progress_hook = done.append
        store.preempt_hook = lambda: len(done) >= 1
        with pytest.raises(CampaignPreempted) as info:
            build_runner(store, processes=2).run()
        # everything the pool completed was checkpointed before raising
        assert info.value.checkpointed == len(store.entries())
        assert info.value.checkpointed >= 1
        assert set(info.value.remaining) <= {"bits4", "bits8", "bits16"}
        store.progress_hook = store.preempt_hook = None
        resumed = build_runner(store).run()
        assert resumed.cached == info.value.checkpointed
        assert resumed.executed == 3 - info.value.checkpointed

    def test_preempt_before_anything_runs(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        store.preempt_hook = lambda: True
        with pytest.raises(CampaignPreempted) as info:
            build_runner(store).run()
        assert info.value.checkpointed == 0
        assert len(info.value.remaining) == 3


class TestKeyParams:
    def test_key_params_override_shares_cache(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")

        def build(n):
            r = CampaignRunner(store=store)
            r.add(Scenario(name="x", fn=_flaky,
                           params={"n": n, "fail": False},
                           key_params={"n": "any", "fail": False}))
            return r

        assert build(1).run().executed == 1
        # different execution param, same content address -> cache hit
        report = build(99).run()
        assert (report.executed, report.cached) == (0, 1)

    def test_fig6_worker_count_does_not_move_the_key(self, tmp_path):
        """Fan-out degree is an execution knob: fig6 campaigns with
        workers=2 and workers=3 share cache entries; serial (spawn-free
        seeding) does not."""
        from repro.experiments import run_fig6

        store = ResultStore(tmp_path, salt="s")
        kwargs = dict(ebn0_grid=(6.0,), quick=True, store=store,
                      batch_points=False)
        run_fig6(workers=2, **kwargs)
        assert store.misses == 2
        a = run_fig6(workers=3, **kwargs)
        assert store.misses == 2          # pure cache hits
        b = run_fig6(workers=None, **kwargs)
        assert store.misses == 4          # serial seeding differs


class TestParallel:
    def test_parallel_campaign_caches(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        first = build_runner(store, processes=2).run()
        assert first.executed == 3
        second = build_runner(store, processes=2).run()
        assert (second.executed, second.cached) == (0, 3)
        for a, b in zip(first, second):
            assert np.array_equal(a.value, b.value)

    def test_parallel_matches_serial_order_and_values(self, tmp_path):
        serial = build_runner(
            ResultStore(tmp_path / "a", salt="s")).run()
        parallel = build_runner(
            ResultStore(tmp_path / "b", salt="s"), processes=2).run()
        assert [r.name for r in serial] == [r.name for r in parallel]
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.value, b.value)


class TestHarnessIntegration:
    def test_fig6_campaign_cache_hits_and_artifact(self, tmp_path):
        from repro.experiments import run_fig6
        from repro.uwb.fastsim import AdaptiveStopping

        store = ResultStore(tmp_path, salt="s")
        grid = (4.0, 10.0)
        kwargs = dict(ebn0_grid=grid, quick=True, store=store,
                      adaptive=AdaptiveStopping(ber_floor=1e-3))
        # The batched default runs the whole figure as one sweep
        # scenario (both curves share the seed, hence the front end).
        first = run_fig6(**kwargs)
        assert store.misses == 1 and store.hits == 0
        second = run_fig6(**kwargs)
        assert store.misses == 1 and store.hits == 1  # 0 new executions
        assert np.array_equal(first.comparison.ber_a,
                              second.comparison.ber_a)
        assert np.array_equal(first.comparison.ber_b,
                              second.comparison.ber_b)
        # adaptive artifact: error counts + Wilson bounds survive the
        # store round trip
        for curve in second.curves.values():
            assert curve.ci_low is not None and curve.ci_high is not None
            assert np.all(curve.ci_low <= curve.ber + 1e-12)
            assert np.all(curve.ber <= curve.ci_high + 1e-12)
            assert np.all(curve.errors >= 0)

    def test_table2_campaign_matches_uncached(self, tmp_path):
        from repro.experiments import run_table2

        store = ResultStore(tmp_path, salt="s")
        cached = run_table2(iterations=3, store=store)
        replay = run_table2(iterations=3, store=store)
        plain = run_table2(iterations=3)
        for label in ("ideal", "circuit"):
            assert np.array_equal(
                cached.comparison.entries[label].distances,
                plain.comparison.entries[label].distances)
            assert np.array_equal(
                replay.comparison.entries[label].distances,
                plain.comparison.entries[label].distances)
