"""Integrator model family and ADC."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.uwb.adc import Adc
from repro.uwb.integrator import (
    CircuitSurrogateIntegrator,
    IdealIntegrator,
    TwoPoleIntegrator,
    tabulated_nonlinearity,
)

DT = 0.05e-9


class TestIdeal:
    def test_window_sum(self):
        integ = IdealIntegrator(k=1e8)
        x = np.ones((3, 10)) * 0.5
        out = integ.window_outputs(x, DT)
        assert out == pytest.approx(np.full(3, 1e8 * 0.5 * 10 * DT))

    def test_response_cumulative(self):
        integ = IdealIntegrator(k=1e8)
        x = np.ones(5)
        resp = integ.response(x, DT)
        assert np.all(np.diff(resp) > 0)
        assert resp[-1] == pytest.approx(integ.window_outputs(x, DT))

    def test_default_k_matches_two_pole(self):
        assert IdealIntegrator().k == pytest.approx(
            TwoPoleIntegrator().ideal_k, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            IdealIntegrator(k=-1.0)

    def test_state_consistency(self):
        """Streaming state and vectorized window agree."""
        integ = IdealIntegrator()
        rng = np.random.default_rng(0)
        x = rng.random(50)
        state = integ.make_state()
        for v in x:
            streaming = state.integrate(float(v), DT)
        vector = integ.window_outputs(x, DT)
        assert streaming == pytest.approx(vector, rel=0.05)


class TestTwoPole:
    def test_linear_regime_matches_ideal(self):
        two = TwoPoleIntegrator()
        ideal = IdealIntegrator(k=two.ideal_k)
        x = np.full((1, 100), 0.02)  # 5 ns window
        v2 = two.window_outputs(x, DT)[0]
        v1 = ideal.window_outputs(x, DT)[0]
        assert v2 == pytest.approx(v1, rel=0.1)

    def test_second_pole_smooths(self):
        """A lower fp2 suppresses a one-sample spike more."""
        spike = np.zeros((1, 40))
        spike[0, 20] = 1.0
        fast = TwoPoleIntegrator(fp2_hz=20e9).response(spike, DT)[0]
        slow = TwoPoleIntegrator(fp2_hz=1e9).response(spike, DT)[0]
        assert slow.max() < fast.max()

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoPoleIntegrator(gain=-1.0)
        with pytest.raises(ValueError):
            TwoPoleIntegrator(fp1_hz=0.0)

    def test_filter_cache(self):
        two = TwoPoleIntegrator()
        b1, a1 = two._coeffs(DT)
        b2, a2 = two._coeffs(DT)
        assert b1 is b2 and a1 is a2

    def test_state_matches_vectorized(self):
        two = TwoPoleIntegrator()
        rng = np.random.default_rng(1)
        x = np.abs(rng.normal(0.0, 0.02, 200))
        state = two.make_state()
        for v in x:
            streaming = state.integrate(float(v), DT)
        vector = two.window_outputs(x, DT)
        assert streaming == pytest.approx(vector, rel=0.05)

    @given(st.floats(1e5, 1e7), st.floats(1e9, 2e10))
    @settings(max_examples=10, deadline=None)
    def test_positive_input_positive_output(self, fp1, fp2):
        two = TwoPoleIntegrator(fp1_hz=fp1, fp2_hz=fp2)
        x = np.full((1, 60), 0.05)
        assert two.window_outputs(x, DT)[0] > 0


class TestSurrogate:
    def test_compression_reduces_output(self):
        ideal = IdealIntegrator()
        surr = CircuitSurrogateIntegrator()
        small = np.full((1, 40), 0.01)
        large = np.full((1, 40), 0.40)
        # near-linear at small drive
        assert surr.window_outputs(small, DT)[0] == pytest.approx(
            ideal.window_outputs(small, DT)[0], rel=0.15)
        # strongly compressed at large drive
        assert surr.window_outputs(large, DT)[0] < 0.5 * \
            ideal.window_outputs(large, DT)[0]

    def test_compression_monotone(self):
        surr = CircuitSurrogateIntegrator()
        drives = [0.01, 0.05, 0.1, 0.2, 0.4]
        outs = [surr.window_outputs(np.full((1, 40), d), DT)[0]
                for d in drives]
        assert all(b > a for a, b in zip(outs, outs[1:]))

    def test_phase_labels(self):
        assert IdealIntegrator().phase == "II"
        assert CircuitSurrogateIntegrator().phase == "III"
        assert TwoPoleIntegrator().phase == "IV"
        assert "III" in CircuitSurrogateIntegrator().describe()


class TestTabulatedNonlinearity:
    def test_interpolation_and_clamp(self):
        fn = tabulated_nonlinearity(np.array([-1.0, 0.0, 1.0]),
                                    np.array([-0.5, 0.0, 0.5]))
        assert fn(0.5) == pytest.approx(0.25)
        assert fn(5.0) == pytest.approx(0.5)  # clamped
        assert fn(-5.0) == pytest.approx(-0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            tabulated_nonlinearity(np.array([0.0, 0.0]),
                                   np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            tabulated_nonlinearity(np.array([0.0, 1.0]),
                                   np.array([[0.0], [1.0]]))


class TestAdc:
    def test_codes(self):
        adc = Adc(bits=3, vref=1.0)
        assert adc.levels == 8
        assert adc.lsb == pytest.approx(0.125)
        assert adc.convert(0.0) == 0
        assert adc.convert(0.130) == 1
        assert adc.convert(2.0) == 7  # saturates

    def test_negative_clamped(self):
        adc = Adc(bits=3, vref=1.0)
        assert adc.convert(-0.5) == 0

    def test_array_conversion(self):
        adc = Adc(bits=4, vref=1.6)
        codes = adc.convert(np.array([0.0, 0.8, 1.59, 99.0]))
        assert list(codes) == [0, 8, 15, 15]

    def test_quantize_error_bound(self):
        adc = Adc(bits=6, vref=1.0)
        x = np.linspace(0.0, 1.0 - 1e-9, 100)
        err = np.abs(adc.quantize(x) - x)
        assert np.max(err) <= adc.lsb / 2 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            Adc(bits=0)
        with pytest.raises(ValueError):
            Adc(vref=-1.0)

    @given(st.integers(1, 12), st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_within_lsb(self, bits, frac):
        adc = Adc(bits=bits, vref=2.0)
        x = frac * (2.0 - 1e-9)
        assert abs(adc.quantize(x) - x) <= adc.lsb / 2 + 1e-12
