"""Adaptive Monte-Carlo stopping + Wilson bounds (fastsim)."""

import numpy as np
import pytest

from repro.uwb import (
    AdaptiveStopping,
    IdealIntegrator,
    UwbConfig,
    ber_curve,
    simulate_ber_point,
    wilson_interval,
)

FAST = UwbConfig(fs=8e9, symbol_period=16e-9, pulse_tau=0.225e-9,
                 pulse_order=5, integration_window=2e-9)


class TestWilsonInterval:
    def test_brackets_the_estimate(self):
        lo, hi = wilson_interval(50, 1000)
        assert lo < 0.05 < hi

    def test_zero_errors_exact_lower_nonzero_upper(self):
        lo, hi = wilson_interval(0, 10_000)
        assert lo == 0.0
        assert 0.0 < hi < 1e-3

    def test_all_errors(self):
        lo, hi = wilson_interval(100, 100)
        assert hi == 1.0 and lo < 1.0

    def test_no_observations(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrows_with_bits(self):
        w = [wilson_interval(n // 10, n) for n in (100, 1000, 10_000)]
        widths = [hi - lo for lo, hi in w]
        assert widths == sorted(widths, reverse=True)

    def test_higher_confidence_is_wider(self):
        lo1, hi1 = wilson_interval(10, 1000, 0.9)
        lo2, hi2 = wilson_interval(10, 1000, 0.99)
        assert hi2 - lo2 > hi1 - lo1

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)


class TestAdaptivePolicy:
    def test_precision_exit(self):
        policy = AdaptiveStopping(rel_half_width=0.5, min_errors=10)
        assert not policy.resolved(2, 100)        # too few errors
        assert policy.resolved(5000, 10_000)      # huge sample, tight CI
        assert not policy.resolved(0, 0)

    def test_floor_exit(self):
        policy = AdaptiveStopping(ber_floor=1e-3)
        assert not policy.resolved(0, 100)        # upper bound ~ 3.7e-2
        assert policy.resolved(0, 100_000)        # upper bound < 1e-3
        # disabled floor never fires on zero errors
        assert not AdaptiveStopping(ber_floor=0.0).resolved(0, 10**9)


class TestAdaptiveSimulation:
    BUDGET = dict(target_errors=10_000, max_bits=30_000, min_bits=1_000)

    def test_deep_snr_point_stops_early(self):
        rng = np.random.default_rng(3)
        e, b = simulate_ber_point(
            FAST, IdealIntegrator(), 14.0, rng,
            adaptive=AdaptiveStopping(ber_floor=1e-3), **self.BUDGET)
        assert b < self.BUDGET["max_bits"]
        lo, hi = wilson_interval(e, b)
        assert hi < 1e-3 or e >= 8

    def test_fixed_rule_unchanged_without_policy(self):
        """adaptive=None bit-reproduces the historic stopping rule."""
        budget = dict(target_errors=15, max_bits=2000, min_bits=400)
        a = simulate_ber_point(FAST, IdealIntegrator(), 8.0,
                               np.random.default_rng(1), **budget)
        b = simulate_ber_point(FAST, IdealIntegrator(), 8.0,
                               np.random.default_rng(1), adaptive=None,
                               **budget)
        assert a == b

    def test_reproducible(self):
        policy = AdaptiveStopping(ber_floor=1e-3)
        runs = [simulate_ber_point(FAST, IdealIntegrator(), 12.0,
                                   np.random.default_rng(9),
                                   adaptive=policy, **self.BUDGET)
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_hard_caps_still_hold(self):
        e, b = simulate_ber_point(
            FAST, IdealIntegrator(), 0.0, np.random.default_rng(2),
            target_errors=5, max_bits=3000, min_bits=500,
            adaptive=AdaptiveStopping(rel_half_width=1e-6))
        assert b <= 3000


class TestBerCurveBounds:
    BUDGET = dict(target_errors=15, max_bits=2000, min_bits=400)

    def test_curve_records_wilson_bounds(self):
        curve = ber_curve(FAST, IdealIntegrator(), [4.0, 8.0],
                          np.random.default_rng(3), **self.BUDGET)
        assert curve.ci_low.shape == curve.ber.shape
        assert np.all(curve.ci_low <= curve.ber + 1e-12)
        assert np.all(curve.ber <= curve.ci_high + 1e-12)
        assert curve.confidence == 0.95

    def test_adaptive_curve_uses_policy_confidence(self):
        policy = AdaptiveStopping(confidence=0.99, ber_floor=1e-3)
        curve = ber_curve(FAST, IdealIntegrator(), [8.0],
                          np.random.default_rng(3), adaptive=policy,
                          **self.BUDGET)
        assert curve.confidence == 0.99

    def test_parallel_adaptive_matches_serial_spawn(self):
        policy = AdaptiveStopping(ber_floor=1e-2)
        grid = [6.0, 10.0]
        parallel = ber_curve(FAST, IdealIntegrator(), grid,
                             np.random.default_rng(9), workers=2,
                             adaptive=policy, **self.BUDGET)
        children = np.random.default_rng(9).spawn(len(grid))
        for i, (point, child) in enumerate(zip(grid, children)):
            e, b = simulate_ber_point(FAST, IdealIntegrator(), point,
                                      child, adaptive=policy,
                                      **self.BUDGET)
            assert (parallel.errors[i], parallel.bits[i]) == (e, b)

    def test_format_table_shows_bounds(self):
        curve = ber_curve(FAST, IdealIntegrator(), [8.0],
                          np.random.default_rng(3), **self.BUDGET)
        text = curve.format_table()
        assert "errors" in text and "[" in text


class TestWilsonZScore:
    """Memoized z-scores + the scipy-free fallback (hot-loop hygiene:
    wilson_interval runs after every adaptive Monte-Carlo chunk)."""

    def test_memoized_per_confidence(self, monkeypatch):
        import sys

        from repro.uwb import fastsim

        monkeypatch.setattr(fastsim, "_Z_SCORES", {})
        first = wilson_interval(3, 100, 0.8)
        assert 0.8 in fastsim._Z_SCORES
        # Break the import machinery: the memo must serve the second
        # call without ever touching scipy again.
        monkeypatch.setitem(sys.modules, "scipy.special", None)
        assert wilson_interval(3, 100, 0.8) == first

    def test_fallback_matches_scipy_exactly(self):
        from scipy.special import ndtri

        from repro.uwb import fastsim

        assert fastsim._Z_FALLBACK[0.95] == float(ndtri(0.975))

    def test_scipy_free_default_confidence(self, monkeypatch):
        import sys

        from repro.uwb import fastsim

        monkeypatch.setattr(fastsim, "_Z_SCORES", {})
        monkeypatch.setitem(sys.modules, "scipy.special", None)
        # 0.95 works from the built-in constant...
        lo, hi = wilson_interval(5, 1000, 0.95)
        assert 0.0 < lo < 5e-3 < hi
        # ...other levels need scipy and say so.
        with pytest.raises(RuntimeError, match="scipy"):
            wilson_interval(5, 1000, 0.9)
