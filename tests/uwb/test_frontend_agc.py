"""LNA, VGA, BPF and AGC policies."""

import math

import numpy as np
import pytest

from repro.uwb.adc import Adc
from repro.uwb.agc import Agc, TwoStageAgc
from repro.uwb.bpf import BandPassFilter, pulse_band
from repro.uwb.frontend import Lna, Vga
from repro.uwb.pulse import sampled_pulse


class TestLna:
    def test_gain(self):
        lna = Lna(gain_db=20.0, sat=None)
        assert lna(np.array([0.01]))[0] == pytest.approx(0.1)

    def test_saturation(self):
        lna = Lna(gain_db=40.0, sat=0.9)
        assert lna(np.array([1.0]))[0] == 0.9

    def test_noise_requires_rng(self):
        lna = Lna(noise_sigma=1e-3)
        with pytest.raises(ValueError):
            lna(np.zeros(4))

    def test_noise_added(self):
        lna = Lna(gain_db=0.0, sat=None, noise_sigma=0.1,
                  rng=np.random.default_rng(0))
        y = lna(np.zeros(10000))
        assert np.std(y) == pytest.approx(0.1, rel=0.05)


class TestVga:
    def test_code_quantization(self):
        vga = Vga(step_db=2.0, min_db=0.0, max_db=40.0)
        vga.set_gain_db(13.0)
        assert vga.gain_db in (12.0, 14.0)
        vga.set_gain_db(500.0)
        assert vga.gain_db == 40.0
        vga.set_gain_db(-10.0)
        assert vga.gain_db == 0.0

    def test_n_codes(self):
        vga = Vga(step_db=2.0, min_db=0.0, max_db=40.0)
        assert vga.n_codes == 21

    def test_application(self):
        vga = Vga(sat=None)
        vga.set_gain_db(20.0)
        assert vga(np.array([0.01]))[0] == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Vga(step_db=0.0)
        with pytest.raises(ValueError):
            Vga(min_db=10.0, max_db=0.0)


class TestBpf:
    def test_passband_and_stopband(self):
        fs = 20e9
        bpf = BandPassFilter((2e9, 6e9), fs)
        t = np.arange(4096) / fs

        def tone_gain(freq):
            x = np.sin(2 * math.pi * freq * t)
            y = bpf(x)
            return np.max(np.abs(y[2048:]))

        assert tone_gain(4e9) > 0.9
        assert tone_gain(0.3e9) < 0.05
        assert tone_gain(9.5e9) < 0.05

    def test_for_pulse_band(self):
        bpf = BandPassFilter.for_pulse(20e9, 0.09e-9, 5)
        low, high = bpf.band
        assert 1e9 < low < 4e9
        assert 4e9 < high < 9e9

    def test_pulse_band_helper(self):
        pulse = sampled_pulse(20e9, 0.09e-9, 5)
        low, high = pulse_band(pulse, 20e9)
        assert low < 4e9 < high  # peak around 4 GHz

    def test_validation(self):
        with pytest.raises(ValueError):
            BandPassFilter((5e9, 2e9), 20e9)
        with pytest.raises(ValueError):
            BandPassFilter((1e9, 11e9), 20e9)  # above Nyquist


class TestAgcPolicies:
    def _parts(self):
        vga = Vga(step_db=2.0, min_db=0.0, max_db=80.0)
        adc = Adc(bits=5, vref=1.0)
        return vga, adc

    def test_single_stage_targets_adc_fill(self):
        vga, adc = self._parts()
        agc = Agc(vga, adc, integrator_k=6.25e7, fill=0.85)
        window_energy = 1e-12
        decision = agc.decide(peak_amplitude=0.01,
                              window_energy=window_energy)
        agc.apply(decision)
        achieved = 6.25e7 * vga.gain ** 2 * window_energy
        # within one 2 dB step of the target (0.85 V)
        assert 0.85 / 10 ** 0.2 < achieved < 0.85 * 10 ** 0.2
        assert decision.post_gain == 1.0

    def test_zero_energy_safe(self):
        vga, adc = self._parts()
        agc = Agc(vga, adc, integrator_k=6.25e7)
        decision = agc.decide(0.0, 0.0)
        assert decision.code == 0

    def test_two_stage_limits_amplitude(self):
        vga, adc = self._parts()
        agc = TwoStageAgc(vga, adc, integrator_k=6.25e7,
                          amp_target=0.08)
        peak = 5e-4
        decision = agc.decide(peak_amplitude=peak, window_energy=1e-17)
        agc.apply(decision)
        squared_peak = (vga.gain * peak) ** 2
        assert squared_peak < 0.15  # inside the linear range
        assert decision.post_gain > 1.0  # energy made up after the I&D

    def test_missing_gain_rejected_loudly(self):
        """No silent 7e7-style default: energy matching against a
        wrong K mis-scales every downstream decision."""
        vga, adc = self._parts()
        with pytest.raises(ValueError, match="integration constant"):
            Agc(vga, adc, integrator_k=None)
        with pytest.raises(ValueError, match="positive and finite"):
            Agc(vga, adc, integrator_k=0.0)
        with pytest.raises(ValueError, match="positive and finite"):
            Agc(vga, adc, integrator_k=-1e7)
        with pytest.raises(ValueError, match="positive and finite"):
            Agc(vga, adc, integrator_k=math.nan)
        with pytest.raises(ValueError, match="integration constant"):
            TwoStageAgc(vga, adc, integrator_k=None)

    def test_two_stage_energy_restored(self):
        vga, adc = self._parts()
        agc = TwoStageAgc(vga, adc, integrator_k=6.25e7, fill=0.85,
                          amp_target=0.08)
        peak, energy = 5e-4, 1e-17
        decision = agc.decide(peak, energy)
        agc.apply(decision)
        final = (6.25e7 * vga.gain ** 2 * energy) * decision.post_gain
        assert final == pytest.approx(0.85, rel=1e-6)

    def test_validation(self):
        vga, adc = self._parts()
        with pytest.raises(ValueError):
            Agc(vga, adc, 6.25e7, fill=0.0)
        with pytest.raises(ValueError):
            TwoStageAgc(vga, adc, 6.25e7, amp_target=-1.0)
