"""Packet receiver (NE/PS/AGC/sync/demod) and two-way ranging."""

import numpy as np
import pytest

from repro.uwb import (
    EnergyDetectionReceiver,
    IdealIntegrator,
    TwoWayRanging,
    UwbConfig,
)
from repro.uwb.channel import Cm1Channel
from repro.uwb.config import SPEED_OF_LIGHT
from repro.uwb.integrator import CircuitSurrogateIntegrator
from repro.uwb.modulation import Packet, packet_waveform, random_bits

CFG = UwbConfig(preamble_symbols=16, payload_bits=16,
                adc_vref=2e-3, agc_range_db=80.0)


def make_rx_waveform(cfg, rng, amplitude=1e-3, noise=1e-5,
                     delay_samples=700, payload=None):
    payload = payload if payload is not None else random_bits(
        cfg.payload_bits, rng)
    packet = Packet(cfg.preamble_symbols, payload)
    wave = packet_waveform(packet, cfg, amplitude=amplitude)
    idle = (cfg.noise_est_windows + 8) * cfg.samples_per_window
    rx = np.concatenate([np.zeros(idle), np.zeros(delay_samples), wave,
                         np.zeros(cfg.samples_per_symbol)])
    rx += rng.normal(0.0, noise, size=len(rx))
    return rx, payload, idle + delay_samples


class TestDefaultAgcGain:
    def test_k_derived_from_integrator(self):
        """The default AGC takes the installed model's nominal
        integration constant - no magic fallback."""
        for integrator in (IdealIntegrator(),
                           CircuitSurrogateIntegrator()):
            receiver = EnergyDetectionReceiver(CFG, integrator)
            assert receiver.agc.integrator_k == integrator.ideal_k

    def test_gainless_integrator_rejected(self):
        from repro.uwb.integrator import WindowIntegrator

        class Opaque(WindowIntegrator):
            def window_outputs(self, x, dt):
                return np.sum(x, axis=-1) * dt

        with pytest.raises(ValueError, match="ideal_k"):
            EnergyDetectionReceiver(CFG, Opaque())

    def test_explicit_agc_bypasses_derivation(self):
        from repro.uwb.adc import Adc
        from repro.uwb.agc import Agc
        from repro.uwb.frontend import Vga
        from repro.uwb.integrator import WindowIntegrator

        class Opaque(WindowIntegrator):
            def window_outputs(self, x, dt):
                return np.sum(x, axis=-1) * dt

        vga = Vga(step_db=CFG.agc_steps_db, max_db=CFG.agc_range_db)
        adc = Adc(bits=CFG.adc_bits, vref=CFG.adc_vref)
        agc = Agc(vga, adc, integrator_k=1e8)
        receiver = EnergyDetectionReceiver(CFG, Opaque(), vga=vga,
                                           adc=adc, agc=agc)
        assert receiver.agc is agc


class TestReceiver:
    def test_detects_and_demodulates_clean_packet(self, rng):
        rx, payload, _start = make_rx_waveform(CFG, rng)
        receiver = EnergyDetectionReceiver(CFG, IdealIntegrator())
        result = receiver.process(rx, payload_bits=CFG.payload_bits)
        assert result.detected
        assert len(result.bits) == CFG.payload_bits
        assert np.mean(result.bits != payload) < 0.2

    def test_no_detection_on_pure_noise(self, rng):
        noise = rng.normal(0.0, 1e-5, 40 * CFG.samples_per_symbol)
        receiver = EnergyDetectionReceiver(CFG, IdealIntegrator(),
                                           detection_factor=8.0)
        result = receiver.process(noise, payload_bits=4)
        assert not result.detected
        assert result.toa is None

    def test_toa_near_truth(self, rng):
        rx, _payload, start = make_rx_waveform(CFG, rng, noise=5e-6)
        receiver = EnergyDetectionReceiver(CFG, IdealIntegrator())
        result = receiver.process(rx, payload_bits=4)
        true_toa = (start + CFG.samples_per_slot // 2) * CFG.dt
        assert result.detected
        assert abs(result.toa - true_toa) < 6 * CFG.integration_window

    def test_agc_programs_vga(self, rng):
        rx, _payload, _start = make_rx_waveform(CFG, rng)
        receiver = EnergyDetectionReceiver(CFG, IdealIntegrator())
        result = receiver.process(rx, payload_bits=4)
        assert result.agc is not None
        assert receiver.vga.code == result.agc.code
        assert receiver.vga.gain_db > 0

    def test_sync_profile_shape(self, rng):
        rx, _payload, _start = make_rx_waveform(CFG, rng, noise=5e-6)
        receiver = EnergyDetectionReceiver(CFG, IdealIntegrator())
        result = receiver.process(rx, payload_bits=4)
        profile = result.sync_profile
        assert len(profile) == (CFG.samples_per_symbol
                                // CFG.samples_per_window)
        assert profile[result.sync_phase] == profile.max()

    def test_too_short_waveform_raises(self):
        receiver = EnergyDetectionReceiver(CFG, IdealIntegrator())
        with pytest.raises(ValueError):
            receiver.process(np.zeros(10))

    def test_toa_fraction_validation(self):
        with pytest.raises(ValueError):
            EnergyDetectionReceiver(CFG, IdealIntegrator(),
                                    toa_threshold_fraction=1.5)

    def test_window_energies(self):
        receiver = EnergyDetectionReceiver(CFG, IdealIntegrator())
        x = np.ones(CFG.samples_per_window * 3)
        energies = receiver.window_energies(x)
        assert len(energies) == 3
        assert energies[0] == pytest.approx(
            CFG.samples_per_window * CFG.dt)


class TestTwoWayRanging:
    def test_ideal_channel_zero_noise_exact(self):
        """No noise, delay-only channel: exact to the window grid."""
        twr = TwoWayRanging(
            CFG, lambda: EnergyDetectionReceiver(CFG, IdealIntegrator()),
            distance=9.9, tx_amplitude=1e-3, noise_sigma=1e-7,
            channel=None)
        res = twr.run(3, np.random.default_rng(0))
        window_m = SPEED_OF_LIGHT * CFG.integration_window
        assert abs(res.offset) <= window_m
        assert res.std <= window_m

    def test_cm1_ranging_statistics(self):
        chan = Cm1Channel(CFG.fs)
        twr = TwoWayRanging(
            CFG, lambda: EnergyDetectionReceiver(
                CFG, IdealIntegrator(), toa_threshold_fraction=0.5,
                detection_factor=8.0),
            distance=9.9, tx_amplitude=1.0, noise_sigma=9e-5,
            channel=chan)
        res = twr.run(6, np.random.default_rng(42))
        assert 9.0 < res.mean < 13.0
        assert res.variance < 10.0
        summary = res.summary()
        assert summary["true_m"] == 9.9
        assert summary["iterations"] == 6.0

    def test_compression_increases_offset(self):
        """The table-2 headline: the circuit integrator's compressed
        output crosses the arrival threshold later (paired seeds)."""
        chan = Cm1Channel(CFG.fs)

        def run(integ):
            twr = TwoWayRanging(
                CFG, lambda: EnergyDetectionReceiver(
                    CFG, integ, toa_threshold_fraction=0.5,
                    detection_factor=8.0),
                distance=9.9, tx_amplitude=1.0, noise_sigma=9e-5,
                channel=chan)
            return twr.run(8, np.random.default_rng(42))

        ideal = run(IdealIntegrator())
        circuit = run(CircuitSurrogateIntegrator())
        assert circuit.offset >= ideal.offset - 1e-9
        assert circuit.offset > 0

    def test_static_channel_requires_model(self):
        with pytest.raises(ValueError):
            TwoWayRanging(CFG, lambda: None, channel=None,
                          static_channel=True)

    def test_static_channel_reused(self):
        chan = Cm1Channel(CFG.fs)
        twr = TwoWayRanging(
            CFG, lambda: EnergyDetectionReceiver(CFG, IdealIntegrator()),
            distance=9.9, channel=chan, static_channel=True,
            static_channel_seed=5)
        assert twr._fixed_realization is not None

    def test_weak_link_raises(self):
        twr = TwoWayRanging(
            CFG, lambda: EnergyDetectionReceiver(CFG, IdealIntegrator()),
            distance=9.9, tx_amplitude=1e-9, noise_sigma=1e-3,
            channel=None)
        with pytest.raises(RuntimeError):
            twr.run(2, np.random.default_rng(1))

    def test_distance_validation(self):
        with pytest.raises(ValueError):
            TwoWayRanging(CFG, lambda: None, distance=-1.0)
