"""Vectorized BER engine and the AMS-kernel receiver."""

import numpy as np
import pytest

from repro.uwb import ChannelRealization, UwbConfig, ber_curve, \
    simulate_ber_point
from repro.uwb.bpf import BandPassFilter
from repro.uwb.fastsim import _LinkCache, theoretical_ppm_awgn_ber
from repro.uwb.integrator import (
    CircuitSurrogateIntegrator,
    IdealIntegrator,
    TwoPoleIntegrator,
)
from repro.uwb.modulation import ppm_waveform, random_bits
from repro.uwb.system import make_integrator, run_ams_receiver

FAST = UwbConfig(fs=8e9, symbol_period=16e-9, pulse_tau=0.225e-9,
                 pulse_order=5, integration_window=2e-9)


class TestFastsim:
    def test_ber_decreases_with_snr(self):
        res = ber_curve(FAST, IdealIntegrator(), [2.0, 8.0, 14.0],
                        np.random.default_rng(3),
                        target_errors=40, max_bits=8000, min_bits=800)
        assert res.ber[0] > res.ber[1] > res.ber[2]

    def test_high_snr_nearly_clean(self):
        errors, bits = simulate_ber_point(
            FAST, IdealIntegrator(), 25.0, np.random.default_rng(4),
            target_errors=10, max_bits=3000, min_bits=1000)
        assert errors / bits < 0.01

    def test_paired_seed_reproducible(self):
        kwargs = dict(target_errors=20, max_bits=3000, min_bits=500)
        a = simulate_ber_point(FAST, IdealIntegrator(), 8.0,
                               np.random.default_rng(5), **kwargs)
        b = simulate_ber_point(FAST, IdealIntegrator(), 8.0,
                               np.random.default_rng(5), **kwargs)
        assert a == b

    def test_two_pole_close_to_ideal_at_drive(self):
        kwargs = dict(target_errors=50, max_bits=6000, min_bits=2000,
                      squarer_drive=0.05)
        e_i, n_i = simulate_ber_point(FAST, IdealIntegrator(), 10.0,
                                      np.random.default_rng(6), **kwargs)
        e_t, n_t = simulate_ber_point(FAST, TwoPoleIntegrator(), 10.0,
                                      np.random.default_rng(6), **kwargs)
        assert abs(e_i / n_i - e_t / n_t) < 0.05

    def test_overdrive_degrades_circuit_ber(self):
        kwargs = dict(target_errors=60, max_bits=8000, min_bits=3000)
        e_lin, n_lin = simulate_ber_point(
            FAST, CircuitSurrogateIntegrator(), 10.0,
            np.random.default_rng(7), squarer_drive=0.05, **kwargs)
        e_sat, n_sat = simulate_ber_point(
            FAST, CircuitSurrogateIntegrator(), 10.0,
            np.random.default_rng(7), squarer_drive=0.35, **kwargs)
        assert e_sat / n_sat > e_lin / n_lin

    def test_result_rows(self):
        res = ber_curve(FAST, IdealIntegrator(), [5.0],
                        np.random.default_rng(8),
                        target_errors=10, max_bits=1000, min_bits=500,
                        label="x")
        rows = res.as_rows()
        assert len(rows) == 1
        assert rows[0][3] >= 500
        assert res.label == "x"

    def test_theoretical_reference(self):
        ber = theoretical_ppm_awgn_ber([0.0, 10.0])
        # Q(1) = 0.1587 at Eb/N0 = 0 dB
        assert ber[0] == pytest.approx(0.1587, abs=1e-3)
        assert ber[1] < ber[0]


class TestLinkCachePilot:
    """The cached Eb/peak pilot must see exactly the data-path
    processing of simulate_ber_point (delay trim + whole-symbol
    truncation)."""

    def _channel(self, delay: int) -> ChannelRealization:
        taps = np.exp(-np.arange(160) / 40.0)
        taps /= np.sqrt(np.sum(taps ** 2))
        return ChannelRealization(taps=taps, delay_samples=delay,
                                  fs=FAST.fs, distance=3.0)

    def test_pilot_matches_data_path(self):
        channel = self._channel(delay=57)
        cache = _LinkCache(FAST, channel, None)
        n_sym = FAST.samples_per_symbol
        pilot = ppm_waveform(np.zeros(8, dtype=np.int8), FAST)
        aligned = channel.apply(pilot)[
            channel.delay_samples:channel.delay_samples + 8 * n_sym]
        filtered = cache.bpf(aligned)[:8 * n_sym]
        expected_eb = float(np.sum(filtered ** 2) * FAST.dt / 8)
        assert cache.eb == pytest.approx(expected_eb, rel=1e-12)
        assert cache.peak == pytest.approx(
            float(np.max(np.abs(filtered))), rel=1e-12)

    def test_eb_invariant_under_propagation_delay(self):
        """A pure extra flight time must not change the measured
        per-bit energy - the delay trim realigns the pilot exactly as
        the data path realigns the payload."""
        near = _LinkCache(FAST, self._channel(delay=0), None)
        far = _LinkCache(FAST, self._channel(delay=400), None)
        assert far.eb == pytest.approx(near.eb, rel=1e-9)
        assert far.peak == pytest.approx(near.peak, rel=1e-9)

    def test_tail_energy_not_counted(self):
        """Multipath energy convolved past the last symbol window is
        excluded from Eb (it is also invisible to the data path)."""
        channel = self._channel(delay=0)
        cache = _LinkCache(FAST, channel, None)
        n_sym = FAST.samples_per_symbol
        pilot = ppm_waveform(np.zeros(8, dtype=np.int8), FAST)
        untrimmed = cache.bpf(channel.apply(pilot))
        eb_with_tail = float(np.sum(untrimmed ** 2) * FAST.dt / 8)
        assert cache.eb < eb_with_tail


class TestAmsReceiver:
    def _clean_signal(self, bits, noise=0.0, seed=0):
        rng = np.random.default_rng(seed)
        wave = ppm_waveform(bits, FAST, amplitude=1.0)
        if noise:
            wave = wave + rng.normal(0.0, noise, len(wave))
        bpf = BandPassFilter.for_pulse(FAST.fs, FAST.pulse_tau,
                                       FAST.pulse_order)
        sig = bpf(wave)
        return 0.25 * sig / np.max(np.abs(sig))

    def test_noise_free_demodulation(self):
        bits = np.array([1, 0, 0, 1, 1, 0], dtype=np.int8)
        sig = self._clean_signal(bits)
        for kind in ("ideal", "two_pole", "surrogate"):
            res = run_ams_receiver(FAST, kind, sig)
            assert np.array_equal(res.bits, bits), kind

    def test_cosim_demodulation(self):
        bits = np.array([1, 0, 1], dtype=np.int8)
        sig = self._clean_signal(bits)
        res = run_ams_receiver(FAST, "circuit", sig)
        assert np.array_equal(res.bits, bits)
        assert res.cpu_time > 0

    def test_cosim_slower_than_behavioral(self):
        bits = np.array([1, 0], dtype=np.int8)
        sig = self._clean_signal(bits)
        fast = run_ams_receiver(FAST, "ideal", sig)
        slow = run_ams_receiver(FAST, "circuit", sig)
        assert slow.cpu_time > 2.0 * fast.cpu_time

    def test_recorder_attached(self):
        bits = np.array([0, 1], dtype=np.int8)
        sig = self._clean_signal(bits)
        res = run_ams_receiver(FAST, "ideal", sig, record=True)
        assert res.recorder is not None
        trace = res.recorder.trace("int_out")
        assert trace.maximum() > 0

    def test_slot_values_shape(self):
        bits = np.zeros(4, dtype=np.int8)
        sig = self._clean_signal(bits)
        res = run_ams_receiver(FAST, "ideal", sig)
        assert res.slot_values.shape == (4, 2)
        # preamble-like zeros: slot 0 collects the energy
        assert np.all(res.slot_values[:, 0] > res.slot_values[:, 1])

    def test_make_integrator_resolution(self):
        assert isinstance(make_integrator("ideal"), IdealIntegrator)
        assert isinstance(make_integrator("two_pole"), TwoPoleIntegrator)
        assert make_integrator("circuit") == "circuit"
        inst = TwoPoleIntegrator()
        assert make_integrator(inst) is inst
        with pytest.raises(ValueError):
            make_integrator("quantum")
