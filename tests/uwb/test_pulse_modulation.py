"""Pulses, spectra, 2-PPM modulation and packets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.uwb import UwbConfig
from repro.uwb.config import TEST_CONFIG
from repro.uwb.modulation import (
    Packet,
    packet_waveform,
    ppm_positions,
    ppm_waveform,
    random_bits,
)
from repro.uwb.pulse import (
    fcc_indoor_mask_dbm_per_mhz,
    fractional_bandwidth,
    gaussian_derivative,
    pulse_energy,
    pulse_psd,
    sampled_pulse,
)


class TestPulse:
    def test_peak_normalized(self):
        pulse = sampled_pulse(20e9, 0.09e-9, 5)
        assert np.max(np.abs(pulse)) == pytest.approx(1.0)

    def test_odd_length_symmetric_support(self):
        pulse = sampled_pulse(20e9, 0.2e-9, 4)
        assert len(pulse) % 2 == 1

    @pytest.mark.parametrize("order", [0, 1, 2, 5, 7])
    def test_orders(self, order):
        t = np.linspace(-1e-9, 1e-9, 801)
        pulse = gaussian_derivative(t, 0.1e-9, order)
        assert np.all(np.isfinite(pulse))
        # odd derivatives are odd functions
        if order % 2 == 1:
            assert pulse[400] == pytest.approx(0.0, abs=1e-9)

    def test_derivative_zero_is_gaussian(self):
        t = np.linspace(-1e-9, 1e-9, 801)
        pulse = gaussian_derivative(t, 0.2e-9, 0)
        assert pulse[400] == pytest.approx(1.0)
        assert np.all(pulse > 0)

    def test_validation(self):
        t = np.linspace(-1e-9, 1e-9, 11)
        with pytest.raises(ValueError):
            gaussian_derivative(t, -1.0, 1)
        with pytest.raises(ValueError):
            gaussian_derivative(t, 1e-10, -2)
        with pytest.raises(ValueError):
            sampled_pulse(-1.0, 1e-10)

    def test_energy_positive_and_scales(self):
        pulse = sampled_pulse(20e9, 0.09e-9)
        e1 = pulse_energy(pulse, 20e9)
        e2 = pulse_energy(2.0 * pulse, 20e9)
        assert e1 > 0
        assert e2 == pytest.approx(4.0 * e1)

    def test_psd_parseval(self):
        fs = 20e9
        pulse = sampled_pulse(fs, 0.09e-9)
        freqs, esd = pulse_psd(pulse, fs, nfft=1 << 15)
        e_time = pulse_energy(pulse, fs)
        e_freq = np.trapezoid(esd, freqs)
        assert e_freq == pytest.approx(e_time, rel=1e-2)

    def test_uwb_fractional_bandwidth(self):
        """FCC definition: fractional bandwidth > 0.20."""
        pulse = sampled_pulse(20e9, 0.09e-9, 5)
        assert fractional_bandwidth(pulse, 20e9) > 0.20

    def test_fcc_mask_levels(self):
        freqs = np.array([0.5e9, 1.2e9, 1.8e9, 2.5e9, 5e9, 11e9])
        mask = fcc_indoor_mask_dbm_per_mhz(freqs)
        assert mask[0] == -41.3
        assert mask[1] == -75.3
        assert mask[4] == -41.3
        assert mask[5] == -51.3


class TestModulation:
    def test_positions(self):
        cfg = TEST_CONFIG
        pos = ppm_positions(np.array([0, 1, 0]), cfg)
        n_sym, n_slot = cfg.samples_per_symbol, cfg.samples_per_slot
        assert pos[0] == n_slot // 2
        assert pos[1] == n_sym + n_slot + n_slot // 2
        assert pos[2] == 2 * n_sym + n_slot // 2

    def test_waveform_slots(self):
        cfg = TEST_CONFIG
        wave = ppm_waveform(np.array([0, 1]), cfg)
        n_sym, n_slot = cfg.samples_per_symbol, cfg.samples_per_slot
        sym0 = wave[:n_sym]
        sym1 = wave[n_sym:2 * n_sym]
        # energy in the correct slot
        assert np.sum(sym0[:n_slot] ** 2) > 10 * np.sum(
            sym0[n_slot:] ** 2)
        assert np.sum(sym1[n_slot:] ** 2) > 10 * np.sum(
            sym1[:n_slot] ** 2)

    def test_waveform_length(self):
        cfg = TEST_CONFIG
        wave = ppm_waveform(np.zeros(5, np.int8), cfg, extra_samples=17)
        assert len(wave) == 5 * cfg.samples_per_symbol + 17

    def test_amplitude_scaling(self):
        cfg = TEST_CONFIG
        w1 = ppm_waveform(np.zeros(2, np.int8), cfg, amplitude=1.0)
        w2 = ppm_waveform(np.zeros(2, np.int8), cfg, amplitude=0.5)
        assert np.max(np.abs(w2)) == pytest.approx(
            0.5 * np.max(np.abs(w1)))

    @given(st.integers(1, 30))
    @settings(max_examples=10, deadline=None)
    def test_per_symbol_energy_constant(self, n):
        cfg = TEST_CONFIG
        rng = np.random.default_rng(n)
        bits = random_bits(n, rng)
        wave = ppm_waveform(bits, cfg)
        n_sym = cfg.samples_per_symbol
        energies = np.sum(wave[:n * n_sym].reshape(n, n_sym) ** 2, axis=1)
        assert np.allclose(energies, energies[0], rtol=1e-6)


class TestPacket:
    def test_symbols_layout(self):
        p = Packet(4, np.array([1, 0, 1], dtype=np.int8))
        assert list(p.symbols) == [0, 0, 0, 0, 1, 0, 1]
        assert p.n_symbols == 7

    def test_payload_validation(self):
        with pytest.raises(ValueError):
            Packet(4, np.array([0, 2]))
        with pytest.raises(ValueError):
            Packet(-1, np.array([0, 1]))
        with pytest.raises(ValueError):
            Packet(1, np.zeros((2, 2)))

    def test_duration(self):
        cfg = TEST_CONFIG
        p = Packet(4, np.zeros(4, np.int8))
        assert p.duration(cfg) == pytest.approx(8 * cfg.symbol_period)

    def test_packet_waveform_preamble_in_slot0(self):
        cfg = TEST_CONFIG
        p = Packet(3, np.zeros(0, np.int8))
        wave = packet_waveform(p, cfg)
        n_sym, n_slot = cfg.samples_per_symbol, cfg.samples_per_slot
        for k in range(3):
            sym = wave[k * n_sym:(k + 1) * n_sym]
            assert np.sum(sym[:n_slot] ** 2) > 10 * np.sum(
                sym[n_slot:] ** 2)


class TestConfig:
    def test_dt_is_paper_step(self):
        assert UwbConfig().dt == pytest.approx(0.05e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            UwbConfig(fs=-1.0).validate()
        with pytest.raises(ValueError):
            UwbConfig(integration_window=1.0).validate()

    def test_derived_sizes(self):
        cfg = UwbConfig()
        assert cfg.samples_per_symbol == 320
        assert cfg.samples_per_slot == 160
        assert cfg.samples_per_window == 40

    def test_scaled(self):
        cfg = UwbConfig().scaled(payload_bits=8)
        assert cfg.payload_bits == 8
