"""IEEE 802.15.4a CM1 channel and AWGN."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.uwb.channel import (
    AwgnChannel,
    CM1_PARAMETERS,
    Cm1Channel,
    noise_sigma_for_ebn0,
    path_loss_db,
)
from repro.uwb.config import SPEED_OF_LIGHT


class TestPathLoss:
    def test_reference_point(self):
        assert path_loss_db(1.0) == pytest.approx(43.9)

    def test_exponent(self):
        delta = path_loss_db(10.0) - path_loss_db(1.0)
        assert delta == pytest.approx(10 * 1.79, rel=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            path_loss_db(0.0)
        with pytest.raises(ValueError):
            path_loss_db(-3.0)

    def test_sub_meter_distance_below_reference(self):
        """The power law extrapolates below 1 m: PL < PL0, still
        finite."""
        pl = path_loss_db(0.1)
        assert pl == pytest.approx(43.9 - 10 * 1.79)
        assert math.isfinite(pl)

    def test_monotone_in_distance(self):
        distances = [0.5, 1.0, 2.0, 5.0, 9.9, 20.0]
        losses = [path_loss_db(d) for d in distances]
        assert losses == sorted(losses)
        assert len(set(losses)) == len(losses)

    def test_custom_parameters(self):
        from repro.uwb.channel.ieee802154a import (
            SalehValenzuelaParameters,
        )
        import dataclasses

        params = dataclasses.replace(CM1_PARAMETERS, pl0_db=50.0,
                                     pl_exponent=2.0)
        assert path_loss_db(1.0, params) == pytest.approx(50.0)
        assert path_loss_db(10.0, params) == pytest.approx(70.0)
        assert isinstance(params, SalehValenzuelaParameters)


class TestCm1Realizations:
    def test_energy_matches_path_loss(self):
        chan = Cm1Channel(20e9)
        rng = np.random.default_rng(0)
        real = chan.realize(9.9, rng)
        expected = 10.0 ** (-path_loss_db(9.9) / 10.0)
        assert real.energy_gain() == pytest.approx(expected, rel=1e-9)

    def test_unit_energy_without_path_loss(self):
        chan = Cm1Channel(20e9, apply_path_loss=False)
        real = chan.realize(5.0, np.random.default_rng(1))
        assert real.energy_gain() == pytest.approx(1.0, rel=1e-9)

    def test_los_delay(self):
        chan = Cm1Channel(20e9)
        real = chan.realize(9.9, np.random.default_rng(2))
        expected = int(round(9.9 / SPEED_OF_LIGHT * 20e9))
        assert real.delay_samples == expected
        assert real.delay_seconds == pytest.approx(expected / 20e9)

    def test_first_tap_is_strongest_on_average(self):
        """CM1 is LOS: the deterministic first path dominates."""
        chan = Cm1Channel(20e9, apply_path_loss=False)
        rng = np.random.default_rng(3)
        wins = 0
        for _ in range(20):
            real = chan.realize(9.9, rng)
            if np.argmax(np.abs(real.taps)) == 0:
                wins += 1
        assert wins >= 15

    def test_decaying_power_profile(self):
        chan = Cm1Channel(20e9, apply_path_loss=False)
        rng = np.random.default_rng(4)
        profile = np.zeros(chan_taps(chan))
        for _ in range(30):
            profile += chan.realize(9.9, rng).taps ** 2
        early = profile[: len(profile) // 4].sum()
        late = profile[-len(profile) // 4:].sum()
        assert early > 5 * late

    def test_rms_delay_spread_in_range(self):
        """CM1 RMS delay spread is on the order of 10-20 ns."""
        chan = Cm1Channel(20e9, apply_path_loss=False)
        rng = np.random.default_rng(5)
        spreads = [chan.realize(9.9, rng).rms_delay_spread()
                   for _ in range(10)]
        assert 2e-9 < np.median(spreads) < 40e-9

    def test_apply_shapes(self):
        chan = Cm1Channel(20e9)
        real = chan.realize(3.0, np.random.default_rng(6))
        x = np.zeros(100)
        x[0] = 1.0
        y = real.apply(x, extra_tail=7)
        assert len(y) == real.delay_samples + 100 + len(real.taps) - 1 + 7
        # nothing before the flight delay
        assert np.all(y[: real.delay_samples] == 0.0)

    def test_seed_reproducibility(self):
        chan = Cm1Channel(20e9)
        a = chan.realize(9.9, np.random.default_rng(7)).taps
        b = chan.realize(9.9, np.random.default_rng(7)).taps
        assert np.array_equal(a, b)

    def test_seed_reproducibility_full_realization(self):
        """Same seed => the *entire* realization is identical (taps,
        delay, rate, distance), including across channel instances -
        the property the campaign layer's content addressing leans
        on."""
        a = Cm1Channel(20e9).realize(9.9, np.random.default_rng(123))
        b = Cm1Channel(20e9).realize(9.9, np.random.default_rng(123))
        assert np.array_equal(a.taps, b.taps)
        assert a.delay_samples == b.delay_samples
        assert a.fs == b.fs and a.distance == b.distance
        # and the realizations behave identically end to end
        x = np.random.default_rng(0).normal(size=64)
        assert np.array_equal(a.apply(x), b.apply(x))

    def test_different_seeds_differ(self):
        chan = Cm1Channel(20e9)
        a = chan.realize(9.9, np.random.default_rng(7)).taps
        b = chan.realize(9.9, np.random.default_rng(8)).taps
        assert not np.array_equal(a, b)

    def test_shared_generator_advances(self):
        """Two draws from one generator are distinct realizations (the
        stream advances), unlike two freshly seeded generators."""
        chan = Cm1Channel(20e9)
        rng = np.random.default_rng(7)
        a = chan.realize(9.9, rng).taps
        b = chan.realize(9.9, rng).taps
        assert not np.array_equal(a, b)

    def test_distance_validation(self):
        chan = Cm1Channel(20e9)
        with pytest.raises(ValueError):
            chan.realize(-1.0, np.random.default_rng(0))


def chan_taps(chan: Cm1Channel) -> int:
    return int(round(chan.max_excess_delay * chan.fs)) + 1


class TestAwgn:
    def test_sigma_for_ebn0(self):
        eb = 1e-12
        fs = 20e9
        sigma = noise_sigma_for_ebn0(eb, 10.0, fs)
        n0 = eb / 10.0
        assert sigma == pytest.approx(math.sqrt(n0 * fs / 2.0))
        with pytest.raises(ValueError):
            noise_sigma_for_ebn0(-1.0, 10.0, fs)

    def test_channel_statistics(self):
        chan = AwgnChannel(0.5, np.random.default_rng(8))
        y = chan(np.zeros(200_000))
        assert np.std(y) == pytest.approx(0.5, rel=0.02)
        assert np.mean(y) == pytest.approx(0.0, abs=0.01)

    def test_zero_sigma_copies(self):
        x = np.ones(10)
        chan = AwgnChannel(0.0, np.random.default_rng(9))
        y = chan(x)
        assert np.array_equal(x, y)
        assert y is not x

    @given(st.floats(1.0, 20.0))
    @settings(max_examples=10, deadline=None)
    def test_sigma_monotone_in_ebn0(self, ebn0):
        s1 = noise_sigma_for_ebn0(1e-12, ebn0, 20e9)
        s2 = noise_sigma_for_ebn0(1e-12, ebn0 + 1.0, 20e9)
        assert s2 < s1


class TestRelDelayAndTail:
    """rel_delay timing offsets and apply() tail-length semantics."""

    def test_rel_delay_shifts_delay_samples(self):
        chan = Cm1Channel(20e9)
        base = chan.realize(9.9, np.random.default_rng(31))
        late = chan.realize(9.9, np.random.default_rng(31),
                            rel_delay=5e-9)
        assert late.delay_samples == base.delay_samples + 100
        # The tap draw consumes the same entropy either way.
        assert np.array_equal(late.taps, base.taps)

    def test_rel_delay_negative_within_flight_time(self):
        chan = Cm1Channel(20e9)
        base = chan.realize(9.9, np.random.default_rng(32))
        early = chan.realize(9.9, np.random.default_rng(32),
                             rel_delay=-1e-9)
        assert early.delay_samples == base.delay_samples - 20

    def test_rel_delay_cannot_precede_t0(self):
        chan = Cm1Channel(20e9)
        with pytest.raises(ValueError):
            chan.realize(3.0, np.random.default_rng(33),
                         rel_delay=-1.0)

    def test_extra_tail_appends_after_ringing(self):
        """extra_tail zeros come after the full convolution - they
        never truncate multipath energy."""
        chan = Cm1Channel(20e9)
        real = chan.realize(3.0, np.random.default_rng(34))
        x = np.random.default_rng(35).normal(size=400)
        plain = real.apply(x)
        padded = real.apply(x, extra_tail=64)
        assert len(padded) == len(plain) + 64
        assert np.array_equal(padded[: len(plain)], plain)
        assert np.all(padded[len(plain):] == 0.0)

    def test_extra_tail_keeps_chunk_window_slices_valid(self):
        """The contract chunked consumers rely on: a fixed window of
        n samples starting at the flight delay is in bounds whenever
        extra_tail covers n - (len(x) + len(taps) - 1), and the
        in-bounds part is unchanged by the padding."""
        chan = Cm1Channel(20e9)
        real = chan.realize(3.0, np.random.default_rng(36))
        x = np.random.default_rng(37).normal(size=200)
        ring = len(x) + len(real.taps) - 1
        n = ring + 50  # listening window outruns the ringing
        d = real.delay_samples
        window = real.apply(x, extra_tail=n - ring)[d: d + n]
        assert len(window) == n
        assert np.array_equal(window[:ring], real.apply(x)[d:])
        assert np.all(window[ring:] == 0.0)
