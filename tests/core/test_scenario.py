"""Scenario / SweepRunner: seeding, sweeps, fan-out."""

import numpy as np
import pytest

from repro.core.scenario import (
    Scenario,
    SweepReport,
    SweepRunner,
    _execute,
)
from repro.uwb.config import UwbConfig
from repro.link import LinkSpec, ops
from repro.uwb.integrator import IdealIntegrator
from repro.uwb.modulation import random_bits

FAST = UwbConfig(fs=8e9, symbol_period=16e-9, pulse_tau=0.225e-9,
                 pulse_order=5, integration_window=2e-9)


class TestScenario:
    def test_plain_call(self):
        sc = Scenario(name="add", fn=lambda a, b: a + b,
                      params={"a": 2, "b": 3})
        assert sc.run() == 5

    def test_rng_param_seeding_reproducible(self):
        sc = Scenario(name="draw", fn=lambda rng: rng.integers(1 << 30),
                      seed=99, rng_param="rng")
        assert sc.run() == sc.run()
        other = Scenario(name="draw2", fn=lambda rng: rng.integers(1 << 30),
                         seed=100, rng_param="rng")
        assert sc.run() != other.run()

    def test_seed_param_passthrough(self):
        sc = Scenario(name="s", fn=lambda seed: seed, seed=42,
                      seed_param="seed")
        assert sc.run() == 42

    def test_seed_param_from_seed_sequence(self):
        ss = np.random.SeedSequence(7).spawn(1)[0]
        sc = Scenario(name="s", fn=lambda seed: seed, seed=ss,
                      seed_param="seed")
        assert isinstance(sc.run(), int)

    def test_unseeded_scenario_still_injects_rng_and_seed(self):
        """seed=None means unseeded, not 'skip the injection': the fn
        still receives a working generator / integer seed."""
        sc = Scenario(name="u", fn=lambda rng: rng.integers(10),
                      rng_param="rng")
        assert 0 <= sc.run() < 10
        sc2 = Scenario(name="u2", fn=lambda seed: seed,
                       seed_param="seed")
        assert isinstance(sc2.run(), int)

    def test_execute_reports_wall_time(self):
        res = _execute(Scenario(name="x", fn=lambda: 1))
        assert res.value == 1 and res.wall_time >= 0.0
        assert res.name == "x"


class TestSweepRunner:
    def test_serial_run_preserves_order(self):
        runner = SweepRunner(
            Scenario(name=f"n{i}", fn=lambda i=i: i) for i in range(5))
        report = runner.run()
        assert report.values() == [0, 1, 2, 3, 4]
        assert report["n3"] == 3
        assert len(report) == 5

    def test_empty_runner(self):
        assert SweepRunner().run().values() == []

    def test_unknown_name_raises(self):
        report = SweepReport(results=[])
        with pytest.raises(KeyError):
            report["nope"]

    def test_sweep_cartesian_product(self):
        runner = SweepRunner.sweep(
            "grid", lambda a, b, c: (a, b, c),
            axes={"a": [1, 2], "b": ["x", "y"]}, base={"c": 0})
        report = runner.run()
        assert report.values() == [(1, "x", 0), (1, "y", 0),
                                   (2, "x", 0), (2, "y", 0)]
        assert report["grid[a=2,b=x]"] == (2, "x", 0)

    def test_sweep_duplicate_labels_stay_unique(self):
        """Axis values sharing a display label (e.g. model instances of
        one class) must not collapse in by_name()."""
        from repro.uwb.integrator import TwoPoleIntegrator

        runner = SweepRunner.sweep(
            "fp2", lambda integrator: integrator.fp2_hz,
            axes={"integrator": [TwoPoleIntegrator(fp2_hz=1e9),
                                 TwoPoleIntegrator(fp2_hz=3e9)]})
        report = runner.run()
        assert len(report.by_name()) == 2
        assert sorted(report.by_name()) == [
            "fp2[integrator=two_pole]", "fp2[integrator=two_pole]#2"]
        assert sorted(report.by_name().values()) == [1e9, 3e9]

    def test_sweep_seeds_deterministic_and_distinct(self):
        def draw(arm, rng):
            return int(rng.integers(1 << 30))

        def build():
            return SweepRunner.sweep(
                "seeded", draw, axes={"arm": [0, 1, 2]},
                base_seed=11, rng_param="rng")

        first = build().run().values()
        second = build().run().values()
        assert first == second
        assert len(set(first)) == 3  # per-run streams differ

    def test_parallel_matches_serial(self):
        """Process fan-out returns the same results as serial execution
        (picklable top-level fn + params)."""
        def build(processes):
            runner = SweepRunner(processes=processes)
            for n in (8, 16):
                runner.add(Scenario(
                    name=f"bits{n}", fn=random_bits, seed=5,
                    rng_param="rng", params={"n": n}))
            return runner

        serial = build(None).run()
        parallel = build(2).run()
        for s, p in zip(serial, parallel):
            assert np.array_equal(s.value, p.value)

    def test_total_wall_time_and_table(self):
        report = SweepRunner(
            [Scenario(name="a", fn=lambda: 1)]).run()
        assert report.total_wall_time >= 0.0
        assert "a" in report.format_table()


class TestSweepReportJson:
    def build_report(self):
        runner = SweepRunner()
        for n in (4, 8):
            runner.add(Scenario(name=f"bits{n}", fn=random_bits, seed=5,
                                rng_param="rng", params={"n": n}))
        return runner.run()

    def test_round_trip(self):
        report = self.build_report()
        back = SweepReport.from_json(report.to_json())
        assert len(back) == len(report)
        for a, b in zip(report, back):
            assert a.name == b.name
            assert np.array_equal(a.value, b.value)
            assert a.wall_time == b.wall_time
            assert b.scenario.fn is random_bits
            assert b.scenario.params == {"n": a.params["n"]}

    def test_round_trip_preserves_seeds(self):
        runner = SweepRunner.sweep(
            "g", random_bits, axes={"n": [4, 8]}, base_seed=3,
            rng_param="rng")
        report = runner.run()
        back = SweepReport.from_json(report.to_json())
        # decoded scenarios re-run to identical draws
        for orig, dec in zip(report, back):
            assert np.array_equal(dec.scenario.run(), orig.value)

    def test_json_is_plain_text(self):
        import json

        payload = json.loads(self.build_report().to_json(indent=2))
        assert payload["format"] == SweepReport.JSON_FORMAT
        assert len(payload["results"]) == 2

    def test_format_version_checked(self):
        with pytest.raises(ValueError):
            SweepReport.from_json('{"format": "bogus", "results": []}')

    def test_lambda_report_rejected(self):
        from repro.core.serialization import UnserializableError

        report = SweepRunner([Scenario(name="l", fn=lambda: 1)]).run()
        with pytest.raises(UnserializableError):
            report.to_json()

    def test_cached_flag_round_trips(self):
        report = self.build_report()
        report.results[0].cached = True
        back = SweepReport.from_json(report.to_json())
        assert back.results[0].cached is True
        assert back.results[1].cached is False


class TestBerCurveWorkers:
    BUDGET = dict(target_errors=15, max_bits=2000, min_bits=400)

    SPEC = LinkSpec(config=FAST)

    def test_parallel_ber_curve_reproducible(self):
        a = ops.ber_curve(self.SPEC, [4.0, 8.0],
                          np.random.default_rng(3), workers=2,
                          **self.BUDGET)
        b = ops.ber_curve(self.SPEC, [4.0, 8.0],
                          np.random.default_rng(3), workers=2,
                          **self.BUDGET)
        assert np.array_equal(a.errors, b.errors)
        assert np.array_equal(a.bits, b.bits)

    def test_parallel_matches_spawned_serial_points(self):
        """Each parallel point equals a serial run of the same spawned
        stream - fan-out changes scheduling, not statistics."""
        grid = [4.0, 8.0]
        parallel = ops.ber_curve(self.SPEC, grid,
                                 np.random.default_rng(9), workers=2,
                                 **self.BUDGET)
        children = np.random.default_rng(9).spawn(len(grid))
        for i, (point, child) in enumerate(zip(grid, children)):
            e, b = ops.ber_point(self.SPEC, point, child,
                                 **self.BUDGET)
            assert (parallel.errors[i], parallel.bits[i]) == (e, b)
